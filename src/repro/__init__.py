"""Match Filtering Automata — reproduction of Norige & Liu, ICDCS 2016.

A de-compositional regular-expression matching library for network
security: complex patterns are split into DFA-friendly components whose
raw matches a tiny stateful filter engine post-processes into exact
matches of the original patterns.

Quickstart::

    import repro

    mfa = repro.compile_mfa([".*cmd\\.exe.*system32", ".*user=[^\\n]*root"])
    for match in mfa.run(payload):
        print(match.pos, match.match_id)
"""

from .automata import (
    DFA,
    HFA,
    NFA,
    XFA,
    DfaExplosionError,
    MatchEvent,
    build_dfa,
    build_hfa,
    build_nfa,
    build_xfa,
    minimize_dfa,
)
from .core import (
    MFA,
    FilterAction,
    FilterEngine,
    FilterProgram,
    FlowContext,
    SplitterOptions,
    build_mfa,
    compile_dfa,
    compile_mfa,
    compile_nfa,
    split_patterns,
    verify_equivalence,
)
from .fastpath import (
    ArtifactCache,
    FastPathMFA,
    build_fastpath,
    compile_mfa_cached,
)
from .regex import CharClass, Pattern, RegexSyntaxError, parse, parse_many
from .robust import (
    CompileLimits,
    CompileReport,
    ResilientCompiler,
    ScanLimits,
    compile_resilient,
    resilient_scan,
)

__version__ = "1.0.0"

__all__ = [
    "DFA",
    "HFA",
    "NFA",
    "XFA",
    "DfaExplosionError",
    "MatchEvent",
    "build_dfa",
    "build_hfa",
    "build_nfa",
    "build_xfa",
    "minimize_dfa",
    "MFA",
    "FilterAction",
    "FilterEngine",
    "FilterProgram",
    "FlowContext",
    "SplitterOptions",
    "build_mfa",
    "compile_dfa",
    "compile_mfa",
    "compile_nfa",
    "split_patterns",
    "verify_equivalence",
    "ArtifactCache",
    "FastPathMFA",
    "build_fastpath",
    "compile_mfa_cached",
    "CharClass",
    "Pattern",
    "RegexSyntaxError",
    "parse",
    "parse_many",
    "CompileLimits",
    "CompileReport",
    "ResilientCompiler",
    "ScanLimits",
    "compile_resilient",
    "resilient_scan",
    "__version__",
]
