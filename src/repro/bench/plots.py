"""Terminal rendering of the paper's figures.

The paper presents Figures 3–5 as bar/scatter/line charts; these helpers
render the measured data the same way in plain text (log-scale bars and
multi-series line plots), so ``results/`` holds something visually
comparable to the paper, not just tables.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["bar_chart", "line_chart"]


def _log_scale(value: float, lo: float, hi: float, width: int) -> int:
    """Map value into [0, width] on a log axis (clamped)."""
    if value <= 0:
        return 0
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    if log_hi <= log_lo:
        return width
    fraction = (math.log10(value) - log_lo) / (log_hi - log_lo)
    return max(0, min(width, round(fraction * width)))


def bar_chart(
    series: Mapping[str, Mapping[str, float | None]],
    width: int = 48,
    unit: str = "",
) -> list[str]:
    """Horizontal log-scale bars: one group per outer key, one bar per
    inner key.  ``None`` values render as a ``fail`` marker (the paper's
    B217p DFA bar is missing the same way)."""
    values = [
        v for group in series.values() for v in group.values() if v is not None and v > 0
    ]
    if not values:
        return ["(no data)"]
    lo = min(values)
    hi = max(values)
    lo = min(lo, hi / 10)  # keep at least a decade of axis
    lines: list[str] = []
    label_width = max(len(k) for group in series.values() for k in group)
    for group_name, group in series.items():
        lines.append(f"{group_name}")
        for name, value in group.items():
            if value is None:
                lines.append(f"  {name:<{label_width}} | (failed)")
                continue
            bar = "#" * _log_scale(value, lo, hi, width)
            lines.append(f"  {name:<{label_width}} |{bar} {value:.2f}{unit}")
        lines.append("")
    lines.append(f"(log scale, {lo:.2g}..{hi:.2g}{unit})")
    return lines


def line_chart(
    series: Mapping[str, Sequence[float | None]],
    x_labels: Sequence[str],
    height: int = 16,
    unit: str = "",
) -> list[str]:
    """Multi-series log-scale line plot with one column block per x label.

    Each series gets a letter marker; collisions show the later series.
    """
    values = [v for ys in series.values() for v in ys if v is not None and v > 0]
    if not values:
        return ["(no data)"]
    lo, hi = min(values), max(values)
    if lo == hi:
        hi = lo * 10
    markers = {}
    for index, name in enumerate(series):
        markers[name] = name[0].upper() if name else chr(ord("A") + index)

    column_width = max(8, max(len(label) for label in x_labels) + 2)
    grid = [[" "] * (len(x_labels) * column_width) for _ in range(height + 1)]
    for name, ys in series.items():
        marker = markers[name]
        for i, value in enumerate(ys):
            if value is None or value <= 0:
                continue
            row = height - _log_scale(value, lo, hi, height)
            col = i * column_width + column_width // 2
            grid[row][col] = marker

    lines = []
    for row_index, row in enumerate(grid):
        axis_value = hi / (10 ** ((math.log10(hi / lo)) * row_index / height))
        prefix = f"{axis_value:>9.0f} |" if row_index % 4 == 0 else f"{'':>9s} |"
        lines.append(prefix + "".join(row).rstrip())
    lines.append(f"{'':>9s} +" + "-" * (len(x_labels) * column_width))
    label_row = "".join(f"{label:^{column_width}}" for label in x_labels)
    lines.append(f"{'':>11s}{label_row}")
    legend = "  ".join(f"{marker}={name}" for name, marker in markers.items())
    lines.append(f"{'':>11s}{legend}   ({unit}, log scale)")
    return lines
