"""Figure-shaped experiment outputs: Figures 3, 4 and 5.

Each collector returns the figure's data points; the ``*_rows`` helpers
format them as aligned text tables (the closest faithful rendering of the
paper's plots in a terminal) and compute the figure's headline aggregates
(mean CpB per engine, degradation slopes, the MFA-vs-XFA speedup).
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import mean

from ..patterns import ruleset_names
from ..traffic import DIFFICULTIES, PROFILES
from .harness import (
    ENGINES,
    build_engine,
    measure_run_cpb,
    real_trace_flows,
    synthetic_payload,
)
from .plots import bar_chart, line_chart

__all__ = [
    "fig3_rows",
    "fig3_chart",
    "fig4_collect",
    "fig4_rows",
    "fig5_collect",
    "fig5_rows",
    "fig5_chart",
    "ThroughputPoint",
]


# -- Figure 3: construction times ---------------------------------------------


def fig3_rows() -> list[str]:
    """Construction seconds per (set, engine family), as the paper's bars."""
    lines = [
        f"{'Pattern':7s} {'NFA':>8s} {'DFA':>9s} {'HFA':>9s} {'MFA':>9s}",
        "-" * 46,
    ]
    for name in ruleset_names():
        cells = []
        for engine_name in ("nfa", "dfa", "hfa", "mfa"):
            result = build_engine(name, engine_name)
            if result.ok:
                cells.append(f"{result.seconds:.2f}")
            else:
                cells.append(f"fail@{result.seconds:.0f}s")
        lines.append(
            f"{name:7s} {cells[0]:>8s} {cells[1]:>9s} {cells[2]:>9s} {cells[3]:>9s}"
        )
    return lines


# -- Figure 4: real-life trace throughput --------------------------------------


@dataclass(frozen=True, slots=True)
class ThroughputPoint:
    """One (pattern set, trace, engine) measurement in cycles per byte."""

    set_name: str
    trace: str
    engine: str
    cpb: float | None  # None: engine could not be constructed


def fig4_collect(
    set_names: list[str] | None = None,
    engines: tuple[str, ...] = ENGINES,
) -> list[ThroughputPoint]:
    """Run every engine over every synthetic 'real-life' trace."""
    points: list[ThroughputPoint] = []
    for set_name in set_names or ruleset_names():
        for engine_name in engines:
            result = build_engine(set_name, engine_name)
            for profile in PROFILES:
                if not result.ok:
                    points.append(ThroughputPoint(set_name, profile.name, engine_name, None))
                    continue
                flows = real_trace_flows(set_name, profile.name)
                cpb = measure_run_cpb(result.engine, flows)
                points.append(ThroughputPoint(set_name, profile.name, engine_name, cpb))
    return points


def fig4_rows(points: list[ThroughputPoint]) -> list[str]:
    """Per-trace table plus the paper's headline aggregates."""
    traces = [p.name for p in PROFILES]
    lines = [
        f"{'Set':7s} {'Engine':6s} " + " ".join(f"{t:>8s}" for t in traces),
        "-" * (16 + 9 * len(traces)),
    ]
    by_key: dict[tuple[str, str], dict[str, float | None]] = {}
    for point in points:
        by_key.setdefault((point.set_name, point.engine), {})[point.trace] = point.cpb
    set_order = {n: i for i, n in enumerate(ruleset_names())}
    engine_order = {n: i for i, n in enumerate(ENGINES)}
    for (set_name, engine), cells in sorted(
        by_key.items(), key=lambda kv: (set_order[kv[0][0]], engine_order[kv[0][1]])
    ):
        row = " ".join(
            f"{cells.get(t):8.0f}" if cells.get(t) is not None else f"{'-':>8s}"
            for t in traces
        )
        lines.append(f"{set_name:7s} {engine:6s} {row}")

    lines.append("-" * (16 + 9 * len(traces)))
    for engine in ENGINES:
        values = [p.cpb for p in points if p.engine == engine and p.cpb is not None]
        if values:
            lines.append(f"mean {engine:4s}: {mean(values):8.0f} CpB over {len(values)} points")
    # The paper's headline: MFA vs XFA, excluding MFA's worst trace (C112).
    mfa = [p.cpb for p in points if p.engine == "mfa" and p.cpb is not None and p.trace != "C112"]
    xfa = [p.cpb for p in points if p.engine == "xfa" and p.cpb is not None and p.trace != "C112"]
    if mfa and xfa:
        speedup = (mean(xfa) - mean(mfa)) / mean(xfa) * 100
        lines.append(
            f"MFA vs XFA (excl. C112): {mean(mfa):.0f} vs {mean(xfa):.0f} CpB "
            f"-> {speedup:.0f}% faster (paper: 43%)"
        )
    return lines


# -- Figure 5: synthetic difficulty sweep ---------------------------------------


def fig5_collect(
    set_names: list[str] | None = None,
    engines: tuple[str, ...] = ENGINES,
) -> list[ThroughputPoint]:
    """Throughput at each Becchi difficulty, averaged over pattern sets."""
    points: list[ThroughputPoint] = []
    for set_name in set_names or ruleset_names():
        for p_match in DIFFICULTIES:
            payload = synthetic_payload(set_name, p_match)
            label = "rand" if p_match is None else f"{p_match:.2f}"
            for engine_name in engines:
                result = build_engine(set_name, engine_name)
                if not result.ok:
                    points.append(ThroughputPoint(set_name, label, engine_name, None))
                    continue
                cpb = measure_run_cpb(result.engine, (payload,))
                points.append(ThroughputPoint(set_name, label, engine_name, cpb))
    return points


def fig5_rows(points: list[ThroughputPoint]) -> list[str]:
    """Mean CpB per engine per difficulty — the paper's line plot."""
    labels = ["rand"] + [f"{d:.2f}" for d in DIFFICULTIES if d is not None]
    lines = [
        f"{'Engine':6s} " + " ".join(f"{label:>8s}" for label in labels),
        "-" * (8 + 9 * len(labels)),
    ]
    for engine in ENGINES:
        cells = []
        for label in labels:
            values = [
                p.cpb
                for p in points
                if p.engine == engine and p.trace == label and p.cpb is not None
            ]
            cells.append(f"{mean(values):8.0f}" if values else f"{'-':>8s}")
        lines.append(f"{engine:6s} " + " ".join(cells))
    # Degradation: CpB increase from easiest to hardest traffic.
    lines.append("-" * (8 + 9 * len(labels)))
    for engine in ENGINES:
        easy = [p.cpb for p in points if p.engine == engine and p.trace == "rand" and p.cpb]
        hard = [p.cpb for p in points if p.engine == engine and p.trace == "0.95" and p.cpb]
        if easy and hard:
            lines.append(
                f"{engine}: degradation rand -> 0.95 = {mean(hard) / mean(easy):.2f}x"
            )
    return lines


def fig3_chart() -> list[str]:
    """Construction times as the paper's log-scale bar groups."""
    series: dict[str, dict[str, float | None]] = {}
    for name in ruleset_names():
        group: dict[str, float | None] = {}
        for engine_name in ("nfa", "dfa", "hfa", "mfa"):
            result = build_engine(name, engine_name)
            group[engine_name] = result.seconds if result.ok else None
        series[name] = group
    return bar_chart(series, unit="s")


def fig5_chart(points: list[ThroughputPoint]) -> list[str]:
    """The difficulty sweep as the paper's line plot (mean CpB series)."""
    labels = ["rand"] + [f"{d:.2f}" for d in DIFFICULTIES if d is not None]
    series: dict[str, list[float | None]] = {}
    for engine in ENGINES:
        ys: list[float | None] = []
        for label in labels:
            values = [
                p.cpb
                for p in points
                if p.engine == engine and p.trace == label and p.cpb is not None
            ]
            ys.append(mean(values) if values else None)
        series[engine] = ys
    return line_chart(series, x_labels=labels, unit="CpB")
