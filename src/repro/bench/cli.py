"""``mfa-bench`` command line: run individual exhibits or the full report.

Examples::

    mfa-bench table5            # print Table V
    mfa-bench fig2              # memory image sizes
    mfa-bench fig3              # construction times
    mfa-bench fig4              # real-trace throughput
    mfa-bench fig5              # synthetic difficulty sweep
    mfa-bench explosion         # the state-explosion law sweep
    mfa-bench report            # regenerate EXPERIMENTS.md (everything)
    mfa-bench compile C7p       # compile one set, print its stats
    mfa-bench compile S31p --shards 4 --jobs 4  # + sharded compiler timing
    mfa-bench scan S24 cap.pcap # compile a set and scan a capture
    mfa-bench rcompile B217p    # resilient compile: fallback chain + report
    mfa-bench rscan S24 cap.pcap  # tolerant scan: skip corrupt, isolate flows
    mfa-bench scan S24 cap.pcap --engine fastpath   # lockstep batch scan
    mfa-bench rscan S24 cap.pcap --engine fastpath  # tolerant + batched
    mfa-bench serve S24 cap.pcap --workers 4        # long-lived scan daemon
    mfa-bench serve S24 cap.pcap --socket /run/mfa.sock --report report.json
    mfa-bench lint C7p          # static verifier over one rule set
    mfa-bench lint out.mfab     # ... or over a serialized bundle
    mfa-bench lint --all --json # every shipped set, machine-readable
    mfa-bench lint C7p --fail-on warning  # gate on warnings too
    mfa-bench audit B217p       # worst-case cost audit + witness replay
    mfa-bench audit B217p --json --out witnesses.json  # CI witness corpus
    mfa-bench audit out.mfab --no-replay  # static bounds only, no timing
    mfa-bench verify S24        # runtime oracle: MFA stream vs reference
    mfa-bench prove S24         # equivalence proof, one per pattern
    mfa-bench prove --all --jobs 4        # every set, proofs in parallel
    mfa-bench prove out.mfab --patterns C8  # prove a serialized artifact
    mfa-bench rules R32         # cross-rule analysis: duplicates, subsumption
    mfa-bench rules --all --json  # every set, machine-readable RS findings
    mfa-bench rules R32 --prune   # drop redundant rules, prove equivalence
    mfa-bench rules R32 --plan --shards 4  # contiguous vs interaction plan

``lint`` exits non-zero when any error-severity finding survives
(``--fail-on warning`` tightens the gate to warnings as well);
``audit`` synthesizes adversarial worst-case witness traces (longest
default-transition chains, prefilter-evading streams, hot-cache
thrashers, filter bit-churn maximizers), replays each through the real
scalar and fastpath engines, and exits non-zero on any error-severity
``AV`` finding — a crashed audit or a witness whose replay diverged
from the reference match stream;
``verify`` exits non-zero on any stream divergence from the oracle;
``prove`` exits non-zero on any error-severity ``EQ`` finding — a
replay-confirmed divergence with its shortest distinguishing input, or a
proof that could not run at all.  A budget-bounded proof (``EQ110``,
``--budget``) is a warning, not a failure;
``rules`` runs the cross-rule interaction analyzer (duplicate /
subsumption / shadowing proofs with replay-confirmed witnesses, RS1xx)
and honours the same ``--fail-on`` gate as ``lint``; ``--prune`` also
exits non-zero when the pruned set fails the equivalence prover or
diverges from the unpruned stream on any tracked trace.

Compiled MFAs are cached on disk between runs of the resilient commands
(``~/.cache/repro-mfa``, override with ``REPRO_CACHE_DIR``); set
``REPRO_COMPILE_CACHE=0`` to disable.
"""

from __future__ import annotations

import argparse

from .figures import fig3_rows, fig4_collect, fig4_rows, fig5_collect, fig5_rows
from .harness import all_set_names, build_engine, write_table
from .report import generate_all
from .tables import fig2_rows, table5_rows


def _cmd_compile(set_name: str, shards: int = 1, jobs: int = 1, compress: int = 0) -> None:
    from ..core.explain import explain_lines

    for engine_name in ("nfa", "dfa", "hfa", "xfa", "mfa"):
        result = build_engine(set_name, engine_name)
        if result.ok:
            states = getattr(result.engine, "n_states", "?")
            print(f"{engine_name}: {states} states in {result.seconds:.2f}s")
        else:
            print(f"{engine_name}: failed ({result.error}) after {result.seconds:.2f}s")
    if shards > 1 or jobs > 1:
        _print_sharded_compile(set_name, shards, jobs)
    if compress:
        _print_compressed_compile(set_name, compress)
    mfa = build_engine(set_name, "mfa")
    if mfa.ok:
        print()
        for line in explain_lines(mfa.engine):  # type: ignore[arg-type]
            print(line)


def _print_compressed_compile(set_name: str, depth: int) -> None:
    """Compile with the D2FA artifact tier and print the compression stats."""
    from ..core import compile_mfa, dumps_mfa
    from .harness import STATE_BUDGET, patterns_for

    patterns = patterns_for(set_name)
    mfa = compile_mfa(patterns, state_budget=STATE_BUDGET, compress=depth)
    compressed_blob = dumps_mfa(mfa)
    forest = mfa.compressed
    mfa.compressed = None
    dense_blob = dumps_mfa(mfa)
    mfa.compressed = forest
    ratio = len(dense_blob) / max(1, len(compressed_blob))
    n_roots = getattr(forest, "n_roots", 0)
    print(
        f"mfa compressed (depth<={depth}): {mfa.dfa.n_states} states, "
        f"{n_roots} dense roots; bundle {len(dense_blob)} -> "
        f"{len(compressed_blob)} bytes ({ratio:.1f}x)"
    )


def _print_sharded_compile(set_name: str, shards: int, jobs: int) -> None:
    """Time the sharded parallel compiler and print its phase breakdown."""
    import time

    from ..core import compile_mfa
    from ..patterns import ruleset
    from .harness import STATE_BUDGET

    phases: dict[str, float] = {}
    start = time.perf_counter()
    engine = compile_mfa(
        list(ruleset(set_name).rules),
        state_budget=STATE_BUDGET,
        shards=shards,
        jobs=jobs,
        phases=phases,
    )
    seconds = time.perf_counter() - start
    n_shards = getattr(engine, "n_shards", 1)
    print(
        f"mfa sharded (shards={n_shards}, jobs={jobs}): "
        f"{engine.n_states} states in {seconds:.2f}s"
    )
    for name in ("parse", "split", "determinize", "minimize", "filter-gen"):
        if name in phases:
            print(f"  {name}: {phases[name]:.2f}s")


def _cmd_rcompile(set_name: str) -> int:
    from .harness import build_resilient, write_table

    result = build_resilient(set_name)
    lines = [f"resilient compile of {set_name}"] + result.report.describe()
    write_table(f"rcompile_{set_name}.txt", lines)
    return 0 if result.ok else 1


def _cmd_rscan(
    set_name: str,
    pcap_path: str,
    engine_choice: str = "mfa",
    prefilter: str = "auto",
) -> int:
    from collections import Counter

    from ..robust import resilient_scan, scan_limits_from_env
    from ..traffic.pcap import PcapError
    from .harness import build_resilient

    result = build_resilient(set_name)
    print(f"engine: {result.engine_name}")
    for line in result.report.describe():
        print(f"  {line}")
    if not result.ok:
        return 1
    engine = result.engine
    batch_size = None
    if engine_choice == "fastpath":
        from ..core.mfa import MFA
        from ..fastpath import build_fastpath

        if isinstance(engine, MFA):
            engine = build_fastpath(engine, prefilter=prefilter)
            batch_size = engine.batch_hint
        else:
            # The fallback chain shipped a non-MFA engine; the lockstep
            # wrapper only accelerates MFAs, so scan scalar and say so.
            print(f"fastpath unavailable for {result.engine_name}; scanning scalar")
    try:
        alerts, report = resilient_scan(
            engine, pcap_path, limits=scan_limits_from_env(), batch_size=batch_size
        )
    except (OSError, PcapError) as exc:
        # Tolerance covers records, not the preamble: a file that is not
        # a capture at all (or cannot be opened) is an operator error.
        print(f"cannot scan {pcap_path}: {exc}")
        return 1
    for line in report.describe():
        print(line)
    by_rule = Counter(alert.event.match_id for alert in alerts)
    for match_id, count in by_rule.most_common(10):
        print(f"  rule {{{{{match_id}}}}}: {count} hits")
    return 0


def _cmd_serve(
    set_name: str,
    pcap_path: str | None,
    workers: int,
    engine_choice: str,
    shards: int,
    report_path: str | None,
    socket_path: str | None,
    oneshot: bool,
    prefilter: str = "auto",
    compress: int = 0,
) -> int:
    """Run the long-lived scan daemon over a shipped rule set.

    Scans ``pcap_path`` (if given) through the worker pool, then keeps
    serving until SIGTERM/SIGINT or a control-socket ``shutdown`` —
    either way the final :class:`~repro.serve.ServeReport` is dumped as
    JSON to ``--report`` (or stdout).  ``--oneshot`` exits right after
    the capture drains, which is what the benchmark driver uses.
    """
    import json
    import os
    import signal
    import threading

    from ..fastpath import ArtifactCache
    from ..patterns import ruleset
    from ..serve import ControlServer, ScanDaemon, ServeConfig, serve_scan
    from .harness import STATE_BUDGET

    cache = None
    cache_dir = os.environ.get("REPRO_CACHE_DIR")
    if cache_dir and os.environ.get("REPRO_COMPILE_CACHE", "1") != "0":
        cache = ArtifactCache(os.path.join(cache_dir, "serve"))

    config = ServeConfig(
        workers=workers, engine=engine_choice, prefilter=prefilter, compress=compress
    )
    daemon = ScanDaemon(
        list(ruleset(set_name).rules),
        shards=shards,
        cache=cache,
        config=config,
        state_budget=STATE_BUDGET,
    ).start()
    server = None
    stop_requested = threading.Event()

    def _on_signal(_signum, _frame):
        stop_requested.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)
    try:
        if socket_path:
            server = ControlServer(daemon, socket_path).start()
            print(f"control socket: {socket_path}")
        status = daemon.status()
        print(
            f"serving {set_name}: {status.n_workers} worker(s), "
            f"generation {status.generation}"
        )
        if pcap_path:
            _alerts, report = serve_scan(daemon, pcap_path)
            print(
                f"scanned {pcap_path}: {report.n_flows} flows, "
                f"{report.n_alerts} alerts"
            )
        if not oneshot:
            while not stop_requested.is_set():
                if server is not None and server.shutdown_requested.is_set():
                    break
                stop_requested.wait(0.2)
        report = daemon.status()
    finally:
        if server is not None:
            server.stop()
        daemon.stop()
    doc = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    if report_path:
        with open(report_path, "w") as handle:
            handle.write(doc + "\n")
        print(f"report: {report_path}")
    else:
        print(doc)
    return 1 if report.degraded else 0


def _build_compressed_scan_engine(
    set_name: str, engine_choice: str, depth: int, prefilter: str = "auto"
):
    """Compile with ``compress=depth`` and reload from the serialized bundle."""
    import time

    from ..core import compile_mfa, dumps_mfa, loads_mfa
    from .harness import STATE_BUDGET, BuildResult, patterns_for

    start = time.perf_counter()
    try:
        compiled = compile_mfa(
            patterns_for(set_name), state_budget=STATE_BUDGET, compress=depth
        )
        blob = dumps_mfa(compiled)
        engine: object = loads_mfa(blob)
    except Exception as exc:  # noqa: BLE001 - CLI reports, doesn't trace back
        return BuildResult(
            set_name,
            engine_choice,
            None,
            time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    kind = type(engine.dfa).__name__  # type: ignore[attr-defined]
    print(
        f"compressed artifact: {len(blob)} bytes (depth<={depth}), "
        f"decoded as {kind}"
    )
    if engine_choice == "fastpath":
        from ..fastpath import build_fastpath

        engine = build_fastpath(engine, prefilter=prefilter)  # type: ignore[arg-type]
    return BuildResult(set_name, engine_choice, engine, time.perf_counter() - start)


def _cmd_scan(
    set_name: str,
    pcap_path: str,
    engine_choice: str = "mfa",
    prefilter: str = "auto",
    compress: int = 0,
) -> int:
    from collections import Counter

    from ..traffic.flows import dispatch_flows
    from ..traffic.pcap import read_pcap

    if compress:
        # Round-trip through the serialized compressed artifact so the scan
        # exercises the same decode path a deployed data plane would use
        # (flatten or chain-walk, per REPRO_DECODE/REPRO_DECODE_BUDGET).
        built = _build_compressed_scan_engine(set_name, engine_choice, compress, prefilter)
    else:
        built = build_engine(set_name, engine_choice)
    if not built.ok:
        print(f"cannot compile {set_name}: {built.error}")
        return 1
    with open(pcap_path, "rb") as stream:
        packets = list(read_pcap(stream))
    print(f"{len(packets)} packets decoded from {pcap_path}")
    if engine_choice == "fastpath":
        from ..traffic.flows import FlowAssembler, FlowMatch

        engine = built.engine
        if prefilter != getattr(engine, "prefilter_mode", prefilter):
            # build_engine caches one wrapper per set; re-wrap the shared
            # MFA under the requested mode (tables rebuild, artifact doesn't).
            from ..fastpath import build_fastpath

            engine = build_fastpath(engine.mfa, prefilter=prefilter)
        state = "active" if getattr(engine, "prefilter_active", False) else "inactive"
        print(f"prefilter: {prefilter} ({state})")
        assembler = FlowAssembler()
        assembler.add_all(packets)
        flows = [flow for flow in assembler.flows() if flow.payload]
        alerts = []
        step = getattr(engine, "batch_hint", 64)
        for start in range(0, len(flows), step):
            chunk = flows[start : start + step]
            batch_events = engine.run_batch([flow.payload for flow in chunk])
            for flow, events in zip(chunk, batch_events):
                alerts.extend(FlowMatch(flow.key, event) for event in events)
    else:
        alerts = list(dispatch_flows(built.engine, packets))
    by_rule = Counter(alert.event.match_id for alert in alerts)
    print(f"{len(alerts)} alerts across {len({a.key for a in alerts})} flows")
    for match_id, count in by_rule.most_common(10):
        print(f"  rule {{{{{match_id}}}}}: {count} hits")
    return 0


def _lint_one_set(set_name: str):
    """Static-analysis report of one shipped rule set: triage + cross-rule
    analysis + engine audit."""
    from ..analyze import AnalysisReport, analyze_ruleset, triage_patterns
    from ..analyze.report import ERROR
    from .harness import STATE_BUDGET, patterns_for

    report = AnalysisReport()
    patterns = patterns_for(set_name)
    triage = triage_patterns(patterns, state_budget=STATE_BUDGET)
    report.extend(triage.report)
    # Cross-rule pass: duplicate/subsumed/shadowed rules surface as RS
    # findings in the default lint sweep, witnesses replay-confirmed.
    analyze_ruleset(patterns, report=report)
    from ..core import compile_mfa

    try:
        mfa = compile_mfa(patterns, state_budget=STATE_BUDGET)
    except Exception as exc:  # noqa: BLE001 - an uncompilable set is a finding
        report.add(
            "EX130",
            ERROR,
            "ruleset",
            f"MFA does not compile under budget {STATE_BUDGET}: "
            f"{type(exc).__name__}: {exc}",
        )
        return report
    from ..analyze import analyze_mfa

    analyze_mfa(mfa, report)
    return report


def _report_fails(report, fail_on: str) -> bool:
    """Gate decision for one report under the ``--fail-on`` threshold."""
    if report.has_errors:
        return True
    return fail_on == "warning" and bool(report.warnings)


def _cmd_lint(
    target: str | None, lint_all: bool, json_out: bool, fail_on: str = "error"
) -> int:
    """Run the static verifier over rule sets and/or bundle files."""
    import json
    from pathlib import Path

    from ..analyze import analyze_bundle

    if lint_all:
        targets = list(all_set_names())
    elif target is None:
        print("lint needs a rule-set name, a bundle path, or --all")
        return 2
    else:
        targets = [target]

    reports = {}
    for name in targets:
        if name in all_set_names():
            reports[name] = _lint_one_set(name)
        elif Path(name).exists():
            reports[name] = analyze_bundle(name)
        else:
            print(f"unknown target {name!r}: not a rule set {all_set_names()} "
                  f"and not a file")
            return 2

    failed = False
    if json_out:
        print(json.dumps({name: r.to_dict() for name, r in reports.items()},
                         indent=2, sort_keys=True))
        failed = any(_report_fails(r, fail_on) for r in reports.values())
    else:
        for name, report in reports.items():
            counts = report.counts()
            print(f"{name}: {counts['error']} error(s), {counts['warning']} "
                  f"warning(s), {counts['info']} info")
            for line in report.describe():
                print(f"  {line}")
            if _report_fails(report, fail_on):
                failed = True
    return 1 if failed else 0


def _prune_and_verify(set_name: str, patterns, result) -> dict:
    """Prune RS101/RS102 losers and prove the pruned compile equivalent.

    Two independent checks back the prune: the EQ prover over the pruned
    engine against the kept patterns, and an event-level stream diff on
    every tracked trace — each unpruned event must map (dropped id ->
    surviving keeper id) onto the pruned stream exactly.
    """
    from ..analyze import analyze_engine_equivalence
    from ..analyze.ruleset import map_stream, prune_patterns
    from ..core import compile_mfa
    from .harness import PROFILES, STATE_BUDGET, real_trace_flows

    kept, alias = prune_patterns(patterns, result)
    doc: dict = {
        "rules_in": len(patterns),
        "rules_kept": len(kept),
        "alias": {str(k): v for k, v in sorted(alias.items())},
    }
    if not alias:
        doc.update({"ok": True, "note": "nothing to prune"})
        return doc
    unpruned = compile_mfa(list(patterns), state_budget=STATE_BUDGET)
    pruned = compile_mfa(kept, state_budget=STATE_BUDGET)
    proof = analyze_engine_equivalence(pruned, kept)
    doc["proof"] = proof.to_dict()
    diffs = 0
    flows = 0
    for profile in PROFILES:
        for payload in real_trace_flows(set_name, profile.name):
            flows += 1
            expected = map_stream(unpruned.run(payload), alias)
            got = {(e.pos, e.match_id) for e in pruned.run(payload)}
            if expected != got:
                diffs += 1
    doc["traces"] = {"flows": flows, "stream_diffs": diffs}
    doc["ok"] = not proof.has_errors and diffs == 0
    return doc


def _cmd_rules(
    target: str | None,
    rules_all: bool,
    json_out: bool,
    prune: bool,
    plan: bool,
    shards: int,
    fail_on: str = "error",
) -> int:
    """Cross-rule interaction analysis over shipped rule sets."""
    import json

    from ..analyze import analyze_ruleset
    from ..analyze.ruleset import contiguous_plan, plan_shards
    from .harness import patterns_for

    if rules_all:
        targets = list(all_set_names())
    elif target is None:
        print("rules needs a rule-set name or --all")
        return 2
    elif target not in all_set_names():
        print(f"unknown rule set {target!r}; have {all_set_names()}")
        return 2
    else:
        targets = [target]

    failed = False
    docs: dict[str, dict] = {}
    for name in targets:
        patterns = list(patterns_for(name))
        result = analyze_ruleset(patterns)
        doc = result.to_dict()
        if plan:
            contig = contiguous_plan(patterns, shards)
            inter = plan_shards(patterns, shards)
            doc["plans"] = {
                "shards": shards,
                "contiguous": contig.to_dict(),
                "interaction": inter.to_dict(),
            }
        if prune:
            doc["prune"] = _prune_and_verify(name, patterns, result)
            if not doc["prune"]["ok"]:
                failed = True
        docs[name] = doc
        if _report_fails(result.report, fail_on):
            failed = True
        if json_out:
            continue
        print(f"== {name} ==")
        for line in result.report.describe():
            print(f"  {line}")
        if plan:
            contig_peak = doc["plans"]["contiguous"]["peak"]
            inter_peak = doc["plans"]["interaction"]["peak"]
            print(
                f"  shard plan ({shards} shards): contiguous predicted peak "
                f"{contig_peak}, interaction predicted peak {inter_peak}"
            )
        if prune:
            p = doc["prune"]
            verdict = "ok" if p["ok"] else "FAILED"
            print(
                f"  prune: {p['rules_in']} -> {p['rules_kept']} rule(s), "
                f"{verdict}"
                + (
                    f" ({p['traces']['flows']} trace flow(s), "
                    f"{p['traces']['stream_diffs']} stream diff(s))"
                    if "traces" in p
                    else ""
                )
            )
    if json_out:
        print(json.dumps(docs, indent=2, sort_keys=True))
    return 1 if failed else 0


def _audit_one_set(set_name: str, depth: int, replay: bool):
    """Adversarial worst-case audit of one shipped rule set.

    Compiles with the D²FA artifact tier by default so every witness
    class the analyzer knows about (chain-depth, cache-thrash,
    prefilter-evasion, filter-churn) has a channel to target; a dense
    compile would leave the chain-walk classes with nothing to audit.
    """
    from ..analyze import AnalysisReport, analyze_adversary
    from ..analyze.report import ERROR
    from ..core import compile_mfa
    from .harness import STATE_BUDGET, patterns_for

    try:
        mfa = compile_mfa(
            patterns_for(set_name), state_budget=STATE_BUDGET, compress=depth
        )
    except Exception as exc:  # noqa: BLE001 - an uncompilable set is a finding
        report = AnalysisReport()
        report.add(
            "AV100",
            ERROR,
            "adversary",
            f"cannot compile {set_name} under budget {STATE_BUDGET}: "
            f"{type(exc).__name__}: {exc}",
        )
        from ..analyze.adversary import AdversaryResult

        return AdversaryResult(report, [], [])
    return analyze_adversary(mfa, replay=replay)


def _cmd_audit(
    target: str | None,
    audit_all: bool,
    json_out: bool,
    out_path: str | None,
    depth: int,
    replay: bool,
) -> int:
    """Worst-case cost audit over rule sets and/or bundle files."""
    import json
    from pathlib import Path

    from ..analyze import analyze_engine_adversary
    from ..core import loads_mfa

    if audit_all:
        targets = list(all_set_names())
    elif target is None:
        print("audit needs a rule-set name, a bundle path, or --all")
        return 2
    else:
        targets = [target]

    results = {}
    for name in targets:
        if name in all_set_names():
            results[name] = _audit_one_set(name, depth, replay)
        elif Path(name).exists():
            engine = loads_mfa(Path(name).read_bytes())
            results[name] = analyze_engine_adversary(engine, replay=replay)
        else:
            print(f"unknown target {name!r}: not a rule set {all_set_names()} "
                  f"and not a file")
            return 2

    doc = {name: result.to_dict() for name, result in results.items()}
    if out_path:
        # The witness corpus artifact CI uploads: payloads in hex with
        # their predicted bounds and (when replayed) measured slowdowns.
        with open(out_path, "w") as handle:
            handle.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        print(f"witness corpus: {out_path}")
    if json_out:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        for name, result in results.items():
            counts = result.report.counts()
            print(f"{name}: {counts['error']} error(s), {counts['warning']} "
                  f"warning(s), {counts['info']} info")
            for line in result.describe().splitlines():
                print(f"  {line}")
    return 1 if any(r.report.has_errors for r in results.values()) else 0


def _prove_one_set(set_name: str, budget: int, jobs: int):
    """Per-pattern equivalence proofs of one shipped rule set.

    Each pattern is compiled alone and proven against its own reference
    automaton — the per-pattern shape the paper's theorem is stated over,
    and the one that stays feasible even when the whole set's
    un-decomposed automaton explodes (B217p).
    """
    from ..analyze import prove_patterns
    from .harness import STATE_BUDGET, patterns_for

    return prove_patterns(
        patterns_for(set_name),
        state_budget=budget,
        dfa_budget=STATE_BUDGET,
        jobs=jobs,
    )


def _prove_bundle(path: str, patterns_set: str | None, budget: int):
    """Whole-artifact equivalence proof of a serialized bundle.

    Bundles carry no original patterns, so the rule set they were
    compiled from must be named with ``--patterns``.
    """
    from pathlib import Path

    from ..analyze import AnalysisReport, analyze_engine_equivalence
    from ..analyze.report import ERROR
    from ..core import loads_mfa
    from .harness import patterns_for

    report = AnalysisReport()
    if patterns_set is None:
        report.add(
            "EQ100",
            ERROR,
            "equivalence",
            "a bundle carries no original patterns; pass --patterns <set> "
            "naming the rule set it was compiled from",
            path,
        )
        return report
    try:
        engine = loads_mfa(Path(path).read_bytes())
    except Exception as exc:  # noqa: BLE001 - an unloadable artifact is a finding
        report.add(
            "EQ100",
            ERROR,
            "equivalence",
            f"cannot load bundle: {type(exc).__name__}: {exc}",
            path,
        )
        return report
    return analyze_engine_equivalence(
        engine, patterns_for(patterns_set), report, state_budget=budget
    )


def _cmd_prove(
    target: str | None,
    prove_all: bool,
    json_out: bool,
    budget: int,
    jobs: int,
    patterns_set: str | None,
) -> int:
    """Prove rule sets pattern-by-pattern and/or bundle files whole."""
    import json
    from pathlib import Path

    if prove_all:
        targets = list(all_set_names())
    elif target is None:
        print("prove needs a rule-set name, a bundle path, or --all")
        return 2
    else:
        targets = [target]
    if patterns_set is not None and patterns_set not in all_set_names():
        print(f"unknown --patterns set {patterns_set!r}; have {all_set_names()}")
        return 2

    reports = {}
    for name in targets:
        if name in all_set_names():
            reports[name] = _prove_one_set(name, budget, jobs)
        elif Path(name).exists():
            reports[name] = _prove_bundle(name, patterns_set, budget)
        else:
            print(f"unknown target {name!r}: not a rule set {all_set_names()} "
                  f"and not a file")
            return 2

    failed = False
    if json_out:
        print(json.dumps({name: r.to_dict() for name, r in reports.items()},
                         indent=2, sort_keys=True))
        failed = any(r.has_errors for r in reports.values())
    else:
        for name, report in reports.items():
            counts = report.counts()
            bounded = sum(1 for f in report if f.code == "EQ110")
            verdict = "FAILED" if report.has_errors else (
                f"bounded ({bounded} proof(s) hit the budget)" if bounded
                else "proved"
            )
            print(f"{name}: {verdict} — {counts['error']} error(s), "
                  f"{counts['warning']} warning(s), {counts['info']} info")
            for finding in report.errors + report.warnings:
                print(f"  {finding.describe()}")
            if report.has_errors:
                failed = True
    return 1 if failed else 0


def _cmd_verify(set_name: str) -> int:
    """Runtime oracle: the compiled MFA's stream must equal the reference."""
    from ..core import compile_mfa, verify_equivalence
    from .harness import STATE_BUDGET, patterns_for, synthetic_payload

    patterns = patterns_for(set_name)
    try:
        mfa = compile_mfa(patterns, state_budget=STATE_BUDGET)
    except Exception as exc:  # noqa: BLE001 - report, don't trace back
        print(f"cannot compile {set_name}: {type(exc).__name__}: {exc}")
        return 1
    failed = False
    for p_match in (0.35, 0.55, 0.75, 0.95):
        payload = synthetic_payload(set_name, p_match)
        outcome = verify_equivalence(patterns, payload, mfa)
        status = "ok" if outcome.equal else (
            f"DIVERGED ({len(outcome.missing)} missing, "
            f"{len(outcome.spurious)} spurious)"
        )
        print(f"p_match={p_match}: {len(payload)} bytes vs "
              f"{outcome.reference_engine}: {status}")
        failed = failed or not outcome.equal
    return 1 if failed else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="mfa-bench", description=__doc__)
    parser.add_argument(
        "command",
        choices=[
            "table5", "fig2", "fig3", "fig4", "fig5",
            "explosion", "report", "compile", "scan",
            "rcompile", "rscan", "lint", "audit", "verify", "prove", "serve",
            "rules",
        ],
    )
    parser.add_argument(
        "set_name",
        nargs="?",
        help="pattern set for 'compile'/'scan'/'verify'/'rules', or a set "
        "name / bundle path for 'lint'/'audit'/'prove'",
    )
    parser.add_argument("pcap", nargs="?", help="capture file for 'scan'")
    parser.add_argument(
        "--all",
        action="store_true",
        help="for 'lint'/'audit'/'prove'/'rules': run over every shipped "
        "rule set",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="for 'lint'/'audit'/'prove'/'rules': machine-readable findings "
        "(stable ordering)",
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning"),
        default="error",
        help="for 'lint'/'rules': exit non-zero on findings at or above "
        "this severity (default: error)",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help="for 'rules': drop RS101/RS102 rules, prove the pruned set "
        "equivalent (EQ prover + mapped stream diff on tracked traces)",
    )
    parser.add_argument(
        "--plan",
        action="store_true",
        help="for 'rules': print the contiguous vs interaction-aware shard "
        "plans with their predicted per-shard state peaks (--shards)",
    )
    parser.add_argument(
        "--no-replay",
        action="store_true",
        help="for 'audit': skip replaying witnesses through the real "
        "engines — static cost bounds only (fast, no timing noise)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="for 'audit': write the witness corpus (payload hex + "
        "predicted/measured cost ratios) as JSON to this path",
    )
    parser.add_argument(
        "--engine",
        choices=("mfa", "fastpath"),
        default="mfa",
        help="scan engine for 'scan'/'rscan': scalar MFA or the lockstep "
        "batch fastpath (numpy; falls back to scalar without it)",
    )
    parser.add_argument(
        "--prefilter",
        choices=("on", "off", "auto"),
        default="auto",
        help="for 'scan'/'rscan'/'serve' with the fastpath engine: "
        "required-literal prefilter mode (auto enables it whenever the "
        "compiled plan exists; recorded in the scan/serve report)",
    )
    from ..automata.compress import DEFAULT_CHAIN_DEPTH

    parser.add_argument(
        "--compress",
        nargs="?",
        const=DEFAULT_CHAIN_DEPTH,
        type=int,
        default=0,
        metavar="DEPTH",
        help="for 'compile'/'scan'/'serve': emit/load default-transition "
        "compressed (D2FA) artifacts with this chain-depth bound "
        f"(bare flag = depth {DEFAULT_CHAIN_DEPTH}); 'scan' round-trips "
        "through the serialized bundle, 'serve' ships compressed "
        "shared-memory segments that workers decode per-process",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=1,
        help="for 'compile': also time the sharded parallel compiler "
        "(rule set split into N shards); for 'serve': shard count of the "
        "daemon's engine (per-shard reload caching); for 'rules --plan': "
        "shard count the plans are computed for (default 4)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="for 'serve': supervised scan worker processes",
    )
    parser.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help="for 'serve': write the final ServeReport JSON here "
        "(default: stdout)",
    )
    parser.add_argument(
        "--socket",
        metavar="PATH",
        default=None,
        help="for 'serve': expose the control socket (ping/status/reload/"
        "shutdown as JSON lines) at this unix path",
    )
    parser.add_argument(
        "--oneshot",
        action="store_true",
        help="for 'serve': exit after the capture drains instead of "
        "serving until SIGTERM",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="for 'compile': worker processes for the sharded compiler; "
        "for 'prove': parallel per-pattern proofs",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="for 'prove': product-automaton state budget before the proof "
        "degrades to bounded-depth checking (EQ110)",
    )
    parser.add_argument(
        "--patterns",
        metavar="SET",
        default=None,
        help="for 'prove' on a bundle: the rule set the bundle was "
        "compiled from (bundles carry no original patterns)",
    )
    args = parser.parse_args(argv)

    if args.command == "table5":
        write_table("table5.txt", table5_rows())
    elif args.command == "fig2":
        write_table("fig2_memory.txt", fig2_rows())
    elif args.command == "fig3":
        write_table("fig3_construction.txt", fig3_rows())
    elif args.command == "fig4":
        write_table("fig4_throughput.txt", fig4_rows(fig4_collect()))
    elif args.command == "fig5":
        write_table("fig5_synthetic.txt", fig5_rows(fig5_collect()))
    elif args.command == "explosion":
        from .sweep import explosion_rows, explosion_sweep

        write_table("explosion_law.txt", explosion_rows(explosion_sweep()))
    elif args.command == "report":
        generate_all()
    elif args.command == "lint":
        return _cmd_lint(args.set_name, args.all, args.json, args.fail_on)
    elif args.command == "rules":
        return _cmd_rules(
            args.set_name,
            args.all,
            args.json,
            args.prune,
            args.plan,
            args.shards if args.shards > 1 else 4,
            args.fail_on,
        )
    elif args.command == "audit":
        return _cmd_audit(
            args.set_name,
            args.all,
            args.json,
            args.out,
            args.compress or DEFAULT_CHAIN_DEPTH,
            not args.no_replay,
        )
    elif args.command == "prove":
        from ..analyze import DEFAULT_PRODUCT_BUDGET

        return _cmd_prove(
            args.set_name,
            args.all,
            args.json,
            args.budget if args.budget is not None else DEFAULT_PRODUCT_BUDGET,
            args.jobs,
            args.patterns,
        )
    elif args.command == "verify":
        if not args.set_name:
            parser.error("verify needs a pattern set name")
        if args.set_name not in all_set_names():
            parser.error(f"unknown set {args.set_name!r}; have {all_set_names()}")
        return _cmd_verify(args.set_name)
    elif args.command == "serve":
        if not args.set_name:
            parser.error("serve needs a pattern set name")
        if args.set_name not in all_set_names():
            parser.error(f"unknown set {args.set_name!r}; have {all_set_names()}")
        return _cmd_serve(
            args.set_name,
            args.pcap,
            args.workers,
            args.engine,
            args.shards,
            args.report,
            args.socket,
            args.oneshot,
            args.prefilter,
            args.compress,
        )
    elif args.command in ("compile", "scan", "rcompile", "rscan"):
        if not args.set_name:
            parser.error(f"{args.command} needs a pattern set name")
        if args.set_name not in all_set_names():
            parser.error(f"unknown set {args.set_name!r}; have {all_set_names()}")
        if args.command == "compile":
            _cmd_compile(
                args.set_name, shards=args.shards, jobs=args.jobs,
                compress=args.compress,
            )
        elif args.command == "rcompile":
            return _cmd_rcompile(args.set_name)
        else:
            if not args.pcap:
                parser.error(f"{args.command} needs a pcap file")
            if args.command == "scan":
                return _cmd_scan(
                    args.set_name, args.pcap, args.engine, args.prefilter,
                    args.compress,
                )
            return _cmd_rscan(args.set_name, args.pcap, args.engine, args.prefilter)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
