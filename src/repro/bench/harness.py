"""Shared benchmark harness: cached engine builds, traces and measurements.

Every experiment file under ``benchmarks/`` goes through this module so
that each (pattern set, engine) pair is constructed exactly once per
session — DFA subset construction for the explosive sets is the dominant
cost and several figures need the same automata.  Construction wall time
is recorded at build, so the Fig. 3 table reports real measurements even
when another figure triggered the build.

Tunables (environment):

* ``REPRO_TRACE_SCALE`` — multiplier on trace sizes (default 0.125; the
  paper's GB-scale corpora are scaled to what interpreted engines can
  chew, see DESIGN.md §5.2);
* ``REPRO_STATE_BUDGET`` — DFA subset-construction budget (default
  150,000 states; B217p is expected to exceed it, reproducing the paper's
  "could not be constructed");
* ``REPRO_GHZ`` — clock used to express ns/byte as cycles-per-byte.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from functools import lru_cache
from pathlib import Path
from typing import Callable, Sequence

from ..automata import (
    DfaExplosionError,
    build_dfa,
    build_hfa,
    build_nfa,
    build_xfa,
)
from ..core import build_mfa
from ..patterns import ruleset, ruleset_names
from ..regex import parse_many
from ..regex.ast import Pattern
from ..traffic import PROFILES, FlowAssembler, build_corpus, generate_payload, read_pcap
from ..utils.timing import cycles_per_byte

__all__ = [
    "ENGINES",
    "BuildResult",
    "TRACE_SCALE",
    "STATE_BUDGET",
    "COMPILE_SHARDS",
    "COMPILE_JOBS",
    "results_dir",
    "patterns_for",
    "build_engine",
    "build_resilient",
    "real_trace_flows",
    "synthetic_payload",
    "measure_run_cpb",
    "write_table",
]

ENGINES: tuple[str, ...] = ("nfa", "dfa", "hfa", "xfa", "mfa")

TRACE_SCALE = float(os.environ.get("REPRO_TRACE_SCALE", "0.125"))
STATE_BUDGET = int(os.environ.get("REPRO_STATE_BUDGET", "150000"))
DFA_TIME_BUDGET = float(os.environ.get("REPRO_DFA_TIME_BUDGET", "60"))
# Sharded parallel compilation (repro.fastcompile): number of rule shards
# and worker processes for MFA builds.  Defaults keep the historical
# single-shot path so figure tables measure the paper's construction.
COMPILE_SHARDS = int(os.environ.get("REPRO_COMPILE_SHARDS", "1"))
COMPILE_JOBS = int(os.environ.get("REPRO_COMPILE_JOBS", "1"))


@dataclass(frozen=True, slots=True)
class BuildResult:
    """A constructed engine (or its failure) plus measured build time."""

    set_name: str
    engine_name: str
    engine: object | None
    seconds: float
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.engine is not None


def results_dir() -> Path:
    """Where benchmark tables land (repo-level ``results/``)."""
    path = Path(os.environ.get("REPRO_RESULTS_DIR", "results"))
    path.mkdir(parents=True, exist_ok=True)
    return path


@lru_cache(maxsize=None)
def patterns_for(set_name: str) -> tuple[Pattern, ...]:
    """Parsed patterns of a named rule set (cached)."""
    return tuple(parse_many(list(ruleset(set_name).rules)))


def _build_mfa(patterns: Sequence[Pattern]) -> object:
    """MFA build, optionally through the on-disk artifact cache.

    The cache is *opt-in* here (``REPRO_BENCH_CACHE=1``) — construction
    wall time feeds the Fig. 3 table, and a cache hit would report load
    time as build time.  The CLI's resilient paths cache by default.
    """
    if os.environ.get("REPRO_BENCH_CACHE", "0") != "0":
        from ..fastpath import ArtifactCache, compile_mfa_cached

        mfa, _hit = compile_mfa_cached(
            list(patterns), state_budget=STATE_BUDGET, cache=ArtifactCache()
        )
        return mfa
    if COMPILE_SHARDS > 1:
        from ..core import compile_mfa

        return compile_mfa(
            list(patterns),
            state_budget=STATE_BUDGET,
            shards=COMPILE_SHARDS,
            jobs=COMPILE_JOBS,
        )
    return build_mfa(patterns, state_budget=STATE_BUDGET)


def _build_fastpath(patterns: Sequence[Pattern]) -> object:
    from ..fastpath import build_fastpath

    return build_fastpath(_build_mfa(patterns))


_BUILDERS: dict[str, Callable[[Sequence[Pattern]], object]] = {
    "nfa": build_nfa,
    "dfa": lambda patterns: build_dfa(
        patterns, state_budget=STATE_BUDGET, time_budget=DFA_TIME_BUDGET
    ),
    "hfa": lambda patterns: build_hfa(patterns, state_budget=STATE_BUDGET),
    "xfa": lambda patterns: build_xfa(patterns, state_budget=STATE_BUDGET),
    "mfa": _build_mfa,
    "fastpath": _build_fastpath,
}


@lru_cache(maxsize=None)
def build_engine(set_name: str, engine_name: str) -> BuildResult:
    """Build one engine for one rule set, recording wall time (cached)."""
    patterns = patterns_for(set_name)
    builder = _BUILDERS[engine_name]
    start = time.perf_counter()
    try:
        engine = builder(patterns)
    except DfaExplosionError as exc:
        return BuildResult(
            set_name,
            engine_name,
            None,
            time.perf_counter() - start,
            error=f"exceeded {exc.budget} {exc.reason}",
        )
    return BuildResult(set_name, engine_name, engine, time.perf_counter() - start)


@lru_cache(maxsize=None)
def build_resilient(set_name: str):
    """Resiliently compile a rule set through the engine fallback chain.

    Uses the environment knobs (``REPRO_STATE_BUDGET`` seeds the
    escalation schedule, ``REPRO_FALLBACK_CHAIN`` the chain); returns a
    :class:`repro.robust.pipeline.CompileResult` whose ``report`` the CLI
    renders.  Unlike :func:`build_engine` this never returns a failure —
    the chain bottoms out at the NFA.

    MFA attempts go through the on-disk artifact cache unless
    ``REPRO_COMPILE_CACHE=0`` — repeated ``rcompile``/``rscan`` runs of
    the same set load in milliseconds instead of re-running subset
    construction.  ``REPRO_COMPILE_SHARDS``/``REPRO_COMPILE_JOBS`` (>1)
    switch on the sharded parallel compiler with per-shard degradation.
    """
    from ..fastpath import ArtifactCache
    from ..fastpath.cache import cache_enabled
    from ..robust import compile_limits_from_env
    from ..robust.pipeline import ResilientCompiler

    compiler = ResilientCompiler(
        limits=compile_limits_from_env(),
        cache=ArtifactCache() if cache_enabled() else None,
        shards=COMPILE_SHARDS,
        jobs=COMPILE_JOBS,
    )
    return compiler.compile(list(ruleset(set_name).rules))


# -- traces -------------------------------------------------------------------


@lru_cache(maxsize=None)
def _corpus_paths(set_name: str) -> dict[str, Path]:
    """Synthesize (once) the Fig. 4 trace-substitute pcaps for a rule set.

    Attack content is seeded from the rule set under test, as in the real
    corpora where captured exploits match the contemporary rules.
    """
    directory = results_dir() / "traces" / set_name
    return build_corpus(
        directory,
        patterns_for(set_name),
        profiles=PROFILES,
        scale=TRACE_SCALE,
        seed=2016,
    )


@lru_cache(maxsize=None)
def real_trace_flows(set_name: str, trace_name: str) -> tuple[bytes, ...]:
    """Reassembled flow payloads of one synthetic 'real-life' trace."""
    path = _corpus_paths(set_name)[trace_name]
    with open(path, "rb") as stream:
        packets = list(read_pcap(stream))
    assembler = FlowAssembler()
    assembler.add_all(packets)
    return tuple(flow.payload for flow in assembler.flows() if flow.payload)


@lru_cache(maxsize=None)
def synthetic_payload(set_name: str, p_match: float | None, length: int | None = None) -> bytes:
    """A Becchi-generated payload for the Fig. 5 difficulty sweep."""
    if length is None:
        length = max(2000, int(64_000 * TRACE_SCALE))
    nfa_result = build_engine(set_name, "nfa")
    assert nfa_result.engine is not None  # NFA construction never fails
    return generate_payload(nfa_result.engine, length, p_match, seed=5)


# -- measurement ---------------------------------------------------------------


def measure_run_cpb(
    engine: object,
    payloads: Sequence[bytes],
    repeats: int = 1,
    best_of: int = 2,
) -> float:
    """Cycles-per-byte of full matching (``run``) over the given payloads.

    Matching includes match collection and (for MFA/HFA/XFA) filter/update
    execution — that overhead on match-heavy traffic is precisely what
    Figures 4 and 5 compare.  The measurement is the best of ``best_of``
    timed passes after a short warm-up, which suppresses scheduler and GC
    spikes that would otherwise land on single cells of the figure
    matrices.
    """
    total_bytes = sum(len(p) for p in payloads) * repeats
    if total_bytes == 0:
        return 0.0
    # Short warm-up so first-touch effects (cold tables, lazy NFA move
    # tables) don't land in the first difficulty of a sweep.
    engine.run(payloads[0][:2048])  # type: ignore[attr-defined]
    best = None
    for _ in range(max(1, best_of)):
        start = time.perf_counter_ns()
        for _ in range(repeats):
            for payload in payloads:
                engine.run(payload)  # type: ignore[attr-defined]
        elapsed = time.perf_counter_ns() - start
        if best is None or elapsed < best:
            best = elapsed
    return cycles_per_byte(best, total_bytes)


def write_table(name: str, lines: Sequence[str]) -> Path:
    """Persist a printed table under results/ and echo it to stdout."""
    path = results_dir() / name
    text = "\n".join(lines) + "\n"
    path.write_text(text)
    print(f"\n=== {name} ===")
    print(text)
    return path


def all_set_names() -> list[str]:
    """The paper's seven sets plus the tracked synthetic fixtures.

    ``R32`` is the redundant-family fixture for the cross-rule analyzer
    (duplicates, subsumption, an explosive contiguous tail) — included
    here so the default ``lint``/``rules``/``audit``/``prove`` sweeps
    exercise RS findings without a separate invocation.  Figure
    reproductions keep using :func:`ruleset_names` (paper sets only).
    """
    return ruleset_names() + ["R32"]
