"""Table-shaped experiment outputs: Table V and Figure 2.

Each function returns formatted text lines (also printed and persisted by
the callers in ``benchmarks/``) mirroring the corresponding exhibit of the
paper, with the same columns and row order.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..automata.memory import format_mb, image_size
from ..patterns import ruleset_names
from .harness import BuildResult, build_engine, patterns_for

__all__ = ["table5_rows", "fig2_rows", "Table5Row"]


@dataclass(frozen=True, slots=True)
class Table5Row:
    """One pattern set's structural properties (Table V columns)."""

    set_name: str
    n_regexes: int
    nfa_states: int
    dfa_states: int | None  # None: exceeded the construction budget
    mfa_states: int


def table5_data() -> list[Table5Row]:
    rows: list[Table5Row] = []
    for name in ruleset_names():
        nfa = build_engine(name, "nfa")
        dfa = build_engine(name, "dfa")
        mfa = build_engine(name, "mfa")
        assert nfa.ok and mfa.ok
        rows.append(
            Table5Row(
                set_name=name,
                n_regexes=len(patterns_for(name)),
                nfa_states=nfa.engine.n_states,  # type: ignore[union-attr]
                dfa_states=dfa.engine.n_states if dfa.ok else None,  # type: ignore[union-attr]
                mfa_states=mfa.engine.n_states,  # type: ignore[union-attr]
            )
        )
    return rows


def table5_rows() -> list[str]:
    """Table V: RegEx set properties."""
    lines = [
        f"{'Set':7s} {'RegExes':>8s} {'NFA Qs':>8s} {'DFA Qs':>9s} {'MFA Qs':>8s}",
        "-" * 45,
    ]
    for row in table5_data():
        dfa = f"{row.dfa_states:,}" if row.dfa_states is not None else "-"
        lines.append(
            f"{row.set_name:7s} {row.n_regexes:8d} {row.nfa_states:8,d} "
            f"{dfa:>9s} {row.mfa_states:8,d}"
        )
    return lines


def _compressed_mfa_bytes(mfa: object) -> int:
    """The MFA image with its DFA stored as a D2FA default-transition forest.

    Reuses the cached dense build: the forest accounting replaces the dense
    table's share of the image while the filter table is unchanged — exactly
    what the compressed (``MFADFA2``) artifact serializes.
    """
    from ..automata.compress import ARTIFACT_WINDOW, DEFAULT_CHAIN_DEPTH, compress_dfa

    dense = mfa.memory_bytes()  # type: ignore[attr-defined]
    dfa = mfa.dfa  # type: ignore[attr-defined]
    forest = compress_dfa(dfa, window=ARTIFACT_WINDOW, max_depth=DEFAULT_CHAIN_DEPTH)
    return dense - dfa.memory_bytes() + forest.memory_bytes()


def fig2_rows() -> list[str]:
    """Figure 2: memory image sizes in MB, plus the MFA filter share.

    The ``cMFA`` column is the same MFA with its component DFA stored in the
    compressed artifact tier (default-transition forest, chain depth
    :data:`~repro.automata.compress.DEFAULT_CHAIN_DEPTH`).
    """
    lines = [
        f"{'Pattern':7s} {'NFA':>7s} {'DFA':>8s} {'HFA':>8s} {'MFA':>7s} "
        f"{'cMFA':>7s} {'filter%':>8s}",
        "-" * 58,
    ]
    ratios = []
    compressed_ratios = []
    for name in ruleset_names():
        cells: dict[str, str] = {}
        filter_share = ""
        for engine_name in ("nfa", "dfa", "hfa", "mfa"):
            result: BuildResult = build_engine(name, engine_name)
            if not result.ok:
                cells[engine_name] = "-"
                continue
            size = image_size(result.engine)
            cells[engine_name] = format_mb(size.total_bytes)
            if engine_name == "mfa":
                filter_share = f"{100 * size.filter_fraction:.3f}"
        hfa_result = build_engine(name, "hfa")
        mfa_result = build_engine(name, "mfa")
        if mfa_result.ok:
            compressed = _compressed_mfa_bytes(mfa_result.engine)
            cells["cmfa"] = format_mb(compressed)
            compressed_ratios.append(
                image_size(mfa_result.engine).total_bytes / max(1, compressed)
            )
        else:
            cells["cmfa"] = "-"
        if hfa_result.ok and mfa_result.ok:
            ratios.append(
                image_size(hfa_result.engine).total_bytes
                / image_size(mfa_result.engine).total_bytes
            )
        lines.append(
            f"{name:7s} {cells['nfa']:>7s} {cells['dfa']:>8s} "
            f"{cells['hfa']:>8s} {cells['mfa']:>7s} {cells['cmfa']:>7s} "
            f"{filter_share:>8s}"
        )
    if ratios:
        mean = sum(ratios) / len(ratios)
        lines.append("-" * 58)
        lines.append(f"mean HFA/MFA image ratio: {mean:.1f}x (paper: ~30x)")
    if compressed_ratios:
        mean = sum(compressed_ratios) / len(compressed_ratios)
        lines.append(
            f"mean MFA/cMFA compression: {mean:.1f}x "
            f"(D2FA forest, chain depth <= 4)"
        )
    return lines
