"""Parameter sweeps behind the paper's scaling arguments.

§IV-A argues each dot-star pattern contributes a *multiplicative* factor
to plain-DFA size while match filtering turns it *additive*.  The sweep
here measures that law directly: grow a rule set one dot-star pattern at a
time and record DFA states, MFA states, and construction times — the data
behind "adding a single extra regex with multiple dot-stars can increase
construction time to many times what it was" (§V-C).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..automata.dfa import DfaExplosionError, build_dfa
from ..core.mfa import build_mfa
from ..regex.parser import parse_many
from ..utils.rng import make_rng

__all__ = ["ExplosionPoint", "explosion_sweep", "explosion_rows"]


@dataclass(frozen=True, slots=True)
class ExplosionPoint:
    """Measurements for a rule set of ``n_rules`` dot-star patterns."""

    n_rules: int
    dfa_states: int | None
    dfa_seconds: float
    mfa_states: int
    mfa_seconds: float

    @property
    def ratio(self) -> float | None:
        if self.dfa_states is None:
            return None
        return self.dfa_states / self.mfa_states


def _sweep_rules(n: int, seed: int = 4) -> list[str]:
    """n distinct dot-star patterns over 4-letter pseudo-words."""
    rng = make_rng(seed, "explosion-sweep")
    rules = []
    seen = set()
    while len(rules) < n:
        a = "".join(rng.choice("bcdfgklmn") for _ in range(4))
        b = "".join(rng.choice("prstvwz") for _ in range(4))
        rule = f".*{a}.*{b}"
        if rule not in seen:
            seen.add(rule)
            rules.append(rule)
    return rules


def explosion_sweep(
    max_rules: int = 9,
    state_budget: int = 120_000,
    time_budget: float = 30.0,
    seed: int = 4,
) -> list[ExplosionPoint]:
    """Measure DFA vs MFA growth from 1 to ``max_rules`` dot-star rules."""
    points: list[ExplosionPoint] = []
    all_rules = _sweep_rules(max_rules, seed=seed)
    for n in range(1, max_rules + 1):
        patterns = parse_many(all_rules[:n])
        start = time.perf_counter()
        try:
            dfa_states: int | None = build_dfa(
                patterns, state_budget=state_budget, time_budget=time_budget
            ).n_states
        except DfaExplosionError:
            dfa_states = None
        dfa_seconds = time.perf_counter() - start
        start = time.perf_counter()
        mfa = build_mfa(patterns)
        mfa_seconds = time.perf_counter() - start
        points.append(
            ExplosionPoint(
                n_rules=n,
                dfa_states=dfa_states,
                dfa_seconds=dfa_seconds,
                mfa_states=mfa.n_states,
                mfa_seconds=mfa_seconds,
            )
        )
        if dfa_states is None:
            break  # further points only get slower, the law is established
    return points


def explosion_rows(points: list[ExplosionPoint]) -> list[str]:
    lines = [
        f"{'rules':>5s} {'DFA states':>11s} {'DFA s':>7s} {'MFA states':>11s} "
        f"{'MFA s':>7s} {'ratio':>8s} {'x prev':>7s}",
        "-" * 62,
    ]
    previous: int | None = None
    for point in points:
        dfa = f"{point.dfa_states:,}" if point.dfa_states is not None else "fail"
        ratio = f"{point.ratio:.0f}x" if point.ratio is not None else "-"
        growth = ""
        if point.dfa_states is not None and previous:
            growth = f"{point.dfa_states / previous:.2f}"
        previous = point.dfa_states
        lines.append(
            f"{point.n_rules:5d} {dfa:>11s} {point.dfa_seconds:7.2f} "
            f"{point.mfa_states:11,d} {point.mfa_seconds:7.2f} {ratio:>8s} {growth:>7s}"
        )
    return lines
