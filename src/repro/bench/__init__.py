"""Benchmark harness: engine caches, measurement, table/figure generation."""

from .plots import bar_chart, line_chart
from .sweep import ExplosionPoint, explosion_rows, explosion_sweep
from .harness import (
    ENGINES,
    BuildResult,
    build_engine,
    measure_run_cpb,
    patterns_for,
    real_trace_flows,
    results_dir,
    synthetic_payload,
    write_table,
)

__all__ = [
    "bar_chart",
    "line_chart",
    "ExplosionPoint",
    "explosion_rows",
    "explosion_sweep",
    "ENGINES",
    "BuildResult",
    "build_engine",
    "measure_run_cpb",
    "patterns_for",
    "real_trace_flows",
    "results_dir",
    "synthetic_payload",
    "write_table",
]
