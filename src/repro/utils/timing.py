"""Timing utilities for the benchmark harness.

The paper reports cycles-per-byte measured with ``rdtsc`` on a 1.8–3 GHz
i7-4500U.  Pure Python has no ``rdtsc``; we measure wall nanoseconds with
``perf_counter_ns`` and convert at a configurable clock so results appear
in the paper's unit.  Absolute values are meaningless to compare against a
compiled OCaml engine — relative values between our engines are the
reproduction target (DESIGN.md §4).
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["CYCLES_PER_NS", "Stopwatch", "cycles_per_byte", "time_call"]

# i7-4500U nominal turbo clock; override with REPRO_GHZ.
CYCLES_PER_NS = float(os.environ.get("REPRO_GHZ", "2.4"))


@dataclass
class Stopwatch:
    """Accumulating nanosecond timer."""

    elapsed_ns: int = 0

    @contextmanager
    def measure(self) -> Iterator[None]:
        start = time.perf_counter_ns()
        try:
            yield
        finally:
            self.elapsed_ns += time.perf_counter_ns() - start

    @property
    def seconds(self) -> float:
        return self.elapsed_ns / 1e9


def time_call(fn: Callable[[], object]) -> tuple[object, int]:
    """Run ``fn`` once; returns (result, elapsed nanoseconds)."""
    start = time.perf_counter_ns()
    result = fn()
    return result, time.perf_counter_ns() - start


def cycles_per_byte(elapsed_ns: int, n_bytes: int) -> float:
    """Convert a wall-time measurement into the paper's CpB unit."""
    if n_bytes == 0:
        return 0.0
    return elapsed_ns * CYCLES_PER_NS / n_bytes
