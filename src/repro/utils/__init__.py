"""Shared utilities: deterministic RNG streams and timing."""

from .rng import choose_byte_from_bits, make_rng
from .timing import CYCLES_PER_NS, Stopwatch, cycles_per_byte, time_call

__all__ = [
    "choose_byte_from_bits",
    "make_rng",
    "CYCLES_PER_NS",
    "Stopwatch",
    "cycles_per_byte",
    "time_call",
]
