"""Deterministic randomness helpers.

Every synthetic artefact in this reproduction (pattern sets, traces,
generated flows) must be reproducible run-to-run, so randomness is always
drawn from a :class:`random.Random` seeded through :func:`make_rng` with a
purpose string — different consumers get decorrelated streams without any
global state.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["make_rng", "choose_byte_from_bits"]


def make_rng(seed: int, purpose: str = "") -> random.Random:
    """A private RNG stream for (seed, purpose)."""
    digest = hashlib.sha256(f"{seed}:{purpose}".encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


def choose_byte_from_bits(bits: int, rng: random.Random) -> int:
    """Uniformly choose a set bit index from a 256-bit class bitmap."""
    count = bits.bit_count()
    if count == 0:
        raise ValueError("empty class bitmap")
    index = rng.randrange(count)
    while True:
        low = bits & -bits
        if index == 0:
            return low.bit_length() - 1
        bits ^= low
        index -= 1
