"""Flow and packet model with TCP-style reassembly.

The paper's traces are raw ``.pcap`` files "with packet-level details and
not pre-assembled flows", so the harness must do what a middlebox does:
group packets into flows by 5-tuple, order TCP segments by sequence
number, and feed each flow's payload stream to the matching engine while
keeping one ``(q, m)`` context per flow.  This module is that data path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..automata.nfa import MatchEvent

__all__ = ["FiveTuple", "Packet", "Flow", "FlowAssembler", "FlowMatch", "dispatch_flows"]

PROTO_TCP = 6
PROTO_UDP = 17


@dataclass(frozen=True, slots=True, order=True)
class FiveTuple:
    """Flow key: protocol plus both endpoints."""

    proto: int
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int


@dataclass(frozen=True, slots=True)
class Packet:
    """One captured packet's payload with enough headers to key a flow."""

    key: FiveTuple
    payload: bytes
    seq: int = 0
    timestamp: float = 0.0


@dataclass(slots=True)
class Flow:
    """A reassembled unidirectional flow."""

    key: FiveTuple
    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)


class FlowAssembler:
    """Groups packets by 5-tuple and reassembles TCP payload in seq order.

    Out-of-order segments are buffered; duplicate and overlapping bytes are
    dropped in favour of the first copy seen (the common IDS policy).  UDP
    and unknown protocols are concatenated in arrival order.
    """

    def __init__(self) -> None:
        self._tcp: dict[FiveTuple, dict[int, bytes]] = {}
        self._other: dict[FiveTuple, list[bytes]] = {}
        self._order: list[FiveTuple] = []

    def add(self, packet: Packet) -> None:
        if not packet.payload:
            return
        key = packet.key
        if key.proto == PROTO_TCP:
            segments = self._tcp.get(key)
            if segments is None:
                segments = {}
                self._tcp[key] = segments
                self._order.append(key)
            # First copy wins on exact duplicates.
            segments.setdefault(packet.seq, packet.payload)
        else:
            chunks = self._other.get(key)
            if chunks is None:
                chunks = []
                self._other[key] = chunks
                self._order.append(key)
            chunks.append(packet.payload)

    def add_all(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    def flows(self) -> list[Flow]:
        """Reassembled flows in first-seen order."""
        out: list[Flow] = []
        for key in self._order:
            if key.proto == PROTO_TCP:
                out.append(Flow(key, self._reassemble_tcp(self._tcp[key])))
            else:
                out.append(Flow(key, b"".join(self._other[key])))
        return out

    @staticmethod
    def _reassemble_tcp(segments: dict[int, bytes]) -> bytes:
        parts: list[bytes] = []
        position: int | None = None
        for seq in sorted(segments):
            data = segments[seq]
            if position is None:
                position = seq
            if seq > position:
                # Gap: missing segment — splice what we have (IDS engines
                # typically flush across holes rather than stall).
                position = seq
            elif seq < position:
                overlap = position - seq
                if overlap >= len(data):
                    continue
                data = data[overlap:]
            parts.append(data)
            position += len(data)
        return b"".join(parts)


@dataclass(frozen=True, slots=True)
class FlowMatch:
    """A confirmed match attributed to its flow."""

    key: FiveTuple
    event: MatchEvent


def dispatch_flows(
    engine,
    packets: Iterable[Packet],
    context_factory: Callable[[], object] | None = None,
) -> Iterator[FlowMatch]:
    """Run an MFA over *interleaved* packets, one context per flow.

    This is the paper's multiplexed-flow mode: packets arrive in capture
    order, each flow keeps its own ``(q, m)`` pair, and payload bytes are
    fed strictly in per-flow order.  Requires in-order packets per flow
    (use :class:`FlowAssembler` first when the capture may reorder).
    """
    contexts: dict[FiveTuple, object] = {}
    expected_seq: dict[FiveTuple, int] = {}
    for packet in packets:
        if not packet.payload:
            continue
        context = contexts.get(packet.key)
        if context is None:
            context = engine.new_context()
            contexts[packet.key] = context
            if packet.key.proto == PROTO_TCP:
                expected_seq[packet.key] = packet.seq
        if packet.key.proto == PROTO_TCP:
            expected = expected_seq[packet.key]
            if packet.seq != expected:
                raise ValueError(
                    f"out-of-order packet for {packet.key} "
                    f"(seq {packet.seq}, expected {expected}); reassemble first"
                )
            expected_seq[packet.key] = packet.seq + len(packet.payload)
        for event in engine.feed(context, packet.payload):
            yield FlowMatch(packet.key, event)
    for key, context in contexts.items():
        for event in engine.finish(context):
            yield FlowMatch(key, event)
