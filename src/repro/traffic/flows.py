"""Flow and packet model with TCP-style reassembly.

The paper's traces are raw ``.pcap`` files "with packet-level details and
not pre-assembled flows", so the harness must do what a middlebox does:
group packets into flows by 5-tuple, order TCP segments by sequence
number, and feed each flow's payload stream to the matching engine while
keeping one ``(q, m)`` context per flow.  This module is that data path.

Resource discipline: an unbounded assembler is a memory DoS vector (a
hostile trace can open millions of flows or stuff one flow forever), so
:class:`FlowAssembler` optionally takes :class:`FlowLimits` — a cap on
concurrent flows (LRU eviction), and per-flow byte/segment caps — with
every drop accounted in :class:`AssemblerStats`.  Likewise
:func:`dispatch_flows` can isolate per-flow failures instead of letting
one poisoned flow abort a multiplexed scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from ..automata.nfa import MatchEvent

__all__ = [
    "FiveTuple",
    "Packet",
    "Flow",
    "FlowLimits",
    "AssemblerStats",
    "DispatchStats",
    "FlowAssembler",
    "FlowMatch",
    "dispatch_flows",
]

PROTO_TCP = 6
PROTO_UDP = 17

_SEQ_MOD = 1 << 32
_SEQ_HALF = 1 << 31


@dataclass(frozen=True, slots=True, order=True)
class FiveTuple:
    """Flow key: protocol plus both endpoints."""

    proto: int
    src_ip: str
    src_port: int
    dst_ip: str
    dst_port: int


@dataclass(frozen=True, slots=True)
class Packet:
    """One captured packet's payload with enough headers to key a flow."""

    key: FiveTuple
    payload: bytes
    seq: int = 0
    timestamp: float = 0.0


@dataclass(slots=True)
class Flow:
    """A reassembled unidirectional flow."""

    key: FiveTuple
    payload: bytes

    def __len__(self) -> int:
        return len(self.payload)


@dataclass(frozen=True, slots=True)
class FlowLimits:
    """Resource caps for :class:`FlowAssembler` (``None`` = unbounded).

    ``max_flows`` bounds concurrent flows (least-recently-updated flows
    are evicted first); ``max_flow_bytes``/``max_flow_segments`` bound
    what a single flow may buffer.
    """

    max_flows: int | None = None
    max_flow_bytes: int | None = None
    max_flow_segments: int | None = None


@dataclass(slots=True)
class AssemblerStats:
    """Counters for everything :class:`FlowAssembler` refused to buffer."""

    flows_evicted: int = 0
    bytes_evicted: int = 0
    segments_dropped: int = 0
    bytes_dropped: int = 0

    def any_dropped(self) -> bool:
        return bool(self.flows_evicted or self.segments_dropped or self.bytes_dropped)


@dataclass(slots=True)
class DispatchStats:
    """Per-flow isolation counters for :func:`dispatch_flows`."""

    flows_poisoned: int = 0
    packets_skipped: int = 0
    errors: list[tuple[FiveTuple, str]] = field(default_factory=list)


class FlowAssembler:
    """Groups packets by 5-tuple and reassembles TCP payload in seq order.

    Out-of-order segments are buffered; duplicate and overlapping bytes are
    dropped in favour of the first copy seen (the common IDS policy).  UDP
    and unknown protocols are concatenated in arrival order.

    With ``limits`` set the assembler is safe against hostile traffic:
    opening a flow past ``max_flows`` evicts the least-recently-updated
    flow (handed to ``on_evict`` when given, so a caller can scan-and-
    release rather than lose it), and per-flow caps drop or truncate
    excess segments.  All refusals are counted in :attr:`stats`.
    """

    def __init__(
        self,
        limits: FlowLimits | None = None,
        on_evict: Callable[[Flow], None] | None = None,
    ) -> None:
        self._tcp: dict[FiveTuple, dict[int, bytes]] = {}
        self._other: dict[FiveTuple, list[bytes]] = {}
        # Insertion-ordered key sets: _order preserves first-seen order for
        # flows(); _lru is re-inserted on every add so its first key is
        # always the least-recently-updated flow.
        self._order: dict[FiveTuple, None] = {}
        self._lru: dict[FiveTuple, None] = {}
        self._bytes: dict[FiveTuple, int] = {}
        self.limits = limits or FlowLimits()
        self.on_evict = on_evict
        self.stats = AssemblerStats()

    def __len__(self) -> int:
        return len(self._order)

    def add(self, packet: Packet) -> None:
        if not packet.payload:
            return
        key = packet.key
        limits = self.limits
        new_flow = key not in self._order
        if new_flow and limits.max_flows is not None:
            while len(self._order) >= limits.max_flows:
                self._evict_lru()
        payload = packet.payload
        buffered = self._bytes.get(key, 0)
        if limits.max_flow_bytes is not None:
            room = limits.max_flow_bytes - buffered
            if room <= 0:
                self.stats.segments_dropped += 1
                self.stats.bytes_dropped += len(payload)
                self._touch(key, new_flow)
                return
            if len(payload) > room:
                self.stats.bytes_dropped += len(payload) - room
                payload = payload[:room]
        if key.proto == PROTO_TCP:
            segments = self._tcp.get(key)
            if segments is None:
                segments = {}
                self._tcp[key] = segments
            if (
                limits.max_flow_segments is not None
                and len(segments) >= limits.max_flow_segments
                and packet.seq not in segments
            ):
                self.stats.segments_dropped += 1
                self.stats.bytes_dropped += len(payload)
                self._touch(key, new_flow)
                return
            # First copy wins on exact duplicates.
            if packet.seq not in segments:
                segments[packet.seq] = payload
                self._bytes[key] = buffered + len(payload)
        else:
            chunks = self._other.get(key)
            if chunks is None:
                chunks = []
                self._other[key] = chunks
            if (
                limits.max_flow_segments is not None
                and len(chunks) >= limits.max_flow_segments
            ):
                self.stats.segments_dropped += 1
                self.stats.bytes_dropped += len(payload)
                self._touch(key, new_flow)
                return
            chunks.append(payload)
            self._bytes[key] = buffered + len(payload)
        self._touch(key, new_flow)

    def _touch(self, key: FiveTuple, new_flow: bool) -> None:
        if new_flow:
            self._order[key] = None
        elif key in self._lru:
            del self._lru[key]
        self._lru[key] = None

    def _evict_lru(self) -> None:
        victim = next(iter(self._lru))
        flow = self._finalize(victim)
        del self._lru[victim]
        del self._order[victim]
        self._tcp.pop(victim, None)
        self._other.pop(victim, None)
        self._bytes.pop(victim, None)
        self.stats.flows_evicted += 1
        self.stats.bytes_evicted += len(flow.payload)
        if self.on_evict is not None:
            self.on_evict(flow)

    def _finalize(self, key: FiveTuple) -> Flow:
        if key.proto == PROTO_TCP:
            return Flow(key, self._reassemble_tcp(self._tcp.get(key, {})))
        return Flow(key, b"".join(self._other.get(key, [])))

    def add_all(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    def flows(self) -> list[Flow]:
        """Reassembled flows in first-seen order (evicted flows excluded)."""
        return [self._finalize(key) for key in self._order]

    @staticmethod
    def _reassemble_tcp(segments: dict[int, bytes]) -> bytes:
        if not segments:
            return b""
        # TCP sequence numbers live in a 32-bit ring; a long flow crosses
        # 2^32 and its raw seqs sort wrapped-first.  Re-key every segment
        # by its serial-number distance (RFC 1982 style) from the first
        # seen seq, centred so up to 2^31 bytes either side of the first
        # segment order correctly, then reassemble on that line.
        base = next(iter(segments))
        rel = {
            (seq - base + _SEQ_HALF) % _SEQ_MOD: data
            for seq, data in segments.items()
        }
        parts: list[bytes] = []
        position: int | None = None
        for seq in sorted(rel):
            data = rel[seq]
            if position is None:
                position = seq
            if seq > position:
                # Gap: missing segment — splice what we have (IDS engines
                # typically flush across holes rather than stall).
                position = seq
            elif seq < position:
                overlap = position - seq
                if overlap >= len(data):
                    continue
                data = data[overlap:]
            parts.append(data)
            position += len(data)
        return b"".join(parts)


@dataclass(frozen=True, slots=True)
class FlowMatch:
    """A confirmed match attributed to its flow."""

    key: FiveTuple
    event: MatchEvent


def dispatch_flows(
    engine,
    packets: Iterable[Packet],
    context_factory: Callable[[], object] | None = None,
    errors: str = "raise",
    stats: DispatchStats | None = None,
) -> Iterator[FlowMatch]:
    """Run an MFA over *interleaved* packets, one context per flow.

    This is the paper's multiplexed-flow mode: packets arrive in capture
    order, each flow keeps its own ``(q, m)`` pair, and payload bytes are
    fed strictly in per-flow order.  Requires in-order packets per flow
    (use :class:`FlowAssembler` first when the capture may reorder).

    ``errors="isolate"`` quarantines a flow on its first failure — an
    out-of-order segment or an engine exception — instead of raising, so
    one poisoned flow cannot kill a multiplexed scan; pass a
    :class:`DispatchStats` to account the quarantined flows.
    """
    if errors not in ("raise", "isolate"):
        raise ValueError(f"errors must be 'raise' or 'isolate', not {errors!r}")
    isolate = errors == "isolate"
    if stats is None:
        stats = DispatchStats()
    contexts: dict[FiveTuple, object] = {}
    expected_seq: dict[FiveTuple, int] = {}
    poisoned: set[FiveTuple] = set()

    def poison(key: FiveTuple, reason: str) -> None:
        poisoned.add(key)
        contexts.pop(key, None)
        expected_seq.pop(key, None)
        stats.flows_poisoned += 1
        stats.errors.append((key, reason))

    for packet in packets:
        if not packet.payload:
            continue
        key = packet.key
        if key in poisoned:
            stats.packets_skipped += 1
            continue
        context = contexts.get(key)
        if context is None:
            context = engine.new_context()
            contexts[key] = context
            if key.proto == PROTO_TCP:
                expected_seq[key] = packet.seq
        if key.proto == PROTO_TCP:
            expected = expected_seq[key]
            if packet.seq != expected:
                message = (
                    f"out-of-order packet for {key} "
                    f"(seq {packet.seq}, expected {expected}); reassemble first"
                )
                if not isolate:
                    raise ValueError(message)
                poison(key, message)
                stats.packets_skipped += 1
                continue
            expected_seq[key] = (packet.seq + len(packet.payload)) % _SEQ_MOD
        if isolate:
            try:
                events = list(engine.feed(context, packet.payload))
            except Exception as exc:  # noqa: BLE001 - isolation is the point
                poison(key, f"engine error: {exc}")
                continue
            for event in events:
                yield FlowMatch(key, event)
        else:
            for event in engine.feed(context, packet.payload):
                yield FlowMatch(key, event)
    for key, context in contexts.items():
        if isolate:
            try:
                events = list(engine.finish(context))
            except Exception as exc:  # noqa: BLE001
                stats.flows_poisoned += 1
                stats.errors.append((key, f"engine error at finish: {exc}"))
                continue
            for event in events:
                yield FlowMatch(key, event)
        else:
            for event in engine.finish(context):
                yield FlowMatch(key, event)
