"""Protocol payload synthesizers (HTTP, SMTP, telnet-style, binary).

The real-life corpora the paper uses (DARPA 1998, CDX 2009, Nitroba) are
dominated by plaintext application sessions of exactly these protocols.
The synthesizers below produce protocol-shaped byte streams — believable
header/body structure, line discipline, realistic byte-value mix — that
drive matching engines through the same state regions real captures do.
All content is deterministic in the RNG handed in.
"""

from __future__ import annotations

import random

__all__ = [
    "http_request",
    "http_response",
    "http_session",
    "smtp_session",
    "telnet_session",
    "dns_query",
    "dns_response",
    "binary_blob",
]

_PATHS = (
    "/", "/index.html", "/login", "/cgi-bin/status", "/images/logo.gif",
    "/api/v1/users", "/search", "/docs/manual.pdf", "/news/today",
    "/static/app.js", "/favicon.ico", "/upload", "/admin/panel",
)
_HOSTS = (
    "www.example.com", "mail.campus.edu", "intranet.corp.local",
    "files.example.org", "news.example.net",
)
_AGENTS = (
    "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
    "Mozilla/5.0 (X11; Linux i686) Gecko/20040616",
    "Wget/1.9.1",
    "curl/7.12.0",
)
_WORDS = (
    "the quick brown fox jumps over a lazy dog and then naps under warm sun "
    "network packets flow through routers toward distant hosts carrying data "
    "students submit reports while servers log every request for later audit"
).split()


def _text(rng: random.Random, n_words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(n_words))


def http_request(rng: random.Random, body: bytes = b"") -> bytes:
    """One HTTP/1.1 request with plausible headers."""
    method = rng.choice(("GET", "GET", "GET", "POST", "HEAD"))
    path = rng.choice(_PATHS)
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {rng.choice(_HOSTS)}",
        f"User-Agent: {rng.choice(_AGENTS)}",
        "Accept: */*",
        "Connection: keep-alive",
    ]
    if method == "POST" or body:
        lines.append(f"Content-Length: {len(body)}")
        lines.append("Content-Type: application/x-www-form-urlencoded")
    head = "\r\n".join(lines).encode("latin-1") + b"\r\n\r\n"
    return head + body


def http_response(rng: random.Random, body: bytes | None = None) -> bytes:
    """One HTTP/1.1 response with an HTML-ish body."""
    if body is None:
        title = _text(rng, 3)
        paragraphs = "".join(
            f"<p>{_text(rng, rng.randrange(8, 30))}</p>" for _ in range(rng.randrange(1, 6))
        )
        body = (
            f"<html><head><title>{title}</title></head><body>{paragraphs}</body></html>"
        ).encode("latin-1")
    status = rng.choice(("200 OK", "200 OK", "200 OK", "404 Not Found", "302 Found"))
    head = (
        f"HTTP/1.1 {status}\r\n"
        f"Server: Apache/1.3.27 (Unix)\r\n"
        f"Content-Type: text/html\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("latin-1")
    return head + body


def http_session(rng: random.Random, n_exchanges: int | None = None) -> tuple[bytes, bytes]:
    """A full session: (client-to-server bytes, server-to-client bytes)."""
    if n_exchanges is None:
        n_exchanges = rng.randrange(1, 5)
    c2s = b"".join(http_request(rng) for _ in range(n_exchanges))
    s2c = b"".join(http_response(rng) for _ in range(n_exchanges))
    return c2s, s2c


def smtp_session(rng: random.Random) -> tuple[bytes, bytes]:
    """An SMTP exchange with a short message body."""
    sender = f"user{rng.randrange(100)}@{rng.choice(_HOSTS)}"
    rcpt = f"user{rng.randrange(100)}@{rng.choice(_HOSTS)}"
    body = "\r\n".join(_text(rng, rng.randrange(6, 14)) for _ in range(rng.randrange(2, 8)))
    c2s = (
        f"HELO client.example.com\r\n"
        f"MAIL FROM:<{sender}>\r\n"
        f"RCPT TO:<{rcpt}>\r\n"
        "DATA\r\n"
        f"Subject: {_text(rng, 4)}\r\n\r\n{body}\r\n.\r\n"
        "QUIT\r\n"
    ).encode("latin-1")
    s2c = (
        "220 mail.campus.edu ESMTP Sendmail 8.12.10\r\n"
        "250 mail.campus.edu Hello\r\n"
        "250 2.1.0 Sender ok\r\n"
        "250 2.1.5 Recipient ok\r\n"
        "354 Enter mail, end with '.' on a line by itself\r\n"
        "250 2.0.0 Message accepted for delivery\r\n"
        "221 2.0.0 closing connection\r\n"
    ).encode("latin-1")
    return c2s, s2c


def telnet_session(rng: random.Random) -> tuple[bytes, bytes]:
    """An interactive shell-ish exchange (DARPA-era traffic staple)."""
    commands = ["ls -la", "pwd", "cat /etc/motd", "ps aux", "who", "uname -a", "df -k"]
    chosen = [rng.choice(commands) for _ in range(rng.randrange(2, 7))]
    c2s = ("".join(c + "\r\n" for c in chosen)).encode("latin-1")
    outputs = []
    for command in chosen:
        outputs.append(f"$ {command}\r\n{_text(rng, rng.randrange(5, 20))}\r\n")
    s2c = ("login: guest\r\nPassword:\r\nLast login: Mon Jul  6 09:00\r\n" + "".join(outputs)).encode(
        "latin-1"
    )
    return c2s, s2c


def binary_blob(rng: random.Random, length: int) -> bytes:
    """Uniform random bytes — compressed/encrypted-looking filler."""
    return bytes(rng.randrange(256) for _ in range(length))


_DNS_NAMES = (
    "www.example.com", "mail.campus.edu", "cdn.example.net",
    "api.example.org", "ns1.example.com", "time.example.gov",
)


def _encode_qname(name: str) -> bytes:
    out = bytearray()
    for label in name.split("."):
        out.append(len(label))
        out.extend(label.encode("ascii"))
    out.append(0)
    return bytes(out)


def dns_query(rng: random.Random) -> bytes:
    """A well-formed DNS query message (UDP payload)."""
    txid = rng.randrange(0x10000)
    header = txid.to_bytes(2, "big") + b"\x01\x00" + b"\x00\x01" + b"\x00\x00" * 3
    question = _encode_qname(rng.choice(_DNS_NAMES)) + b"\x00\x01\x00\x01"  # A, IN
    return header + question


def dns_response(rng: random.Random, query: bytes | None = None) -> bytes:
    """A matching A-record answer for ``query`` (or a fresh one)."""
    if query is None:
        query = dns_query(rng)
    txid = query[:2]
    question = query[12:]
    header = txid + b"\x81\x80" + b"\x00\x01\x00\x01" + b"\x00\x00" * 2
    answer = (
        b"\xc0\x0c"                 # name: pointer to the question
        + b"\x00\x01\x00\x01"      # A, IN
        + (300).to_bytes(4, "big")     # TTL
        + b"\x00\x04"
        + bytes(rng.randrange(1, 255) for _ in range(4))
    )
    return header + question + answer
