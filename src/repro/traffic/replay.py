"""Capture replay with per-packet latency accounting.

A middlebox cares not only about mean throughput but about per-packet
processing latency under flow multiplexing — the operational side of the
paper's ``(q, m)``-per-flow claim.  :func:`replay` pushes a capture's
packets through an engine in timestamp order, one context per flow, and
records per-packet processing times; :class:`ReplayStats` summarises them
(mean/median/p99, per-byte cost, alert counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..automata.nfa import MatchEvent
from .flows import FiveTuple, Packet

__all__ = ["ReplayStats", "replay"]


@dataclass
class ReplayStats:
    """Aggregated results of one replay."""

    n_packets: int = 0
    n_flows: int = 0
    total_payload: int = 0
    n_alerts: int = 0
    n_poisoned: int = 0
    n_skipped: int = 0
    n_evicted: int = 0
    packet_ns: list[int] = field(default_factory=list)
    alerts: list[tuple[FiveTuple, MatchEvent]] = field(default_factory=list)
    errors: list[tuple[FiveTuple, str]] = field(default_factory=list)

    def _percentile(self, fraction: float) -> int:
        if not self.packet_ns:
            return 0
        ordered = sorted(self.packet_ns)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def mean_ns(self) -> float:
        return sum(self.packet_ns) / len(self.packet_ns) if self.packet_ns else 0.0

    @property
    def p50_ns(self) -> int:
        return self._percentile(0.50)

    @property
    def p99_ns(self) -> int:
        return self._percentile(0.99)

    @property
    def ns_per_byte(self) -> float:
        if not self.total_payload:
            return 0.0
        return sum(self.packet_ns) / self.total_payload

    def describe(self) -> list[str]:
        lines = [
            f"packets: {self.n_packets}, flows: {self.n_flows}, "
            f"payload: {self.total_payload} B, alerts: {self.n_alerts}",
            f"per-packet latency: mean {self.mean_ns / 1e3:.1f} us, "
            f"p50 {self.p50_ns / 1e3:.1f} us, p99 {self.p99_ns / 1e3:.1f} us",
            f"per-byte cost: {self.ns_per_byte:.1f} ns/B",
        ]
        if self.n_poisoned or self.n_skipped or self.n_evicted:
            lines.append(
                f"degraded: {self.n_poisoned} flows poisoned, "
                f"{self.n_skipped} packets skipped, "
                f"{self.n_evicted} contexts evicted"
            )
        return lines


def replay(
    engine,
    packets: Iterable[Packet],
    collect_alerts: bool = True,
    errors: str = "raise",
    max_flows: int | None = None,
    batch_size: int | None = None,
) -> ReplayStats:
    """Drive ``engine`` (an MFA or anything with ``new_context``/``feed``/
    ``finish``) over packets in the given order, timing each packet.

    Packets must be in-order per flow (as produced by our capture writer
    and :func:`~repro.traffic.corpora.corpus_packets`); use
    :class:`~repro.traffic.flows.FlowAssembler` first when they may not be.

    ``errors="isolate"`` confines an engine exception to its flow: the
    flow is poisoned (context dropped, later packets skipped and counted)
    and the replay continues.  ``max_flows`` bounds the live context
    table; opening a flow past it finishes and evicts the least-recently-
    fed context, modelling a fixed-size flow table under port-scan load.

    ``batch_size`` switches to lockstep replay when the engine exposes
    ``feed_batch`` (the fastpath engine): up to that many packets from
    *distinct* flows are scanned in one batch call.  The match stream is
    unchanged; per-packet latency becomes the batch cost shared among its
    packets in proportion to payload bytes.  In ``isolate`` mode a batch
    failure poisons every flow that was in the failing batch (the batch
    advances flows jointly, so blame cannot be pinned to one of them).
    """
    if errors not in ("raise", "isolate"):
        raise ValueError(f"errors must be 'raise' or 'isolate', not {errors!r}")
    isolate = errors == "isolate"
    stats = ReplayStats()
    contexts: dict[FiveTuple, object] = {}
    poisoned: set[FiveTuple] = set()
    seen: set[FiveTuple] = set()
    perf = time.perf_counter_ns

    def drain(key: FiveTuple, context: object) -> None:
        try:
            events = list(engine.finish(context))
        except Exception as exc:  # noqa: BLE001
            if not isolate:
                raise
            stats.n_poisoned += 1
            stats.errors.append((key, f"engine error at finish: {exc}"))
            return
        for event in events:
            stats.n_alerts += 1
            if collect_alerts:
                stats.alerts.append((key, event))

    if batch_size is not None and batch_size > 1 and hasattr(engine, "feed_batch"):
        return _replay_batched(
            engine, packets, stats, contexts, poisoned, seen,
            drain, collect_alerts, isolate, max_flows, batch_size,
        )

    for packet in packets:
        if not packet.payload:
            continue
        key = packet.key
        if key in poisoned:
            stats.n_skipped += 1
            continue
        context = contexts.pop(key, None)
        if context is None:
            if max_flows is not None and len(contexts) >= max_flows:
                victim, victim_context = next(iter(contexts.items()))
                del contexts[victim]
                drain(victim, victim_context)
                stats.n_evicted += 1
            context = engine.new_context()
            seen.add(key)
        # Re-insert so dict order is feed recency (LRU eviction order).
        contexts[key] = context
        start = perf()
        try:
            events = list(engine.feed(context, packet.payload))
        except Exception as exc:  # noqa: BLE001
            if not isolate:
                raise
            poisoned.add(key)
            del contexts[key]
            stats.n_poisoned += 1
            stats.errors.append((key, f"engine error: {exc}"))
            continue
        elapsed = perf() - start
        stats.n_packets += 1
        stats.total_payload += len(packet.payload)
        stats.packet_ns.append(elapsed)
        if events:
            stats.n_alerts += len(events)
            if collect_alerts:
                stats.alerts.extend((key, event) for event in events)
    for key, context in contexts.items():
        drain(key, context)
    stats.n_flows = len(seen)
    return stats


def _replay_batched(
    engine,
    packets: Iterable[Packet],
    stats: ReplayStats,
    contexts: dict,
    poisoned: set,
    seen: set,
    drain,
    collect_alerts: bool,
    isolate: bool,
    max_flows: int | None,
    batch_size: int,
) -> ReplayStats:
    """Lockstep replay loop: gather distinct-flow packets, flush as a batch."""
    perf = time.perf_counter_ns
    pending_keys: list = []
    pending_payloads: list[bytes] = []
    pending_contexts: list = []
    pending_set: set = set()

    def flush() -> None:
        if not pending_keys:
            return
        start = perf()
        try:
            batch_events = engine.feed_batch(pending_contexts, pending_payloads)
        except Exception as exc:  # noqa: BLE001
            if not isolate:
                raise
            # The batch advances its flows jointly; a failure mid-batch can
            # leave any of their contexts partially advanced, so all of them
            # are poisoned rather than guessing which flow is to blame.
            for key in pending_keys:
                poisoned.add(key)
                contexts.pop(key, None)
                stats.n_poisoned += 1
                stats.errors.append((key, f"engine error in batch: {exc}"))
            pending_keys.clear()
            pending_payloads.clear()
            pending_contexts.clear()
            pending_set.clear()
            return
        elapsed = perf() - start
        batch_bytes = sum(len(p) for p in pending_payloads)
        for key, payload, events in zip(pending_keys, pending_payloads, batch_events):
            stats.n_packets += 1
            stats.total_payload += len(payload)
            stats.packet_ns.append(
                round(elapsed * len(payload) / batch_bytes) if batch_bytes else elapsed
            )
            if events:
                stats.n_alerts += len(events)
                if collect_alerts:
                    stats.alerts.extend((key, event) for event in events)
        pending_keys.clear()
        pending_payloads.clear()
        pending_contexts.clear()
        pending_set.clear()

    for packet in packets:
        if not packet.payload:
            continue
        key = packet.key
        if key in poisoned:
            stats.n_skipped += 1
            continue
        if key in pending_set:
            # One chunk per flow per batch: a second packet of the same
            # flow forces the current batch out first, preserving order.
            flush()
        context = contexts.pop(key, None)
        if context is None:
            if max_flows is not None and len(contexts) >= max_flows:
                flush()  # never evict a context that is sitting in a batch
                if len(contexts) >= max_flows:
                    victim, victim_context = next(iter(contexts.items()))
                    del contexts[victim]
                    drain(victim, victim_context)
                    stats.n_evicted += 1
            context = engine.new_context()
            seen.add(key)
        contexts[key] = context
        pending_keys.append(key)
        pending_payloads.append(packet.payload)
        pending_contexts.append(context)
        pending_set.add(key)
        if len(pending_keys) >= batch_size:
            flush()
    flush()
    for key, context in contexts.items():
        drain(key, context)
    stats.n_flows = len(seen)
    return stats
