"""Capture replay with per-packet latency accounting.

A middlebox cares not only about mean throughput but about per-packet
processing latency under flow multiplexing — the operational side of the
paper's ``(q, m)``-per-flow claim.  :func:`replay` pushes a capture's
packets through an engine in timestamp order, one context per flow, and
records per-packet processing times; :class:`ReplayStats` summarises them
(mean/median/p99, per-byte cost, alert counts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable

from ..automata.nfa import MatchEvent
from .flows import FiveTuple, Packet

__all__ = ["ReplayStats", "replay"]


@dataclass
class ReplayStats:
    """Aggregated results of one replay."""

    n_packets: int = 0
    n_flows: int = 0
    total_payload: int = 0
    n_alerts: int = 0
    packet_ns: list[int] = field(default_factory=list)
    alerts: list[tuple[FiveTuple, MatchEvent]] = field(default_factory=list)

    def _percentile(self, fraction: float) -> int:
        if not self.packet_ns:
            return 0
        ordered = sorted(self.packet_ns)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]

    @property
    def mean_ns(self) -> float:
        return sum(self.packet_ns) / len(self.packet_ns) if self.packet_ns else 0.0

    @property
    def p50_ns(self) -> int:
        return self._percentile(0.50)

    @property
    def p99_ns(self) -> int:
        return self._percentile(0.99)

    @property
    def ns_per_byte(self) -> float:
        if not self.total_payload:
            return 0.0
        return sum(self.packet_ns) / self.total_payload

    def describe(self) -> list[str]:
        return [
            f"packets: {self.n_packets}, flows: {self.n_flows}, "
            f"payload: {self.total_payload} B, alerts: {self.n_alerts}",
            f"per-packet latency: mean {self.mean_ns / 1e3:.1f} us, "
            f"p50 {self.p50_ns / 1e3:.1f} us, p99 {self.p99_ns / 1e3:.1f} us",
            f"per-byte cost: {self.ns_per_byte:.1f} ns/B",
        ]


def replay(engine, packets: Iterable[Packet], collect_alerts: bool = True) -> ReplayStats:
    """Drive ``engine`` (an MFA or anything with ``new_context``/``feed``/
    ``finish``) over packets in the given order, timing each packet.

    Packets must be in-order per flow (as produced by our capture writer
    and :func:`~repro.traffic.corpora.corpus_packets`); use
    :class:`~repro.traffic.flows.FlowAssembler` first when they may not be.
    """
    stats = ReplayStats()
    contexts: dict[FiveTuple, object] = {}
    perf = time.perf_counter_ns
    for packet in packets:
        if not packet.payload:
            continue
        context = contexts.get(packet.key)
        if context is None:
            context = engine.new_context()
            contexts[packet.key] = context
        start = perf()
        events = list(engine.feed(context, packet.payload))
        elapsed = perf() - start
        stats.n_packets += 1
        stats.total_payload += len(packet.payload)
        stats.packet_ns.append(elapsed)
        if events:
            stats.n_alerts += len(events)
            if collect_alerts:
                stats.alerts.extend((packet.key, event) for event in events)
    for key, context in contexts.items():
        for event in engine.finish(context):
            stats.n_alerts += 1
            if collect_alerts:
                stats.alerts.append((key, event))
    stats.n_flows = len(contexts)
    return stats
