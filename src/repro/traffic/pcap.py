"""Minimal libpcap file reader/writer with Ethernet/IPv4/TCP/UDP framing.

The paper evaluates on raw ``.pcap`` captures (DARPA, CDX, Nitroba).  Those
corpora are not redistributable here, so the harness *writes* synthetic
captures in the genuine classic-pcap format and reads them back through
this decoder — exercising the same file → packet → flow pipeline a real
deployment uses.  Only what DPI needs is implemented: classic pcap
(magic ``0xa1b2c3d4``, microsecond timestamps), Ethernet II, IPv4 without
options handling beyond the header length field, TCP and UDP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

from .flows import FiveTuple, Packet, PROTO_TCP, PROTO_UDP

__all__ = ["PcapError", "write_pcap", "read_pcap", "encode_packet", "decode_frame"]

_PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")

_ETHERTYPE_IPV4 = 0x0800
_LINKTYPE_ETHERNET = 1


class PcapError(ValueError):
    """Malformed capture file."""


def _checksum(data: bytes) -> int:
    """RFC 1071 internet checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _ip_bytes(dotted: str) -> bytes:
    parts = [int(p) for p in dotted.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad IPv4 address: {dotted!r}")
    return bytes(parts)


def _ip_str(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def encode_packet(packet: Packet) -> bytes:
    """Frame one packet as Ethernet/IPv4/TCP-or-UDP bytes."""
    key = packet.key
    if key.proto == PROTO_TCP:
        l4 = _TCP_HEADER.pack(
            key.src_port,
            key.dst_port,
            packet.seq,
            0,              # ack
            5 << 4,         # data offset: 5 words
            0x18,           # PSH|ACK
            65535,          # window
            0,              # checksum (filled below)
            0,              # urgent
        )
    elif key.proto == PROTO_UDP:
        l4 = _UDP_HEADER.pack(
            key.src_port, key.dst_port, _UDP_HEADER.size + len(packet.payload), 0
        )
    else:
        raise ValueError(f"unsupported protocol {key.proto}")

    total_len = _IPV4_HEADER.size + len(l4) + len(packet.payload)
    src = _ip_bytes(key.src_ip)
    dst = _ip_bytes(key.dst_ip)
    ip = _IPV4_HEADER.pack(
        0x45, 0, total_len, 0, 0, 64, key.proto, 0, src, dst
    )
    ip = ip[:10] + struct.pack("!H", _checksum(ip)) + ip[12:]

    # Transport checksum over the IPv4 pseudo-header.
    pseudo = src + dst + struct.pack("!BBH", 0, key.proto, len(l4) + len(packet.payload))
    csum = _checksum(pseudo + l4 + packet.payload)
    if key.proto == PROTO_TCP:
        l4 = l4[:16] + struct.pack("!H", csum) + l4[18:]
    else:
        l4 = l4[:6] + struct.pack("!H", csum)

    eth = _ETH_HEADER.pack(b"\x02" * 6, b"\x04" * 6, _ETHERTYPE_IPV4)
    return eth + ip + l4 + packet.payload


def decode_frame(frame: bytes) -> Packet | None:
    """Decode an Ethernet frame; returns None for non-IPv4/TCP/UDP frames."""
    if len(frame) < _ETH_HEADER.size:
        return None
    _dst, _src, ethertype = _ETH_HEADER.unpack_from(frame)
    if ethertype != _ETHERTYPE_IPV4:
        return None
    offset = _ETH_HEADER.size
    if len(frame) < offset + _IPV4_HEADER.size:
        return None
    (
        ver_ihl,
        _tos,
        total_len,
        _ident,
        _flags,
        _ttl,
        proto,
        _csum,
        src,
        dst,
    ) = _IPV4_HEADER.unpack_from(frame, offset)
    if ver_ihl >> 4 != 4:
        return None
    ihl = (ver_ihl & 0xF) * 4
    l4_offset = offset + ihl
    end = offset + total_len
    if end > len(frame):
        end = len(frame)
    seq = 0
    if proto == PROTO_TCP:
        if len(frame) < l4_offset + _TCP_HEADER.size:
            return None
        fields = _TCP_HEADER.unpack_from(frame, l4_offset)
        src_port, dst_port, seq = fields[0], fields[1], fields[2]
        data_offset = (fields[4] >> 4) * 4
        payload = frame[l4_offset + data_offset : end]
    elif proto == PROTO_UDP:
        if len(frame) < l4_offset + _UDP_HEADER.size:
            return None
        src_port, dst_port, _length, _csum2 = _UDP_HEADER.unpack_from(frame, l4_offset)
        payload = frame[l4_offset + _UDP_HEADER.size : end]
    else:
        return None
    key = FiveTuple(proto, _ip_str(src), src_port, _ip_str(dst), dst_port)
    return Packet(key=key, payload=payload, seq=seq)


def write_pcap(stream: BinaryIO, packets: Iterable[Packet], snaplen: int = 65535) -> int:
    """Write packets as a classic pcap capture; returns packet count."""
    stream.write(_GLOBAL_HEADER.pack(_PCAP_MAGIC, 2, 4, 0, 0, snaplen, _LINKTYPE_ETHERNET))
    count = 0
    for packet in packets:
        frame = encode_packet(packet)
        ts_sec = int(packet.timestamp)
        ts_usec = int((packet.timestamp - ts_sec) * 1e6)
        stream.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(frame), len(frame)))
        stream.write(frame)
        count += 1
    return count


def read_pcap(stream: BinaryIO) -> Iterator[Packet]:
    """Read a classic pcap capture, yielding decodable packets."""
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic = struct.unpack_from("<I", header)[0]
    if magic != _PCAP_MAGIC:
        raise PcapError(f"unsupported pcap magic {magic:#x}")
    linktype = _GLOBAL_HEADER.unpack(header)[6]
    if linktype != _LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported linktype {linktype}")
    while True:
        record = stream.read(_RECORD_HEADER.size)
        if not record:
            return
        if len(record) < _RECORD_HEADER.size:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, _orig_len = _RECORD_HEADER.unpack(record)
        frame = stream.read(incl_len)
        if len(frame) < incl_len:
            raise PcapError("truncated pcap frame")
        packet = decode_frame(frame)
        if packet is not None:
            yield Packet(
                key=packet.key,
                payload=packet.payload,
                seq=packet.seq,
                timestamp=ts_sec + ts_usec / 1e6,
            )
