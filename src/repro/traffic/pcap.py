"""Minimal libpcap file reader/writer with Ethernet/IPv4/TCP/UDP framing.

The paper evaluates on raw ``.pcap`` captures (DARPA, CDX, Nitroba).  Those
corpora are not redistributable here, so the harness *writes* synthetic
captures in the genuine classic-pcap format and reads them back through
this decoder — exercising the same file → packet → flow pipeline a real
deployment uses.  Only what DPI needs is implemented: classic pcap
(magic ``0xa1b2c3d4``, microsecond timestamps), Ethernet II, IPv4 without
options handling beyond the header length field, TCP and UDP.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterable, Iterator

from .flows import FiveTuple, Packet, PROTO_TCP, PROTO_UDP

__all__ = [
    "PcapError",
    "PcapStats",
    "write_pcap",
    "read_pcap",
    "encode_packet",
    "decode_frame",
]

_PCAP_MAGIC = 0xA1B2C3D4
_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")
_ETH_HEADER = struct.Struct("!6s6sH")
_IPV4_HEADER = struct.Struct("!BBHHHBBH4s4s")
_TCP_HEADER = struct.Struct("!HHIIBBHHH")
_UDP_HEADER = struct.Struct("!HHHH")

_ETHERTYPE_IPV4 = 0x0800
_LINKTYPE_ETHERNET = 1


class PcapError(ValueError):
    """Malformed capture file."""


@dataclass(slots=True)
class PcapStats:
    """What a (tolerant) :func:`read_pcap` pass saw and skipped.

    ``records_read`` counts record headers consumed; ``packets_decoded``
    the frames that decoded into packets; ``undecodable_frames`` those
    that did not (non-IPv4, truncated or corrupt headers);
    ``corrupt_records`` the records abandoned during resynchronization,
    with ``resync_bytes`` the raw bytes scanned past; ``truncated_tail``
    flags a capture that ended mid-record.
    """

    records_read: int = 0
    packets_decoded: int = 0
    undecodable_frames: int = 0
    corrupt_records: int = 0
    resync_bytes: int = 0
    truncated_tail: bool = False

    def describe(self) -> str:
        return (
            f"records {self.records_read}, decoded {self.packets_decoded}, "
            f"undecodable {self.undecodable_frames}, "
            f"corrupt {self.corrupt_records} (+{self.resync_bytes} B resync)"
            + (", truncated tail" if self.truncated_tail else "")
        )


def _checksum(data: bytes) -> int:
    """RFC 1071 internet checksum."""
    if len(data) % 2:
        data += b"\x00"
    total = sum(struct.unpack(f"!{len(data) // 2}H", data))
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def _ip_bytes(dotted: str) -> bytes:
    parts = [int(p) for p in dotted.split(".")]
    if len(parts) != 4 or any(not 0 <= p <= 255 for p in parts):
        raise ValueError(f"bad IPv4 address: {dotted!r}")
    return bytes(parts)


def _ip_str(raw: bytes) -> str:
    return ".".join(str(b) for b in raw)


def encode_packet(packet: Packet) -> bytes:
    """Frame one packet as Ethernet/IPv4/TCP-or-UDP bytes."""
    key = packet.key
    if key.proto == PROTO_TCP:
        l4 = _TCP_HEADER.pack(
            key.src_port,
            key.dst_port,
            packet.seq,
            0,              # ack
            5 << 4,         # data offset: 5 words
            0x18,           # PSH|ACK
            65535,          # window
            0,              # checksum (filled below)
            0,              # urgent
        )
    elif key.proto == PROTO_UDP:
        l4 = _UDP_HEADER.pack(
            key.src_port, key.dst_port, _UDP_HEADER.size + len(packet.payload), 0
        )
    else:
        raise ValueError(f"unsupported protocol {key.proto}")

    total_len = _IPV4_HEADER.size + len(l4) + len(packet.payload)
    src = _ip_bytes(key.src_ip)
    dst = _ip_bytes(key.dst_ip)
    ip = _IPV4_HEADER.pack(
        0x45, 0, total_len, 0, 0, 64, key.proto, 0, src, dst
    )
    ip = ip[:10] + struct.pack("!H", _checksum(ip)) + ip[12:]

    # Transport checksum over the IPv4 pseudo-header.
    pseudo = src + dst + struct.pack("!BBH", 0, key.proto, len(l4) + len(packet.payload))
    csum = _checksum(pseudo + l4 + packet.payload)
    if key.proto == PROTO_TCP:
        l4 = l4[:16] + struct.pack("!H", csum) + l4[18:]
    else:
        l4 = l4[:6] + struct.pack("!H", csum)

    eth = _ETH_HEADER.pack(b"\x02" * 6, b"\x04" * 6, _ETHERTYPE_IPV4)
    return eth + ip + l4 + packet.payload


def decode_frame(frame: bytes) -> Packet | None:
    """Decode an Ethernet frame; returns None for non-IPv4/TCP/UDP frames."""
    if len(frame) < _ETH_HEADER.size:
        return None
    _dst, _src, ethertype = _ETH_HEADER.unpack_from(frame)
    if ethertype != _ETHERTYPE_IPV4:
        return None
    offset = _ETH_HEADER.size
    if len(frame) < offset + _IPV4_HEADER.size:
        return None
    (
        ver_ihl,
        _tos,
        total_len,
        _ident,
        _flags,
        _ttl,
        proto,
        _csum,
        src,
        dst,
    ) = _IPV4_HEADER.unpack_from(frame, offset)
    if ver_ihl >> 4 != 4:
        return None
    ihl = (ver_ihl & 0xF) * 4
    if ihl < _IPV4_HEADER.size or total_len < ihl:
        # A header-length below the fixed header or a total_len smaller
        # than the header itself is corruption; slicing would silently
        # produce empty or wrong payloads, so refuse the frame instead.
        return None
    l4_offset = offset + ihl
    end = offset + total_len
    if end > len(frame):
        end = len(frame)
    seq = 0
    if proto == PROTO_TCP:
        if end < l4_offset + _TCP_HEADER.size:
            return None
        fields = _TCP_HEADER.unpack_from(frame, l4_offset)
        src_port, dst_port, seq = fields[0], fields[1], fields[2]
        data_offset = (fields[4] >> 4) * 4
        payload_start = l4_offset + data_offset
        if data_offset < _TCP_HEADER.size or payload_start > end:
            # data_offset below the fixed TCP header or pointing past the
            # IP datagram: corrupt framing, not an empty payload.
            return None
        payload = frame[payload_start:end]
    elif proto == PROTO_UDP:
        if end < l4_offset + _UDP_HEADER.size:
            return None
        src_port, dst_port, _length, _csum2 = _UDP_HEADER.unpack_from(frame, l4_offset)
        payload = frame[l4_offset + _UDP_HEADER.size : end]
    else:
        return None
    key = FiveTuple(proto, _ip_str(src), src_port, _ip_str(dst), dst_port)
    return Packet(key=key, payload=payload, seq=seq)


def write_pcap(stream: BinaryIO, packets: Iterable[Packet], snaplen: int = 65535) -> int:
    """Write packets as a classic pcap capture; returns packet count."""
    stream.write(_GLOBAL_HEADER.pack(_PCAP_MAGIC, 2, 4, 0, 0, snaplen, _LINKTYPE_ETHERNET))
    count = 0
    for packet in packets:
        frame = encode_packet(packet)
        ts_sec = int(packet.timestamp)
        ts_usec = int((packet.timestamp - ts_sec) * 1e6)
        stream.write(_RECORD_HEADER.pack(ts_sec, ts_usec, len(frame), len(frame)))
        stream.write(frame)
        count += 1
    return count


def read_pcap(
    stream: BinaryIO,
    errors: str = "raise",
    stats: PcapStats | None = None,
) -> Iterator[Packet]:
    """Read a classic pcap capture, yielding decodable packets.

    ``errors="raise"`` (the default) fail-stops with :class:`PcapError`
    on any structural damage — the historical behaviour.

    ``errors="skip"`` is the middlebox mode: a record whose header is
    implausible (length beyond the snaplen, sub-second field overflowing)
    is abandoned and the reader *resynchronizes* by scanning forward for
    the next plausible record header; a capture ending mid-record stops
    the iteration instead of raising.  Everything skipped is accounted in
    ``stats`` (a :class:`PcapStats`, freshly created when not supplied),
    so one corrupt record costs bytes, not the whole trace.
    """
    if errors not in ("raise", "skip"):
        raise ValueError(f"errors must be 'raise' or 'skip', not {errors!r}")
    if stats is None:
        stats = PcapStats()
    header = stream.read(_GLOBAL_HEADER.size)
    if len(header) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap global header")
    magic = struct.unpack_from("<I", header)[0]
    if magic != _PCAP_MAGIC:
        raise PcapError(f"unsupported pcap magic {magic:#x}")
    fields = _GLOBAL_HEADER.unpack(header)
    snaplen, linktype = fields[5], fields[6]
    if linktype != _LINKTYPE_ETHERNET:
        raise PcapError(f"unsupported linktype {linktype}")
    max_len = max(snaplen, 65535)

    if errors == "skip":
        yield from _read_tolerant(stream, max_len, stats)
        return

    while True:
        record = stream.read(_RECORD_HEADER.size)
        if not record:
            return
        if len(record) < _RECORD_HEADER.size:
            raise PcapError("truncated pcap record header")
        ts_sec, ts_usec, incl_len, _orig_len = _RECORD_HEADER.unpack(record)
        frame = stream.read(incl_len)
        if len(frame) < incl_len:
            raise PcapError("truncated pcap frame")
        stats.records_read += 1
        packet = decode_frame(frame)
        if packet is not None:
            stats.packets_decoded += 1
            yield Packet(
                key=packet.key,
                payload=packet.payload,
                seq=packet.seq,
                timestamp=ts_sec + ts_usec / 1e6,
            )
        else:
            stats.undecodable_frames += 1


def _plausible_record(buf: bytes, offset: int, max_len: int) -> bool:
    """Heuristic validity of a record header at ``offset`` in ``buf``."""
    if offset + _RECORD_HEADER.size > len(buf):
        return False
    _ts_sec, ts_usec, incl_len, orig_len = _RECORD_HEADER.unpack_from(buf, offset)
    return (
        0 < incl_len <= max_len
        and incl_len <= orig_len <= max_len
        and ts_usec < 1_000_000
    )


def _read_tolerant(stream: BinaryIO, max_len: int, stats: PcapStats) -> Iterator[Packet]:
    """Record loop for ``errors="skip"``: buffer, validate, resynchronize."""
    buf = bytearray()
    offset = 0

    def ensure(n: int) -> bool:
        """Make at least ``n`` bytes available at ``offset``."""
        need = offset + n
        while len(buf) < need:
            chunk = stream.read(max(65536, need - len(buf)))
            if not chunk:
                return False
            buf.extend(chunk)
        return True

    while True:
        # Bound the buffer: everything before offset is consumed.
        if offset:
            del buf[:offset]
            offset = 0
        if not ensure(_RECORD_HEADER.size):
            if len(buf) > 0:
                stats.truncated_tail = True
            return
        if not _plausible_record(buf, offset, max_len):
            # Corrupt header: abandon this record and scan forward one
            # byte at a time for the next plausible one.
            stats.corrupt_records += 1
            skipped = 0
            while True:
                offset += 1
                skipped += 1
                if not ensure(_RECORD_HEADER.size):
                    stats.resync_bytes += skipped
                    stats.truncated_tail = True
                    return
                if not _plausible_record(buf, offset, max_len):
                    continue
                # Chain check against false positives: accept only when the
                # candidate record is followed by another plausible header,
                # or ends exactly at EOF.
                incl_len = _RECORD_HEADER.unpack_from(buf, offset)[2]
                record_end = _RECORD_HEADER.size + incl_len
                if ensure(record_end + _RECORD_HEADER.size):
                    if _plausible_record(buf, offset + record_end, max_len):
                        break
                elif len(buf) - offset == record_end:
                    break
            stats.resync_bytes += skipped
        ts_sec, ts_usec, incl_len, _orig_len = _RECORD_HEADER.unpack_from(buf, offset)
        if not ensure(_RECORD_HEADER.size + incl_len):
            stats.truncated_tail = True
            return
        start = offset + _RECORD_HEADER.size
        frame = bytes(buf[start : start + incl_len])
        offset = start + incl_len
        stats.records_read += 1
        packet = decode_frame(frame)
        if packet is not None:
            stats.packets_decoded += 1
            yield Packet(
                key=packet.key,
                payload=packet.payload,
                seq=packet.seq,
                timestamp=ts_sec + ts_usec / 1e6,
            )
        else:
            stats.undecodable_frames += 1
