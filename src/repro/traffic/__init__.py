"""Traffic substrate: flows, pcap I/O, and synthetic trace generation."""

from .becchi import DIFFICULTIES, SyntheticTrace, generate_payload, generate_trace
from .corpora import PROFILES, TraceProfile, build_corpus, corpus_packets
from .flows import (
    AssemblerStats,
    DispatchStats,
    FiveTuple,
    Flow,
    FlowAssembler,
    FlowLimits,
    FlowMatch,
    Packet,
    dispatch_flows,
)
from .pcap import PcapError, PcapStats, decode_frame, encode_packet, read_pcap, write_pcap
from .replay import ReplayStats, replay

__all__ = [
    "DIFFICULTIES",
    "SyntheticTrace",
    "generate_payload",
    "generate_trace",
    "PROFILES",
    "TraceProfile",
    "build_corpus",
    "corpus_packets",
    "AssemblerStats",
    "DispatchStats",
    "FiveTuple",
    "Flow",
    "FlowAssembler",
    "FlowLimits",
    "FlowMatch",
    "Packet",
    "dispatch_flows",
    "PcapError",
    "PcapStats",
    "decode_frame",
    "encode_packet",
    "read_pcap",
    "write_pcap",
    "ReplayStats",
    "replay",
]
