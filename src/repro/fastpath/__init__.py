"""Vectorized multi-flow lockstep scanning and compiled-artifact caching.

The scalar engines walk one byte of one flow per interpreter step, so every
reproduced speed figure is dominated by Python dispatch rather than
table-walk cost.  This package amortizes that dispatch two ways:

* :class:`FastPathMFA` — flattens the component DFA into one contiguous
  numpy transition matrix and steps a whole batch of flow contexts in
  lockstep, one vectorized gather per byte position across all lanes
  (data-parallel FSM execution in the style of Mytkowicz et al.,
  ASPLOS 2014), falling back to the scalar filter engine only at the
  sparse positions where the accept bitmap fires;
* :class:`ArtifactCache` / :func:`compile_mfa_cached` — an on-disk cache
  of serialized MFA bundles keyed by the ruleset + options hash, so
  repeated runs (CLI, benchmarks, CI) skip subset construction entirely.

Everything degrades gracefully: without numpy the fastpath engine is a
thin wrapper over the scalar MFA with identical semantics.
"""

from .cache import ArtifactCache, cache_key, compile_mfa_cached, default_cache_dir
from .engine import HAVE_NUMPY, FastPathMFA, build_fastpath
from .prefilter import PrefilterRuntime, build_prefilter, plan_summary

__all__ = [
    "ArtifactCache",
    "FastPathMFA",
    "HAVE_NUMPY",
    "PrefilterRuntime",
    "build_fastpath",
    "build_prefilter",
    "cache_key",
    "compile_mfa_cached",
    "default_cache_dir",
    "plan_summary",
]
