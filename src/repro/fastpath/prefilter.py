"""Required-literal prefilter: skim clean traffic, confirm suspicious windows.

The splitter's components are ideal prefilter anchors (ROADMAP item 1, and
the Hyperflex/approximate-NFA shape from PAPERS.md): almost every component
contains a *required* run of positional byte classes — a literal, a
case-insensitive literal, a class-wrapped literal — and a component match
ending at byte ``p`` implies that run occurred at a bounded distance before
``p``.  So instead of walking every byte through the MFA, the engine can

1. *scan* the raw bytes for chain-anchor candidates with a handful of
   whole-buffer table lookups (one 2-byte-gram membership test plus a few
   sparse per-position class gathers),
2. turn each verified chain occurrence into a *record interval* of byte
   positions where component accepts may fire, and
3. run the full automaton only over those intervals (plus a small warm-up
   prefix per interval), replaying filter ops exactly.

The stage is strictly an overapproximation: a rule set where any component
has no extractable required chain compiles to *no plan at all* (``None``),
which the engine treats as "every byte is suspicious" — the classic
lockstep path.  False positives cost only wasted confirm work; false
negatives are impossible by construction (property-tested, and gated by the
equivalence prover's replay surface).

Exactness of the windowed walk rests on three facts, all checked at plan
build time:

* every non-pure-clear component is *bounded* (longest word ``<= w``), so a
  DFA walk started ``w`` bytes before a record interval reaches the exact
  subset-construction state by the time recording starts — unanchored
  partial matches are suffix-determined within ``w`` bytes, and any false
  anchored partial introduced by the mid-payload restart has died;
* pure-clear components (``.*[X]`` and the coalesced ``.*[X]+[^X]``) fire
  from the last one or two bytes only; in the gaps between record intervals
  their effect is a commutative, idempotent *clear summary* — "did any
  position in the gap fire this spec" — applied between window replays;
* every chunk records its first byte (exact entering-state walk), its last
  byte (exact final DFA state, which is what ``finish()`` and the next
  chunk need), and a small *horizon* prefix that covers accepts predicted
  by chain occurrences straddling the previous chunk boundary.

The plan itself is a plain JSON-able dict: built once at compile time
(pure Python, no numpy), serialized into the MFA bundle, and compiled into
numpy lookup tables by :class:`PrefilterRuntime` at engine construction.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Optional

from ..core.filters import NONE, FilterAction
from ..regex.analysis import max_length, min_length, required_chains
from ..regex.ast import ClassNode, Concat, Node, Repeat
from ..regex.charclass import CharClass

if TYPE_CHECKING:  # pragma: no cover - typing only, no runtime cycle
    from ..core.mfa import MFA

try:  # pragma: no cover - exercised via HAVE_NUMPY both ways in tests
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a wheel dependency
    _np = None

__all__ = ["build_prefilter", "PrefilterRuntime", "plan_summary"]

PLAN_VERSION = 1

# A component longer than this would force absurd warm-ups; give up and use
# the classic full-scan path instead.
_MAX_WARMUP = 4096
# Anchor-quality caps: a 2-byte-gram anchor may match at most this many of
# the 65536 grams, a single-byte anchor at most this many of the 256 bytes.
# Weaker anchors would flag so much clean traffic that prefiltering loses.
_MAX_PAIR_PRODUCT = 4096
_MAX_SINGLE_CLASS = 16

_ENV_MIN_LITERAL = "REPRO_PREFILTER_MIN_LITERAL"


def _min_literal_default() -> int:
    try:
        return max(1, int(os.environ.get(_ENV_MIN_LITERAL, "1")))
    except ValueError:
        return 1


# Rough per-byte commonness in benign network payloads (text-heavy
# protocol mix).  Anchor pairs are ranked by how often they would fire on
# clean traffic, not just by class size: for a pure literal chain every
# pair has class product 1, but "nt" fires orders of magnitude more often
# than "-T".  Scale is arbitrary — only relative order matters; 1 is the
# floor so no byte ever scores zero.
_BYTE_WEIGHT = [1] * 256
for _b in range(0x30, 0x3A):  # digits
    _BYTE_WEIGHT[_b] = 15
for _b, _w in ((0x20, 180), (0x0D, 25), (0x0A, 25), (0x09, 8), (0x00, 12)):
    _BYTE_WEIGHT[_b] = _w
for _ch, _w in (
    ("e", 127), ("t", 91), ("a", 82), ("o", 75), ("i", 70), ("n", 67),
    ("s", 63), ("h", 61), ("r", 60), ("d", 43), ("l", 40), ("c", 28),
    ("u", 28), ("m", 24), ("w", 24), ("f", 22), ("g", 20), ("y", 20),
    ("p", 19), ("b", 15), ("v", 10), ("k", 8), ("j", 2), ("x", 2),
    ("q", 1), ("z", 1),
):
    _BYTE_WEIGHT[ord(_ch)] = _w
    _BYTE_WEIGHT[ord(_ch.upper())] = max(1, _w // 4)
for _ch in ".,:;-/?=&%+_\"'<>()[]":
    _BYTE_WEIGHT[ord(_ch)] = 6


def _class_weight(bits: int) -> int:
    """Summed byte commonness of a class given as a 256-bit bitmap."""
    total = 0
    while bits:
        lsb = bits & -bits
        total += _BYTE_WEIGHT[lsb.bit_length() - 1]
        bits ^= lsb
    return total


def _pure_clear_spec(root: Node, action: FilterAction) -> Optional[dict]:
    """Clear-summary spec for a pure-clear component, or ``None``.

    Matches exactly the two shapes the splitter emits for almost-dot-star
    clear components: ``[X]`` (fires when the current byte is in X) and the
    coalesced ``[X]+[^X]`` (fires when the previous byte is in X and the
    current is not).
    """
    if (
        action.clear == NONE
        or action.test != NONE
        or action.set != NONE
        or action.report != NONE
        or action.record != NONE
        or action.distance is not None
    ):
        return None
    if isinstance(root, ClassNode):
        return {
            "bit": action.clear,
            "last": format(root.cls.bits, "064x"),
            "first": None,
        }
    if (
        isinstance(root, Concat)
        and len(root.parts) == 2
        and isinstance(root.parts[0], Repeat)
        and root.parts[0].min == 1
        and root.parts[0].max is None
        and isinstance(root.parts[0].child, ClassNode)
        and isinstance(root.parts[1], ClassNode)
    ):
        return {
            "bit": action.clear,
            "last": format(root.parts[1].cls.bits, "064x"),
            "first": format(root.parts[0].child.cls.bits, "064x"),
        }
    return None


def _chain_anchor(classes: tuple[CharClass, ...]) -> Optional[int]:
    """Offset of the best usable anchor in the chain, or ``None``.

    For chains of two or more classes the anchor is an adjacent pair
    (scanned as a 2-byte gram), chosen as the pair least likely to fire
    on clean traffic (byte-commonness score) among pairs narrow enough to
    stay selective; single-class chains anchor on the byte itself and
    must be narrow enough to stay selective.
    """
    if len(classes) == 1:
        return 0 if 0 < len(classes[0]) <= _MAX_SINGLE_CLASS else None
    best: Optional[int] = None
    best_score = None
    for k in range(len(classes) - 1):
        product = len(classes[k]) * len(classes[k + 1])
        if not 0 < product <= _MAX_PAIR_PRODUCT:
            continue
        score = _class_weight(classes[k].bits) * _class_weight(
            classes[k + 1].bits
        )
        if best_score is None or score < best_score:
            best = k
            best_score = score
    return best


def build_prefilter(
    mfa: "MFA", min_literal: Optional[int] = None, audit: bool = False
) -> Optional[dict]:
    """Compile a prefilter plan from an MFA's split provenance.

    Returns ``None`` whenever the plan cannot be *sound and useful*: no
    split provenance (deserialized bundles carry the plan instead), a
    component with no extractable required chain, an unbounded component,
    or an anchor too weak to be selective.  ``None`` means the engine falls
    back to scanning every byte — never an unsound plan.

    ``audit=True`` is the introspection hook for the adversarial audit
    (:mod:`repro.analyze.adversary`): instead of abandoning the plan at
    the first uncoverable component, it *skips* that component and
    records ``(match_id, reason)`` under ``stats["uncoverable"]``, and
    the plan carries ``"audit": True``.  An audit plan is **unsound for
    production matching** — skipped components would be missed — and the
    engine never builds one on its own; it exists so the worst-case cost
    of the prefilter stage can be analyzed and replayed even on rule
    sets one pathological component keeps from shipping a plan.
    """
    components = mfa.split.components
    if not components:
        return None
    if min_literal is None:
        min_literal = _min_literal_default()
    program = mfa.program

    warmup = 2  # pure-clear subset state depends on the last <= 2 bytes
    a_max = 0
    horizon = 1  # always record byte 0: entering-state exactness
    chains: list[dict] = []
    clears: list[dict] = []
    n_anchored = 0
    n_end_anchored = 0

    uncoverable: list[dict] = []

    for component in components:
        action = program.actions.get(component.match_id)
        if action is not None:
            spec = _pure_clear_spec(component.root, action)
            if spec is not None:
                clears.append(spec)
                continue
            if action.clear != NONE and action.set == NONE and action.report == NONE:
                # A clear-only action whose shape we cannot summarize: its
                # accepts could fire in gaps unsummarized, so no plan.
                if audit:
                    uncoverable.append(
                        {"match_id": component.match_id, "reason": "clear-shape"}
                    )
                    continue
                return None
        longest = max_length(component.root)
        if longest is None or longest == 0 or longest > _MAX_WARMUP:
            if audit:
                uncoverable.append(
                    {"match_id": component.match_id, "reason": "unbounded"}
                )
                continue
            return None
        warmup = max(warmup, longest)
        if component.anchored:
            # Anchored accepts all land in the first ``a_max`` bytes of the
            # flow, which the head interval records; no chain needed.
            a_max = max(a_max, longest)
            n_anchored += 1
            continue
        if component.end_anchored:
            # End-anchored ids only ever enter ``accepts_end``; the exact
            # final DFA state (last byte is always recorded) covers them.
            n_end_anchored += 1
            continue
        if min_length(component.root) == 0:
            if audit:
                uncoverable.append(
                    {"match_id": component.match_id, "reason": "nullable"}
                )
                continue
            return None
        cover = required_chains(component.root)
        if cover is None:
            if audit:
                uncoverable.append(
                    {"match_id": component.match_id, "reason": "no-chain"}
                )
                continue
            return None
        specs: list[dict] = []
        bad = None
        for chain in cover:
            if len(chain.classes) < min_literal:
                bad = "short-chain"
                break
            anchor = _chain_anchor(chain.classes)
            if anchor is None:
                bad = "weak-anchor"
                break
            specs.append(
                {
                    "classes": [format(c.bits, "064x") for c in chain.classes],
                    "tail_min": chain.tail_min,
                    "tail_max": chain.tail_max,
                    "anchor": anchor,
                }
            )
        if bad is not None:
            if audit:
                uncoverable.append({"match_id": component.match_id, "reason": bad})
                continue
            return None
        for spec in specs:
            horizon = max(
                horizon, len(spec["classes"]) - 1 + int(spec["tail_max"])
            )
        chains.extend(specs)

    stats = {
        "n_components": len(components),
        "n_chains": len(chains),
        "n_clears": len(clears),
        "n_anchored": n_anchored,
        "n_end_anchored": n_end_anchored,
    }
    plan: dict = {
        "version": PLAN_VERSION,
        "w": warmup,
        "a_max": a_max,
        "horizon": horizon,
        "chains": chains,
        "clears": clears,
        "stats": stats,
    }
    if audit:
        stats["uncoverable"] = uncoverable
        plan["audit"] = True
    return plan


def plan_summary(plan: Optional[dict]) -> str:
    """One-line human description (used by reports and benchmarks)."""
    if plan is None:
        return "no plan (classic full scan)"
    stats = plan.get("stats", {})
    return (
        f"{stats.get('n_chains', 0)} chains, {stats.get('n_clears', 0)} clear "
        f"specs over {stats.get('n_components', 0)} components "
        f"(warmup {plan.get('w', 0)}, horizon {plan.get('horizon', 0)})"
    )


def _class_row(bits_hex: str):
    """256-entry bool membership row from a hex bitmap."""
    bits = int(bits_hex, 16)
    row = _np.zeros(256, dtype=bool)
    for byte in range(256):
        if bits >> byte & 1:
            row[byte] = True
    return row


def _gram_value(first, second):
    """Native-order uint16 gram values for byte pairs (first, second).

    A contiguous payload viewed as ``uint16`` yields, at gram index ``g``,
    the value of bytes ``(2g, 2g+1)`` in machine byte order; all gram
    tables are indexed the same way so candidate grams can be read
    straight out of the view with no shift/or passes over the buffer.
    """
    if _np.little_endian:
        return (first[:, None] | (second[None, :] << 8)).ravel()
    return ((first[:, None] << 8) | second[None, :]).ravel()


def _gram_bytes():
    """(b0, b1) byte planes of every gram value in native order."""
    idx = _np.arange(65536)
    lo = idx & 0xFF
    hi = idx >> 8
    return (lo, hi) if _np.little_endian else (hi, lo)


def _nonzero_u8(arr):
    """``flatnonzero`` for a uint8 array without the astype(bool) copy.

    ``view(bool)`` reinterprets the same bytes; numpy's nonzero scan on a
    bool array tests byte != 0, so arbitrary nonzero values are found
    exactly like 1s (measured ~20% faster than astype + flatnonzero, and
    7x faster than flatnonzero on the raw uint8).
    """
    return _np.flatnonzero(arr.view(bool))


class _Chain:
    __slots__ = (
        "tables", "steps", "length", "anchor", "banchor",
        "tail_min", "tail_max", "pair_ok", "pair_b_ok",
    )

    def __init__(self, spec: dict):
        rows = [_class_row(h) for h in spec["classes"]]
        self.tables = _np.stack(rows)
        self.length = len(rows)
        self.steps = _np.arange(self.length, dtype=_np.int64)[:, None]
        self.anchor = int(spec["anchor"])
        self.tail_min = int(spec["tail_min"])
        self.tail_max = int(spec["tail_max"])
        # Anchor-pair membership over all 65536 native-order grams, plus —
        # for chains of three or more classes — a second pair at an
        # odd offset from the anchor.  Two pairs whose offsets differ by
        # an odd amount have opposite parities inside any occurrence, so
        # whichever one lands on an even buffer position shows up in the
        # even-gram stream: scanning both pair sets over even grams alone
        # catches every occurrence with no odd-position machinery at all.
        # Any odd offset difference works, so B is the rarest-scoring
        # pair of the opposite parity (same byte-commonness ranking as
        # the anchor itself); a chain with no selective-enough B pair
        # keeps the odd-position machinery instead.
        self.pair_ok = None
        self.pair_b_ok = None
        self.banchor = None
        if self.length >= 2:
            self.pair_ok = self._pair_table(self.anchor)
        if self.length >= 3:
            weights = _np.asarray(_BYTE_WEIGHT, dtype=_np.int64)
            best = best_score = None
            for k in range(self.length - 1):
                if not (k - self.anchor) & 1:
                    continue
                product = int(self.tables[k].sum()) * int(
                    self.tables[k + 1].sum()
                )
                if not 0 < product <= _MAX_PAIR_PRODUCT:
                    continue
                score = int(weights[self.tables[k]].sum()) * int(
                    weights[self.tables[k + 1]].sum()
                )
                if best_score is None or score < best_score:
                    best = k
                    best_score = score
            if best is not None:
                self.banchor = best
                self.pair_b_ok = self._pair_table(best)

    def _pair_table(self, offset: int):
        first = _np.flatnonzero(self.tables[offset])
        second = _np.flatnonzero(self.tables[offset + 1])
        table = _np.zeros(65536, dtype=bool)
        table[_gram_value(first, second)] = True
        return table


# Bit assignments in the 65536-entry gram-bits table.  One ``take`` per
# 2-byte gram answers every whole-buffer question the scan needs.
_G_PAIR_A = 1  # gram is an anchor pair starting at its even position
_G_PAIR_B = 2  # gram is an adjacent-to-anchor pair at its even position
_G_ODD_HEAD = 4  # 2-class chains only: second byte can start the pair (odd)
_G_ODD_TAIL = 8  # 2-class chains only: first byte can end the pair (odd)
_G_SINGLE_B0 = 16  # gram's first byte is a single-byte-chain anchor
_G_SINGLE_B1 = 32  # gram's second byte is a single-byte-chain anchor
_G_CLEAR_BITS = (64, 128)  # gram contains a byte of clear group 0 / 1
_G_CAND_MASK = (
    _G_PAIR_A | _G_PAIR_B | _G_ODD_HEAD | _G_SINGLE_B0 | _G_SINGLE_B1
)


class _ScanResult:
    """One batch scan: verified chain occurrences plus the gram-bit row.

    ``ends``/``tail_min``/``tail_max`` are parallel int64 arrays of
    verified chain end positions (in no particular order — the engine
    sorts per flow anyway) with their per-occurrence tail bounds: an
    accept predicted by the occurrence at ``e`` lies in
    ``[e + tail_min, e + tail_max]``.  The gram-bit row ``tu`` is kept so
    gap clear queries can be answered lazily — only batches that carry a
    live bit plane across a gap ever pay for them.
    """

    __slots__ = ("runtime", "buf", "tu", "ends", "tail_min", "tail_max")

    def __init__(self, runtime: "PrefilterRuntime", buf):
        self.runtime = runtime
        self.buf = buf
        self.tu = None
        empty = _np.empty(0, dtype=_np.int64)
        self.ends = empty
        self.tail_min = empty
        self.tail_max = empty

    def gap_fired_groups(self, gap_lo, gap_hi) -> list[tuple[object, int]]:
        """Per-clear-group gap fires: ``[(fired bool array, AND-mask)]``.

        ``gap_lo``/``gap_hi`` are parallel int64 arrays of inclusive,
        non-empty gap bounds (absolute buffer positions).  Gaps never
        contain a flow's byte 0 or the buffer's last byte (every flow
        records its first and last byte), so boundary reads stay in range.

        A fast clear group fires in a gap iff some gap byte is in its
        class: at gram granularity, iff some even gram *fully inside* the
        gap has the group's bit set, or a half-covered boundary byte (odd
        ``lo``, even ``hi``) is in the class.  Fully-inside grams are
        answered with one ``maximum.reduceat`` over interleaved per-gap
        gram bounds — a single pass that skips every byte outside the
        gaps.  ``reduceat`` needs two care points: a bound may equal the
        array length only because of the one-slot zero pad, and an empty
        range (``g_lo >= g_hi1``) returns ``x[g_lo]`` rather than 0, so
        empty interiors are masked off explicitly.
        """
        runtime = self.runtime
        buf = self.buf
        n_gaps = len(gap_lo)
        lo_half = (gap_lo & 1) == 1  # gap starts mid-gram: check byte lo
        hi_half = (gap_hi & 1) == 0  # gap ends mid-gram: check byte hi
        lo_bytes = buf.take(gap_lo)
        hi_bytes = buf.take(gap_hi)
        fired_groups: list[tuple[object, int]] = []
        tu = self.tu
        if runtime.fast_clear_groups and tu is not None:
            g_lo = (gap_lo + 1) >> 1
            g_hi1 = ((gap_hi - 1) >> 1) + 1
            nonempty = g_lo < g_hi1
            bounds = _np.empty(2 * n_gaps, dtype=_np.int64)
            bounds[0::2] = g_lo
            bounds[1::2] = g_hi1
            x8 = _np.empty(tu.size + 1, dtype=_np.uint8)
            x8[-1] = 0
            for bit, row, and_mask in runtime.fast_clear_groups:
                _np.bitwise_and(tu, bit, out=x8[:-1])
                fired = _np.maximum.reduceat(x8, bounds)[0::2] != 0
                fired &= nonempty
                fired |= row.take(lo_bytes) & lo_half
                fired |= row.take(hi_bytes) & hi_half
                fired_groups.append((fired, and_mask))
        elif runtime.fast_clear_groups:
            for bit, row, and_mask in runtime.fast_clear_groups:
                fired = row.take(lo_bytes) & lo_half
                fired |= row.take(hi_bytes) & hi_half
                fired_groups.append((fired, and_mask))
        if runtime.lazy_clear_groups:
            # Byte-level bounds: gaps never touch position 0 or the last
            # byte, so gap_hi + 1 is always a legal reduceat index.
            bbounds = _np.empty(2 * n_gaps, dtype=_np.int64)
            bbounds[0::2] = gap_lo
            bbounds[1::2] = gap_hi + 1
            for last_row, first_row, and_mask in runtime.lazy_clear_groups:
                fires = last_row.take(buf)
                if first_row is not None:
                    fires[1:] &= first_row.take(buf[:-1])
                    fires[0] = False
                fired = _np.maximum.reduceat(fires, bbounds)[0::2]
                fired_groups.append((fired, and_mask))
        return fired_groups

    def gap_masks(self, gap_lo, gap_hi) -> list[int]:
        """Per-gap combined AND-masks (convenience over the group fires)."""
        fired_groups = self.gap_fired_groups(gap_lo, gap_hi)
        if self.runtime.masks_fit_i64:
            out = _np.full(len(gap_lo), -1, dtype=_np.int64)
            for fired, and_mask in fired_groups:
                out[fired] &= and_mask
            return out.tolist()
        masks = [-1] * len(gap_lo)
        for fired, and_mask in fired_groups:
            for k in _np.flatnonzero(fired).tolist():
                masks[k] &= and_mask
        return masks


class PrefilterRuntime:
    """Numpy lookup tables compiled from a prefilter plan.

    ``scan`` runs over the whole concatenated batch buffer.  The buffer is
    viewed as half-length native-endian ``uint16`` grams and gathered once
    through a 65536-entry *gram-bits* table whose bits answer every
    whole-buffer question at once: even-position anchor (A) and
    adjacent-to-anchor (B) pairs, the odd-position head/tail halves that
    only 2-class chains still need, single-byte-chain anchors at either
    parity, and clear-group membership.  Chains of three or more classes
    carry two pairs at consecutive offsets — opposite parities inside any
    occurrence — so scanning even grams for A and B catches every such
    occurrence with no odd-position pass at all.  One ``flatnonzero``
    over the combined candidate byte then yields every position worth
    looking at; all remaining work (sparse odd-gram resolution, chain-id
    gathers, stacked window verification) happens on those sparse
    candidates.  Cross-flow grams can produce spurious candidates; the
    engine clips every interval to its flow, so spurious candidates only
    cost work, never correctness.
    """

    def __init__(self, plan: dict):
        if _np is None:  # pragma: no cover - engine gates on HAVE_NUMPY
            raise RuntimeError("PrefilterRuntime requires numpy")
        if plan.get("version") != PLAN_VERSION:
            raise ValueError(f"unsupported prefilter plan version: {plan.get('version')}")
        self.plan = plan
        self.warmup = int(plan["w"])
        self.a_max = int(plan["a_max"])
        self.horizon = int(plan["horizon"])
        self.chains = [_Chain(spec) for spec in plan["chains"]]
        self.pair_chains = [c for c in self.chains if c.length >= 2]
        self.single_chains = [c for c in self.chains if c.length == 1]
        # Chains without a usable B pair (2-class chains, and longer ones
        # whose opposite-parity pairs are all too wide) still need the
        # odd-position machinery; their pair union resolves the sparse
        # odd-gram candidates.
        self.odd_chains = [c for c in self.pair_chains if c.pair_b_ok is None]
        self.odd_union = None
        for chain in self.odd_chains:
            if self.odd_union is None:
                self.odd_union = _np.zeros(65536, dtype=bool)
            self.odd_union |= chain.pair_ok
        self.single_union = None
        for chain in self.single_chains:
            if self.single_union is None:
                self.single_union = _np.zeros(256, dtype=bool)
            self.single_union |= chain.tables[0]
        # Clear specs with identical class rows fire in exactly the same
        # gaps; dedupe them into groups with a combined AND-mask.  The
        # first two current-byte-only groups ride the gram-bits table
        # (answered from the scan's one big gather); rarer shapes keep an
        # exact lazy whole-buffer path.
        grouped: dict[tuple[str, Optional[str]], int] = {}
        for spec in plan["clears"]:
            key = (spec["last"], spec["first"])
            grouped[key] = grouped.get(key, -1) & ~(1 << int(spec["bit"]))
        self.fast_clear_groups: list[tuple[int, object, int]] = []
        self.lazy_clear_groups: list[tuple[object, object, int]] = []
        for (last_hex, first_hex), and_mask in grouped.items():
            last_row = _class_row(last_hex)
            if first_hex is None and len(self.fast_clear_groups) < len(_G_CLEAR_BITS):
                bit = _G_CLEAR_BITS[len(self.fast_clear_groups)]
                self.fast_clear_groups.append((bit, last_row, and_mask))
            else:
                first_row = _class_row(first_hex) if first_hex is not None else None
                self.lazy_clear_groups.append((last_row, first_row, and_mask))
        self.has_clears = bool(self.fast_clear_groups or self.lazy_clear_groups)
        # Gap masks accumulate in an int64 vector when every clear bit fits
        # (bit <= 62 keeps ~(1 << bit) representable); a program with more
        # filter bits falls back to arbitrary-precision python ints.
        self.masks_fit_i64 = all(
            int(spec["bit"]) <= 62 for spec in plan["clears"]
        )
        self.gram_bits = None
        if self.pair_chains or self.single_chains or self.fast_clear_groups:
            bits = _np.zeros(65536, dtype=_np.uint8)
            b0, b1 = _gram_bytes()
            for chain in self.pair_chains:
                bits[chain.pair_ok] |= _G_PAIR_A
                if chain.pair_b_ok is not None:
                    bits[chain.pair_b_ok] |= _G_PAIR_B
            if self.odd_chains:
                head = _np.zeros(256, dtype=bool)
                tail = _np.zeros(256, dtype=bool)
                for chain in self.odd_chains:
                    head |= chain.tables[chain.anchor]
                    tail |= chain.tables[chain.anchor + 1]
                bits[head[b1]] |= _G_ODD_HEAD
                bits[tail[b0]] |= _G_ODD_TAIL
            if self.single_union is not None:
                bits[self.single_union[b0]] |= _G_SINGLE_B0
                bits[self.single_union[b1]] |= _G_SINGLE_B1
            for bit, row, _mask in self.fast_clear_groups:
                bits[row[b0]] |= bit
                bits[row[b1]] |= bit
            self.gram_bits = bits
        # Unified pair-chain verification: gram -> chain-id tables let one
        # stacked gather verify every candidate at once instead of one pass
        # per chain.  Separate tables for the A (anchor) and B (adjacent)
        # pair alphabets; grams claimed by two chains in the same alphabet
        # (rare) are marked ambiguous and re-verified per chain.
        self.chain_id_a = None
        self.chain_id_b = None
        self.ambig_a = None
        self.ambig_b = None
        if self.pair_chains:
            n_chains = len(self.pair_chains)
            longest = max(c.length for c in self.pair_chains)
            cid_a = _np.full(65536, -1, dtype=_np.int16)
            cid_b = _np.full(65536, -1, dtype=_np.int16)
            ambig_a = _np.zeros(65536, dtype=bool)
            ambig_b = _np.zeros(65536, dtype=bool)
            tables3 = _np.ones((n_chains, longest, 256), dtype=bool)
            self.vanchor = _np.empty(n_chains, dtype=_np.int64)
            self.vbanchor = _np.zeros(n_chains, dtype=_np.int64)
            self.vlen = _np.empty(n_chains, dtype=_np.int64)
            self.vtmin = _np.empty(n_chains, dtype=_np.int64)
            self.vtmax = _np.empty(n_chains, dtype=_np.int64)
            for k, chain in enumerate(self.pair_chains):
                ambig_a |= chain.pair_ok & (cid_a >= 0)
                cid_a[chain.pair_ok] = k
                if chain.pair_b_ok is not None:
                    ambig_b |= chain.pair_b_ok & (cid_b >= 0)
                    cid_b[chain.pair_b_ok] = k
                    self.vbanchor[k] = chain.banchor
                # Steps past a chain's length stay all-True: padding rows
                # accept every byte, so one (longest, m) gather fits all.
                tables3[k, : chain.length] = chain.tables
                self.vanchor[k] = chain.anchor
                self.vlen[k] = chain.length
                self.vtmin[k] = chain.tail_min
                self.vtmax[k] = chain.tail_max
            self.chain_id_a = cid_a
            self.chain_id_b = cid_b
            self.vtflat = tables3.reshape(-1)
            self.vlong = longest
            if bool(ambig_a.any()):
                self.ambig_a = ambig_a
            if bool(ambig_b.any()):
                self.ambig_b = ambig_b

    def _verify_per_chain(
        self, buf, n, acand, agrams, use_b, ends_parts, tmin_parts, tmax_parts
    ) -> None:
        """Exact per-chain verify for ambiguous-gram candidates.

        ``acand``/``agrams`` are candidate anchor positions and their gram
        values for grams claimed by more than one chain in the A (or, with
        ``use_b``, the B) pair alphabet; every claiming chain gets a full
        window check and contributes its own occurrences.
        """
        for chain in self.pair_chains:
            table = chain.pair_b_ok if use_b else chain.pair_ok
            if table is None:
                continue
            offset = chain.banchor if use_b else chain.anchor
            start = acand[table.take(agrams)] - offset
            if start.size == 0:
                continue
            good = (start >= 0) & (start <= n - chain.length)
            if not good.all():
                start = start[good]
                if start.size == 0:
                    continue
            window = buf[start[None, :] + chain.steps]
            alive = chain.tables[chain.steps, window].all(axis=0)
            ends = start[alive] + (chain.length - 1)
            if ends.size:
                ends_parts.append(ends)
                tmin_parts.append(
                    _np.full(ends.size, chain.tail_min, dtype=_np.int64)
                )
                tmax_parts.append(
                    _np.full(ends.size, chain.tail_max, dtype=_np.int64)
                )

    def scan(self, buf) -> _ScanResult:
        """Verified chain occurrences over a batch buffer."""
        n = buf.size
        res = _ScanResult(self, buf)
        ends_parts = []
        tmin_parts = []
        tmax_parts = []
        ge = tu = att = atv = None
        if n >= 2 and self.gram_bits is not None:
            ge = buf[: 2 * (n // 2)].view(_np.uint16)
            res.tu = tu = self.gram_bits.take(ge)
        if tu is not None and (self.pair_chains or self.single_chains):
            cand8 = tu & _G_CAND_MASK
            att = _nonzero_u8(cand8)
            if att.size:
                atv = cand8.take(att)
        if self.pair_chains and atv is not None:
            starts_parts: list = []
            cids_parts: list = []

            def _collect(cand, cgrams, cid_table, ambig_table, use_b):
                cid = cid_table.take(cgrams)
                if ambig_table is not None and cand.size:
                    # Grams claimed by two chains: per-chain fallback,
                    # then drop them from the unified pass.
                    amb = ambig_table.take(cgrams)
                    if amb.any():
                        self._verify_per_chain(
                            buf, n, cand[amb], cgrams[amb], use_b,
                            ends_parts, tmin_parts, tmax_parts,
                        )
                        keep = ~amb
                        cand = cand[keep]
                        cid = cid[keep]
                if cand.size:
                    anchors = self.vbanchor if use_b else self.vanchor
                    starts_parts.append(cand - anchors.take(cid))
                    cids_parts.append(cid)

            # Source A: anchor pairs landing on even positions.
            e_a = att.take(_nonzero_u8(atv & _G_PAIR_A))
            cand_a = e_a * 2
            grams_a = ge.take(e_a)
            # Source odd (2-class chains only): head half in gram g, tail
            # half in gram g+1; resolved sparsely on the head candidates.
            g_o = att.take(_nonzero_u8(atv & _G_ODD_HEAD))
            if g_o.size and self.odd_union is not None:
                ok = g_o + 1 < tu.size
                if not ok.all():
                    # A pair ending at an odd buffer's last byte has no
                    # tail gram and is skipped here: sound, because the
                    # tail span always records the flow's last byte and
                    # the next chunk's horizon prefix covers accepts
                    # predicted past this chunk's end.
                    g_o = g_o[ok]
                if g_o.size:
                    t_ok = tu.take(g_o + 1) & _G_ODD_TAIL
                    g_o = g_o.take(_nonzero_u8(t_ok))
                if g_o.size:
                    # Reconstruct the odd gram's value from the two even
                    # grams it straddles.  (An unaligned uint16 view of
                    # buf[1:] would read it in one take, but numpy's
                    # unaligned gather is ~7x slower than these aligned
                    # element ops.)
                    gv = ge.take(g_o)
                    nxt = buf.take(g_o * 2 + 2).astype(_np.uint16)
                    if _np.little_endian:
                        v_odd = (gv >> 8) | (nxt << 8)
                    else:
                        v_odd = ((gv & 0xFF) << 8) | nxt
                    osel = self.odd_union.take(v_odd)
                    cand_a = _np.concatenate((cand_a, g_o[osel] * 2 + 1))
                    grams_a = _np.concatenate((grams_a, v_odd[osel]))
            _collect(cand_a, grams_a, self.chain_id_a, self.ambig_a, False)
            # Source B: adjacent-to-anchor pairs on even positions (chains
            # of 3+ classes).  Exactly one of A/B is even-aligned in any
            # occurrence, so A and B never double-report one occurrence.
            e_b = att.take(_nonzero_u8(atv & _G_PAIR_B))
            if e_b.size:
                _collect(
                    e_b * 2, ge.take(e_b), self.chain_id_b, self.ambig_b, True
                )
            start = cid = None
            if starts_parts:
                start = (
                    starts_parts[0]
                    if len(starts_parts) == 1
                    else _np.concatenate(starts_parts)
                )
                cid = (
                    cids_parts[0]
                    if len(cids_parts) == 1
                    else _np.concatenate(cids_parts)
                )
            if start is not None and start.size:
                lens = self.vlen.take(cid)
                good = (start >= 0) & (start + lens <= n)
                if not good.all():
                    start = start[good]
                    cid = cid[good]
                    lens = lens[good]
                if start.size:
                    # Step-at-a-time flat-table verify: each step is one
                    # clipped buffer gather plus one table take over the
                    # surviving candidates.  Most candidates die within a
                    # step or two of the anchor, so the set is compacted
                    # every time survival halves — the loop's tail runs on
                    # a shrinking remnant instead of the full front.  The
                    # check itself stops once the remnant is small enough
                    # that full-width steps are already near-free.
                    # Padding steps past a chain's length accept any byte,
                    # and clip mode keeps their clamped reads in range.
                    tflat = self.vtflat
                    cbase = cid.astype(_np.int64) * (self.vlong << 8)
                    alive = None
                    for t in range(self.vlong):
                        idx = cbase + (t << 8)
                        idx += buf.take(start + t, mode="clip")
                        ok = tflat.take(idx)
                        if alive is None:
                            alive = ok
                        else:
                            alive &= ok
                        if alive.size > 1024:
                            live = _np.flatnonzero(alive)
                            if live.size * 2 < alive.size:
                                start = start.take(live)
                                cid = cid.take(live)
                                lens = lens.take(live)
                                cbase = cbase.take(live)
                                alive = None
                                if start.size == 0:
                                    break
                    if alive is not None:
                        live = _np.flatnonzero(alive)
                        start = start.take(live)
                        cid = cid.take(live)
                        lens = lens.take(live)
                    if start.size:
                        ends = start + lens - 1
                        ends_parts.append(ends)
                        tmin_parts.append(self.vtmin.take(cid))
                        tmax_parts.append(self.vtmax.take(cid))
        if self.single_chains and n:
            spos_parts = []
            if atv is not None:
                s0 = att.take(_nonzero_u8(atv & _G_SINGLE_B0))
                if s0.size:
                    spos_parts.append(s0 * 2)
                s1 = att.take(_nonzero_u8(atv & _G_SINGLE_B1))
                if s1.size:
                    spos_parts.append(s1 * 2 + 1)
            # An odd-length buffer's last byte is in no even gram.
            if n & 1 and bool(self.single_union[buf[n - 1]]):
                spos_parts.append(_np.array([n - 1], dtype=_np.int64))
            if spos_parts:
                spos = (
                    spos_parts[0]
                    if len(spos_parts) == 1
                    else _np.concatenate(spos_parts)
                )
                sbytes = buf.take(spos)
                for chain in self.single_chains:
                    ends = spos[chain.tables[0].take(sbytes)]
                    if ends.size:
                        ends_parts.append(ends)
                        tmin_parts.append(
                            _np.full(ends.size, chain.tail_min, dtype=_np.int64)
                        )
                        tmax_parts.append(
                            _np.full(ends.size, chain.tail_max, dtype=_np.int64)
                        )

        if ends_parts:
            res.ends = _np.concatenate(ends_parts)
            res.tail_min = _np.concatenate(tmin_parts)
            res.tail_max = _np.concatenate(tmax_parts)
        return res
