"""The batch lockstep scan engine.

The per-flow parsing state of an MFA is a ``(q, m)`` pair, and the DFA half
``q`` advances independently of the filter memory ``m`` (§III-B's queue
observation: raw matches may be collected first and filtered later).  That
decoupling is what makes the data-parallel layout work:

1. *Lockstep phase* — N lanes step through their payload segments in
   lockstep: one vectorized table gather per byte position advances every
   lane at once, and the per-position state vector is recorded into a
   history matrix.
2. *Filter phase* — accepting positions are detected from the history with
   whole-matrix comparisons, and only those sparse positions run the scalar
   filter ops, threading each flow's filter memory in payload order —
   byte-identical to the scalar ``MFA.feed`` stream (property-tested).

Lanes are not just flows.  Each flow's payload is cut into fixed-size
segments and every segment gets its own lane; segments after the first
start from the *speculated* DFA start state and a scalar stitch pass
re-steps only the (typically tiny) diverged prefix afterwards.  IDS-style
``.*``-prefixed rule DFAs converge within a handful of bytes on benign
traffic, so speculation is almost always free — and when it is not, the
fixup is bounded by the segment length, never wrong.  This turns even a
single long flow into data-parallel work.

Several table-layout tricks keep the per-byte numpy overhead down:

* the transition matrix is stored byte-class compressed — one column per
  alphabet group (``DFA.group_of_byte``), with payload bytes translated
  to group ids once per batch;
* next-state entries are stored *premultiplied* by the column count, so
  the lockstep step is ``flat.take(states + column)`` — a flat ``take``
  into a preallocated history row instead of 2-D fancy indexing (roughly
  half the per-call cost);
* states are renumbered into three tiers — plain, mask-only ops,
  full decision ops — so accept detection over the whole history is one
  ``>= threshold`` comparison, and runs of *idempotent* mask-only ops
  (``bits & clear | set`` applied twice is the same as once) are collapsed
  to their first hit before the scalar replay loop ever sees them.
"""

from __future__ import annotations

import os
from math import sqrt
from typing import Iterator, Sequence

from ..automata.nfa import MatchEvent
from ..core.filters import NONE
from ..core.mfa import MFA, FlowContext
from .prefilter import PrefilterRuntime, build_prefilter

try:  # pragma: no cover - exercised via HAVE_NUMPY both ways in tests
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a wheel dependency
    _np = None

HAVE_NUMPY = _np is not None

__all__ = ["FastPathMFA", "build_fastpath", "HAVE_NUMPY"]

# Segment-length clamps for the auto sizing rule L ~ sqrt(batch_bytes / 8):
# short segments mean more lanes (cheap, vectorized) and fewer lockstep
# positions (expensive, one numpy call each), but every extra lane adds a
# little scalar stitch bookkeeping, so L grows with the batch.
_MIN_SEGMENT = 128
_MAX_SEGMENT = 8192

# Prefiltered batches fall back to the classic lockstep walk when the
# candidate windows cover more than this fraction of the payload (both
# paths are exact; past this density the windowed walk stops winning) or
# when the window history matrix would outgrow the cache-friendly range.
_DENSITY_FALLBACK_NUM = 3
_DENSITY_FALLBACK_DEN = 8
_HIST_CELL_CAP = 1 << 22

_PREFILTER_ENV = "REPRO_PREFILTER"
_PREFILTER_MODES = ("on", "off", "auto")

# Chain-walk mode: how many states get a materialised dense row in the
# hot-state overlay cache (BFS from the start state).  IDS DFAs spend
# almost all benign-traffic time within a few hops of the start, so a few
# thousand dense rows (<= 4 MB premultiplied) resolve the vast majority of
# lane steps without any forest walk — small change against the tens of
# megabytes of dense table that chain mode exists to avoid.
# ``REPRO_CHAIN_HOT`` overrides (tests force tiny caches to exercise the
# cold walk; memory-desperate deployments can shrink it).
_HOT_STATES = 4096
_HOT_ENV = "REPRO_CHAIN_HOT"


def _apply_ops(ops, memory, absolute: int, engine_process, append) -> None:
    """Run one state's decision ops against a flow's filter memory.

    This is the exact scalar block from ``MFA.feed`` (clear-flood mask
    pair, inline bit-plane actions, engine deferral for register-plane
    actions), factored out so the lockstep engine's sparse filter phase
    cannot drift from the reference semantics.
    """
    if type(ops) is list:
        memory.bits = memory.bits & ops[1] | ops[0]
        return
    for match_id, test, set_mask, clear_mask, report, needs_engine in ops:
        if needs_engine:
            confirmed = engine_process(memory, absolute, match_id)
            if confirmed != NONE:
                append(MatchEvent(absolute, confirmed))
            continue
        bits = memory.bits
        if test >= 0 and not bits >> test & 1:
            continue
        if set_mask or clear_mask:
            memory.bits = (bits & ~clear_mask) | set_mask
        if report >= 0:
            append(MatchEvent(absolute, report))


class FastPathMFA:
    """A batch scan engine over a compiled :class:`~repro.core.mfa.MFA`.

    Drop-in for the scalar streaming trio (``new_context``/``feed``/
    ``finish``) plus the batch entry points ``feed_batch`` and
    ``run_batch``.  Contexts are plain :class:`FlowContext` objects, so
    scalar and batch processing of the same flow can be freely mixed.

    ``segment_bytes`` pins the lane segment length (mostly for tests);
    by default it is sized per batch from the total payload.  Without
    numpy every batch call degrades to the scalar engine, semantics
    unchanged.

    ``prefilter`` selects the required-literal prefilter stage: ``"on"``
    and ``"auto"`` use the compiled plan when one exists (building it from
    split provenance on the fly if the MFA carries none), ``"off"`` always
    scans every byte.  ``None`` reads ``REPRO_PREFILTER`` (default
    ``auto``).  The prefiltered path is byte-identical to the classic one
    — it only changes which bytes the automaton walks.
    """

    def __init__(
        self,
        mfa: MFA,
        segment_bytes: int | None = None,
        batch_hint: int = 64,
        prefilter: str | None = None,
    ):
        if segment_bytes is not None and segment_bytes < 1:
            raise ValueError("segment_bytes must be positive")
        self.mfa = mfa
        self.segment_bytes = segment_bytes
        # How many flows callers should aim to hand feed_batch/run_batch at
        # once; advisory (any batch size works).
        self.batch_hint = batch_hint
        mode = prefilter if prefilter is not None else os.environ.get(_PREFILTER_ENV, "auto")
        if mode not in _PREFILTER_MODES:
            raise ValueError(f"prefilter must be one of {_PREFILTER_MODES}, got {mode!r}")
        self.prefilter_mode = mode
        self._prefilter_runtime: PrefilterRuntime | None = None
        # Why a requested prefilter is not running (None when it is, or was
        # never requested/available).  Surfaced by ScanReport so chain-mode
        # deployments see the drop instead of silently losing the stage.
        self.prefilter_disabled: str | None = None
        self._vector_ready = False
        # Chain-walk mode: set when the MFA's DFA is a forest-backed
        # ChainDFA (compressed bundle loaded without flattening).  The
        # lockstep step then resolves transitions through the hot-state
        # cache plus a bounded vectorized chain walk instead of one dense
        # premultiplied table.
        self._chain = False
        if HAVE_NUMPY:
            self._build_tables()
        # The prefiltered path gathers from the dense flat table, which
        # chain mode deliberately never materialises; candidate windows
        # would also defeat the hot-state cache's locality.  Chain mode is
        # the memory-constrained configuration — it takes the classic walk.
        if mode != "off" and self._vector_ready and not self._chain:
            plan = mfa.prefilter
            if plan is None:
                plan = build_prefilter(mfa)
            if plan is not None:
                self._prefilter_runtime = PrefilterRuntime(plan)
        elif mode != "off" and self._chain and mfa.prefilter is not None:
            # The artifact carries a compiled plan the chain kernel cannot
            # use — say so instead of dropping the stage without trace.
            self.prefilter_disabled = "chain-decode"

    @property
    def prefilter_active(self) -> bool:
        """True when batches actually route through the prefilter stage."""
        return self._prefilter_runtime is not None

    # -- build ---------------------------------------------------------------

    def _build_tables(self) -> None:
        from ..automata.compress import ChainDFA

        dfa = self.mfa.dfa
        n = dfa.n_states
        if n == 0:
            return
        if isinstance(dfa, ChainDFA):
            self._build_chain_tables(dfa)
            return
        dense = _np.frombuffer(
            b"".join(row.tobytes() for row in dfa.rows), dtype=_np.int32
        ).reshape(n, 256)
        # Byte-class compression: keep one column per alphabet group and a
        # 256-entry byte -> group map applied to payloads once per batch.
        if dfa.group_of_byte is not None and dfa.n_groups and dfa.n_groups < 256:
            groups = _np.frombuffer(dfa.group_of_byte.tobytes(), dtype=_np.int32)
            ncols = int(groups.max()) + 1
            _, representatives = _np.unique(groups, return_index=True)
            grouped = dense[:, representatives]
        else:
            groups = _np.arange(256, dtype=_np.int32)
            ncols = 256
            grouped = dense
        # Three-tier renumbering: [no ops | mask-only ops | full ops].  With
        # every accepting state at the top of the id space, accept detection
        # over the whole history matrix is one comparison; the middle tier
        # marks states whose ops are an idempotent mask pair, so repeated
        # consecutive hits collapse to one application in the filter phase.
        ops_table = self.mfa._ops
        tier = _np.zeros(n, dtype=_np.int8)
        for q, ops in enumerate(ops_table):
            if ops is not None:
                tier[q] = 1 if type(ops) is list else 2
        order = _np.concatenate(
            [_np.nonzero(tier == 0)[0], _np.nonzero(tier == 1)[0], _np.nonzero(tier == 2)[0]]
        ).astype(_np.int64)
        perm = _np.empty(n, dtype=_np.int64)
        perm[order] = _np.arange(n, dtype=_np.int64)
        # Premultiplied layout: stored ids are renumbered-state * ncols, so
        # the lockstep step indexes the flat table with a single add.
        dtype = _np.int16 if n * ncols <= 0x7FFF else _np.int32
        flat = (perm[grouped[order]] * ncols).astype(dtype).ravel()
        self._flat = _np.ascontiguousarray(flat)
        self._byte_map = groups.astype(dtype)
        self._ncols = ncols
        self._dtype = dtype
        n_plain = int((tier == 0).sum())
        n_mask = int((tier == 1).sum())
        self._thr_any = n_plain * ncols  # premultiplied ids >= this accept
        self._thr_full = (n_plain + n_mask) * ncols  # >= this: non-idempotent ops
        self._perm_p = (perm * ncols).tolist()  # original -> premultiplied
        self._inv = order.tolist()  # renumbered -> original
        self._ops_by_rid = [ops_table[q] for q in self._inv]
        self._start_p = int(perm[dfa.start]) * ncols
        # byte -> group id as a str.translate table: C-speed payload
        # translation instead of a per-byte numpy gather.
        self._translate = bytes(groups.astype(_np.uint8)) if ncols < 256 else None
        self._scratch_key: tuple[int, int] | None = None
        self._vector_ready = True

    def _build_chain_tables(self, dfa) -> None:
        """Vector tables for a forest-backed ChainDFA (no dense flat table).

        The same three-tier renumbering and premultiplied-id conventions as
        the dense build (so the stitch and filter phases run unchanged),
        but transitions are answered from three structures instead of one
        gather: a hot-state dense cache (BFS-nearest states to the start,
        one materialised row each), a sorted ``rid*256+byte -> target``
        overlay array binary-searched per chain hop, and premultiplied
        per-rid parent/root maps for the bounded walk.  Byte-class
        compression is skipped — the forest is keyed by raw byte, and the
        hot cache absorbs the column blow-up.
        """
        forest = dfa.forest
        n = forest.n_states
        ops_table = self.mfa._ops
        tier = _np.zeros(n, dtype=_np.int8)
        for q, ops in enumerate(ops_table):
            if ops is not None:
                tier[q] = 1 if type(ops) is list else 2
        order = _np.concatenate(
            [_np.nonzero(tier == 0)[0], _np.nonzero(tier == 1)[0], _np.nonzero(tier == 2)[0]]
        ).astype(_np.int64)
        perm = _np.empty(n, dtype=_np.int64)
        perm[order] = _np.arange(n, dtype=_np.int64)
        ncols = 256
        dtype = _np.int32
        self._ncols = ncols
        self._dtype = dtype
        n_plain = int((tier == 0).sum())
        n_mask = int((tier == 1).sum())
        self._thr_any = n_plain * ncols
        self._thr_full = (n_plain + n_mask) * ncols
        self._perm_p = (perm * ncols).tolist()
        self._inv = order.tolist()
        self._ops_by_rid = [ops_table[q] for q in self._inv]
        self._start_p = int(perm[forest.start]) * ncols
        self._byte_map = _np.arange(256, dtype=dtype)
        self._translate = None
        self._scratch_key = None

        # Renumbered, premultiplied forest.  parent_p/root_slot are indexed
        # by rid; a root's parent_p cell is never read (the walk answers at
        # the root first), so zero is a safe fill.
        parent = _np.frombuffer(forest.parent.tobytes(), dtype=_np.int32).astype(_np.int64)
        has_parent = parent >= 0
        parent_p = _np.zeros(n, dtype=_np.int64)
        parent_p[perm] = _np.where(has_parent, perm[_np.maximum(parent, 0)] * ncols, 0)
        root_index = _np.frombuffer(
            forest.root_index.tobytes(), dtype=_np.int32
        ).astype(_np.int64)
        root_slot = _np.full(n, -1, dtype=_np.int64)
        root_slot[perm] = root_index
        root_orig = _np.frombuffer(
            b"".join(bytes(memoryview(row)) for row in forest.root_rows),
            dtype=_np.int32,
        ).astype(_np.int64)
        root_flat = (perm[root_orig] * ncols).astype(dtype)

        perm_l = perm.tolist()
        key_list: list[int] = []
        val_list: list[int] = []
        for q, overlay in enumerate(forest.overlays):
            base = perm_l[q] * ncols
            for byte, target in overlay.items():
                key_list.append(base + byte)
                val_list.append(perm_l[target] * ncols)
        ov_keys = _np.asarray(key_list, dtype=_np.int64)
        ov_vals = _np.asarray(val_list, dtype=dtype)
        sort = _np.argsort(ov_keys, kind="stable")
        self._ov_keys = ov_keys[sort]
        self._ov_vals = ov_vals[sort]
        self._parent_p = parent_p
        self._root_slot = root_slot
        self._root_flat = root_flat

        # Hot-state dense overlay cache: BFS from the start state, one
        # materialised (root-row copy + overlay patches down the chain)
        # premultiplied row per hot state.
        f_parent = forest.parent
        f_root_index = forest.root_index
        f_root_rows = forest.root_rows
        f_overlays = forest.overlays

        def row_of(q: int) -> list[int]:
            path = []
            cur = q
            while f_parent[cur] >= 0:
                path.append(cur)
                cur = f_parent[cur]
            row = list(f_root_rows[f_root_index[cur]])
            for state in reversed(path):
                for byte, target in f_overlays[state].items():
                    row[byte] = target
            return row

        hot_cap = min(n, int(os.environ.get(_HOT_ENV, "") or _HOT_STATES))
        seen = bytearray(n)
        seen[forest.start] = 1
        queue = [forest.start]
        head = 0
        hot_rows: list[list[int]] = []
        hot_orig: list[int] = []
        while head < len(queue) and len(hot_orig) < hot_cap:
            q = queue[head]
            head += 1
            row = row_of(q)
            hot_orig.append(q)
            hot_rows.append(row)
            for target in row:
                if not seen[target]:
                    seen[target] = 1
                    queue.append(target)
        # hot ids stored premultiplied (row offset into hot_flat) with a
        # negative sentinel for cold rids: the step is then one take + add.
        hot_id = _np.full(n, -ncols, dtype=_np.int64)
        for h, q in enumerate(hot_orig):
            hot_id[perm_l[q]] = h * ncols
        self._hot_id = hot_id
        self._hot_flat = (
            perm[_np.asarray(hot_rows, dtype=_np.int64).ravel()] * ncols
        ).astype(dtype)
        self._all_hot = len(hot_orig) == n
        self._chain = True
        self._vector_ready = True

    def _chain_step(self, states, crow, out) -> None:
        """One lockstep position in chain mode: hot-cache gather for cached
        lanes, bounded vectorized forest walk for the rest.

        ``states`` holds premultiplied renumbered ids (rid * 256), so
        ``states + byte`` is simultaneously the overlay key and — via
        ``>> 8`` — the rid.  The cold walk mirrors the scalar
        ``CompressedDFA.next_state`` loop with the unresolved lane set
        shrinking at each hop; every chain ends at a root within the
        compile-time depth bound, so the loop is bounded."""
        rid = states >> 8
        idx = self._hot_id.take(rid)
        idx += crow
        self._hot_flat.take(idx, mode="clip", out=out)  # cold lanes clip to 0
        if self._all_hot:
            return
        cold_idx = _np.flatnonzero(idx < 0)
        if not cold_idx.size:
            return
        keys = (states[cold_idx].astype(_np.int64)) + crow[cold_idx]
        pending = cold_idx
        ov_keys = self._ov_keys
        ov_vals = self._ov_vals
        root_slot = self._root_slot
        root_flat = self._root_flat
        parent_p = self._parent_p
        while pending.size:
            if ov_keys.size:
                pos = _np.searchsorted(ov_keys, keys)
                pos_c = _np.minimum(pos, ov_keys.size - 1)
                found = ov_keys[pos_c] == keys
                if found.any():
                    out[pending[found]] = ov_vals[pos_c[found]]
                    rest = ~found
                    pending = pending[rest]
                    keys = keys[rest]
                    if not pending.size:
                        return
            rid_c = keys >> 8
            byte_c = keys & 255
            slot = root_slot[rid_c]
            is_root = slot >= 0
            if is_root.any():
                out[pending[is_root]] = root_flat[(slot[is_root] << 8) + byte_c[is_root]]
                deeper = ~is_root
                pending = pending[deeper]
                if not pending.size:
                    return
                rid_c = rid_c[deeper]
                byte_c = byte_c[deeper]
            keys = parent_p[rid_c] + byte_c

    def _scratch(self, segment: int, m: int):
        """Reusable per-shape work arrays (steady batches alloc nothing)."""
        if self._scratch_key != (segment, m):
            dtype = self._dtype
            self._scratch_key = (segment, m)
            self._cols = _np.empty((segment, m), dtype=dtype)
            self._hist = _np.empty((segment, m), dtype=dtype)
            self._mask = _np.empty((segment, m), dtype=bool)
            self._idx = _np.empty(m, dtype=dtype)
            self._state_buf = _np.empty(m, dtype=dtype)
        return self._cols, self._hist, self._mask, self._idx, self._state_buf

    # -- introspection -------------------------------------------------------

    @property
    def n_states(self) -> int:
        return self.mfa.n_states

    def memory_bytes(self) -> int:
        """The scalar MFA image plus the lockstep tables (dense flat table,
        or the chain-mode forest arrays and hot-state cache)."""
        extra = 0
        if self._vector_ready:
            if self._chain:
                extra = (
                    self._hot_flat.nbytes
                    + self._hot_id.nbytes
                    + self._root_flat.nbytes
                    + self._root_slot.nbytes
                    + self._parent_p.nbytes
                    + self._ov_keys.nbytes
                    + self._ov_vals.nbytes
                    + self._byte_map.nbytes
                )
            else:
                extra = self._flat.nbytes + self._byte_map.nbytes
        return self.mfa.memory_bytes() + extra

    def filter_bytes(self) -> int:
        return self.mfa.filter_bytes()

    # -- scalar streaming trio (drop-in for dispatch/replay drivers) ---------

    def new_context(self) -> FlowContext:
        return self.mfa.new_context()

    def feed(self, context: FlowContext, data: bytes) -> Iterator[MatchEvent]:
        return self.mfa.feed(context, data)

    def finish(self, context: FlowContext) -> Iterator[MatchEvent]:
        return self.mfa.finish(context)

    # -- batch interface -----------------------------------------------------

    def run(self, data: bytes) -> list[MatchEvent]:
        """Match one complete payload (segmented internally for parallelism)."""
        return self.run_batch([data])[0]

    def run_batch(self, payloads: Sequence[bytes]) -> list[list[MatchEvent]]:
        """Match N complete payloads; returns one confirmed-event list each."""
        contexts = [self.new_context() for _ in payloads]
        results = self.feed_batch(contexts, payloads)
        for context, events in zip(contexts, results):
            events.extend(self.finish(context))
        return results

    def feed_batch(
        self, contexts: Sequence[FlowContext], payloads: Sequence[bytes]
    ) -> list[list[MatchEvent]]:
        """Advance N flows by one payload chunk each, in lockstep.

        Event streams and final ``(q, m)`` contexts are byte-identical to
        feeding each chunk through the scalar ``MFA.feed``.
        """
        if len(contexts) != len(payloads):
            raise ValueError("contexts and payloads must pair up")
        total = sum(len(p) for p in payloads)
        if not self._vector_ready or total == 0:
            return self._feed_scalar(contexts, payloads)
        if self._prefilter_runtime is not None:
            results = self._feed_prefiltered(contexts, payloads, total)
            if results is not None:
                return results
        return self._feed_lockstep(contexts, payloads, total)

    def _feed_lockstep(
        self, contexts: Sequence[FlowContext], payloads: Sequence[bytes], total: int
    ) -> list[list[MatchEvent]]:
        """The classic every-byte lockstep walk (also the density fallback)."""
        segment = self.segment_bytes
        if segment is None:
            segment = max(_MIN_SEGMENT, min(_MAX_SEGMENT, int(sqrt(total / 4))))

        # -- lane layout: each flow contributes ceil(len/L) padded segments.
        n_flows = len(payloads)
        lengths = _np.fromiter(
            (len(p) for p in payloads), dtype=_np.int64, count=n_flows
        )
        n_lanes_per = -(-lengths // segment)
        starts = _np.concatenate(([0], _np.cumsum(n_lanes_per)))  # flow -> lane 0
        m = int(starts[-1])
        pieces: list[bytes] = []
        for payload in payloads:
            if not payload:
                continue
            pieces.append(payload)
            pad = -len(payload) % segment
            if pad:
                pieces.append(b"\x00" * pad)
        buf = b"".join(pieces)
        lane_flow = _np.repeat(_np.arange(n_flows, dtype=_np.int64), n_lanes_per)
        lane_off = _np.arange(m, dtype=_np.int64) - starts[lane_flow]
        lane_off *= segment  # lane -> first byte's offset within its flow chunk
        lane_len_arr = _np.minimum(segment, lengths[lane_flow] - lane_off)

        # Payload bytes -> table columns (C-speed bytes.translate), laid out
        # transposed so each lockstep position reads one contiguous row.
        cols, hist, mask, idx, states = self._scratch(segment, m)
        if self._translate is not None:
            buf = buf.translate(self._translate)
        _np.copyto(cols, _np.frombuffer(buf, dtype=_np.uint8).reshape(m, segment).T)

        perm_p = self._perm_p
        states.fill(self._start_p)
        for f in range(n_flows):
            if n_lanes_per[f]:  # lane 0 starts from the flow's true state
                states[starts[f]] = perm_p[contexts[f].state]

        # -- lockstep phase: one flat gather per position across every lane
        # (or, in chain mode, a hot-cache gather plus bounded forest walk).
        if self._chain:
            chain_step = self._chain_step
            for crow, hrow in zip(list(cols), list(hist)):
                chain_step(states, crow, hrow)
                states = hrow
        else:
            flat = self._flat
            for crow, hrow in zip(list(cols), list(hist)):
                _np.add(states, crow, out=idx)
                # Indices are valid by construction; 'clip' skips bounds checks.
                flat.take(idx, out=hrow, mode="clip")
                states = hrow

        ends = hist[lane_len_arr - 1, _np.arange(m)].tolist()

        # -- stitch phase: fix up speculative lane starts, flow by flow.
        rows = self.mfa.dfa.rows
        start_p = self._start_p
        ncols = self._ncols
        inv = self._inv
        lane_len = lane_len_arr.tolist()
        finals: list[int] = [0] * n_flows
        for f in range(n_flows):
            first, last = int(starts[f]), int(starts[f + 1])
            if first == last:
                continue
            state = contexts[f].state  # original ids
            payload = payloads[f]
            for lane in range(first, last):
                if lane > first and perm_p[state] != start_p:
                    # Speculation missed: re-step scalarly until the true
                    # trajectory meets the speculated one, patching history.
                    base = (lane - first) * segment
                    converged = False
                    for p in range(lane_len[lane]):
                        state = rows[state][payload[base + p]]
                        repositioned = perm_p[state]
                        if repositioned == hist[p, lane]:
                            converged = True
                            break
                        hist[p, lane] = repositioned
                    if not converged:
                        continue  # `state` already the lane's true end
                state = inv[ends[lane] // ncols]
            finals[f] = state

        # -- filter phase: sparse accepting positions through the scalar ops.
        results: list[list[MatchEvent]] = [[] for _ in payloads]
        if self._thr_any < self.n_states * ncols:  # some state has ops
            _np.greater_equal(hist, self._thr_any, out=mask)
            hot_pos, hot_lane = _np.nonzero(mask)
            if hot_pos.size:
                # Padded tail bytes can wander into accepting states; they
                # are not part of any flow, so drop them before collapsing.
                valid = hot_pos < lane_len_arr[hot_lane]
                if not valid.all():
                    hot_pos = hot_pos[valid]
                    hot_lane = hot_lane[valid]
            if hot_pos.size:
                # nonzero() walks position-major; reorder to per-flow payload
                # order (lane-major) so ops replay exactly as the scalar feed.
                order = _np.argsort(hot_lane * segment + hot_pos)
                hot_pos = hot_pos[order]
                hot_lane = hot_lane[order]
                sids = hist[hot_pos, hot_lane]
                flows = lane_flow[hot_lane]
                # Run-collapse: a mask-pair op is idempotent, so a hit whose
                # immediate predecessor (same flow, payload order) is the
                # same state is a no-op and never reaches the Python loop.
                keep = _np.empty(hot_lane.size, dtype=bool)
                keep[0] = True
                _np.not_equal(sids[1:], sids[:-1], out=keep[1:])
                keep[1:] |= sids[1:] >= self._thr_full
                keep[1:] |= flows[1:] != flows[:-1]
                offs = lane_off[hot_lane] + hot_pos
                flows_l = flows[keep].tolist()
                offs_l = offs[keep].tolist()
                sids_l = sids[keep].tolist()
                ops_by_rid = self._ops_by_rid
                engine_process = self.mfa.engine.process
                thr_full = self._thr_full
                current = -1
                memory = None
                bits = 0
                base = 0
                append = None
                for f, off, sid in zip(flows_l, offs_l, sids_l):
                    if f != current:
                        if memory is not None:
                            memory.bits = bits
                        current = f
                        memory = contexts[f].memory
                        bits = memory.bits
                        base = contexts[f].offset
                        append = results[f].append
                    ops = ops_by_rid[sid // ncols]
                    if sid < thr_full:  # mask pair, inlined for the hot case
                        bits = bits & ops[1] | ops[0]
                    else:
                        memory.bits = bits
                        _apply_ops(ops, memory, base + off, engine_process, append)
                        bits = memory.bits
                if memory is not None:
                    memory.bits = bits

        for f, context in enumerate(contexts):
            if n_lanes_per[f]:
                context.state = finals[f]
            context.offset += len(payloads[f])
        return results

    # -- prefiltered path ----------------------------------------------------

    def _feed_prefiltered(
        self, contexts: Sequence[FlowContext], payloads: Sequence[bytes], total: int
    ) -> list[list[MatchEvent]] | None:
        """Scan only candidate windows; ``None`` defers to the classic walk.

        Stage one scans the concatenated batch buffer for required-chain
        occurrences and clear-spec fires (all whole-buffer numpy table
        lookups).  Stage two turns occurrences into merged per-flow record
        intervals — always including byte 0 (exact entering-state walk), a
        small horizon prefix (chunk-boundary-straddling occurrences), the
        anchored head, and the last byte (exact final state).  Stage three
        walks one warm-started lane per interval in lockstep, lanes sorted
        by length so dead lanes compact off the active prefix, then
        replays the sparse accepting positions through the scalar filter
        ops with gap clear summaries applied between windows.
        """
        runtime = self._prefilter_runtime
        assert runtime is not None
        warm = runtime.warmup
        n_flows = len(payloads)
        joined = b"".join(payloads)
        buf = _np.frombuffer(joined, dtype=_np.uint8)
        lengths = _np.fromiter(
            (len(p) for p in payloads), dtype=_np.int64, count=n_flows
        )
        flow_starts = _np.concatenate(([0], _np.cumsum(lengths)))

        res = runtime.scan(buf)
        ends = res.ends

        # Chain occurrences -> per-flow candidate spans, flow-clipped.
        # Occurrences whose predicted accepts fall past the chunk end are
        # dropped: the next chunk's horizon prefix covers them.
        if ends.size:
            flow_of = _np.searchsorted(flow_starts, ends, side="right") - 1
            rel = ends - flow_starts[flow_of]
            span_lo = rel + res.tail_min
            span_hi = rel + res.tail_max
            flen = lengths[flow_of]
            keep = span_lo < flen
            if not keep.all():
                flow_of = flow_of[keep]
                span_lo = span_lo[keep]
                span_hi = span_hi[keep]
                flen = flen[keep]
            _np.minimum(span_hi, flen - 1, out=span_hi)
        else:
            flow_of = span_lo = span_hi = ends  # all empty int64

        # Merge head/chain/tail spans into record windows, fully vectorized:
        # spans sorted by (flow, lo), a running max of span ends, and a
        # window break wherever the next span starts more than warm+1 past
        # everything seen so far (any closer and the walk would re-cover
        # the gap anyway).  This guarantees every non-first window's warm
        # start stays inside the chunk and every gap between windows is
        # non-empty and past byte 0.  Every non-empty flow contributes a
        # head span (byte 0, the horizon prefix, and the anchored-head
        # range) and a tail span (the last byte: exact final state).
        horizon = runtime.horizon
        a_max = runtime.a_max
        perm_p = self._perm_p
        nz = _np.flatnonzero(lengths)
        head_hi = _np.full(nz.size, horizon - 1, dtype=_np.int64)
        if a_max:
            offs = _np.fromiter(
                (contexts[f].offset for f in nz.tolist()),
                dtype=_np.int64,
                count=nz.size,
            )
            _np.maximum(head_hi, a_max - 1 - offs, out=head_hi)
        _np.minimum(head_hi, lengths[nz] - 1, out=head_hi)
        tail_lo = lengths[nz] - 1
        all_flow = _np.concatenate((nz, flow_of, nz))
        all_lo = _np.concatenate(
            (_np.zeros(nz.size, dtype=_np.int64), span_lo, tail_lo)
        )
        all_hi = _np.concatenate((head_hi, span_hi, tail_lo))
        order = _np.lexsort((all_lo, all_flow))
        all_flow = all_flow.take(order)
        all_lo = all_lo.take(order)
        all_hi = all_hi.take(order)
        # Offsetting spans by flow * stride makes the running max per-flow
        # for free: a flow boundary always breaks (stride >> any length).
        stride = _np.int64(1) << 40
        key_lo = all_lo + all_flow * stride
        run_hi = _np.maximum.accumulate(all_hi + all_flow * stride)
        n_spans = all_lo.size
        new_win = _np.empty(n_spans, dtype=bool)
        new_win[0] = True
        _np.greater(key_lo[1:], run_hi[:-1] + (1 + warm), out=new_win[1:])
        sidx = _np.flatnonzero(new_win)
        n_win = sidx.size
        w_flow = all_flow.take(sidx)
        w_lo = all_lo.take(sidx)
        last_idx = _np.empty(n_win, dtype=_np.int64)
        last_idx[:-1] = sidx[1:] - 1
        last_idx[-1] = n_spans - 1
        w_hi = run_hi.take(last_idx) - w_flow * stride
        # First window of a flow records from byte 0 with the entering
        # state; later windows warm up from `warm` bytes earlier (the
        # break condition keeps w_lo - warm >= 2).
        w_walk = w_lo - warm
        _np.maximum(w_walk, 0, out=w_walk)
        wf_start = flow_starts.take(w_flow)
        win_start = wf_start + w_walk  # absolute walk start in the buffer
        win_len = w_hi - w_walk + 1
        win_rec = w_lo - w_walk  # record offset within the walk (0 or warm)
        recorded_cost = int(win_len.sum())
        max_len = int(win_len.max())
        if (
            recorded_cost * _DENSITY_FALLBACK_DEN > total * _DENSITY_FALLBACK_NUM
            or max_len * n_win > _HIST_CELL_CAP
        ):
            return None
        first_of = _np.empty(n_win, dtype=bool)
        first_of[0] = True
        _np.not_equal(w_flow[1:], w_flow[:-1], out=first_of[1:])
        entering = _np.fromiter(
            (perm_p[c.state] for c in contexts), dtype=_np.int64, count=n_flows
        )
        win_init = _np.where(first_of, entering.take(w_flow), self._start_p)
        flow_last = _np.full(n_flows, -1, dtype=_np.int64)
        flow_last[w_flow] = _np.arange(n_win, dtype=_np.int64)
        gap_win = _np.flatnonzero(~first_of)  # windows preceded by a gap

        # Lockstep walk over the windows, longest first: the active lane
        # set is always the prefix [:n_active], so lanes compact away as
        # they die and each step gathers only live lanes.
        dtype = self._dtype
        sort_order = _np.argsort(-win_len, kind="stable")
        wlen_s = win_len.take(sort_order)
        wstart_s = win_start.take(sort_order)
        rec_s = win_rec.take(sort_order)
        steps = _np.arange(max_len, dtype=_np.int64)
        n_active = _np.searchsorted(-wlen_s, -steps, side="left")
        # Window bytes as one (max_len, n_win) block gathered straight from
        # the raw buffer — windows cover a few percent of the batch, so
        # per-window gathers beat a whole-buffer translate pass.  Positions
        # past a window's end clip to the buffer tail; those cells are
        # masked out of accept detection below and never read otherwise.
        wbytes = buf.take(wstart_s[None, :] + steps[:, None], mode="clip")
        cols2d = self._byte_map.take(wbytes)
        hist = _np.empty((max_len, n_win), dtype=dtype)
        flat = self._flat
        na_list = n_active.tolist()
        prev = win_init.take(sort_order).astype(dtype)
        for t in range(max_len):
            na = na_list[t]
            row = hist[t]
            flat.take(prev[:na] + cols2d[t, :na], out=row[:na], mode="clip")
            prev = row

        final_by_win = _np.empty(n_win, dtype=_np.int64)
        final_by_win[sort_order] = hist[wlen_s - 1, _np.arange(n_win)]

        # Sparse accepting positions inside record ranges, in flow order
        # (buffer positions are already flow-major), with the idempotent
        # mask-pair run collapse restricted to within one window — a gap's
        # clear summary may separate two windows of the same flow.
        ncols = self._ncols
        results: list[list[MatchEvent]] = [[] for _ in payloads]
        wins_list: list[int] = []
        pos_list: list[int] = []
        sids_list: list[int] = []
        if self._thr_any < self.n_states * ncols:
            stepcol = steps[:, None]
            valid = (stepcol >= rec_s[None, :]) & (stepcol < wlen_s[None, :])
            valid &= hist >= self._thr_any
            hot_t, hot_i = _np.nonzero(valid)
            if hot_t.size:
                pos_abs = wstart_s[hot_i] + hot_t
                reorder = _np.argsort(pos_abs, kind="stable")
                hot_t = hot_t[reorder]
                hot_i = hot_i[reorder]
                pos_abs = pos_abs[reorder]
                sids = hist[hot_t, hot_i]
                wins = sort_order[hot_i]
                keep = _np.empty(sids.size, dtype=bool)
                keep[0] = True
                _np.not_equal(sids[1:], sids[:-1], out=keep[1:])
                keep[1:] |= sids[1:] >= self._thr_full
                keep[1:] |= wins[1:] != wins[:-1]
                wins_list = wins[keep].tolist()
                pos_list = pos_abs[keep].tolist()
                sids_list = sids[keep].tolist()

        # Gap clear summaries, batched and lazy: a clear can only change a
        # nonzero bit plane, and the plane is nonzero in some gap only if
        # a flow entered the chunk with bits set or some window produced
        # hits — so clean traffic never pays for them.  When triggered,
        # every gap is answered in one vectorized pass over the scan's
        # gram-bit row, and each group's fires become a cumulative count
        # by window: "did this group fire anywhere in windows (a, b]" is
        # then one subtraction, so the replay below never has to visit
        # hitless windows at all.
        cnt_groups: list[tuple[list[int], int]] | None = None
        if runtime.has_clears and gap_win.size:
            if wins_list or any(c.memory.bits for c in contexts):
                gs = wf_start.take(gap_win)
                gap_lo = gs + w_hi.take(gap_win - 1) + 1
                gap_hi = gs + w_lo.take(gap_win) - 1
                cnt_groups = []
                for fired, and_mask in res.gap_fired_groups(gap_lo, gap_hi):
                    marks = _np.zeros(n_win + 1, dtype=_np.int64)
                    marks[gap_win[fired] + 1] = 1
                    cnt_groups.append((_np.cumsum(marks).tolist(), and_mask))

        # Replay: per flow, hits in window order through the exact scalar
        # ops, threading the bit plane locally like the classic path.  Gap
        # clear summaries between consecutive hits commute (pure ANDs), so
        # the group counts fold any stretch of hitless windows into at
        # most one AND per group — and a zero bit plane skips even that.
        ops_by_rid = self._ops_by_rid
        engine_process = self.mfa.engine.process
        thr_full = self._thr_full
        inv = self._inv
        flow_last_l = flow_last.tolist()
        n_hits = len(wins_list)
        hit = 0
        win = 0
        for f in range(n_flows):
            length = int(lengths[f])
            if length == 0:
                continue
            context = contexts[f]
            memory = context.memory
            bits = memory.bits
            base = context.offset - int(flow_starts[f])
            append = results[f].append
            last_win = flow_last_l[f]
            prev = win  # flow's first window; never preceded by a gap
            while hit < n_hits and wins_list[hit] <= last_win:
                w = wins_list[hit]
                if bits and cnt_groups is not None and w > prev:
                    for cnt, and_mask in cnt_groups:
                        if cnt[w + 1] > cnt[prev + 1]:
                            bits &= and_mask
                prev = w
                sid = sids_list[hit]
                ops = ops_by_rid[sid // ncols]
                if sid < thr_full:  # mask pair, inlined for the hot case
                    bits = bits & ops[1] | ops[0]
                else:
                    memory.bits = bits
                    _apply_ops(ops, memory, base + pos_list[hit], engine_process, append)
                    bits = memory.bits
                hit += 1
            if bits and cnt_groups is not None and last_win > prev:
                for cnt, and_mask in cnt_groups:
                    if cnt[last_win + 1] > cnt[prev + 1]:
                        bits &= and_mask
            memory.bits = bits
            context.state = inv[int(final_by_win[last_win]) // ncols]
            context.offset += length
            win = last_win + 1
        return results

    # -- scalar fallback -----------------------------------------------------

    def _feed_scalar(
        self, contexts: Sequence[FlowContext], payloads: Sequence[bytes]
    ) -> list[list[MatchEvent]]:
        feed = self.mfa.feed
        return [list(feed(ctx, payload)) for ctx, payload in zip(contexts, payloads)]


def build_fastpath(
    mfa: MFA,
    segment_bytes: int | None = None,
    prefilter: str | None = None,
) -> FastPathMFA:
    """Wrap a compiled MFA in the lockstep batch engine."""
    return FastPathMFA(mfa, segment_bytes=segment_bytes, prefilter=prefilter)
