"""On-disk cache of compiled MFA bundles.

Rule compilation is the dominant cost of every CLI run and benchmark
session — subset construction over a real rule set takes orders of
magnitude longer than loading its serialized table.  A compiled engine is
a pure function of (rules, parser options, splitter options, state
budget), so the cache key is a SHA-256 over exactly those inputs plus a
format version; any change to rules or options misses cleanly and a
corrupt or truncated entry is treated as a miss (and removed), never an
error.  Bundles are the versioned format from
:mod:`repro.core.serialize`, written atomically (tmp file + rename) so a
crashed writer cannot poison later runs.

The cache directory resolves, in order: an explicit ``directory``
argument, ``$REPRO_CACHE_DIR``, and ``~/.cache/repro-mfa``.  Setting
``REPRO_COMPILE_CACHE=0`` disables every cache lookup and store without
touching call sites.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Sequence

from ..automata.dfa import DEFAULT_STATE_BUDGET
from ..core.mfa import MFA
from ..core.serialize import dumps_mfa, loads_mfa
from ..core.splitter import SplitterOptions
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions

__all__ = [
    "ArtifactCache",
    "cache_key",
    "cache_enabled",
    "compile_mfa_cached",
    "default_cache_dir",
]

# Bump whenever the serialized bundle format or compile semantics change in
# a way old entries must not survive.  2: bundles may carry a prefilter
# plan section (MFABDL2 framing).  3: the DFA section may be
# default-transition compressed (MFADFA2) and the key carries the
# chain-depth bound.
CACHE_FORMAT = 3


def cache_enabled() -> bool:
    """Global kill switch: ``REPRO_COMPILE_CACHE=0`` disables caching."""
    return os.environ.get("REPRO_COMPILE_CACHE", "1") != "0"


def default_cache_dir() -> Path:
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path(os.environ.get("XDG_CACHE_HOME", Path.home() / ".cache")) / "repro-mfa"


def _rule_token(rule: str | Pattern) -> str:
    if isinstance(rule, Pattern):
        # Source text plus identity/anchoring — everything that affects the
        # compiled automaton.  Patterns built programmatically without
        # source text are not cacheable by content; repr their AST.
        body = rule.source or repr(rule.root)
        return f"p:{rule.match_id}:{int(rule.anchored)}{int(rule.end_anchored)}:{body}"
    return f"s:{rule}"


def cache_key(
    rules: Sequence[str | Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    minimize: bool = False,
    prefilter: bool = True,
    compress: int = 0,
    extra: dict | None = None,
) -> str:
    """Deterministic key over every input that shapes the compiled MFA.

    ``prefilter`` is keyed because it changes the serialized bundle (a
    version-2 bundle carries the plan section) even though it never
    changes match semantics.  ``compress`` (a resolved chain-depth bound,
    0 = dense) is keyed for the same reason: it selects the DFA section's
    encoding tier.
    """
    doc = {
        "format": CACHE_FORMAT,
        "rules": [_rule_token(rule) for rule in rules],
        "splitter": asdict(splitter_options or SplitterOptions()),
        "parser": asdict(parser_options or ParserOptions()),
        "state_budget": state_budget,
        "minimize": minimize,
        "prefilter": prefilter,
        "compress": compress,
        "extra": extra or {},
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode()
    return hashlib.sha256(blob).hexdigest()


class ArtifactCache:
    """Load/store serialized MFA bundles under a cache directory."""

    def __init__(self, directory: str | os.PathLike | None = None):
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.mfab"

    def load(self, key: str) -> MFA | None:
        """Return the cached engine, or None on miss/corruption.

        Safe against concurrent writers: the entry is read through a file
        descriptor, and a corrupt entry is removed only while the
        directory entry still points at the very inode that was read —
        otherwise a racing ``store`` could publish a fresh valid bundle
        between our read and our unlink, and we would delete *their*
        entry, not the garbage we parsed.
        """
        if not cache_enabled():
            return None
        path = self.path_for(key)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:
            self.misses += 1
            return None
        try:
            read_stat = os.fstat(fd)
            with os.fdopen(fd, "rb") as stream:
                blob = stream.read()
        except OSError:
            self.misses += 1
            return None
        try:
            # Compile-side loads always flatten a compressed section: the
            # pipeline wants full scan speed, and the forest stays attached
            # for byte-identical re-serialisation.
            mfa = loads_mfa(blob, decode="flatten")
        except Exception:
            # A corrupt entry is a miss, and removing it stops every later
            # run from re-parsing garbage — but only the exact file we
            # read (same device and inode); a concurrently replaced entry
            # is left alone.
            self._unlink_if_same(path, read_stat)
            self.misses += 1
            return None
        self.hits += 1
        return mfa

    @staticmethod
    def _unlink_if_same(path: Path, read_stat: os.stat_result) -> None:
        try:
            now_stat = path.stat()
        except OSError:
            return  # already gone
        if (now_stat.st_dev, now_stat.st_ino) == (read_stat.st_dev, read_stat.st_ino):
            # Tiny residual window (stat-then-unlink is not atomic on
            # POSIX), acceptable because the worst case is re-deriving
            # one cache entry — corruption can never be *introduced*.
            path.unlink(missing_ok=True)

    def store(self, key: str, mfa: MFA) -> Path | None:
        """Atomically persist a bundle; returns its path (None if disabled).

        Concurrent-writer safe on POSIX: every writer gets a unique
        ``mkstemp`` name in the cache directory (same filesystem, so the
        rename cannot degrade to copy), the bundle is flushed and fsynced
        before publication, and ``os.replace`` makes the entry visible
        atomically — readers see either the old complete entry or the new
        complete entry, never a partial write.  Racing writers for the
        same key both publish a byte-identical bundle (the key pins every
        compile input), so last-rename-wins is harmless.
        """
        if not cache_enabled():
            return None
        path = self.path_for(key)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as stream:
                stream.write(dumps_mfa(mfa))
                stream.flush()
                os.fsync(stream.fileno())
            os.replace(tmp_name, path)
        except OSError:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            return None
        return path


def compile_mfa_cached(
    rules: Sequence[str | Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    cache: ArtifactCache | None = None,
    compress: "bool | int | None" = None,
) -> tuple[MFA, bool]:
    """Compile a rule set, consulting the artifact cache first.

    Returns ``(mfa, hit)`` where ``hit`` says the engine was loaded rather
    than built.  A fresh build is stored for the next caller.
    """
    from ..automata.compress import resolve_compress_option
    from ..core.compiler import compile_mfa

    cache = cache if cache is not None else ArtifactCache()
    depth = resolve_compress_option(compress)
    key = cache_key(
        rules,
        splitter_options=splitter_options,
        parser_options=parser_options,
        state_budget=state_budget,
        compress=depth,
    )
    cached = cache.load(key)
    if cached is not None:
        return cached, True
    mfa = compile_mfa(
        rules,
        splitter_options=splitter_options,
        parser_options=parser_options,
        state_budget=state_budget,
        compress=depth,
    )
    cache.store(key, mfa)
    return mfa, False
