"""Top-level compile pipeline: rule text in, engine out (paper Figure 1).

This is the public entry point a downstream IDS would use::

    from repro import compile_mfa
    mfa = compile_mfa([".*vi.*emacs", ".*bsd.*gnu"])
    for match in mfa.run(payload):
        ...

Every engine family of the evaluation is constructible through the same
interface so the benchmark harness can treat them uniformly.
"""

from __future__ import annotations

from typing import Sequence

from ..automata.dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from ..automata.nfa import NFA, build_nfa
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions, parse
from .mfa import MFA, build_mfa
from .splitter import SplitterOptions

__all__ = ["compile_patterns", "compile_mfa", "compile_dfa", "compile_nfa"]


def compile_patterns(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
) -> list[Pattern]:
    """Parse rule text into patterns, mixing text and pre-built objects.

    A list of pre-built :class:`Pattern` objects passes through untouched,
    so explicit match-ids (e.g. Snort rule sids) are respected.  As soon
    as rule *text* appears anywhere in the list, every element is
    renumbered to its 1-based input position — text has no id of its own,
    and one consistent numbering beats a mix of positional and explicit
    ids that could silently collide.
    """
    if all(isinstance(rule, Pattern) for rule in rules):
        return list(rules)
    patterns: list[Pattern] = []
    for index, rule in enumerate(rules):
        match_id = index + 1
        if isinstance(rule, Pattern):
            patterns.append(rule if rule.match_id == match_id else rule.with_id(match_id))
        else:
            patterns.append(parse(rule, match_id=match_id, options=parser_options))
    return patterns


def compile_mfa(
    rules: Sequence[str | Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> MFA:
    """Parse, split and compile a rule set into a match-filtering automaton."""
    patterns = compile_patterns(rules, parser_options)
    return build_mfa(patterns, splitter_options, state_budget=state_budget)


def compile_dfa(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> DFA:
    """The paper's DFA baseline: no decomposition, full subset construction."""
    patterns = compile_patterns(rules, parser_options)
    return build_dfa(patterns, state_budget=state_budget)


def compile_nfa(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
) -> NFA:
    """The paper's NFA baseline: compact, slow, never explodes."""
    patterns = compile_patterns(rules, parser_options)
    return build_nfa(patterns)
