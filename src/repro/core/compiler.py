"""Top-level compile pipeline: rule text in, engine out (paper Figure 1).

This is the public entry point a downstream IDS would use::

    from repro import compile_mfa
    mfa = compile_mfa([".*vi.*emacs", ".*bsd.*gnu"])
    for match in mfa.run(payload):
        ...

Every engine family of the evaluation is constructible through the same
interface so the benchmark harness can treat them uniformly.
"""

from __future__ import annotations

from typing import Sequence

from ..automata.dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from ..automata.nfa import NFA, build_nfa
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions, parse_many
from .mfa import MFA, build_mfa
from .splitter import SplitterOptions

__all__ = ["compile_patterns", "compile_mfa", "compile_dfa", "compile_nfa"]


def compile_patterns(
    rules: Sequence[str] | Sequence[Pattern],
    parser_options: ParserOptions | None = None,
) -> list[Pattern]:
    """Parse rule text into patterns with match-ids 1..n; patterns pass
    through unchanged (so callers may mix pre-built patterns with text)."""
    if not rules:
        return []
    if isinstance(rules[0], Pattern):
        return list(rules)  # type: ignore[arg-type]
    return parse_many(list(rules), options=parser_options)  # type: ignore[arg-type]


def compile_mfa(
    rules: Sequence[str] | Sequence[Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> MFA:
    """Parse, split and compile a rule set into a match-filtering automaton."""
    patterns = compile_patterns(rules, parser_options)
    return build_mfa(patterns, splitter_options, state_budget=state_budget)


def compile_dfa(
    rules: Sequence[str] | Sequence[Pattern],
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> DFA:
    """The paper's DFA baseline: no decomposition, full subset construction."""
    patterns = compile_patterns(rules, parser_options)
    return build_dfa(patterns, state_budget=state_budget)


def compile_nfa(
    rules: Sequence[str] | Sequence[Pattern],
    parser_options: ParserOptions | None = None,
) -> NFA:
    """The paper's NFA baseline: compact, slow, never explodes."""
    patterns = compile_patterns(rules, parser_options)
    return build_nfa(patterns)
