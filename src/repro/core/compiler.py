"""Top-level compile pipeline: rule text in, engine out (paper Figure 1).

This is the public entry point a downstream IDS would use::

    from repro import compile_mfa
    mfa = compile_mfa([".*vi.*emacs", ".*bsd.*gnu"])
    for match in mfa.run(payload):
        ...

Every engine family of the evaluation is constructible through the same
interface so the benchmark harness can treat them uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..automata.dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from ..automata.nfa import NFA, build_nfa
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions, parse
from .mfa import MFA, build_mfa
from .splitter import SplitterOptions

if TYPE_CHECKING:
    from ..analyze.report import AnalysisReport

__all__ = [
    "compile_patterns",
    "compile_mfa",
    "compile_dfa",
    "compile_nfa",
    "LintError",
    "ProofError",
]


class LintError(ValueError):
    """Raised by ``compile_mfa(..., lint=True)`` on error-severity findings."""

    def __init__(self, report: "AnalysisReport") -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(f.describe() for f in errors[:3])
        if len(errors) > 3:
            summary += f"; and {len(errors) - 3} more"
        super().__init__(f"static analysis found {len(errors)} error(s): {summary}")


class ProofError(ValueError):
    """Raised by ``compile_mfa(..., prove=True)`` when the equivalence
    prover refutes (or cannot establish) the artifact's correctness."""

    def __init__(self, report: "AnalysisReport") -> None:
        self.report = report
        errors = report.errors
        summary = "; ".join(f.describe() for f in errors[:3])
        if len(errors) > 3:
            summary += f"; and {len(errors) - 3} more"
        super().__init__(f"equivalence proof failed: {summary}")


def compile_patterns(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
) -> list[Pattern]:
    """Parse rule text into patterns, mixing text and pre-built objects.

    A list of pre-built :class:`Pattern` objects passes through untouched,
    so explicit match-ids (e.g. Snort rule sids) are respected.  As soon
    as rule *text* appears anywhere in the list, every element is
    renumbered to its 1-based input position — text has no id of its own,
    and one consistent numbering beats a mix of positional and explicit
    ids that could silently collide.
    """
    if all(isinstance(rule, Pattern) for rule in rules):
        return list(rules)
    patterns: list[Pattern] = []
    for index, rule in enumerate(rules):
        match_id = index + 1
        if isinstance(rule, Pattern):
            patterns.append(rule if rule.match_id == match_id else rule.with_id(match_id))
        else:
            patterns.append(parse(rule, match_id=match_id, options=parser_options))
    return patterns


def compile_mfa(
    rules: Sequence[str | Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    *,
    shards: int = 1,
    jobs: int = 1,
    time_budget: float | None = None,
    cache=None,
    phases: dict[str, float] | None = None,
    lint: bool = False,
    prove: bool = False,
    prefilter: bool = True,
    compress: "bool | int | None" = None,
    shard_plan: str = "contiguous",
) -> MFA:
    """Parse, split and compile a rule set into a match-filtering automaton.

    ``shards``/``jobs`` route the build through the sharded parallel
    compiler (:mod:`repro.fastcompile`): the rule set is partitioned into
    ``shards`` contiguous chunks compiled across ``jobs`` worker
    processes, and the result is a :class:`~repro.fastcompile.ShardedMFA`
    whose confirmed-match stream is the single-shot stream in canonical
    ``(pos, match_id)`` order.  ``shard_plan="interaction"`` replaces the
    contiguous partition with the interaction-aware assignment from
    :func:`repro.analyze.ruleset.plan_shards`, which spreads rules with
    surviving separator factors across shards instead of letting
    co-authored explosive rules multiply one shard's state space;
    contiguous stays the default because its per-shard cache keys are
    incremental-friendly.  Match-ids are global under either plan, so the
    merged stream is identical.  ``cache`` (a
    :class:`repro.fastpath.ArtifactCache`) keys each shard separately so
    one-rule edits rebuild one shard.  ``phases`` is an out-dict
    accumulating per-phase wall time (``parse``/``split``/``determinize``/
    ``minimize``/``filter-gen``).

    ``lint=True`` runs the static verifier (:mod:`repro.analyze`) over the
    compiled engine and raises :class:`LintError` if any error-severity
    finding survives — the fail-closed mode for build pipelines that
    would rather not ship a questionable artifact.

    ``prove=True`` goes further: it runs the product-automaton
    equivalence prover (:mod:`repro.analyze.equivalence`) against a
    reference automaton built from the un-decomposed patterns and raises
    :class:`ProofError` on any error-severity ``EQ`` finding — a
    replay-confirmed divergence, an unprovable shard, or a prover crash.
    A budget-truncated proof surfaces as an ``EQ110`` warning on the
    report, which does not raise; gate on it explicitly if bounded
    proofs are unacceptable.

    ``prefilter`` attaches the required-literal prefilter plan to the
    compiled artifact (and into its serialized bundle) when the rule set
    supports one; see :mod:`repro.fastpath.prefilter`.  Purely a scan-time
    accelerator — it never changes the match stream.

    ``compress`` attaches a default-transition forest so the artifact
    serialises in the compressed tier (see
    :func:`repro.core.mfa.build_mfa`); ``None`` defers to
    ``REPRO_COMPILE_COMPRESS``.
    """
    if lint or prove:
        engine = compile_mfa(
            rules,
            splitter_options,
            parser_options,
            state_budget,
            shards=shards,
            jobs=jobs,
            time_budget=time_budget,
            cache=cache,
            phases=phases,
            prefilter=prefilter,
            compress=compress,
            shard_plan=shard_plan,
        )
        if lint:
            from ..analyze import analyze_engine

            audit = analyze_engine(engine)
            if audit.has_errors:
                raise LintError(audit)
        if prove:
            from ..analyze import analyze_engine_equivalence

            proof = analyze_engine_equivalence(
                engine, compile_patterns(rules, parser_options)
            )
            if proof.has_errors:
                raise ProofError(proof)
        return engine
    if shards > 1 or cache is not None:
        from ..fastcompile.shards import compile_mfa_sharded

        return compile_mfa_sharded(  # type: ignore[return-value]
            rules,
            splitter_options,
            parser_options,
            state_budget=state_budget,
            time_budget=time_budget,
            shards=shards,
            jobs=jobs,
            cache=cache,
            phases=phases,
            prefilter=prefilter,
            compress=compress,
            shard_plan=shard_plan,
        )
    import time as _time

    tick = _time.perf_counter()
    patterns = compile_patterns(rules, parser_options)
    if phases is not None:
        phases["parse"] = phases.get("parse", 0.0) + (_time.perf_counter() - tick)
    return build_mfa(
        patterns,
        splitter_options,
        state_budget=state_budget,
        time_budget=time_budget,
        phases=phases,
        prefilter=prefilter,
        compress=compress,
    )


def compile_dfa(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> DFA:
    """The paper's DFA baseline: no decomposition, full subset construction."""
    patterns = compile_patterns(rules, parser_options)
    return build_dfa(patterns, state_budget=state_budget)


def compile_nfa(
    rules: Sequence[str | Pattern],
    parser_options: ParserOptions | None = None,
) -> NFA:
    """The paper's NFA baseline: compact, slow, never explodes."""
    patterns = compile_patterns(rules, parser_options)
    return build_nfa(patterns)
