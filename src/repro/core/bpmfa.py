"""Bit-parallel match filtering: Shift-And components + the filter engine.

The paper notes match filtering "is built on top of an arbitrary regex
matching solution" (§II-C).  This module demonstrates that claim: when
every decomposed component is *linear* (true for string-heavy sets like
B217p — segments, clear classes and anchored heads are all class
sequences), the component matcher can be the bit-parallel
:class:`~repro.automata.shiftand.ShiftAndMatcher` instead of a DFA.  The
whole matcher state is then a single bit-vector per flow and the memory
image is a few kilobytes regardless of pattern count.

Use :func:`build_bp_mfa`; it raises ``ValueError`` when some component is
not linear (alternations, optional parts, unbounded repeats) — those rule
sets belong on the ordinary DFA-backed :class:`~repro.core.mfa.MFA`.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..automata.nfa import MatchEvent
from ..automata.shiftand import ShiftAndMatcher, build_shift_and
from ..regex.ast import Pattern
from .filters import NONE, FilterEngine, FilterProgram, FilterState
from .splitter import SplitResult, SplitterOptions, split_patterns

__all__ = ["BitParallelMFA", "build_bp_mfa"]


class BPFlowContext:
    """Per-flow state: the Shift-And bit-vector plus filter memory."""

    __slots__ = ("state", "memory", "offset")

    def __init__(self, bpmfa: "BitParallelMFA"):
        self.state = 0
        self.memory: FilterState = bpmfa.engine.new_state()
        self.offset = 0


class BitParallelMFA:
    """An MFA whose component matcher is a Shift-And machine."""

    def __init__(self, matcher: ShiftAndMatcher, program: FilterProgram, split: SplitResult):
        self.matcher = matcher
        self.program = program
        self.split = split
        self.engine = FilterEngine(program)
        # Final-position -> ordered actions can't be pre-grouped the DFA way
        # (several finals may fire at one input position); events are
        # filtered in priority order per position instead.
        self._priority = {
            match_id: program.action_priority(match_id)
            for match_id in set(matcher.final_ids.values())
        }

    @property
    def n_states(self) -> int:
        return self.matcher.n_states

    @property
    def width(self) -> int:
        return self.program.width

    def memory_bytes(self) -> int:
        return self.matcher.memory_bytes() + self.program.memory_bytes()

    def filter_bytes(self) -> int:
        return self.program.memory_bytes()

    def stats(self):
        return self.split.stats

    def new_context(self) -> BPFlowContext:
        return BPFlowContext(self)

    def run(self, data: bytes) -> list[MatchEvent]:
        context = self.new_context()
        out = list(self.feed(context, data))
        out.extend(self.finish(context))
        return out

    def feed(self, context: BPFlowContext, data: bytes) -> Iterator[MatchEvent]:
        matcher = self.matcher
        masks = matcher.byte_masks
        start = matcher.start_always
        finals = matcher.finals
        final_ids = matcher.final_ids
        priority = self._priority
        engine_process = self.engine.process
        memory = context.memory
        state = context.state
        base = context.offset
        for pos, byte in enumerate(data):
            if base + pos == 0:
                injected = start | matcher.start_first
            else:
                injected = start
            state = ((state << 1) | injected) & masks[byte]
            hits = state & finals
            if hits:
                absolute = base + pos
                ids = []
                while hits:
                    low = hits & -hits
                    ids.append(final_ids[low.bit_length() - 1])
                    hits ^= low
                ids.sort(key=lambda i: (priority[i], i))
                for match_id in ids:
                    confirmed = engine_process(memory, absolute, match_id)
                    if confirmed != NONE:
                        yield MatchEvent(absolute, confirmed)
        context.state = state
        context.offset = base + len(data)

    def finish(self, context: BPFlowContext) -> Iterator[MatchEvent]:
        # End-anchored components are rejected at build time, so there is
        # nothing to flush; the method exists for engine-interface parity.
        return iter(())

    def raw_matches(self, data: bytes) -> list[MatchEvent]:
        return self.matcher.run(data)

    def scan(self, data: bytes) -> int:
        return self.matcher.scan(data)


def build_bp_mfa(
    patterns: Sequence[Pattern],
    splitter_options: SplitterOptions | None = None,
) -> BitParallelMFA:
    """Split a rule set and compile the components bit-parallel.

    Raises ``ValueError`` when a component is not linear; callers should
    fall back to :func:`~repro.core.mfa.build_mfa`.
    """
    split = split_patterns(patterns, splitter_options)
    matcher = build_shift_and(split.components)
    return BitParallelMFA(matcher, split.program, split)
