"""Regex splitting: Algorithm 1 of the paper (``RegexSplit`` / ``Decomp``).

A pattern whose top level looks like ``.*A.*B`` (dot-star), ``.*A[^X]*B``
(almost-dot-star) or — our implementation of the paper's future-work
extension — ``.*A.{n,m}B`` (counted gap) is rewritten into independent
components plus filter actions:

=====================  ============================================  =========================================
 shape                  components                                    filter actions
=====================  ============================================  =========================================
 ``.*A.*B{{n}}``        ``.*A{{n'}} | .*B{{n}}``                      n': Set i;  n: Test i to <n's effect>
 ``.*A[^X]*B{{n}}``     ``.*A{{n'}} | .*[X]{{n''}} | .*B{{n}}``       n': Set i;  n'': Clear i;  n: Test i ...
 ``.*A.{g,h}B{{n}}``    ``.*A{{n'}} | .*B{{n}}``                      n': Record r;  n: Dist r in [|B|+g,|B|+h]
=====================  ============================================  =========================================

Splitting proceeds right-to-left over the pattern's top-level separators;
the left remainder (which may still contain separators) is pushed back and
decomposed again, so chains like ``.*A.*B.*C`` yield merged bytecodes
("Test i to Set j") exactly as the paper describes.  When a split's safety
conditions fail the splitter falls back one separator at a time and, in the
worst case, compiles the pattern intact — correctness is never traded for
compression (paper §I-D, challenge three).

Safety conditions enforced here:

* both sides of a split must be non-nullable;
* dot-star / almost-dot-star: the strengthened no-overlap test of
  :mod:`repro.core.overlap`;
* almost-dot-star additionally: ``X`` must be smaller than the
  ``max_class_size`` threshold (the paper's 128 rule), must not intersect
  the alphabet of B, and must not intersect the last-character class of A;
* counted gap: B must have a fixed length that, plus the gap bound, fits
  the filter's offset window.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from ..regex import ast
from ..regex.analysis import alphabet, last_class, max_length, min_length
from ..regex.ast import Alt, ClassNode, Node, Pattern, Repeat
from ..regex.charclass import CharClass
from ..regex.simplify import simplify
from .filters import NONE, WINDOW_BITS, FilterAction, FilterProgram
from .overlap import segments_overlap

__all__ = [
    "SplitterOptions",
    "SplitStats",
    "SplitResult",
    "Decomposition",
    "split_patterns",
]


@dataclass(frozen=True, slots=True)
class SplitterOptions:
    """Knobs for the decomposition pass.

    ``max_class_size`` is the paper's threshold: almost-dot-star is applied
    only when ``|X| < max_class_size`` (default 128, §IV-B).
    ``coalesce_clear_runs`` rewrites the clear component ``.*[X]`` into
    ``.*[X]+[^X]`` — the paper's mitigation for hostile runs of X bytes.
    ``explode_alternations`` splits a top-level alternation into that many
    separate same-report patterns before decomposing (0 disables).

    ``offset_overlap_rescue`` implements the paper's second future-work
    idea: when the overlap test refuses a dot-star split but B has a fixed
    length, the split is performed anyway with an *offset register* in
    place of the bit — B confirms only when some recorded A ended at least
    |B| bytes back, i.e. strictly before B began, so overlapping raw
    matches filter correctly.  Off by default (the paper's evaluated
    construction does not include it).
    """

    max_class_size: int = 128
    enable_dot_star: bool = True
    enable_almost_dot_star: bool = True
    enable_counted_gaps: bool = True
    coalesce_clear_runs: bool = False
    explode_alternations: int = 8
    offset_overlap_rescue: bool = False


@dataclass(slots=True)
class SplitStats:
    """Counters describing what the splitter did to a rule set."""

    n_patterns: int = 0
    n_dot_star: int = 0
    n_almost_dot_star: int = 0
    n_counted: int = 0
    n_refused_overlap: int = 0
    n_refused_class: int = 0
    n_refused_nullable: int = 0
    n_refused_counted: int = 0
    n_offset_rescues: int = 0
    n_intact: int = 0


@dataclass(frozen=True, slots=True)
class Decomposition:
    """Provenance record of one split decision (paper Algorithm 1 step).

    The splitter emits one record per applied separator so a *separate*
    checker (:mod:`repro.analyze.safety`) can re-derive the safety
    conditions from :mod:`repro.regex.analysis` without trusting the
    splitter's own bookkeeping.  ``a_node``/``b_node`` are the two sides
    of the split *as split* (before any further decomposition of the A
    side); ``bit``/``register`` are the filter resources the split
    consumed; ``a_id``/``b_id`` the component match-ids wired to them.
    """

    origin: int                      # original pattern's match-id
    kind: str                        # "dot" | "almost" | "counted"
    a_node: Node
    b_node: Node
    a_id: int
    b_id: int
    x_class: Optional[CharClass] = None    # "almost": the class X
    gap: Optional[tuple[int, Optional[int]]] = None  # "counted": (lo, hi)
    bit: Optional[int] = None              # "dot"/"almost": memory bit
    register: Optional[int] = None         # "counted": offset register
    clear_id: Optional[int] = None         # "almost": clear component id
    source: str = ""                       # original rule text, when known


@dataclass(slots=True)
class SplitResult:
    """Everything the DFA builder and filter engine need after splitting."""

    components: list[Pattern]
    program: FilterProgram
    component_ids: dict[int, list[int]]
    stats: SplitStats
    decompositions: list[Decomposition] = field(default_factory=list)

    @property
    def width(self) -> int:
        return self.program.width


# A separator found at the top level of a concatenation.
@dataclass(frozen=True, slots=True)
class _Separator:
    index: int
    kind: str                     # "dot" | "almost" | "counted"
    x_class: Optional[CharClass]  # for "almost": the negated class X
    gap: Optional[tuple[int, int]]  # for "counted": (lo, hi)


class _IdAllocator:
    def __init__(self, start: int):
        self._next = start

    def fresh(self) -> int:
        value = self._next
        self._next += 1
        return value


def split_patterns(
    patterns: Sequence[Pattern],
    options: SplitterOptions | None = None,
) -> SplitResult:
    """Decompose a rule set; returns components plus the filter program."""
    options = options or SplitterOptions()
    stats = SplitStats(n_patterns=len(patterns))
    final_ids = frozenset(p.match_id for p in patterns)
    alloc = _IdAllocator(max(final_ids, default=0) + 1)

    actions: dict[int, FilterAction] = {}
    components: list[Pattern] = []
    component_ids: dict[int, list[int]] = {p.match_id: [] for p in patterns}
    decompositions: list[Decomposition] = []
    bits_used = 0
    regs_used = 0

    stack: list[tuple[Pattern, int]] = []
    for pattern in patterns:
        for piece in _normalise(pattern, alloc, actions, options):
            stack.append((piece, pattern.match_id))

    while stack:
        pattern, origin = stack.pop()
        split = _find_split(pattern, options, stats)
        if split is None:
            components.append(pattern)
            component_ids[origin].append(pattern.match_id)
            continue

        separator, a_node, b_node = split
        inherited = actions.get(pattern.match_id, FilterAction(report=pattern.match_id))
        new_id = alloc.fresh()
        clear_id: Optional[int] = None

        if separator.kind == "counted":
            register = regs_used
            regs_used += 1
            gap_lo, gap_hi = separator.gap  # type: ignore[misc]
            b_len = min_length(b_node)  # fixed length, checked by _find_split
            actions[new_id] = FilterAction(
                test=inherited.test,
                distance=inherited.distance,
                record=register,
            )
            actions[pattern.match_id] = replace(
                inherited,
                test=NONE,
                distance=(
                    register,
                    b_len + gap_lo,
                    None if gap_hi is None else b_len + gap_hi,
                ),
            )
            stats.n_counted += 1
            decompositions.append(
                Decomposition(
                    origin=origin,
                    kind="counted",
                    a_node=a_node,
                    b_node=b_node,
                    a_id=new_id,
                    b_id=pattern.match_id,
                    gap=separator.gap,
                    register=register,
                    source=pattern.source,
                )
            )
        else:
            bit = bits_used
            bits_used += 1
            actions[new_id] = FilterAction(
                test=inherited.test,
                distance=inherited.distance,
                set=bit,
            )
            actions[pattern.match_id] = replace(inherited, test=bit, distance=None)
            if separator.kind == "almost":
                clear_id = alloc.fresh()
                actions[clear_id] = FilterAction(clear=bit)
                clear_root = _clear_component(separator.x_class, options)
                components.append(Pattern(clear_root, match_id=clear_id))
                component_ids[origin].append(clear_id)
                stats.n_almost_dot_star += 1
            else:
                stats.n_dot_star += 1
            decompositions.append(
                Decomposition(
                    origin=origin,
                    kind=separator.kind,
                    a_node=a_node,
                    b_node=b_node,
                    a_id=new_id,
                    b_id=pattern.match_id,
                    x_class=separator.x_class,
                    bit=bit,
                    clear_id=clear_id,
                    source=pattern.source,
                )
            )

        a_side = Pattern(
            a_node,
            match_id=new_id,
            anchored=pattern.anchored,
            source=pattern.source,
        )
        b_side = Pattern(
            b_node,
            match_id=pattern.match_id,
            anchored=False,
            end_anchored=pattern.end_anchored,
            source=pattern.source,
        )
        stack.append((a_side, origin))
        stack.append((b_side, origin))

    # Pure pass-through final actions are represented implicitly by the
    # engine; drop them to keep the table at its paper size.
    actions = {
        match_id: action
        for match_id, action in actions.items()
        if not (
            action.report == match_id
            and action.test == NONE
            and action.distance is None
            and action.set == NONE
            and action.clear == NONE
            and action.record == NONE
        )
    }
    stats.n_intact = sum(
        1 for ids in component_ids.values() if len(ids) == 1
    )

    program = FilterProgram(
        actions=actions,
        width=bits_used,
        n_registers=regs_used,
        final_ids=final_ids,
    )
    return SplitResult(
        components=components,
        program=program,
        component_ids=component_ids,
        stats=stats,
        decompositions=decompositions,
    )


# -- normalisation -----------------------------------------------------------


def _normalise(
    pattern: Pattern,
    alloc: _IdAllocator,
    actions: dict[int, FilterAction],
    options: SplitterOptions,
) -> list[Pattern]:
    """Simplify, strip redundant leading ``.*``, explode alternations."""
    root = simplify(pattern.root)
    parts = _top_parts(root)
    # An unanchored pattern beginning with a dot-star is just unanchored;
    # a leading dot-star also neutralises an anchor.
    anchored = pattern.anchored
    while parts and _is_dot_star(parts[0]):
        parts = parts[1:]
        anchored = False
    root = ast.concat(parts)
    base = Pattern(
        root,
        match_id=pattern.match_id,
        anchored=anchored,
        end_anchored=pattern.end_anchored,
        source=pattern.source,
    )
    limit = options.explode_alternations
    if (
        isinstance(root, Alt)
        and 0 < len(root.options) <= limit
        and any(_contains_separator(o) for o in root.options)
    ):
        pieces = []
        for option in root.options:
            piece_id = alloc.fresh()
            actions[piece_id] = FilterAction(report=pattern.match_id)
            pieces.append(
                Pattern(
                    simplify(option),
                    match_id=piece_id,
                    anchored=anchored,
                    end_anchored=pattern.end_anchored,
                    source=pattern.source,
                )
            )
        return pieces
    return [base]


def _top_parts(root: Node) -> tuple[Node, ...]:
    """Top-level concat parts with min-repeats of partial classes unrolled.

    ``C{n,}`` becomes ``C...C C*`` (and ``C+`` becomes ``C C*``) for
    *partial* classes so the separator scan sees the star.  Full-alphabet
    repeats (``.{n,}``, ``.+``) are left intact: they classify as open
    counted-gap separators, because folding a ``.`` into a neighbouring
    segment always fails the overlap test (a trailing ``.`` makes every
    byte a possible segment suffix).
    """
    if isinstance(root, ast.Concat):
        parts = root.parts
    elif isinstance(root, ast.Empty):
        parts = ()
    else:
        parts = (root,)
    unrolled: list[Node] = []
    for part in parts:
        if (
            isinstance(part, Repeat)
            and isinstance(part.child, ClassNode)
            and not part.child.cls.is_full()
            and part.max is None
            and 0 < part.min <= 16
        ):
            unrolled.extend([part.child] * part.min)
            unrolled.append(ast.star(part.child))
        else:
            unrolled.append(part)
    return tuple(unrolled)


def _is_dot_star(node: Node) -> bool:
    return (
        isinstance(node, Repeat)
        and node.min == 0
        and node.max is None
        and isinstance(node.child, ClassNode)
        and node.child.cls.is_full()
    )


def _contains_separator(node: Node) -> bool:
    parts = _top_parts(node)
    return any(_classify(part, SplitterOptions()) is not None for part in parts)


# -- separator discovery ------------------------------------------------------


def _classify(part: Node, options: SplitterOptions) -> Optional[tuple[str, object]]:
    """Is this top-level part a separator?  Returns (kind, payload)."""
    if not isinstance(part, Repeat) or not isinstance(part.child, ClassNode):
        return None
    klass = part.child.cls
    if part.min == 0 and part.max is None:
        if klass.is_full():
            return ("dot", None)
        x_class = ~klass
        if 0 < len(x_class) < options.max_class_size:
            return ("almost", x_class)
        return None
    if klass.is_full():
        # ``.{n,m}`` -> bounded window; ``.{n,}`` / ``.+`` -> open window.
        return ("counted", (part.min, part.max))
    return None


def _find_split(
    pattern: Pattern,
    options: SplitterOptions,
    stats: SplitStats,
) -> Optional[tuple[_Separator, Node, Node]]:
    """Find the rightmost separator that splits safely, if any."""
    parts = _top_parts(pattern.root)
    for index in range(len(parts) - 1, -1, -1):
        classified = _classify(parts[index], options)
        if classified is None:
            continue
        kind, payload = classified
        if kind == "dot" and not options.enable_dot_star:
            continue
        if kind == "almost" and not options.enable_almost_dot_star:
            continue
        if kind == "counted" and not options.enable_counted_gaps:
            continue
        a_node = ast.concat(list(parts[:index]))
        b_node = ast.concat(list(parts[index + 1 :]))
        separator = _Separator(
            index=index,
            kind=kind,
            x_class=payload if kind == "almost" else None,
            gap=payload if kind == "counted" else None,
        )
        if _split_is_safe(separator, a_node, b_node, options, stats):
            return separator, a_node, b_node
        if (
            kind == "dot"
            and options.offset_overlap_rescue
            and options.enable_counted_gaps
            and min_length(a_node) > 0
        ):
            # Future-work rescue: re-express ``.*A.*B`` as an open counted
            # gap ``.*A.{0,}B`` — the offset register demands A end at least
            # |B| bytes before B's end (i.e. strictly before B begins), so
            # overlapping raw matches filter correctly without the overlap
            # precondition.  Needs a fixed-length B, checked by the counted
            # safety rules.
            rescue = _Separator(index=index, kind="counted", x_class=None, gap=(0, None))
            if _split_is_safe(rescue, a_node, b_node, options, stats):
                stats.n_offset_rescues += 1
                return rescue, a_node, b_node
    return None


def _split_is_safe(
    separator: _Separator,
    a_node: Node,
    b_node: Node,
    options: SplitterOptions,
    stats: SplitStats,
) -> bool:
    if min_length(a_node) == 0 or min_length(b_node) == 0:
        stats.n_refused_nullable += 1
        return False
    if separator.kind == "counted":
        gap_lo, gap_hi = separator.gap  # type: ignore[misc]
        b_min, b_max = min_length(b_node), max_length(b_node)
        if b_max is None or b_min != b_max:
            stats.n_refused_counted += 1
            return False
        upper = gap_lo if gap_hi is None else gap_hi
        if b_min + upper >= WINDOW_BITS:
            stats.n_refused_counted += 1
            return False
        # Positions disambiguate completely for an exact window, so no
        # overlap condition is needed (see tests/core/test_counted_gaps.py).
        return True
    if separator.kind == "almost":
        x_class = separator.x_class
        assert x_class is not None
        if x_class.overlaps(alphabet(b_node)) or x_class.overlaps(last_class(a_node)):
            stats.n_refused_class += 1
            return False
    if segments_overlap(a_node, b_node):
        stats.n_refused_overlap += 1
        return False
    return True


def _clear_component(x_class: Optional[CharClass], options: SplitterOptions) -> Node:
    """The ``.*[X]`` clear pattern, optionally with the paper's mitigation
    rewrite ``.*[X]+[^X]`` that fires once per run of X bytes."""
    assert x_class is not None
    if options.coalesce_clear_runs:
        return ast.concat([ast.plus(ClassNode(x_class)), ClassNode(~x_class)])
    return ClassNode(x_class)
