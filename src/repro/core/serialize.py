"""Serialisation of compiled MFAs.

An MFA bundle is the DFA blob (see :mod:`repro.automata.serialize`) plus a
JSON filter table.  The rule compiler runs offline; the data plane loads
bundles — so the format is versioned, deterministic, and refuses anything
it does not recognise.
"""

from __future__ import annotations

import json
import os
import struct
from typing import BinaryIO, cast

from ..automata.compress import CompressedDFA
from ..automata.serialize import (
    CDFA_MAGIC,
    decode_cdfa_header,
    dumps_cdfa,
    dumps_dfa,
    loads_cdfa,
    loads_dfa,
)
from .filters import NONE, FilterAction, FilterProgram
from .mfa import MFA

# Decode-mode selection for compressed bundles (see loads_mfa).
DECODE_ENV = "REPRO_DECODE"
DECODE_BUDGET_ENV = "REPRO_DECODE_BUDGET"
DEFAULT_DECODE_BUDGET = 64 * 1024 * 1024

__all__ = [
    "BUNDLE_MAGIC",
    "dumps_mfa",
    "loads_mfa",
    "save_mfa",
    "load_mfa",
    "program_to_json",
    "program_from_json",
    "split_bundle",
]

_MAGIC = b"MFABDL1\n"
# Version 2 framing appends a third section: the JSON prefilter plan (see
# repro.fastpath.prefilter).  Bundles without a plan are still written as
# version 1, so artifacts stay byte-identical with older releases.
_MAGIC_V2 = b"MFABDL2\n"

# Public alias: the static analyzer (repro.analyze.bundle) parses bundles
# tolerantly and needs the framing constants without the decode logic.
BUNDLE_MAGIC = _MAGIC


def program_to_json(program: FilterProgram) -> dict:
    """The filter table as a JSON-safe dict."""
    return {
        "width": program.width,
        "n_registers": program.n_registers,
        "final_ids": sorted(program.final_ids),
        "actions": {
            str(match_id): {
                "test": action.test,
                "set": action.set,
                "clear": action.clear,
                "report": action.report,
                "record": action.record,
                "distance": list(action.distance) if action.distance else None,
            }
            for match_id, action in sorted(program.actions.items())
        },
    }


def program_from_json(blob: dict) -> FilterProgram:
    actions = {}
    for match_id, fields in blob["actions"].items():
        distance = fields.get("distance")
        actions[int(match_id)] = FilterAction(
            test=fields.get("test", NONE),
            set=fields.get("set", NONE),
            clear=fields.get("clear", NONE),
            report=fields.get("report", NONE),
            record=fields.get("record", NONE),
            distance=tuple(distance) if distance else None,
        )
    return FilterProgram(
        actions=actions,
        width=blob["width"],
        n_registers=blob["n_registers"],
        final_ids=frozenset(blob["final_ids"]),
    )


def dumps_mfa(mfa: MFA) -> bytes:
    """Serialise an MFA (DFA table + filter program [+ prefilter plan]).

    When the MFA carries a default-transition forest (``mfa.compressed``,
    attached by ``build_mfa(compress=...)`` or by loading a compressed
    bundle), the DFA section is written in the compressed ``MFADFA2``
    encoding instead of the dense table.  The bundle framing itself is
    unchanged — the DFA section is self-describing by magic — so old
    readers of *dense* bundles and new readers of both kinds interoperate.
    """
    program_bytes = json.dumps(
        program_to_json(mfa.program), separators=(",", ":"), sort_keys=True
    ).encode()
    if mfa.compressed is not None:
        dfa_bytes = dumps_cdfa(cast(CompressedDFA, mfa.compressed))
    else:
        dfa_bytes = dumps_dfa(mfa.dfa)
    plan = mfa.prefilter
    if plan is None:
        return (
            _MAGIC
            + struct.pack("<II", len(program_bytes), len(dfa_bytes))
            + program_bytes
            + dfa_bytes
        )
    plan_bytes = json.dumps(plan, separators=(",", ":"), sort_keys=True).encode()
    return (
        _MAGIC_V2
        + struct.pack("<III", len(program_bytes), len(dfa_bytes), len(plan_bytes))
        + program_bytes
        + dfa_bytes
        + plan_bytes
    )


def _split_sections(
    blob: "bytes | memoryview",
) -> tuple[bytes, "bytes | memoryview", "bytes | None"]:
    """Framing-only split into (filter JSON, DFA blob, prefilter JSON)."""
    view = memoryview(blob) if not isinstance(blob, bytes) else blob
    magic = bytes(view[: len(_MAGIC)])
    if magic == _MAGIC:
        header = "<II"
    elif magic == _MAGIC_V2:
        header = "<III"
    else:
        raise ValueError("not a serialised MFA bundle (bad magic)")
    offset = len(_MAGIC)
    header_len = struct.calcsize(header)
    if len(view) < offset + header_len:
        raise ValueError("truncated MFA bundle (missing section lengths)")
    sizes = struct.unpack_from(header, view, offset)
    program_len, dfa_len = sizes[0], sizes[1]
    plan_len = sizes[2] if len(sizes) > 2 else None
    offset += header_len
    program_bytes = bytes(view[offset : offset + program_len])
    offset += program_len
    dfa_bytes = view[offset : offset + dfa_len]
    if len(program_bytes) != program_len or len(dfa_bytes) != dfa_len:
        raise ValueError("truncated MFA bundle")
    if plan_len is None:
        return program_bytes, dfa_bytes, None
    offset += dfa_len
    plan_bytes = bytes(view[offset : offset + plan_len])
    if len(plan_bytes) != plan_len:
        raise ValueError("truncated MFA bundle (missing prefilter plan)")
    return program_bytes, dfa_bytes, plan_bytes


def split_bundle(blob: "bytes | memoryview") -> tuple[bytes, "bytes | memoryview"]:
    """Split a bundle into its (filter-table JSON, DFA blob) halves.

    Performs only the structural framing checks — neither half is decoded
    — so the static analyzer can audit each part tolerantly.  Raises
    :class:`ValueError` naming the structural defect.  A ``memoryview``
    input yields a zero-copy ``memoryview`` DFA half (the small filter
    JSON is always materialised).  Accepts both framing versions; the
    version-2 prefilter section is dropped (it is a scan-time accelerator
    with no bearing on match semantics).
    """
    program_bytes, dfa_bytes, _ = _split_sections(blob)
    return program_bytes, dfa_bytes


def resolve_decode_mode(decode: "str | None") -> tuple[str, int]:
    """Normalise a decode-mode request to ``(mode, flatten_budget)``.

    ``decode`` is one of ``auto``/``flatten``/``chain``; ``None`` reads
    ``REPRO_DECODE`` (default ``auto``).  The budget — dense table bytes
    below which ``auto`` flattens — comes from ``REPRO_DECODE_BUDGET``.
    """
    mode = decode if decode is not None else os.environ.get(DECODE_ENV, "auto")
    mode = mode.strip().lower() or "auto"
    if mode not in ("auto", "flatten", "chain"):
        raise ValueError(f"decode mode must be auto/flatten/chain, got {mode!r}")
    raw_budget = os.environ.get(DECODE_BUDGET_ENV, "").strip()
    try:
        budget = int(raw_budget) if raw_budget else DEFAULT_DECODE_BUDGET
    except ValueError:
        raise ValueError(
            f"{DECODE_BUDGET_ENV} must be an integer byte count, got {raw_budget!r}"
        ) from None
    return mode, budget


def loads_mfa(
    blob: "bytes | memoryview", mmap: bool = False, decode: "str | None" = None
) -> MFA:
    """Deserialise an MFA bundle (provenance/stats are not preserved).

    ``mmap=True`` keeps the DFA transition table as zero-copy views over
    the caller's buffer (see :func:`repro.automata.serialize.loads_dfa`);
    the buffer must outlive the returned engine.

    A compressed (``MFADFA2``) DFA section is decoded per ``decode``:

    - ``"flatten"`` reconstructs the dense table (byte-identical to the
      pre-compression DFA) — full scan speed, full memory;
    - ``"chain"`` returns an MFA over a
      :class:`~repro.automata.compress.ChainDFA` that answers lookups
      straight off the forest — an order of magnitude less memory, chain
      walks per byte (the fastpath engine vectorizes these);
    - ``"auto"`` (the default, also via ``REPRO_DECODE``) flattens when
      the dense table fits ``REPRO_DECODE_BUDGET`` bytes (default 64 MB)
      and chains otherwise.

    Either way the forest is kept on ``mfa.compressed`` so a re-dump
    reproduces the compressed bundle byte-for-byte.
    """
    program_bytes, dfa_bytes, plan_bytes = _split_sections(blob)
    program = program_from_json(json.loads(program_bytes))
    if bytes(memoryview(dfa_bytes)[: len(CDFA_MAGIC)]) == CDFA_MAGIC:
        mode, budget = resolve_decode_mode(decode)
        cdfa = loads_cdfa(dfa_bytes)
        if mode == "auto":
            mode = "flatten" if cdfa.n_states * 1024 <= budget else "chain"
        dfa = cdfa.flatten() if mode == "flatten" else cdfa.to_chain_dfa()
        mfa = MFA(dfa, program)
        mfa.compressed = cdfa
    else:
        dfa = loads_dfa(dfa_bytes, mmap=mmap)
        mfa = MFA(dfa, program)
    if plan_bytes is not None:
        plan = json.loads(plan_bytes)
        if not isinstance(plan, dict):
            raise ValueError("prefilter plan section is not a JSON object")
        mfa.prefilter = plan
    return mfa


def save_mfa(mfa: MFA, stream: BinaryIO) -> None:
    stream.write(dumps_mfa(mfa))


def load_mfa(stream: BinaryIO) -> MFA:
    return loads_mfa(stream.read())
