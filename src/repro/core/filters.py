"""The stateful match-filter engine (paper §III-A, §IV-C).

Each match-id arriving from the DFA triggers one *action*.  The paper
encodes actions as a 4-integer bytecode: ``(test, set, clear, report)`` —
the memory bit that must be set for the action to take effect, the bit to
set, the bit to clear, and the match-id to report (each ``-1`` for "none").
Set and clear are mutually exclusive in generated programs, and merged
actions like "Test bit 1 to set bit 2" arise naturally from chained
dot-star decompositions.

Beyond the paper's evaluated construction, this module implements the
*offset-tracking* extension sketched in its future-work section (counting
constraints like ``.*A.{n,m}B``): a small set of window registers remembers
at which recent offsets a sub-pattern ended, as a shifted bitmask, and a
distance test checks whether any remembered offset lands in ``[lo, hi]``.

The engine is deliberately tiny: per event it does a handful of integer
operations, mirroring the "few CPU instructions" implementation the paper
argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

__all__ = [
    "NONE",
    "FilterAction",
    "FilterProgram",
    "FilterState",
    "FilterEngine",
]

NONE = -1

# Window registers remember sub-pattern end offsets this many bytes back.
# 256 bits is one cache line of state per register and covers every counted
# gap the splitter will decompose.
WINDOW_BITS = 256
_WINDOW_MASK = (1 << WINDOW_BITS) - 1


@dataclass(frozen=True, slots=True)
class FilterAction:
    """One bytecode action, triggered by a single match-id.

    Bit plane (the paper's evaluated construction):

    * ``test`` — memory bit that must be 1 for the action to take effect
    * ``set`` / ``clear`` — memory bit to flip when the action takes effect
    * ``report`` — match-id to confirm when the action takes effect

    Offset plane (future-work extension):

    * ``record`` — window register in which to record "ended here"
    * ``distance`` — ``(register, lo, hi)``: take effect only when the
      register remembers an end at distance d with ``lo <= d <= hi``;
      ``hi=None`` means unbounded (records older than the window saturate
      into a per-register sticky bit, so nothing is forgotten)
    """

    test: int = NONE
    set: int = NONE
    clear: int = NONE
    report: int = NONE
    record: int = NONE
    distance: Optional[tuple[int, int, Optional[int]]] = None

    def __post_init__(self) -> None:
        if self.set != NONE and self.set == self.clear:
            raise ValueError("an action cannot set and clear the same bit")
        if self.distance is not None:
            reg, lo, hi = self.distance
            if hi is None:
                if not 0 <= lo < WINDOW_BITS:
                    raise ValueError(f"open distance window [{lo},) out of range")
            elif not (0 <= lo <= hi < WINDOW_BITS):
                raise ValueError(f"distance window [{lo},{hi}] out of range")

    def describe(self) -> str:
        """Human-readable form matching the paper's prose (e.g. Table III)."""
        conditions = []
        if self.test != NONE:
            conditions.append(f"Test {self.test}")
        if self.distance is not None:
            reg, lo, hi = self.distance
            if hi is None:
                span = f"{lo}+"
            elif lo == hi:
                span = str(lo)
            else:
                span = f"{lo}..{hi}"
            conditions.append(f"Dist r{reg} in {span}")
        effects = []
        if self.set != NONE:
            effects.append(f"Set {self.set}")
        if self.clear != NONE:
            effects.append(f"Clear {self.clear}")
        if self.record != NONE:
            effects.append(f"Record r{self.record}")
        if self.report != NONE:
            effects.append("Match")
        effect = ", ".join(effects) if effects else "Nop"
        if conditions:
            return f"{' and '.join(conditions)} to {effect}"
        return effect


@dataclass(frozen=True)
class FilterProgram:
    """A complete filter: one action per filtered match-id.

    ``actions`` maps match-id -> action.  ``width`` is w, the number of
    memory bits; ``n_registers`` the number of offset windows.  ``final_ids``
    is D, the set of original pattern ids that may ever be confirmed —
    everything else is always dropped (paper's D_i \\ D).
    """

    actions: dict[int, FilterAction]
    width: int
    n_registers: int = 0
    final_ids: frozenset[int] = frozenset()

    def __post_init__(self) -> None:
        for match_id, action in self.actions.items():
            for bit in (action.test, action.set, action.clear):
                if bit != NONE and not 0 <= bit < self.width:
                    raise ValueError(f"action for id {match_id} uses bit {bit} >= width")
            if action.record != NONE and action.record >= self.n_registers:
                raise ValueError(f"action for id {match_id} uses register {action.record}")
            if action.distance is not None and action.distance[0] >= self.n_registers:
                raise ValueError(f"action for id {match_id} tests register {action.distance[0]}")
            if action.report != NONE and action.report not in self.final_ids:
                raise ValueError(
                    f"action for id {match_id} reports {action.report}, not in final set"
                )

    @classmethod
    def empty(cls) -> "FilterProgram":
        return cls(actions={}, width=0, n_registers=0, final_ids=frozenset())

    @classmethod
    def passthrough(cls, final_ids: Iterable[int]) -> "FilterProgram":
        """A program that confirms the given ids unconditionally."""
        ids = frozenset(final_ids)
        return cls(
            actions={i: FilterAction(report=i) for i in ids},
            width=0,
            n_registers=0,
            final_ids=ids,
        )

    def merged_with(self, other: "FilterProgram") -> "FilterProgram":
        """Combine two programs (paper §III-C: concatenate action tables,
        shifting the second program's memory so bit uses don't overlap)."""
        overlap = set(self.actions) & set(other.actions)
        if overlap:
            raise ValueError(f"programs share match-ids: {sorted(overlap)}")
        shifted = {
            match_id: _shift_action(action, self.width, self.n_registers)
            for match_id, action in other.actions.items()
        }
        return FilterProgram(
            actions={**self.actions, **shifted},
            width=self.width + other.width,
            n_registers=self.n_registers + other.n_registers,
            final_ids=self.final_ids | other.final_ids,
        )

    def memory_bytes(self) -> int:
        """Modelled image size: 4 ints of 4 bytes per action plus the
        extension fields when used, and a small id->action index."""
        size = 0
        for action in self.actions.values():
            size += 16
            if action.record != NONE or action.distance is not None:
                size += 16
        return size + 8 * len(self.actions)

    def describe(self) -> list[str]:
        """The program as paper-style lines, sorted by match-id."""
        return [
            f"{match_id}: {action.describe()}"
            for match_id, action in sorted(self.actions.items())
        ]

    def action_priority(self, match_id: int) -> int:
        """Deterministic same-position ordering (clears < sets < tests).

        The paper notes that multi-match positions make action order
        observable and that its construction must avoid ambiguity.  Our
        construction guarantees set-vs-test collisions cannot happen (the
        strengthened overlap test) and resolves clear-vs-set collisions —
        possible with the coalesced clear mitigation — in favour of the
        set, by running clears first.
        """
        action = self.actions.get(match_id)
        if action is None:
            return 2
        if action.report != NONE:
            return 2
        if action.clear != NONE and action.set == NONE and action.record == NONE:
            return 0
        return 1


def _shift_action(action: FilterAction, bit_offset: int, reg_offset: int) -> FilterAction:
    def bump(bit: int) -> int:
        return bit + bit_offset if bit != NONE else NONE

    distance = action.distance
    if distance is not None:
        distance = (distance[0] + reg_offset, distance[1], distance[2])
    record = action.record + reg_offset if action.record != NONE else NONE
    return FilterAction(
        test=bump(action.test),
        set=bump(action.set),
        clear=bump(action.clear),
        report=action.report,
        record=record,
        distance=distance,
    )


class FilterState:
    """Per-flow filter memory: w bits plus the offset registers.

    The paper keeps a ``(q, m)`` pair per flow; this is the ``m`` half.
    Registers store ``(mask, last_pos)`` where bit i of ``mask`` means "a
    recorded end happened i bytes before ``last_pos``".  ``sticky`` has bit
    r set once register r has had a record age past the window — "there was
    an end at least WINDOW_BITS bytes ago" — which is what open-ended
    distance tests saturate into.
    """

    __slots__ = ("bits", "registers", "sticky")

    def __init__(self, n_registers: int = 0):
        self.bits = 0
        self.sticky = 0
        self.registers: list[tuple[int, int]] = [(0, -1)] * n_registers

    def clone(self) -> "FilterState":
        copy = FilterState.__new__(FilterState)
        copy.bits = self.bits
        copy.sticky = self.sticky
        copy.registers = list(self.registers)
        return copy

    def __repr__(self) -> str:
        return (
            f"FilterState(bits={self.bits:#x}, registers={self.registers!r}, "
            f"sticky={self.sticky:#x})"
        )


class FilterEngine:
    """Executes a :class:`FilterProgram` over a stream of match events."""

    def __init__(self, program: FilterProgram):
        self.program = program
        self._actions = program.actions

    def new_state(self) -> FilterState:
        return FilterState(self.program.n_registers)

    def process(self, state: FilterState, pos: int, match_id: int) -> int:
        """Run the action for one event; returns the confirmed id or NONE."""
        action = self._actions.get(match_id)
        if action is None:
            # Ids with no action pass through when final, drop otherwise.
            if match_id in self.program.final_ids:
                return match_id
            return NONE
        # Condition plane.
        if action.test != NONE and not state.bits >> action.test & 1:
            return NONE
        if action.distance is not None:
            reg, lo, hi = action.distance
            mask = self._aged_mask(state, reg, pos)
            if hi is None:
                # Open window: any record at distance >= lo, or one that
                # already saturated out of the window.
                if not (mask >> lo) and not (state.sticky >> reg & 1):
                    return NONE
            else:
                window = ((1 << (hi - lo + 1)) - 1) << lo
                if not mask & window:
                    return NONE
        # Effect plane.
        if action.set != NONE:
            state.bits |= 1 << action.set
        if action.clear != NONE:
            state.bits &= ~(1 << action.clear)
        if action.record != NONE:
            reg = action.record
            mask = self._aged_mask(state, reg, pos)
            state.registers[reg] = (mask | 1, pos)
        return action.report

    def _aged_mask(self, state: FilterState, reg: int, pos: int) -> int:
        """Shift a register's mask forward to the current position.

        Records shifted beyond the window saturate into the register's
        sticky bit (they are "at least WINDOW_BITS old" from then on).
        """
        mask, last_pos = state.registers[reg]
        if last_pos < 0 or not mask:
            return 0
        delta = pos - last_pos
        if delta >= WINDOW_BITS:
            state.sticky |= 1 << reg
            state.registers[reg] = (0, pos)
            return 0
        aged = mask << delta
        if aged > _WINDOW_MASK:
            state.sticky |= 1 << reg
            aged &= _WINDOW_MASK
        state.registers[reg] = (aged, pos)
        return aged
