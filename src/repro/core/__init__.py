"""The paper's contribution: splitter, filter engine, and the MFA."""

from .bpmfa import BitParallelMFA, build_bp_mfa
from .compiler import (
    LintError,
    ProofError,
    compile_dfa,
    compile_mfa,
    compile_nfa,
    compile_patterns,
)
from .explain import PatternReport, explain, explain_lines
from .filters import FilterAction, FilterEngine, FilterProgram, FilterState
from .mfa import MFA, FlowContext, build_mfa
from .serialize import dumps_mfa, load_mfa, loads_mfa, save_mfa
from .splitter import SplitResult, SplitStats, SplitterOptions, split_patterns
from .verify import VerificationReport, reference_matches, verify_equivalence

__all__ = [
    "BitParallelMFA",
    "build_bp_mfa",
    "PatternReport",
    "explain",
    "explain_lines",
    "LintError",
    "ProofError",
    "compile_dfa",
    "compile_mfa",
    "compile_nfa",
    "compile_patterns",
    "FilterAction",
    "FilterEngine",
    "FilterProgram",
    "FilterState",
    "MFA",
    "FlowContext",
    "build_mfa",
    "dumps_mfa",
    "load_mfa",
    "loads_mfa",
    "save_mfa",
    "SplitResult",
    "SplitStats",
    "SplitterOptions",
    "split_patterns",
    "VerificationReport",
    "reference_matches",
    "verify_equivalence",
]
