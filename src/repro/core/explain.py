"""Human-readable compilation reports.

Operators need to see what the splitter did to their rules: which patterns
decomposed into which components, which were refused and why, how much
filter memory each flow will carry, and where the automaton's states come
from.  ``explain(mfa)`` renders exactly that (it backs the ``mfa-bench
compile`` command and the examples).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..regex.printer import pattern_to_text
from .filters import NONE
from .mfa import MFA

__all__ = ["PatternReport", "explain", "explain_lines"]


@dataclass(frozen=True, slots=True)
class PatternReport:
    """How one original pattern was compiled."""

    match_id: int
    n_components: int
    component_texts: tuple[str, ...]
    decomposed: bool


def explain(mfa: MFA) -> list[PatternReport]:
    """Per-original-pattern compilation summary."""
    split = mfa.split
    by_id = {c.match_id: c for c in split.components}
    reports = []
    for original_id, component_ids in sorted(split.component_ids.items()):
        texts = tuple(
            pattern_to_text(by_id[cid]) for cid in component_ids if cid in by_id
        )
        reports.append(
            PatternReport(
                match_id=original_id,
                n_components=len(component_ids),
                component_texts=texts,
                decomposed=len(component_ids) > 1,
            )
        )
    return reports


def explain_lines(mfa: MFA) -> list[str]:
    """The full report as printable lines."""
    stats = mfa.stats()
    lines = [
        f"component DFA: {mfa.n_states} states "
        f"({mfa.dfa.memory_bytes() / 1e6:.2f} MB modelled image)",
        f"filter: {mfa.width} bits + {mfa.program.n_registers} offset register(s) "
        f"per flow; {len(mfa.program.actions)} actions "
        f"({mfa.filter_bytes()} B, "
        f"{100 * mfa.filter_bytes() / max(1, mfa.memory_bytes()):.3f}% of image)",
        f"splits: {stats.n_dot_star} dot-star, {stats.n_almost_dot_star} "
        f"almost-dot-star, {stats.n_counted} counted-gap, "
        f"{stats.n_offset_rescues} offset-rescued",
        f"refusals: {stats.n_refused_overlap} overlap, {stats.n_refused_class} "
        f"class-conflict, {stats.n_refused_nullable} nullable, "
        f"{stats.n_refused_counted} counted",
        "",
    ]
    for report in explain(mfa):
        if report.decomposed:
            lines.append(
                f"pattern {{{{{report.match_id}}}}} -> {report.n_components} components:"
            )
            for text in report.component_texts:
                lines.append(f"    {text}")
        else:
            suffix = f" ({report.component_texts[0]})" if report.component_texts else ""
            lines.append(f"pattern {{{{{report.match_id}}}}} compiled intact{suffix}")
    if mfa.program.actions:
        lines.append("")
        lines.append("filter program:")
        for line in mfa.program.describe():
            lines.append(f"    {line}")
    return lines
