"""Cross-engine equivalence checking (the paper's correctness claim).

The whole point of match filtering is that the composite system "returns
the same matches as the original regular expression would find" (§I-D).
This module makes that claim executable: run the MFA and a ground-truth
engine (DFA when constructible, NFA otherwise) over the same input and
diff the match streams.  The hypothesis test-suite drives this over
randomly generated decomposable patterns; the benchmark harness uses it as
a sanity gate before timing anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..automata.dfa import DfaExplosionError, build_dfa
from ..automata.nfa import MatchEvent, build_nfa
from ..regex.ast import Pattern
from .mfa import MFA, build_mfa
from .splitter import SplitterOptions

__all__ = ["VerificationReport", "verify_equivalence", "reference_matches"]


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """Outcome of one equivalence check."""

    equal: bool
    missing: tuple[MatchEvent, ...]   # expected but not produced by the MFA
    spurious: tuple[MatchEvent, ...]  # produced by the MFA but not expected
    reference_engine: str

    def raise_on_mismatch(self) -> None:
        if not self.equal:
            raise AssertionError(
                f"MFA diverges from {self.reference_engine}: "
                f"missing={list(self.missing)!r} spurious={list(self.spurious)!r}"
            )


def reference_matches(
    patterns: Sequence[Pattern], data: bytes, state_budget: int = 50_000
) -> tuple[list[MatchEvent], str]:
    """Ground-truth matches of the *original* (un-decomposed) patterns."""
    try:
        dfa = build_dfa(patterns, state_budget=state_budget)
        return sorted(dfa.run(data)), "dfa"
    except DfaExplosionError:
        nfa = build_nfa(patterns)
        return sorted(nfa.run(data)), "nfa"


def verify_equivalence(
    patterns: Sequence[Pattern],
    data: bytes,
    mfa: MFA | None = None,
    splitter_options: SplitterOptions | None = None,
) -> VerificationReport:
    """Check that the MFA's filtered stream equals the original semantics."""
    if mfa is None:
        mfa = build_mfa(patterns, splitter_options)
    expected, engine = reference_matches(patterns, data)
    actual = sorted(mfa.run(data))
    expected_set = set(expected)
    actual_set = set(actual)
    missing = tuple(sorted(expected_set - actual_set))
    spurious = tuple(sorted(actual_set - expected_set))
    return VerificationReport(
        equal=not missing and not spurious,
        missing=missing,
        spurious=spurious,
        reference_engine=engine,
    )
