"""The Match Filtering Automaton (paper §III).

An MFA is the paper's 9-tuple ``(Q, Σ, δ, q0, D_i, D_q, w, D, f)``: a plain
DFA over the *decomposed* component patterns, whose raw match stream is
post-processed by the stateful :class:`~repro.core.filters.FilterEngine`.
The DFA half carries no filter knowledge; the composition lives here.

Per-flow parsing state is exactly a ``(q, m)`` pair — DFA state plus filter
memory — which is what makes the scheme practical for the many simultaneous
flows of a network security middlebox; :class:`FlowContext` packages it.

Decision sets are re-ordered at construction time by action priority
(clears before sets before tests) so that multi-match positions behave
deterministically and correctly; see ``FilterProgram.action_priority``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

from ..automata.dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from ..automata.nfa import MatchEvent
from ..regex.ast import Pattern
from .filters import NONE, FilterEngine, FilterProgram, FilterState
from .splitter import SplitResult, SplitStats, SplitterOptions, split_patterns

__all__ = ["MFA", "FlowContext", "build_mfa"]


class FlowContext:
    """The per-flow ``(q, m)`` pair the paper multiplexes flows with."""

    __slots__ = ("state", "memory", "offset")

    def __init__(self, mfa: "MFA"):
        self.state = mfa.dfa.start
        self.memory: FilterState = mfa.engine.new_state()
        # Absolute payload offset of the next byte; keeps the offset
        # registers meaningful across packet boundaries.
        self.offset = 0


class MFA:
    """A compiled match-filtering automaton.

    ``dfa`` matches the decomposed components; ``program``/``engine`` filter
    the raw component matches down to original-pattern matches.
    """

    def __init__(self, dfa: DFA, program: FilterProgram, split: SplitResult | None = None):
        self.dfa = dfa
        self.program = program
        # ``split`` carries provenance (components, stats); a deserialised
        # MFA runs fine without it.
        self.split = split if split is not None else SplitResult(
            components=[], program=program, component_ids={}, stats=SplitStats()
        )
        # Optional required-literal prefilter plan (a plain JSON-able dict,
        # see repro.fastpath.prefilter) — attached by build_mfa, carried
        # through serialization, consumed by the fastpath engine.
        self.prefilter: Optional[dict] = None
        # Optional default-transition forest (repro.automata.compress
        # CompressedDFA) — attached by build_mfa(compress=...) or by a
        # compressed-bundle load.  When present, serialization writes the
        # compressed artifact tier instead of the dense table.
        self.compressed: Optional[object] = None
        self.engine = FilterEngine(program)
        # Pre-compile every decision set into an op tuple, ordered by action
        # priority (clears < sets < tests).  Ops for plain bit-plane actions
        # are executed inline in the hot loop — a handful of integer
        # operations, the software equivalent of the paper's "few CPU
        # instructions" — while register-plane actions defer to the engine.
        self._ops: list[object] = [
            self._compile_ops(acc) for acc in dfa.accepts
        ]
        self._ordered_accepts_end: list[tuple[int, ...]] = [
            tuple(sorted(acc, key=lambda i: (program.action_priority(i), i)))
            for acc in dfa.accepts_end
        ]
        # Hot-loop accelerators: one (row, ops) pair per state so the
        # per-byte loop resolves the next state's row and decision ops with
        # a single list index, plus an engine-wide early-out flag for the
        # degenerate all-``None`` ops table (no state ever acts mid-stream).
        self._steps: list[tuple[object, object]] = list(zip(dfa.rows, self._ops))
        self._has_ops = any(op is not None for op in self._ops)

    def _compile_ops(self, decisions: tuple[int, ...]):
        """Decision set -> ordered ops (id, test, set_mask, clear_mask,
        report, needs_engine); a two-element [or_mask, and_mask] list for
        pure unconditional set/clear states; None when the set is empty."""
        if not decisions:
            return None
        program = self.program
        ordered = sorted(decisions, key=lambda i: (program.action_priority(i), i))
        ops = []
        for match_id in ordered:
            action = program.actions.get(match_id)
            if action is None:
                if match_id in program.final_ids:
                    ops.append((match_id, NONE, 0, 0, match_id, False))
                continue
            needs_engine = action.record != NONE or action.distance is not None
            set_mask = 0 if action.set == NONE else 1 << action.set
            clear_mask = 0 if action.clear == NONE else 1 << action.clear
            ops.append(
                (match_id, action.test, set_mask, clear_mask, action.report, needs_engine)
            )
        if not ops:
            return None
        # Fast path: a state whose actions are all unconditional sets/clears
        # (the clear-flood case) collapses to one AND/OR mask pair — this is
        # what "a few CPU instructions" looks like from Python.
        if all(
            op[1] == NONE and op[4] == NONE and not op[5] for op in ops
        ):
            or_mask = 0
            clear_mask_all = 0
            for op in ops:
                or_mask |= op[2]
                clear_mask_all |= op[3]
            return [or_mask, ~clear_mask_all]
        return tuple(ops)

    # -- introspection -------------------------------------------------------

    @property
    def n_states(self) -> int:
        """The "MFA Qs" count of Table V: states of the component DFA."""
        return self.dfa.n_states

    @property
    def width(self) -> int:
        """w — filter memory bits per flow."""
        return self.program.width

    def memory_bytes(self) -> int:
        """Modelled image size: the component DFA plus the filter table.

        The paper reports filters averaging below 0.2% of the MFA image;
        ``filter_bytes`` exposes the breakdown for that claim.
        """
        return self.dfa.memory_bytes() + self.program.memory_bytes()

    def filter_bytes(self) -> int:
        return self.program.memory_bytes()

    def stats(self) -> SplitStats:
        return self.split.stats

    # -- matching ------------------------------------------------------------

    def new_context(self) -> FlowContext:
        return FlowContext(self)

    def run(self, data: bytes) -> list[MatchEvent]:
        """Match a complete payload; returns confirmed original-pattern
        matches only (the raw component matches are filtered internally)."""
        context = self.new_context()
        matches = list(self.feed(context, data))
        matches.extend(self.finish(context))
        return matches

    def feed(self, context: FlowContext, data: bytes) -> Iterator[MatchEvent]:
        """Streaming interface: process one payload chunk of a flow.

        The DFA advances byte-by-byte; whenever the new state's decision set
        is non-empty the filter engine processes each raw match in priority
        order and confirmed matches are yielded with flow-absolute offsets.
        """
        state = context.state
        base = context.offset
        if not self._has_ops:
            # All-None ops table: no state ever acts mid-stream, so the walk
            # degenerates to the pure DFA scan (finish() still handles any
            # end-anchored decisions).
            context.state = self.dfa.scan(data, state)
            context.offset = base + len(data)
            return
        steps = self._steps
        engine_process = self.engine.process
        memory = context.memory
        row, ops = steps[state]
        for pos, byte in enumerate(data):
            state = row[byte]
            row, ops = steps[state]
            if ops is not None:
                if type(ops) is list:
                    memory.bits = memory.bits & ops[1] | ops[0]
                    continue
                absolute = base + pos
                for match_id, test, set_mask, clear_mask, report, needs_engine in ops:
                    if needs_engine:
                        confirmed = engine_process(memory, absolute, match_id)
                        if confirmed != NONE:
                            yield MatchEvent(absolute, confirmed)
                        continue
                    bits = memory.bits
                    if test >= 0 and not bits >> test & 1:
                        continue
                    if set_mask or clear_mask:
                        memory.bits = (bits & ~clear_mask) | set_mask
                    if report >= 0:
                        yield MatchEvent(absolute, report)
        context.state = state
        context.offset = base + len(data)

    def finish(self, context: FlowContext) -> Iterator[MatchEvent]:
        """Emit end-anchored matches once a flow is complete."""
        raw = self._ordered_accepts_end[context.state]
        if not raw or context.offset == 0:
            return
        final_pos = context.offset - 1
        for match_id in raw:
            confirmed = self.engine.process(context.memory, final_pos, match_id)
            if confirmed != NONE:
                yield MatchEvent(final_pos, confirmed)

    def first_match(self, data: bytes) -> MatchEvent | None:
        """Early-exit matching: stop at the first confirmed match.

        Inline prevention (IPS) drops a flow on its first alert, so the
        engine need not finish the payload; on benign traffic this is the
        same cost as :meth:`run`, on hostile traffic it exits early.
        """
        context = self.new_context()
        for event in self.feed(context, data):
            return event
        for event in self.finish(context):
            return event
        return None

    def matches(self, data: bytes) -> bool:
        """True when any original pattern matches anywhere in ``data``."""
        return self.first_match(data) is not None

    def run_decoupled(self, data: bytes) -> list[MatchEvent]:
        """Two-phase matching per §III-B's queue note.

        "The DFA processing could put matches with the position of the
        match into a queue, and the match filtering could read from that
        queue": phase one is a pure DFA scan collecting raw events, phase
        two drains the queue through the filter engine.  Equivalent to the
        lock-step :meth:`run` (tested), and the mode a pipelined hardware
        implementation would use.
        """
        queue = self.dfa.run(data)
        # Raw DFA events arrive position-ordered but not priority-ordered
        # within a position; re-sort the way the lock-step path does.
        priority = self.program.action_priority
        queue.sort(key=lambda e: (e.pos, priority(e.match_id), e.match_id))
        engine = self.engine
        memory = engine.new_state()
        out: list[MatchEvent] = []
        # The DFA pass already queued end-anchored decisions at the final
        # position, so draining the queue is the whole second phase.
        for event in queue:
            confirmed = engine.process(memory, event.pos, event.match_id)
            if confirmed != NONE:
                out.append(MatchEvent(event.pos, confirmed))
        return out

    def raw_matches(self, data: bytes) -> list[MatchEvent]:
        """The unfiltered component match stream (diagnostics, Table IV)."""
        return self.dfa.run(data)

    def scan(self, data: bytes) -> int:
        """Benchmark loop without match collection; returns final state."""
        return self.dfa.scan(data)


def build_mfa(
    patterns: Sequence[Pattern],
    splitter_options: SplitterOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    minimize: bool = False,
    time_budget: float | None = None,
    phases: dict[str, float] | None = None,
    prefilter: bool = True,
    compress: "bool | int | None" = None,
) -> MFA:
    """Split a rule set and compile the component DFA (paper Figure 1).

    ``minimize`` runs Hopcroft minimization on the component DFA; the
    paper's reported MFA state counts are unminimized, so this defaults
    off (the ablation benchmark measures the residual savings).
    ``time_budget`` bounds the subset construction's wall time in seconds
    (see :func:`~repro.automata.dfa.build_dfa_from_nfa`).

    ``phases`` is an out-parameter: pass a dict and the wall time of each
    compile phase (``split``, ``determinize``, ``minimize``,
    ``filter-gen``, ``prefilter``) is *added* to it, so repeated/sharded
    builds accumulate into one breakdown.

    ``prefilter`` attaches a required-literal prefilter plan (pure-Python
    AST analysis, a few microseconds per rule) when the component set
    supports one; the plan rides the bundle and is purely a scan-time
    accelerator — disabling it never changes match semantics.

    ``compress`` attaches a default-transition forest
    (:func:`repro.automata.compress.compress_dfa`) so the bundle
    serialises in the compressed artifact tier: ``True`` uses the default
    chain-depth bound, an integer sets the bound, ``None`` defers to
    ``REPRO_COMPILE_COMPRESS``.  Purely a storage tier — the in-memory
    engine keeps its dense table and match semantics are untouched.
    """
    import time as _time

    def _mark(phase: str, since: float) -> float:
        now = _time.perf_counter()
        if phases is not None:
            phases[phase] = phases.get(phase, 0.0) + (now - since)
        return now

    tick = _time.perf_counter()
    split = split_patterns(patterns, splitter_options)
    tick = _mark("split", tick)
    dfa = build_dfa(split.components, state_budget=state_budget, time_budget=time_budget)
    tick = _mark("determinize", tick)
    if minimize:
        from ..automata.minimize import minimize_dfa

        dfa = minimize_dfa(dfa)
        tick = _mark("minimize", tick)
    mfa = MFA(dfa, split.program, split)
    tick = _mark("filter-gen", tick)
    if prefilter:
        # Imported lazily: the plan builder lives with the engine that
        # consumes it, and core must not depend on fastpath at import time.
        from ..fastpath.prefilter import build_prefilter

        mfa.prefilter = build_prefilter(mfa)
        tick = _mark("prefilter", tick)
    from ..automata.compress import ARTIFACT_WINDOW, compress_dfa, resolve_compress_option

    depth = resolve_compress_option(compress)
    if depth:
        mfa.compressed = compress_dfa(dfa, window=ARTIFACT_WINDOW, max_depth=depth)
        _mark("compress", tick)
    return mfa
