"""Language-level overlap tests gating de-composition (paper §IV-A/B).

The paper requires that "no suffix of A can be a prefix of B" before
splitting ``.*A.*B``.  Taken literally that condition misses one corner
case: a *whole word* of A occurring inside a proper prefix of B (e.g.
A = ``b``, B = ``abc`` on input ``abc`` — A fires inside B's span, the flag
is set, and the filtered result wrongly confirms).  The test implemented
here closes that gap by checking the slightly stronger condition

    Pref(L(B))  ∩  Suf(L(.*A))  contains no non-empty string,

i.e. no non-empty prefix of a B-word may simultaneously be the tail of some
input that just finished matching ``.*A``.  ``Suf(L(.*A))`` contains both
every suffix of every A-word *and* every string ending in a complete A-word,
which is exactly the set of histories after which the A-flag can be set.

The check runs on the product of two small NFAs (one per segment), so it is
exact for the full regex subset, not just literal strings.
"""

from __future__ import annotations

from ..automata.nfa import NFA, build_nfa
from ..regex import ast
from ..regex.ast import Node, Pattern

__all__ = ["segments_overlap", "useful_states"]


def useful_states(nfa: NFA) -> set[int]:
    """States from which some accepting state is reachable (co-reachable)."""
    # Build the reverse edge relation once.
    reverse: list[list[int]] = [[] for _ in range(nfa.n_states)]
    for src, edges in enumerate(nfa.transitions):
        for _bits, dst in edges:
            reverse[dst].append(src)
    frontier = [
        q
        for q in range(nfa.n_states)
        if nfa.accepts[q] or nfa.accepts_end[q]
    ]
    useful = set(frontier)
    while frontier:
        state = frontier.pop()
        for prev in reverse[state]:
            if prev not in useful:
                useful.add(prev)
                frontier.append(prev)
    return useful


def segments_overlap(a: Node, b: Node) -> bool:
    """True when splitting ``.*a ... b`` would be unsafe.

    Checks whether some non-empty string is both a suffix of the language of
    ``.*a`` and a prefix of the language of ``b`` (see module docstring).
    """
    # NFA for ".*a": unanchored build adds the ".*" prefix.
    nfa_a = build_nfa([Pattern(a, match_id=1, anchored=False)])
    # NFA for "b" alone, anchored so no ".*" is prepended.
    nfa_b = build_nfa([Pattern(b, match_id=1, anchored=True)])

    accepting_a = {
        q
        for q in range(nfa_a.n_states)
        if nfa_a.accepts[q] or nfa_a.accepts_end[q]
    }
    useful_b = useful_states(nfa_b)

    # Suffixes of L(.*a) start from any state of nfa_a (every state is
    # reachable by construction); prefixes of L(b) start from b's start.
    # BFS the synchronous product looking for a path of length >= 1 ending
    # in (accepting_a, useful_b).
    start_b = nfa_b.initial[0]
    frontier: list[tuple[int, int]] = [(qa, start_b) for qa in range(nfa_a.n_states)]
    seen: set[tuple[int, int]] = set(frontier)
    while frontier:
        qa, qb = frontier.pop()
        for bits_a, ta in nfa_a.transitions[qa]:
            for bits_b, tb in nfa_b.transitions[qb]:
                if not bits_a & bits_b:
                    continue
                if ta in accepting_a and tb in useful_b:
                    return True
                pair = (ta, tb)
                if pair not in seen:
                    seen.add(pair)
                    frontier.append(pair)
    return False
