"""Resilient pipeline layer: degrade gracefully, account for everything.

See :mod:`repro.robust.pipeline` for the compile-side fallback chain and
the tolerant scan, :mod:`repro.robust.limits` for every knob and its
environment spelling, :mod:`repro.robust.faults` for the deterministic
fault-injection harness, and ``docs/robustness.md`` for the operator
story.
"""

from .faults import (
    FAULT_CLASSES,
    apply_fault,
    bitflip_records,
    corrupt_record_length,
    duplicate_packets,
    record_offsets,
    reorder_packets,
    repack,
    truncate_capture,
    wrap_tcp_sequences,
    xflood_packets,
    xflood_payload,
)
from .limits import (
    DEFAULT_FALLBACK_CHAIN,
    CompileLimits,
    ScanLimits,
    compile_limits_from_env,
    scan_limits_from_env,
)
from .pipeline import CompileResult, ResilientCompiler, compile_resilient, resilient_scan
from .report import CompileReport, EngineAttempt, RuleOutcome, ScanReport

__all__ = [
    "FAULT_CLASSES",
    "apply_fault",
    "bitflip_records",
    "corrupt_record_length",
    "duplicate_packets",
    "record_offsets",
    "reorder_packets",
    "repack",
    "truncate_capture",
    "wrap_tcp_sequences",
    "xflood_packets",
    "xflood_payload",
    "DEFAULT_FALLBACK_CHAIN",
    "CompileLimits",
    "ScanLimits",
    "compile_limits_from_env",
    "scan_limits_from_env",
    "CompileResult",
    "ResilientCompiler",
    "compile_resilient",
    "resilient_scan",
    "CompileReport",
    "EngineAttempt",
    "RuleOutcome",
    "ScanReport",
]
