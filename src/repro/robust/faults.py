"""Deterministic fault injection for captures, segments and payloads.

The degradation story needs reproducible damage: every injector here is a
pure function of its inputs and a seed (via :func:`repro.utils.rng.make_rng`),
so a test or benchmark that observes "N records lost, unaffected flows
identical" observes the same N every run.

Three layers of damage, matching where real damage happens:

* **capture bytes** — :func:`bitflip_records`, :func:`truncate_capture`,
  :func:`corrupt_record_length` operate on the raw pcap blob, exercising
  the tolerant reader's resynchronization;
* **segment stream** — :func:`reorder_packets`, :func:`duplicate_packets`,
  :func:`wrap_tcp_sequences` rearrange decoded packets, exercising the
  assembler's ordering, dedup and serial-number arithmetic;
* **payload content** — :func:`xflood_payload` builds the §IV-B hostile
  clear-flood traffic that melts unmitigated almost-dot-star filters.

:data:`FAULT_CLASSES` maps fault names to blob→blob transforms so the
benchmark can sweep every class uniformly.
"""

from __future__ import annotations

import struct
from io import BytesIO
from typing import Callable, Iterable, Sequence

from ..traffic.flows import FiveTuple, PROTO_TCP, Packet
from ..traffic.pcap import _GLOBAL_HEADER, _RECORD_HEADER, read_pcap, write_pcap
from ..utils.rng import make_rng

__all__ = [
    "record_offsets",
    "bitflip_records",
    "truncate_capture",
    "corrupt_record_length",
    "reorder_packets",
    "duplicate_packets",
    "wrap_tcp_sequences",
    "xflood_payload",
    "xflood_packets",
    "repack",
    "FAULT_CLASSES",
    "apply_fault",
]

_SEQ_MOD = 1 << 32


def record_offsets(blob: bytes) -> list[tuple[int, int]]:
    """``(header_offset, incl_len)`` of each record in a well-formed blob."""
    out: list[tuple[int, int]] = []
    offset = _GLOBAL_HEADER.size
    while offset + _RECORD_HEADER.size <= len(blob):
        incl_len = _RECORD_HEADER.unpack_from(blob, offset)[2]
        out.append((offset, incl_len))
        offset += _RECORD_HEADER.size + incl_len
    return out


# -- capture-byte faults ------------------------------------------------------


def bitflip_records(
    blob: bytes,
    n_flips: int = 8,
    seed: int = 0,
    records: Sequence[int] | None = None,
) -> bytes:
    """Flip ``n_flips`` random bits inside record *frames* (headers spared).

    Damaging frame bodies rather than record headers models link-level
    corruption: the reader still walks the file, but some frames no
    longer decode and are counted as undecodable.
    """
    rng = make_rng(seed, "faults:bitflip")
    damaged = bytearray(blob)
    offsets = record_offsets(blob)
    if records is not None:
        offsets = [offsets[i] for i in records]
    spans = [
        (off + _RECORD_HEADER.size, incl) for off, incl in offsets if incl > 0
    ]
    if not spans:
        return blob
    for _ in range(n_flips):
        start, length = spans[rng.randrange(len(spans))]
        position = start + rng.randrange(length)
        damaged[position] ^= 1 << rng.randrange(8)
    return bytes(damaged)


def truncate_capture(blob: bytes, fraction: float = 0.5) -> bytes:
    """Cut the capture mid-record at ``fraction`` of its length."""
    cut = max(_GLOBAL_HEADER.size, int(len(blob) * fraction))
    offsets = record_offsets(blob)
    for off, incl in offsets:
        frame_end = off + _RECORD_HEADER.size + incl
        if frame_end > cut:
            # Land strictly inside this record (past its header when
            # possible) so the tail is genuinely torn, not cleanly ended.
            cut = min(max(cut, off + _RECORD_HEADER.size + 1), frame_end - 1)
            break
    return blob[:cut]


def corrupt_record_length(blob: bytes, index: int, value: int = 0xFFFFFFFF) -> bytes:
    """Smash the ``incl_len``/``orig_len`` of record ``index``.

    This is the classic desynchronizing fault: a strict reader runs off
    the rails, a tolerant one must abandon the record and resync.
    """
    offsets = record_offsets(blob)
    off, _incl = offsets[index]
    damaged = bytearray(blob)
    struct.pack_into("<II", damaged, off + 8, value & 0xFFFFFFFF, value & 0xFFFFFFFF)
    return bytes(damaged)


# -- segment-stream faults ----------------------------------------------------


def reorder_packets(packets: Iterable[Packet], seed: int = 0) -> list[Packet]:
    """Deterministic shuffle of capture order (flows interleave, segments
    arrive out of order); the assembler must restore every stream."""
    out = list(packets)
    make_rng(seed, "faults:reorder").shuffle(out)
    return out


def duplicate_packets(
    packets: Iterable[Packet], rate: float = 0.25, seed: int = 0
) -> list[Packet]:
    """Re-inject a deterministic sample of packets (retransmissions)."""
    out = list(packets)
    rng = make_rng(seed, "faults:duplicate")
    duplicates = [p for p in out if rng.random() < rate]
    positions = [rng.randrange(len(out) + 1) for _ in duplicates]
    for packet, position in sorted(zip(duplicates, positions), key=lambda x: -x[1]):
        out.insert(position, packet)
    return out


def wrap_tcp_sequences(packets: Iterable[Packet], headroom: int = 16) -> list[Packet]:
    """Rebase each TCP flow so its sequence numbers cross 2^32.

    The first-seen segment of every flow is moved to ``2^32 - headroom``,
    so any flow longer than ``headroom`` bytes wraps mid-stream — the
    exact situation naive ``sorted(seqs)`` reassembly reorders.
    """
    out: list[Packet] = []
    deltas: dict[FiveTuple, int] = {}
    for packet in packets:
        if packet.key.proto != PROTO_TCP:
            out.append(packet)
            continue
        delta = deltas.get(packet.key)
        if delta is None:
            delta = (_SEQ_MOD - headroom - packet.seq) % _SEQ_MOD
            deltas[packet.key] = delta
        out.append(
            Packet(
                key=packet.key,
                payload=packet.payload,
                seq=(packet.seq + delta) % _SEQ_MOD,
                timestamp=packet.timestamp,
            )
        )
    return out


# -- payload-content faults ---------------------------------------------------


def xflood_payload(
    x_run: bytes = b"abcdef",
    repeats: int = 4000,
    prefix: bytes = b"pqs",
    suffix: bytes = b"xyz",
) -> bytes:
    """The §IV-B clear-flood: a long run of X bytes between A and B.

    Against an unmitigated ``.*A[^X]*B`` decomposition every X byte is a
    filter event; a robust pipeline must survive this at full fidelity.
    """
    return prefix + x_run * repeats + suffix


def xflood_packets(
    key: FiveTuple,
    segment_size: int = 1460,
    **payload_kwargs,
) -> list[Packet]:
    """An X-flood flow cut into MTU-sized in-order TCP segments."""
    payload = xflood_payload(**payload_kwargs)
    return [
        Packet(key=key, payload=payload[i : i + segment_size], seq=i)
        for i in range(0, len(payload), segment_size)
    ]


# -- uniform blob-level interface ---------------------------------------------


def repack(packets: Iterable[Packet]) -> bytes:
    """Re-encode packets as a capture blob (for segment-level faults)."""
    buffer = BytesIO()
    write_pcap(buffer, packets)
    return buffer.getvalue()


def _decode(blob: bytes) -> list[Packet]:
    return list(read_pcap(BytesIO(blob)))


FAULT_CLASSES: dict[str, Callable[[bytes, int], bytes]] = {
    "clean": lambda blob, seed: blob,
    "bitflip": lambda blob, seed: bitflip_records(blob, n_flips=8, seed=seed),
    "truncate": lambda blob, seed: truncate_capture(blob, fraction=0.6),
    "corrupt-length": lambda blob, seed: corrupt_record_length(
        blob, index=len(record_offsets(blob)) // 2
    ),
    "reorder": lambda blob, seed: repack(reorder_packets(_decode(blob), seed=seed)),
    "duplicate": lambda blob, seed: repack(duplicate_packets(_decode(blob), seed=seed)),
    "seq-wrap": lambda blob, seed: repack(wrap_tcp_sequences(_decode(blob))),
}


def apply_fault(blob: bytes, fault: str, seed: int = 0) -> bytes:
    """Apply one named fault class to a capture blob."""
    try:
        transform = FAULT_CLASSES[fault]
    except KeyError:
        raise KeyError(f"unknown fault {fault!r}; have {sorted(FAULT_CLASSES)}") from None
    return transform(blob, seed)
