"""Structured outcome reports for the resilient pipeline.

The paper reports feasibility as a binary per (set, engine) cell —
"B217p could not be constructed".  An operator needs the full story per
*rule*: which rules were quarantined and why, which engines were tried
with which budgets, what finally shipped, and what the scan dropped.
:class:`CompileReport` and :class:`ScanReport` are those stories, in a
form ``bench.harness`` tables and the CLI can render (``describe()``)
and tests can assert on (``to_dict()``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ..traffic.flows import AssemblerStats, DispatchStats
from ..traffic.pcap import PcapStats

if TYPE_CHECKING:
    from ..analyze.explosion import TriageResult
    from ..analyze.report import AnalysisReport

__all__ = ["RuleOutcome", "EngineAttempt", "CompileReport", "ScanReport"]

QUARANTINED = "quarantined"
COMPILED = "compiled"


@dataclass(frozen=True, slots=True)
class RuleOutcome:
    """What happened to one input rule (1-based ``match_id`` = position)."""

    match_id: int
    source: str
    status: str  # COMPILED | QUARANTINED
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == COMPILED


@dataclass(frozen=True, slots=True)
class EngineAttempt:
    """One engine construction attempt and its budget/outcome.

    ``shard`` is the 0-based shard index when the compiler ran in sharded
    mode (``ResilientCompiler(shards=...)``); ``None`` for whole-set
    attempts.  ``skipped`` marks a budget the chain never actually tried
    because the pre-compile triage predicted it could not fit — recorded
    so the trail stays complete, but excluded from ``budgets_consumed``.
    """

    engine: str
    state_budget: int | None
    seconds: float
    ok: bool
    error: str | None = None
    shard: int | None = None
    skipped: bool = False


@dataclass(slots=True)
class CompileReport:
    """Per-rule outcomes plus the engine attempt trail of one compile."""

    rules: list[RuleOutcome] = field(default_factory=list)
    attempts: list[EngineAttempt] = field(default_factory=list)
    engine_name: str | None = None
    # Wall time per compile phase (parse/split/determinize/minimize/
    # filter-gen), accumulated across shards and worker processes.
    phases: dict[str, float] = field(default_factory=dict)
    n_shards: int = 1
    # Static-analysis escort (when CompileLimits.analyze is on): the
    # pre-compile explosion triage and the post-compile audit of the
    # shipped engine (repro.analyze.TriageResult / AnalysisReport).
    triage: "TriageResult | None" = None
    audit: "AnalysisReport | None" = None
    # Equivalence proof of the shipped engine against the un-decomposed
    # patterns (when CompileLimits.prove is on): EQ findings, including
    # the explicit EQ110 when the proof was budget-bounded.
    proof: "AnalysisReport | None" = None
    # Adversarial worst-case audit of the shipped engine (when
    # CompileLimits.adversary is on): AV findings with the predicted
    # worst/clean cost ratios of every slow-path channel the artifact
    # carries (repro.analyze.adversary; witnesses stay with the CLI).
    adversary: "AnalysisReport | None" = None
    # Cross-rule interaction analysis of the input patterns (when
    # CompileLimits.ruleset is on): RS findings — duplicate / subsumed /
    # shadowed rules with replay-confirmed witnesses, walk budgets, and
    # the interaction census (repro.analyze.ruleset).
    ruleset: "AnalysisReport | None" = None

    @property
    def ok(self) -> bool:
        return self.engine_name is not None

    @property
    def n_compiled(self) -> int:
        return sum(1 for rule in self.rules if rule.ok)

    @property
    def quarantined(self) -> list[RuleOutcome]:
        return [rule for rule in self.rules if not rule.ok]

    @property
    def total_seconds(self) -> float:
        return sum(attempt.seconds for attempt in self.attempts)

    @property
    def budgets_consumed(self) -> list[int]:
        """State budgets burned on failed attempts before the winner."""
        return [
            attempt.state_budget
            for attempt in self.attempts
            if not attempt.ok and not attempt.skipped and attempt.state_budget is not None
        ]

    def to_dict(self) -> dict:
        # Phases are sorted (insertion order varies with the attempt
        # trail) so CI logs diff cleanly run against run.
        return {
            "engine": self.engine_name,
            "rules": [asdict(rule) for rule in self.rules],
            "attempts": [asdict(attempt) for attempt in self.attempts],
            "phases": {name: self.phases[name] for name in sorted(self.phases)},
            "n_shards": self.n_shards,
            "triage": self.triage.to_dict() if self.triage is not None else None,
            "audit": self.audit.to_dict() if self.audit is not None else None,
            "proof": self.proof.to_dict() if self.proof is not None else None,
            "adversary": (
                self.adversary.to_dict() if self.adversary is not None else None
            ),
            "ruleset": self.ruleset.to_dict() if self.ruleset is not None else None,
        }

    def describe(self) -> list[str]:
        """Human-readable rendering for the CLI and harness tables."""
        lines = [
            f"rules: {len(self.rules)} in, {self.n_compiled} compiled, "
            f"{len(self.quarantined)} quarantined"
        ]
        for rule in self.quarantined:
            source = rule.source if len(rule.source) <= 40 else rule.source[:37] + "..."
            lines.append(f"  quarantined {{{{{rule.match_id}}}}} {source!r}: {rule.error}")
        if self.triage is not None:
            lines.extend(self.triage.describe())
        for attempt in self.attempts:
            budget = f" budget={attempt.state_budget}" if attempt.state_budget else ""
            shard = f" shard {attempt.shard}" if attempt.shard is not None else ""
            if attempt.skipped:
                lines.append(f"  {attempt.engine}{shard}{budget}: {attempt.error}")
                continue
            if attempt.ok:
                # `error` doubles as a note on successful attempts (e.g.
                # "loaded from artifact cache").
                outcome = "ok" if attempt.error is None else f"ok ({attempt.error})"
            else:
                outcome = f"failed ({attempt.error})"
            lines.append(
                f"  {attempt.engine}{shard}{budget}: {outcome} in {attempt.seconds:.2f}s"
            )
        if self.phases:
            breakdown = ", ".join(
                f"{name} {self.phases[name]:.2f}s" for name in sorted(self.phases)
            )
            lines.append(f"phases: {breakdown}")
        if self.audit is not None:
            counts = self.audit.counts()
            lines.append(
                f"audit: {counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['info']} info"
            )
            lines.extend(f"  {f.describe()}" for f in self.audit)
        if self.proof is not None:
            counts = self.proof.counts()
            verdict = "failed" if counts["error"] else (
                "bounded" if counts["warning"] else "proved"
            )
            lines.append(
                f"proof: {verdict} ({counts['error']} error(s), "
                f"{counts['warning']} warning(s), {counts['info']} info)"
            )
            lines.extend(f"  {f.describe()}" for f in self.proof)
        if self.adversary is not None:
            counts = self.adversary.counts()
            lines.append(
                f"adversary: {counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['info']} info"
            )
            lines.extend(f"  {f.describe()}" for f in self.adversary)
        if self.ruleset is not None:
            counts = self.ruleset.counts()
            lines.append(
                f"ruleset: {counts['error']} error(s), {counts['warning']} "
                f"warning(s), {counts['info']} info"
            )
            lines.extend(f"  {f.describe()}" for f in self.ruleset)
        if self.engine_name is None:
            lines.append("no engine constructed")
        else:
            lines.append(
                f"engine: {self.engine_name} after {len(self.attempts)} attempt(s), "
                f"{self.total_seconds:.2f}s total"
            )
        return lines


@dataclass(slots=True)
class ScanReport:
    """Counters of one tolerant scan: what was read, dropped, isolated."""

    pcap: PcapStats = field(default_factory=PcapStats)
    assembler: AssemblerStats = field(default_factory=AssemblerStats)
    dispatch: DispatchStats = field(default_factory=DispatchStats)
    n_packets: int = 0
    n_flows: int = 0
    n_alerts: int = 0
    # Prefilter disposition of the scan engine: the requested mode
    # ("on"/"off"/"auto", None when the engine has no prefilter concept)
    # and whether a compiled plan was actually active at scan time.
    prefilter_mode: str | None = None
    prefilter_active: bool = False
    # Why a requested prefilter was not active (e.g. "chain-decode" when
    # the compressed artifact was loaded without flattening, which the
    # chain kernel cannot prefilter).  None when active or never requested.
    prefilter_disabled: str | None = None

    @property
    def degraded(self) -> bool:
        """True when anything at all was skipped, dropped or poisoned."""
        return bool(
            self.pcap.corrupt_records
            or self.pcap.undecodable_frames
            or self.pcap.truncated_tail
            or self.assembler.any_dropped()
            or self.dispatch.flows_poisoned
        )

    @property
    def flows_evicted(self) -> int:
        """Flows the assembler pushed out under memory pressure, top-level.

        An eviction is the scan-side load-shedding event — the flow was
        scanned on the way out, not lost, but its reassembly was cut
        short — so operators watch this counter the way the daemon
        watches its shed counter, without digging into assembler stats.
        """
        return self.assembler.flows_evicted

    def to_dict(self) -> dict:
        return {
            "pcap": asdict(self.pcap),
            "assembler": asdict(self.assembler),
            "dispatch": {
                "flows_poisoned": self.dispatch.flows_poisoned,
                "packets_skipped": self.dispatch.packets_skipped,
            },
            "n_packets": self.n_packets,
            "n_flows": self.n_flows,
            "n_alerts": self.n_alerts,
            "flows_evicted": self.flows_evicted,
            "prefilter": {
                "mode": self.prefilter_mode,
                "active": self.prefilter_active,
                "disabled": self.prefilter_disabled,
            },
        }

    def describe(self) -> list[str]:
        lines = [
            f"packets: {self.n_packets}, flows: {self.n_flows}, alerts: {self.n_alerts}",
            f"pcap: {self.pcap.describe()}",
        ]
        if self.prefilter_mode is not None:
            state = "active" if self.prefilter_active else "inactive"
            if self.prefilter_disabled is not None:
                state += f", auto-disabled: {self.prefilter_disabled}"
            lines.append(f"prefilter: {self.prefilter_mode} ({state})")
        if self.assembler.any_dropped():
            lines.append(
                f"assembler: {self.assembler.flows_evicted} flows evicted "
                f"({self.assembler.bytes_evicted} B), "
                f"{self.assembler.segments_dropped} segments dropped "
                f"({self.assembler.bytes_dropped} B)"
            )
        if self.dispatch.flows_poisoned:
            lines.append(
                f"dispatch: {self.dispatch.flows_poisoned} flows poisoned, "
                f"{self.dispatch.packets_skipped} packets skipped"
            )
        if not self.degraded:
            lines.append("clean scan: nothing dropped")
        return lines
