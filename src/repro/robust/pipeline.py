"""The resilient compile-and-scan pipeline.

The paper's operational claim is graceful behaviour at the edge of
feasibility — "B217p could not be constructed" as a DFA, yet the MFA
ships.  This module extends that posture across the whole pipeline:

* :class:`ResilientCompiler` never lets one bad rule or one explosive
  engine abort a deployment.  Rules that fail to parse or split are
  quarantined individually; on :class:`DfaExplosionError` the compiler
  retries with an escalating state-budget schedule and then walks the
  engine fallback chain (MFA → Hybrid-FA → NFA by default).  The whole
  trail — per-rule outcome, every attempt, budgets consumed, wall time —
  lands in a :class:`~repro.robust.report.CompileReport`.
* :func:`resilient_scan` reads a capture tolerantly (resynchronizing
  past corrupt records), reassembles under :class:`ScanLimits`, and
  isolates per-flow engine failures, so one poisoned flow costs one
  flow, not the trace.

Match-ids are stable under quarantine: rule *i* (1-based) always reports
as match-id *i*, whether or not earlier rules were quarantined, so alerts
map back to the operator's rule list.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from io import BytesIO
from os import PathLike
from typing import BinaryIO, Iterable, Sequence

from ..automata.dfa import DfaExplosionError, build_dfa
from ..automata.hybridfa import build_hybrid_fa
from ..automata.nfa import build_nfa
from ..core.splitter import SplitterOptions, split_patterns
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions, parse
from ..traffic.flows import Flow, FlowAssembler, FlowLimits, FlowMatch, Packet
from ..traffic.pcap import read_pcap
from .limits import CompileLimits
from .report import COMPILED, QUARANTINED, CompileReport, EngineAttempt, RuleOutcome, ScanReport

__all__ = ["CompileResult", "ResilientCompiler", "compile_resilient", "resilient_scan"]


@dataclass(slots=True)
class CompileResult:
    """A shipped engine plus the full story of how it was built."""

    engine: object | None
    engine_name: str | None
    report: CompileReport
    patterns: list[Pattern] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.engine is not None


class ResilientCompiler:
    """Compile a rule set with per-rule quarantine and engine fallback.

    Unlike :func:`repro.core.compile_mfa` — which propagates the first
    parse error or :class:`DfaExplosionError` to the caller — this
    compiler always produces *something*: the surviving rules compiled
    into the strongest engine the budgets allow, plus a
    :class:`CompileReport` accounting for everything that degraded.
    """

    def __init__(
        self,
        limits: CompileLimits | None = None,
        splitter_options: SplitterOptions | None = None,
        parser_options: ParserOptions | None = None,
        cache=None,
        shards: int = 1,
        jobs: int = 1,
        compress: "bool | int | None" = None,
    ) -> None:
        self.limits = limits or CompileLimits()
        self.splitter_options = splitter_options
        self.parser_options = parser_options
        # Default-transition compression of MFA artifacts (a resolved
        # chain-depth bound; 0 = dense).  Applies to MFA builds only — the
        # fallback engines have no compressed tier.
        from ..automata.compress import resolve_compress_option

        self.compress = resolve_compress_option(compress)
        # Optional repro.fastpath.ArtifactCache: MFA attempts consult it
        # before building and store fresh builds for the next run.  In
        # sharded mode each shard is keyed separately, so one-rule edits
        # rebuild one shard.
        self.cache = cache
        # shards > 1 partitions the surviving rules into contiguous chunks
        # compiled across `jobs` worker processes.  Degradation is then
        # per-shard: a shard that explodes walks the fallback chain alone
        # while the others stay MFAs, and the combined engine is a
        # repro.fastcompile.ShardedMFA over the per-shard winners.
        self.shards = max(1, shards)
        self.jobs = max(1, jobs)

    # -- rule isolation ------------------------------------------------------

    def _prepare_rules(
        self, rules: Sequence[str | Pattern], report: CompileReport
    ) -> list[Pattern]:
        """Parse and split-validate each rule individually.

        A rule that fails either step is quarantined with its error; the
        survivors keep their positional match-ids.
        """
        patterns: list[Pattern] = []
        for index, rule in enumerate(rules):
            match_id = index + 1
            source = rule.source or f"<pattern {match_id}>" if isinstance(rule, Pattern) else rule
            try:
                if isinstance(rule, Pattern):
                    pattern = rule if rule.match_id == match_id else rule.with_id(match_id)
                else:
                    pattern = parse(rule, match_id=match_id, options=self.parser_options)
                # Validate the split in isolation so a pathological rule
                # surfaces here, attributed, instead of failing the whole
                # set inside the combined build.
                split_patterns([pattern], self.splitter_options)
            except Exception as exc:  # noqa: BLE001 - quarantine, don't die
                report.rules.append(
                    RuleOutcome(match_id, source, QUARANTINED, f"{type(exc).__name__}: {exc}")
                )
                continue
            report.rules.append(RuleOutcome(match_id, source, COMPILED))
            patterns.append(pattern)
        return patterns

    # -- engine fallback -----------------------------------------------------

    def _attempt(
        self,
        engine_name: str,
        patterns: list[Pattern],
        budget: int,
        phases: dict[str, float] | None = None,
    ):
        time_budget = self.limits.time_budget
        if engine_name == "mfa":
            from ..core.mfa import build_mfa

            return build_mfa(
                patterns,
                self.splitter_options,
                state_budget=budget,
                time_budget=time_budget,
                phases=phases,
                compress=self.compress,
            )
        if engine_name == "dfa":
            return build_dfa(patterns, state_budget=budget, time_budget=time_budget)
        if engine_name == "hybridfa":
            return build_hybrid_fa(patterns, state_budget=budget, time_budget=time_budget)
        if engine_name == "nfa":
            return build_nfa(patterns)
        raise ValueError(f"unknown engine {engine_name!r}")

    def _compile_chain(
        self,
        patterns: list[Pattern],
        report: CompileReport,
        shard: int | None = None,
        mfa_budget_start: int = 0,
        skip_mfa: bool = False,
    ) -> tuple[object | None, str | None]:
        """Walk the fallback chain for one pattern list (a shard, or all).

        ``mfa_budget_start``/``skip_mfa`` let the sharded path resume the
        chain after a parallel first-budget MFA pass already failed (the
        failed attempt is recorded by the caller, so the chain must not
        repeat it).
        """
        for engine_name in self.limits.fallback_chain:
            # The NFA takes no budget and never explodes; DFA-backed
            # engines walk the escalation schedule on explosion.
            budgets: Sequence[int | None]
            budgets = [None] if engine_name == "nfa" else self.limits.budget_schedule
            if engine_name == "mfa":
                if skip_mfa:
                    continue
                budgets = budgets[mfa_budget_start:]
            for position, budget in enumerate(budgets):
                predicted = self._triage_prediction(report, engine_name)
                if (
                    budget is not None
                    and predicted is not None
                    and predicted > budget
                    and position < len(budgets) - 1
                ):
                    # The triage says this budget cannot fit; the next
                    # scheduled budget might.  The last budget is always
                    # tried for real — the prediction is a heuristic, the
                    # subset construction is the ground truth.
                    report.attempts.append(
                        EngineAttempt(
                            engine_name,
                            budget,
                            0.0,
                            False,
                            f"skipped: triage predicts ~{predicted} states",
                            shard,
                            skipped=True,
                        )
                    )
                    continue
                start = time.perf_counter()
                cache_key = None
                if engine_name == "mfa" and self.cache is not None:
                    from ..fastpath.cache import cache_key as make_key

                    cache_key = make_key(
                        patterns,
                        splitter_options=self.splitter_options,
                        parser_options=self.parser_options,
                        state_budget=budget or 0,
                        compress=self.compress,
                    )
                    cached = self.cache.load(cache_key)
                    if cached is not None:
                        report.attempts.append(
                            EngineAttempt(
                                engine_name,
                                budget,
                                time.perf_counter() - start,
                                True,
                                "loaded from artifact cache",
                                shard,
                            )
                        )
                        return cached, engine_name
                try:
                    engine = self._attempt(
                        engine_name, patterns, budget or 0, phases=report.phases
                    )
                except DfaExplosionError as exc:
                    report.attempts.append(
                        EngineAttempt(
                            engine_name,
                            budget,
                            time.perf_counter() - start,
                            False,
                            f"exceeded {exc.budget} {exc.reason}",
                            shard,
                        )
                    )
                    continue  # escalate the budget
                except Exception as exc:  # noqa: BLE001 - fall through the chain
                    report.attempts.append(
                        EngineAttempt(
                            engine_name,
                            budget,
                            time.perf_counter() - start,
                            False,
                            f"{type(exc).__name__}: {exc}",
                            shard,
                        )
                    )
                    break  # not a budget problem: next engine
                report.attempts.append(
                    EngineAttempt(
                        engine_name, budget, time.perf_counter() - start, True, None, shard
                    )
                )
                if cache_key is not None:
                    self.cache.store(cache_key, engine)
                return engine, engine_name
        return None, None

    @staticmethod
    def _triage_prediction(report: CompileReport, engine_name: str) -> int | None:
        """The triage's state prediction for one engine family, if any.

        Only the engines whose state count the triage actually models are
        skippable: the MFA against the post-decomposition prediction, the
        plain DFA against the undecomposed one.  Hybrid-FA bounds its head
        differently and the NFA takes no budget, so neither is skipped.
        """
        if report.triage is None:
            return None
        if engine_name == "mfa":
            return report.triage.predicted_mfa_states
        if engine_name == "dfa":
            return report.triage.predicted_dfa_states
        return None

    def _compile_sharded(
        self, patterns: list[Pattern], report: CompileReport
    ) -> tuple[object | None, str | None]:
        """Per-shard compile with per-shard degradation.

        A parallel first pass builds every shard as an MFA at the first
        scheduled budget (``jobs`` worker processes, per-shard artifact
        cache).  Shards that explode there re-enter the ordinary fallback
        chain *individually* — escalating budgets, then weaker engines —
        so one pathological shard degrades alone while the rest stay
        MFAs.  The winners recombine into a
        :class:`repro.fastcompile.ShardedMFA`.
        """
        from ..fastcompile.shards import ShardedMFA, compile_shards, partition_patterns

        shard_patterns = partition_patterns(patterns, self.shards)
        report.n_shards = len(shard_patterns)
        first_budget = self.limits.budget_schedule[0] if self.limits.budget_schedule else 0
        mfa_first = "mfa" in self.limits.fallback_chain and bool(
            self.limits.budget_schedule
        )
        builds = None
        if mfa_first:
            builds = compile_shards(
                shard_patterns,
                self.splitter_options,
                self.parser_options,
                state_budget=first_budget,
                time_budget=self.limits.time_budget,
                jobs=self.jobs,
                cache=self.cache,
                phases=report.phases,
                compress=self.compress,
            )
        engines: list[object] = []
        names: list[str] = []
        for index, shard in enumerate(shard_patterns):
            if builds is not None:
                build = builds[index]
                if build.ok:
                    report.attempts.append(
                        EngineAttempt(
                            "mfa",
                            first_budget,
                            build.seconds,
                            True,
                            "loaded from artifact cache" if build.cached else None,
                            index,
                        )
                    )
                    engines.append(build.engine)
                    names.append("mfa")
                    continue
                exploded = isinstance(build.error, DfaExplosionError)
                error = build.error
                report.attempts.append(
                    EngineAttempt(
                        "mfa",
                        first_budget,
                        build.seconds,
                        False,
                        f"exceeded {error.budget} {error.reason}"
                        if exploded
                        else f"{type(error).__name__}: {error}",
                        index,
                    )
                )
                engine, name = self._compile_chain(
                    shard,
                    report,
                    shard=index,
                    mfa_budget_start=1,
                    skip_mfa=not exploded,
                )
            else:
                engine, name = self._compile_chain(shard, report, shard=index)
            if engine is not None:
                engines.append(engine)
                names.append(name)
        if not engines:
            return None, None
        # Hybrid-FA/NFA shards run in-process (those engines are not
        # serializable), so a degraded shard costs its build time in the
        # parent — the resilience trade the chain already makes.
        unique_names = list(dict.fromkeys(names))
        if len(engines) == 1:
            return engines[0], unique_names[0]
        return ShardedMFA(engines), f"sharded({','.join(unique_names)})"

    def compile(self, rules: Sequence[str | Pattern]) -> CompileResult:
        report = CompileReport()
        tick = time.perf_counter()
        patterns = self._prepare_rules(rules, report)
        report.phases["parse"] = time.perf_counter() - tick
        if not patterns:
            # Nothing survived quarantine: an empty NFA is still a valid
            # (never-matching) engine, so scans keep running.
            engine = build_nfa([])
            report.attempts.append(EngineAttempt("nfa", None, 0.0, True))
            report.engine_name = "nfa"
            return CompileResult(engine, "nfa", report, [])

        if self.limits.analyze:
            self._pretriage(patterns, report)
        if self.shards > 1 and len(patterns) > 1:
            engine, engine_name = self._compile_sharded(patterns, report)
        else:
            engine, engine_name = self._compile_chain(patterns, report)
        report.engine_name = engine_name
        if self.limits.analyze and engine is not None:
            self._audit(engine, report)
        if self.limits.prove and engine is not None:
            self._prove(engine, patterns, report)
        if self.limits.adversary and engine is not None:
            self._adversary(engine, report)
        if self.limits.ruleset:
            self._ruleset(patterns, report)
        return CompileResult(engine, engine_name, report, patterns)

    def _pretriage(self, patterns: list[Pattern], report: CompileReport) -> None:
        """Predict explosion risk before burning any subset construction."""
        from ..analyze.explosion import triage_patterns

        tick = time.perf_counter()
        try:
            report.triage = triage_patterns(
                patterns,
                state_budget=self.limits.budget_schedule[-1],
                splitter_options=self.splitter_options,
            )
        except Exception:  # noqa: BLE001 - advisory analysis never kills a compile
            report.triage = None
        report.phases["triage"] = time.perf_counter() - tick

    def _audit(self, engine: object, report: CompileReport) -> None:
        """Statically audit whatever engine shipped; findings are advisory."""
        from ..analyze import AnalysisReport, analyze_engine
        from ..analyze.report import ERROR

        tick = time.perf_counter()
        try:
            report.audit = analyze_engine(engine)
        except Exception as exc:  # noqa: BLE001 - the audit crashing IS a finding
            audit = AnalysisReport()
            audit.add(
                "AU100",
                ERROR,
                "engine",
                f"post-compile audit crashed: {type(exc).__name__}: {exc}",
            )
            report.audit = audit
        report.phases["audit"] = time.perf_counter() - tick

    def _prove(
        self, engine: object, patterns: list[Pattern], report: CompileReport
    ) -> None:
        """Prove the shipped engine equivalent to the surviving patterns.

        Like the audit, the proof is an escort, not a gate: a divergence
        or a budget-bounded walk lands as EQ findings on the report's
        ``proof`` field and the engine still ships.  Callers that want
        fail-closed semantics check ``report.proof.has_errors`` (or use
        ``compile_mfa(prove=True)``).
        """
        from ..analyze import AnalysisReport, analyze_engine_equivalence
        from ..analyze.report import ERROR

        tick = time.perf_counter()
        try:
            report.proof = analyze_engine_equivalence(engine, patterns)
        except Exception as exc:  # noqa: BLE001 - a prover crash IS a finding
            proof = AnalysisReport()
            proof.add(
                "EQ100",
                ERROR,
                "equivalence",
                f"prover crashed: {type(exc).__name__}: {exc}",
            )
            report.proof = proof
        report.phases["prove"] = time.perf_counter() - tick

    def _adversary(self, engine: object, report: CompileReport) -> None:
        """Worst-case cost audit of the shipped engine; findings advisory.

        Static witness synthesis only — the escort never replays traffic
        (that is ``mfa-bench audit`` / ``bench_adversarial.py`` work).
        """
        from ..analyze import AnalysisReport, analyze_engine_adversary
        from ..analyze.report import ERROR

        tick = time.perf_counter()
        try:
            report.adversary = analyze_engine_adversary(engine).report
        except Exception as exc:  # noqa: BLE001 - an audit crash IS a finding
            adversary = AnalysisReport()
            adversary.add(
                "AV100",
                ERROR,
                "adversary",
                f"adversarial audit crashed: {type(exc).__name__}: {exc}",
            )
            report.adversary = adversary
        report.phases["adversary"] = time.perf_counter() - tick

    def _ruleset(self, patterns: list[Pattern], report: CompileReport) -> None:
        """Cross-rule interaction analysis of the input patterns; advisory.

        Runs on the surviving (non-quarantined) patterns, not the engine:
        duplicate / subsumption / shadowing proofs with replay-confirmed
        witnesses land as RS findings on the report's ``ruleset`` field.
        Like every escort, a crash is itself a finding — never fatal.
        """
        from ..analyze import AnalysisReport, analyze_ruleset
        from ..analyze.report import ERROR

        tick = time.perf_counter()
        try:
            report.ruleset = analyze_ruleset(
                patterns, splitter_options=self.splitter_options
            ).report
        except Exception as exc:  # noqa: BLE001 - an analysis crash IS a finding
            ruleset = AnalysisReport()
            ruleset.add(
                "RS100",
                ERROR,
                "ruleset",
                f"cross-rule analysis crashed: {type(exc).__name__}: {exc}",
            )
            report.ruleset = ruleset
        report.phases["ruleset"] = time.perf_counter() - tick


def compile_resilient(
    rules: Sequence[str | Pattern],
    limits: CompileLimits | None = None,
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    shards: int = 1,
    jobs: int = 1,
) -> CompileResult:
    """One-call convenience over :class:`ResilientCompiler`."""
    compiler = ResilientCompiler(
        limits, splitter_options, parser_options, shards=shards, jobs=jobs
    )
    return compiler.compile(rules)


# -- scan side ----------------------------------------------------------------


def resilient_scan(
    engine,
    capture: BinaryIO | bytes | str | PathLike | Iterable[Packet],
    limits: FlowLimits | None = None,
    batch_size: int | None = None,
) -> tuple[list[FlowMatch], ScanReport]:
    """Scan a capture end-to-end in degradation-tolerant mode.

    ``capture`` may be a pcap byte string, an open binary stream, a path,
    or an iterable of already-decoded :class:`Packet` objects.  The pcap
    layer skips corrupt records (counting them), the assembler enforces
    ``limits`` (evicted flows are scanned at eviction time, not lost),
    and every flow is matched in isolation — an engine failure poisons
    that flow only.  Returns the confirmed matches plus a
    :class:`ScanReport` of everything that degraded.

    ``batch_size`` groups reassembled flows into lockstep batches when
    the engine exposes ``run_batch`` (the fastpath engine).  Batches run
    over fresh per-flow contexts, so a failing batch is simply retried
    flow by flow through the scalar path — isolation semantics and the
    per-flow match streams are unchanged.
    """
    report = ScanReport()
    mode = getattr(engine, "prefilter_mode", None)
    if isinstance(mode, str):
        report.prefilter_mode = mode
        report.prefilter_active = bool(getattr(engine, "prefilter_active", False))
        disabled = getattr(engine, "prefilter_disabled", None)
        if isinstance(disabled, str):
            report.prefilter_disabled = disabled
    alerts: list[FlowMatch] = []
    batching = bool(batch_size and batch_size > 1 and hasattr(engine, "run_batch"))
    pending: list[Flow] = []

    def scan_one(flow: Flow) -> None:
        report.n_flows += 1
        try:
            events = engine.run(flow.payload)
        except Exception as exc:  # noqa: BLE001 - per-flow isolation
            report.dispatch.flows_poisoned += 1
            report.dispatch.errors.append((flow.key, f"engine error: {exc}"))
            return
        alerts.extend(FlowMatch(flow.key, event) for event in events)

    def flush() -> None:
        batch = pending[:]
        pending.clear()
        if not batch:
            return
        try:
            batch_events = engine.run_batch([flow.payload for flow in batch])
        except Exception:  # noqa: BLE001 - retry each flow in isolation
            for flow in batch:
                scan_one(flow)
            return
        report.n_flows += len(batch)
        for flow, events in zip(batch, batch_events):
            alerts.extend(FlowMatch(flow.key, event) for event in events)

    def scan_flow(flow: Flow) -> None:
        if not flow.payload:
            return
        if not batching:
            scan_one(flow)
            return
        pending.append(flow)
        if len(pending) >= batch_size:
            flush()

    if isinstance(capture, (str, PathLike)):
        with open(capture, "rb") as stream:
            return resilient_scan(engine, stream, limits, batch_size=batch_size)
    if isinstance(capture, bytes):
        capture = BytesIO(capture)
    if hasattr(capture, "read"):
        packets = read_pcap(capture, errors="skip", stats=report.pcap)
    else:
        packets = iter(capture)

    assembler = FlowAssembler(limits=limits, on_evict=scan_flow)
    for packet in packets:
        report.n_packets += 1
        assembler.add(packet)
    report.assembler = assembler.stats
    for flow in assembler.flows():
        scan_flow(flow)
    flush()
    report.n_alerts = len(alerts)
    return alerts, report
