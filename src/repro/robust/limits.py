"""Resource-limit knobs for the resilient pipeline, with env spellings.

Everything the degradation story tunes lives here so operators have one
place to look: the compile side (:class:`CompileLimits` — state-budget
escalation schedule, wall-time budget, engine fallback chain) and the
scan side (:class:`~repro.traffic.flows.FlowLimits` — flow-table and
per-flow caps, re-exported here as :data:`ScanLimits`).

Every knob has an environment spelling (see :func:`compile_limits_from_env`
and :func:`scan_limits_from_env`), used by ``mfa-bench rcompile``/``rscan``
and the benchmark harness:

======================  =====================================================
 variable                meaning
======================  =====================================================
 REPRO_STATE_BUDGET      first DFA state budget of the escalation schedule
 REPRO_BUDGET_SCHEDULE   full comma-separated schedule (overrides the above)
 REPRO_DFA_TIME_BUDGET   per-attempt subset-construction wall-time budget (s)
 REPRO_FALLBACK_CHAIN    comma-separated engines, e.g. ``mfa,hybridfa,nfa``
 REPRO_COMPILE_ANALYZE   0 disables pre-compile triage / post-compile audit
 REPRO_COMPILE_PROVE     1 runs the equivalence prover on the shipped engine
 REPRO_COMPILE_ADVERSARY 1 runs the adversarial worst-case audit escort
 REPRO_COMPILE_RULESET   1 runs the cross-rule interaction analysis escort
 REPRO_MAX_FLOWS         concurrent-flow cap of the assembler / flow table
 REPRO_MAX_FLOW_BYTES    per-flow buffered-byte cap
 REPRO_MAX_FLOW_SEGS     per-flow buffered-segment cap
======================  =====================================================
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Mapping

from ..automata.dfa import DEFAULT_STATE_BUDGET
from ..traffic.flows import FlowLimits

__all__ = [
    "CompileLimits",
    "ScanLimits",
    "DEFAULT_FALLBACK_CHAIN",
    "compile_limits_from_env",
    "scan_limits_from_env",
]

# The order the paper's feasibility argument implies: the MFA is the
# contribution, Hybrid-FA is the lazy-tail fallback (slower on hostile
# traffic but buildable where more shapes explode), and the NFA is the
# never-explodes floor.
DEFAULT_FALLBACK_CHAIN: tuple[str, ...] = ("mfa", "hybridfa", "nfa")

KNOWN_ENGINES: tuple[str, ...] = ("mfa", "dfa", "hybridfa", "nfa")

# Re-export: the scan-side limit set is defined next to the assembler it
# bounds; the robust layer is its operator-facing home.
ScanLimits = FlowLimits


@dataclass(frozen=True, slots=True)
class CompileLimits:
    """Compile-side budgets and the engine fallback chain.

    ``budget_schedule`` is walked in order on :class:`DfaExplosionError`
    — each retry grants more subset-construction states before the
    compiler abandons the engine and falls through ``fallback_chain``.
    ``time_budget`` (seconds, per attempt) bounds pathological sets whose
    individual subsets are expensive; ``None`` disables the clock.

    ``analyze`` turns on the static-analysis escort (:mod:`repro.analyze`):
    a pre-compile explosion triage whose state predictions let the chain
    skip budgets the set cannot possibly fit (the last scheduled budget is
    always tried for real), and a post-compile audit of the shipped
    engine.  Both land on the :class:`~repro.robust.report.CompileReport`.

    ``prove`` (off by default — it is the most expensive escort) runs the
    product-automaton equivalence prover (:mod:`repro.analyze.equivalence`)
    over the shipped engine and records the outcome as the report's
    ``proof`` field.  Like the audit, a failed proof never turns a
    shippable engine into a hard failure — the findings are the signal.

    ``adversary`` (off by default) runs the worst-case cost audit
    (:mod:`repro.analyze.adversary`) over the shipped engine — static
    witness synthesis only, no replay — and records the ``AV`` findings
    as the report's ``adversary`` field.  Never fatal either.

    ``ruleset`` (off by default) runs the cross-rule interaction analysis
    (:mod:`repro.analyze.ruleset`) over the *input patterns* — duplicate /
    subsumption / shadowing proofs with replay-confirmed witnesses plus
    the interaction census — and records the ``RS`` findings as the
    report's ``ruleset`` field.  Never fatal either.
    """

    budget_schedule: tuple[int, ...] = (DEFAULT_STATE_BUDGET,)
    time_budget: float | None = None
    fallback_chain: tuple[str, ...] = DEFAULT_FALLBACK_CHAIN
    analyze: bool = True
    prove: bool = False
    adversary: bool = False
    ruleset: bool = False

    def __post_init__(self) -> None:
        if not self.budget_schedule:
            raise ValueError("budget_schedule must contain at least one budget")
        if any(b <= 0 for b in self.budget_schedule):
            raise ValueError("state budgets must be positive")
        if list(self.budget_schedule) != sorted(self.budget_schedule):
            raise ValueError("budget_schedule must be non-decreasing")
        if not self.fallback_chain:
            raise ValueError("fallback_chain must name at least one engine")
        unknown = [e for e in self.fallback_chain if e not in KNOWN_ENGINES]
        if unknown:
            raise ValueError(f"unknown engines in fallback chain: {unknown}")

    @classmethod
    def escalating(
        cls,
        first_budget: int = DEFAULT_STATE_BUDGET,
        steps: int = 3,
        factor: int = 2,
        **kwargs,
    ) -> "CompileLimits":
        """A geometric escalation schedule starting at ``first_budget``."""
        schedule = tuple(first_budget * factor**i for i in range(max(1, steps)))
        return cls(budget_schedule=schedule, **kwargs)


def _env_int(environ: Mapping[str, str], name: str) -> int | None:
    raw = environ.get(name)
    return int(raw) if raw else None


def compile_limits_from_env(environ: Mapping[str, str] | None = None) -> CompileLimits:
    """Build :class:`CompileLimits` from ``REPRO_*`` environment knobs."""
    environ = os.environ if environ is None else environ
    raw_schedule = environ.get("REPRO_BUDGET_SCHEDULE")
    if raw_schedule:
        schedule = tuple(int(part) for part in raw_schedule.split(",") if part.strip())
    else:
        first = _env_int(environ, "REPRO_STATE_BUDGET") or DEFAULT_STATE_BUDGET
        schedule = (first, first * 2, first * 4)
    raw_time = environ.get("REPRO_DFA_TIME_BUDGET")
    time_budget = float(raw_time) if raw_time else None
    raw_chain = environ.get("REPRO_FALLBACK_CHAIN")
    chain = (
        tuple(part.strip() for part in raw_chain.split(",") if part.strip())
        if raw_chain
        else DEFAULT_FALLBACK_CHAIN
    )
    analyze = environ.get("REPRO_COMPILE_ANALYZE", "1") not in ("0", "false", "no")
    prove = environ.get("REPRO_COMPILE_PROVE", "0") in ("1", "true", "yes")
    adversary = environ.get("REPRO_COMPILE_ADVERSARY", "0") in ("1", "true", "yes")
    ruleset = environ.get("REPRO_COMPILE_RULESET", "0") in ("1", "true", "yes")
    return CompileLimits(
        budget_schedule=schedule,
        time_budget=time_budget,
        fallback_chain=chain,
        analyze=analyze,
        prove=prove,
        adversary=adversary,
        ruleset=ruleset,
    )


def scan_limits_from_env(environ: Mapping[str, str] | None = None) -> FlowLimits:
    """Build :class:`ScanLimits` from ``REPRO_*`` environment knobs."""
    environ = os.environ if environ is None else environ
    return FlowLimits(
        max_flows=_env_int(environ, "REPRO_MAX_FLOWS"),
        max_flow_bytes=_env_int(environ, "REPRO_MAX_FLOW_BYTES"),
        max_flow_segments=_env_int(environ, "REPRO_MAX_FLOW_SEGS"),
    )
