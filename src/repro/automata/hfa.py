"""History-based finite automaton — the HASIC/H-FA baseline (paper §II-A).

H-FA (Kumar et al.) and its ASIC-friendly refinement HASIC (Liu, Norige &
Kumar, ICNP 2013) avoid state explosion the same way match filtering does —
auxiliary history bits instead of product states — but attach the
conditions and actions to the *transitions*: taking a transition may
require a history condition to hold and may update the history.  The paper
identifies two consequences this reproduction models faithfully:

* **slower matching** — every input byte must locate the applicable entry
  among the (condition, action) alternatives of its (state, byte) cell,
  instead of a bare table lookup; and
* **larger images** — each transition cell stores a full
  condition/action/next record (32 bytes here) instead of a packed 4-byte
  next-state, which is why the paper measures HFA images ~30x larger than
  MFA's.

Construction reuses the regex splitter to find the history bits (HASIC's
own "critical NFA state" search is approximated by the same decomposition
points), so H-FA state counts track the component DFA's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

from ..regex.ast import Pattern
from .dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from .nfa import MatchEvent

if TYPE_CHECKING:
    from ..core.filters import FilterProgram

__all__ = ["HFA", "HfaEntry", "build_hfa"]


@dataclass(frozen=True, slots=True)
class HfaEntry:
    """One conditional transition record: the H-FA "rule".

    ``cond_mask``/``cond_value`` select the entry (history AND mask must
    equal value); ``set_mask``/``clear_mask`` update the history; ``reports``
    are match-ids emitted when the condition holds.
    """

    cond_mask: int
    cond_value: int
    next_state: int
    set_mask: int
    clear_mask: int
    reports: tuple[int, ...]


class HfaContext:
    """Per-flow H-FA state: automaton state plus the history word."""

    __slots__ = ("state", "history", "offset")

    def __init__(self, hfa: "HFA"):
        self.state = hfa.start
        self.history = 0
        self.offset = 0


class HFA:
    """Executable H-FA: per-(state, byte) lists of conditional entries."""

    def __init__(self, cells: list[list[tuple[HfaEntry, ...]]], start: int, width: int):
        self.cells = cells
        self.start = start
        self.width = width

    @property
    def n_states(self) -> int:
        return len(self.cells)

    # -- streaming (same trio as the MFA, for dispatch/replay drivers) ------

    def new_context(self) -> HfaContext:
        return HfaContext(self)

    def feed(self, context: HfaContext, data: bytes) -> Iterator[MatchEvent]:
        cells = self.cells
        state = context.state
        history = context.history
        base = context.offset
        for pos, byte in enumerate(data):
            for entry in cells[state][byte]:
                if history & entry.cond_mask == entry.cond_value:
                    state = entry.next_state
                    history = (history & ~entry.clear_mask) | entry.set_mask
                    for match_id in entry.reports:
                        yield MatchEvent(base + pos, match_id)
                    break
        context.state = state
        context.history = history
        context.offset = base + len(data)

    def finish(self, context: HfaContext) -> Iterator[MatchEvent]:
        return iter(())

    def memory_bytes(self) -> int:
        """Modelled image size: every (state, byte) cell stores its entry
        records inline at 32 bytes each (condition + action + next)."""
        n_entries = sum(len(cell) for row in self.cells for cell in row)
        return 32 * n_entries + 8 * self.n_states

    def run(self, data: bytes) -> list[MatchEvent]:
        """Collect matches; per byte the engine scans the cell's entries for
        the one whose history condition holds — the H-FA cost model."""
        out: list[MatchEvent] = []
        cells = self.cells
        state = self.start
        history = 0
        for pos, byte in enumerate(data):
            for entry in cells[state][byte]:
                if history & entry.cond_mask == entry.cond_value:
                    state = entry.next_state
                    history = (history & ~entry.clear_mask) | entry.set_mask
                    for match_id in entry.reports:
                        out.append(MatchEvent(pos, match_id))
                    break
        return out

    def scan(self, data: bytes) -> int:
        """Benchmark loop: advance without collecting matches."""
        cells = self.cells
        state = self.start
        history = 0
        for byte in data:
            for entry in cells[state][byte]:
                if history & entry.cond_mask == entry.cond_value:
                    state = entry.next_state
                    history = (history & ~entry.clear_mask) | entry.set_mask
                    break
        return state


def build_hfa(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> HFA:
    """Build an H-FA via the decomposition points the splitter finds.

    The component DFA provides the state space; the filter program's
    actions are folded onto the transitions *entering* each deciding state,
    conditioned and split into per-history-value entries exactly as H-FA
    rules are.
    """
    # Local import: core depends on automata, so this edge must be lazy.
    from ..core.splitter import SplitterOptions, split_patterns

    # Offset registers are beyond the pure-bit history model, so counted
    # gaps are compiled intact (correct, at some state cost) rather than
    # silently mis-filtered.
    split = split_patterns(patterns, SplitterOptions(enable_counted_gaps=False))
    dfa = build_dfa(split.components, state_budget=state_budget)
    program = split.program

    # Pre-compute, per DFA state, the entry list template for transitions
    # entering it: conditions/updates derived from its decision set.
    order = {
        match_id: program.action_priority(match_id)
        for acc in dfa.accepts
        for match_id in acc
    }
    per_state: list[tuple[HfaEntry, ...]] = []
    for target in range(dfa.n_states):
        decisions = sorted(dfa.accepts[target], key=lambda i: (order[i], i))
        per_state.append(_entries_for(decisions, target, program))

    cells: list[list[tuple[HfaEntry, ...]]] = []
    for state in range(dfa.n_states):
        row = dfa.rows[state]
        cells.append([per_state[row[byte]] for byte in range(256)])
    return HFA(cells, dfa.start, program.width)


def _entries_for(
    decisions: list[int], target: int, program: "FilterProgram"
) -> tuple[HfaEntry, ...]:
    """Compile a decision set into H-FA entry alternatives.

    With no decisions the cell is a single unconditional entry.  With
    decisions, one entry per relevant combination of tested bits: H-FA must
    enumerate the condition alternatives because the transition taken (and
    its updates/reports) depend on the history value.
    """
    from ..core.filters import NONE

    if not decisions:
        return (HfaEntry(0, 0, target, 0, 0, ()),)

    tested_bits: list[int] = []
    for match_id in decisions:
        action = program.actions.get(match_id)
        if action is not None and action.test != NONE and action.test not in tested_bits:
            tested_bits.append(action.test)

    entries: list[HfaEntry] = []
    for combo in range(1 << len(tested_bits)):
        cond_mask = 0
        cond_value = 0
        for i, bit in enumerate(tested_bits):
            cond_mask |= 1 << bit
            if combo >> i & 1:
                cond_value |= 1 << bit
        set_mask = 0
        clear_mask = 0
        reports: list[int] = []
        for match_id in decisions:
            action = program.actions.get(match_id)
            if action is None:
                if match_id in program.final_ids:
                    reports.append(match_id)
                continue
            if action.test != NONE and not cond_value >> action.test & 1:
                continue
            if action.distance is not None:
                # H-FA history is pure bits; offset registers are beyond its
                # model, so distance-guarded ids are never reported by HFA.
                continue
            if action.set != NONE:
                set_mask |= 1 << action.set
            if action.clear != NONE:
                clear_mask |= 1 << action.clear
            if action.report != NONE:
                reports.append(action.report)
        entries.append(
            HfaEntry(cond_mask, cond_value, target, set_mask, clear_mask, tuple(reports))
        )
    return tuple(entries)
