"""Memory-image accounting shared by the Fig. 2 experiment.

Every engine models its own image size (``memory_bytes`` on each class)
using the per-entry costs its data structure implies; this module provides
the uniform report the benchmark table consumes, plus the MB formatting
used throughout the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

__all__ = ["SizedAutomaton", "ImageSize", "image_size", "format_mb"]


class SizedAutomaton(Protocol):
    """Anything with a modelled memory image."""

    def memory_bytes(self) -> int: ...


@dataclass(frozen=True, slots=True)
class ImageSize:
    """An image size with the breakdown the paper discusses for MFA."""

    total_bytes: int
    filter_bytes: int = 0

    @property
    def megabytes(self) -> float:
        return self.total_bytes / 1e6

    @property
    def filter_fraction(self) -> float:
        """The share of the image spent on filters (paper: < 0.2% for MFA)."""
        if self.total_bytes == 0:
            return 0.0
        return self.filter_bytes / self.total_bytes


def image_size(engine: SizedAutomaton) -> ImageSize:
    """Measure an engine, separating the filter table when one exists."""
    filter_bytes = 0
    filter_probe = getattr(engine, "filter_bytes", None)
    if callable(filter_probe):
        filter_bytes = filter_probe()
    return ImageSize(total_bytes=engine.memory_bytes(), filter_bytes=filter_bytes)


def format_mb(n_bytes: int) -> str:
    """Format bytes as the paper's MB figures (two significant digits)."""
    mb = n_bytes / 1e6
    if mb >= 100:
        return f"{mb:.0f}"
    if mb >= 1:
        return f"{mb:.1f}"
    return f"{mb:.2f}"
