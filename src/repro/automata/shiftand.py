"""Bit-parallel (Shift-And) multi-pattern matcher.

Match filtering works on top of "an arbitrary regex matching solution"
(paper §II-C), and the components the splitter emits are overwhelmingly
*linear*: plain sequences of character classes.  Linear sets are exactly
what the classic Shift-And algorithm (Baeza-Yates/Gonnet, multi-pattern
per Navarro & Raffinot) handles with a couple of word operations per byte:
the whole active-position set lives in one machine word (here: one Python
big integer), advanced as

    state = ((state << 1) | INITIAL) & B[byte]

This module provides that matcher as an alternative component engine — the
decomposition front end that Hyperscan-style engines pair with literal
matchers.  Each pattern occupies a contiguous run of bit positions with a
dead padding bit between patterns (so a final-position bit cannot bleed
into the next pattern's first position); anchored patterns receive their
initial bit only at offset zero.

Limitations (by design): components must be linear — concatenations of
single classes and exactly-counted class repeats.  The splitter's string
segments, clear components and anchored heads all qualify; anything else
(alternation, unbounded repeats) belongs on the DFA engine.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..regex.ast import ClassNode, Concat, Empty, Node, Pattern, Repeat
from ..regex.charclass import CharClass
from .nfa import MatchEvent

__all__ = ["ShiftAndMatcher", "linearize", "build_shift_and"]


def linearize(node: Node) -> Optional[list[CharClass]]:
    """Flatten a linear regex into its class sequence, or None.

    Linear = concatenation of single classes and ``C{n}`` exact repeats.
    """
    if isinstance(node, Empty):
        return []
    if isinstance(node, ClassNode):
        return [node.cls]
    if isinstance(node, Repeat):
        if node.max != node.min:
            return None
        inner = linearize(node.child)
        if inner is None:
            return None
        return inner * node.min
    if isinstance(node, Concat):
        out: list[CharClass] = []
        for part in node.parts:
            inner = linearize(part)
            if inner is None:
                return None
            out.extend(inner)
        return out
    return None


class ShiftAndMatcher:
    """Executable multi-pattern Shift-And automaton."""

    def __init__(
        self,
        byte_masks: list[int],
        start_always: int,
        start_first: int,
        finals: int,
        final_ids: dict[int, int],
        n_positions: int,
    ):
        self.byte_masks = byte_masks
        self.start_always = start_always    # unanchored initial bits
        self.start_first = start_first      # anchored initial bits (offset 0)
        self.finals = finals
        self.final_ids = final_ids          # final bit position -> match id
        self.n_positions = n_positions

    @property
    def n_states(self) -> int:
        """Position count — the Shift-And analogue of automaton size."""
        return self.n_positions

    def memory_bytes(self) -> int:
        """256 byte-masks of ceil(positions/8) bytes plus the final map."""
        mask_bytes = (self.n_positions + 7) // 8
        return 256 * mask_bytes + 8 * len(self.final_ids) + 2 * mask_bytes

    def run(self, data: bytes) -> list[MatchEvent]:
        out: list[MatchEvent] = []
        masks = self.byte_masks
        start = self.start_always
        finals = self.finals
        final_ids = self.final_ids
        state = 0
        first = self.start_first | start
        for pos, byte in enumerate(data):
            if pos == 0:
                state = ((state << 1) | first) & masks[byte]
            else:
                state = ((state << 1) | start) & masks[byte]
            hits = state & finals
            if hits:
                while hits:
                    low = hits & -hits
                    out.append(MatchEvent(pos, final_ids[low.bit_length() - 1]))
                    hits ^= low
        return out

    def scan(self, data: bytes) -> int:
        """Benchmark loop: advance without collecting matches."""
        masks = self.byte_masks
        start = self.start_always
        state = 0
        first = self.start_first | start
        for pos, byte in enumerate(data):
            if pos == 0:
                state = ((state << 1) | first) & masks[byte]
            else:
                state = ((state << 1) | start) & masks[byte]
        return state


def build_shift_and(patterns: Sequence[Pattern]) -> ShiftAndMatcher:
    """Compile linear patterns into one Shift-And machine.

    Raises ``ValueError`` naming the first non-linear pattern (callers fall
    back to the DFA engine for those).
    """
    byte_masks = [0] * 256
    start_always = 0
    start_first = 0
    finals = 0
    final_ids: dict[int, int] = {}
    position = 0

    for pattern in patterns:
        classes = linearize(pattern.root)
        if classes is None:
            raise ValueError(
                f"pattern {{{{{pattern.match_id}}}}} is not linear: "
                f"{pattern.source or pattern.root!r}"
            )
        if not classes:
            raise ValueError(
                f"pattern {{{{{pattern.match_id}}}}} matches the empty string"
            )
        if pattern.end_anchored:
            raise ValueError(
                f"pattern {{{{{pattern.match_id}}}}} is end-anchored; "
                "use the DFA engine"
            )
        first_bit = 1 << position
        if pattern.anchored:
            start_first |= first_bit
        else:
            start_always |= first_bit
        for klass in classes:
            bit = 1 << position
            for byte in klass:
                byte_masks[byte] |= bit
            position += 1
        finals |= 1 << (position - 1)
        final_ids[position - 1] = pattern.match_id
        position += 1  # dead padding bit between patterns

    return ShiftAndMatcher(
        byte_masks=byte_masks,
        start_always=start_always,
        start_first=start_first,
        finals=finals,
        final_ids=final_ids,
        n_positions=position,
    )
