"""Simplified XFA baseline (Smith et al., SIGCOMM 2008).

An XFA is a DFA whose states carry small *update programs* over scratch
memory, executed every time the state is entered.  The original
construction ("determinising a non-deterministic update function" through
an EIDD search) is the part the paper calls byzantine — it could not build
XFAs for its pattern sets at all and *estimated* throughput instead.

This reproduction substitutes the closest constructible model: the regex
splitter provides the scratch variables (one flag per decomposition point)
and each deciding state of the component DFA gets an interpreted
instruction block.  What is preserved from real XFA, and what the
benchmarks measure, is its cost profile:

* update programs are *general instruction sequences* interpreted on state
  entry, operating on individually addressed scratch-memory cells — the
  per-instruction dispatch and scratch addressing is the cost the MFA
  filter's packed one-word memory and fixed 4-integer bytecode avoid
  (paper §IV-C);
* programs run whenever an instrumented state is entered, which on
  match-heavy traffic happens far more often than confirmed matches.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from ..regex.ast import Pattern
from .dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from .nfa import MatchEvent

__all__ = ["XFA", "build_xfa"]

# Instruction opcodes for the per-state update programs.
OP_SET = 0       # arg: flag index
OP_CLEAR = 1     # arg: flag index
OP_TEST_SET = 2  # args: (test flag, set flag)
OP_TEST_REPORT = 3  # args: (test flag, match id)
OP_REPORT = 4    # arg: match id


class XfaContext:
    """Per-flow XFA state: automaton state plus the scratch cells."""

    __slots__ = ("state", "scratch", "offset")

    def __init__(self, xfa: "XFA"):
        self.state = xfa.dfa.start
        self.scratch = [0] * max(xfa.width, 1)
        self.offset = 0


class XFA:
    """DFA plus per-state instruction blocks over scratch memory."""

    def __init__(self, dfa: DFA, programs: list[tuple[tuple[int, ...], ...]], width: int):
        self.dfa = dfa
        self.programs = programs
        self.width = width

    @property
    def n_states(self) -> int:
        return self.dfa.n_states

    # -- streaming (same trio as the MFA, for dispatch/replay drivers) ------

    def new_context(self) -> XfaContext:
        return XfaContext(self)

    def feed(self, context: XfaContext, data: bytes) -> Iterator[MatchEvent]:
        rows = self.dfa.rows
        programs = self.programs
        state = context.state
        scratch = context.scratch
        base = context.offset
        for pos, byte in enumerate(data):
            state = rows[state][byte]
            program = programs[state]
            if program:
                for instruction in program:
                    op = instruction[0]
                    if op == OP_SET:
                        scratch[instruction[1]] = 1
                    elif op == OP_CLEAR:
                        scratch[instruction[1]] = 0
                    elif op == OP_TEST_SET:
                        if scratch[instruction[1]]:
                            scratch[instruction[2]] = 1
                    elif op == OP_TEST_REPORT:
                        if scratch[instruction[1]]:
                            yield MatchEvent(base + pos, instruction[2])
                    else:  # OP_REPORT
                        yield MatchEvent(base + pos, instruction[1])
        context.state = state
        context.offset = base + len(data)

    def finish(self, context: XfaContext) -> Iterator[MatchEvent]:
        return iter(())

    def memory_bytes(self, compressed: bool | None = None) -> int:
        """Modelled image: the component DFA table plus 12 bytes per
        instruction (opcode + two arguments) and a per-state program pointer.

        ``compressed`` follows the :meth:`repro.automata.dfa.DFA.memory_bytes`
        contract and is passed straight through to the component DFA; the
        instruction and pointer accounting is layout-independent.
        """
        n_instructions = sum(len(p) for p in self.programs)
        return (
            self.dfa.memory_bytes(compressed=compressed)
            + 12 * n_instructions
            + 4 * self.n_states
        )

    def run(self, data: bytes) -> list[MatchEvent]:
        out: list[MatchEvent] = []
        rows = self.dfa.rows
        programs = self.programs
        state = self.dfa.start
        # Scratch memory: individually addressed cells, as XFA defines it.
        scratch = [0] * max(self.width, 1)
        for pos, byte in enumerate(data):
            state = rows[state][byte]
            program = programs[state]
            if program:
                for instruction in program:
                    op = instruction[0]
                    if op == OP_SET:
                        scratch[instruction[1]] = 1
                    elif op == OP_CLEAR:
                        scratch[instruction[1]] = 0
                    elif op == OP_TEST_SET:
                        if scratch[instruction[1]]:
                            scratch[instruction[2]] = 1
                    elif op == OP_TEST_REPORT:
                        if scratch[instruction[1]]:
                            out.append(MatchEvent(pos, instruction[2]))
                    else:  # OP_REPORT
                        out.append(MatchEvent(pos, instruction[1]))
        return out

    def scan(self, data: bytes) -> int:
        """Benchmark loop: execute update programs but drop reports."""
        rows = self.dfa.rows
        programs = self.programs
        state = self.dfa.start
        scratch = [0] * max(self.width, 1)
        for byte in data:
            state = rows[state][byte]
            program = programs[state]
            if program:
                for instruction in program:
                    op = instruction[0]
                    if op == OP_SET:
                        scratch[instruction[1]] = 1
                    elif op == OP_CLEAR:
                        scratch[instruction[1]] = 0
                    elif op == OP_TEST_SET:
                        if scratch[instruction[1]]:
                            scratch[instruction[2]] = 1
        return state


def build_xfa(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
) -> XFA:
    """Construct the simplified XFA from the splitter's decomposition."""
    from ..core.filters import NONE
    from ..core.splitter import SplitterOptions, split_patterns

    # Like HFA, the scratch model is pure flags: counted gaps stay intact.
    split = split_patterns(patterns, SplitterOptions(enable_counted_gaps=False))
    dfa = build_dfa(split.components, state_budget=state_budget)
    program = split.program

    programs: list[tuple[tuple[int, ...], ...]] = []
    for q in range(dfa.n_states):
        decisions = sorted(
            dfa.accepts[q], key=lambda i: (program.action_priority(i), i)
        )
        block: list[tuple[int, ...]] = []
        for match_id in decisions:
            action = program.actions.get(match_id)
            if action is None:
                if match_id in program.final_ids:
                    block.append((OP_REPORT, match_id))
                continue
            if action.clear != NONE:
                block.append((OP_CLEAR, action.clear))
            if action.set != NONE:
                if action.test != NONE:
                    block.append((OP_TEST_SET, action.test, action.set))
                else:
                    block.append((OP_SET, action.set))
            if action.report != NONE:
                if action.test != NONE:
                    block.append((OP_TEST_REPORT, action.test, action.report))
                else:
                    block.append((OP_REPORT, action.report))
        programs.append(tuple(block))
    return XFA(dfa, programs, program.width)
