"""Multiple-DFA baseline (Yu et al., ANCS 2006 — paper §II-A).

The other classic answer to state explosion: *partition* the rule set into
groups whose individual DFAs stay small, and run the group DFAs in
parallel — a fixed number of active states instead of one. The paper's
§II-A summarises the cost: "using just 2 active states reduces their
throughput to 50% of a DFA engine", i.e. per-byte work scales with the
group count while memory scales with the sum of the group tables.

Grouping here is the practical greedy variant: patterns are offered to
existing groups in order and accepted by the first group whose combined
subset construction stays within ``group_state_budget``; a pattern no
group can absorb starts a new one. Explosive pattern pairs therefore
land in different groups automatically (their combined DFA blows the
budget), which is exactly the interaction-avoidance heuristic of the
original paper.
"""

from __future__ import annotations

from typing import Sequence

from ..regex.ast import Pattern
from .dfa import DFA, DfaExplosionError, build_dfa
from .nfa import MatchEvent

__all__ = ["MDFA", "build_mdfa"]

DEFAULT_GROUP_BUDGET = 4_000


class MDFA:
    """A set of group DFAs run in parallel (k active states)."""

    def __init__(self, groups: list[DFA], group_patterns: list[list[int]]):
        self.groups = groups
        self.group_patterns = group_patterns

    @property
    def n_groups(self) -> int:
        return len(self.groups)

    @property
    def n_states(self) -> int:
        return sum(dfa.n_states for dfa in self.groups)

    def memory_bytes(self, compressed: bool | None = None) -> int:
        """Group tables stored byte-class compressed (each group DFA sees a
        small alphabet, which is where mDFA's memory advantage comes from).

        ``compressed`` follows the :meth:`repro.automata.dfa.DFA.memory_bytes`
        contract, applied to every group table.  ``None`` keeps the historical
        mDFA accounting — compressed group tables — because that layout *is*
        the engine's design; pass ``compressed=False`` to model dense rows.
        """
        if compressed is None:
            compressed = True
        return sum(dfa.memory_bytes(compressed=compressed) for dfa in self.groups)

    def run(self, data: bytes) -> list[MatchEvent]:
        """Advance every group DFA over each byte (k lookups per byte)."""
        out: list[MatchEvent] = []
        groups = [(dfa.rows, dfa.accepts, dfa.start) for dfa in self.groups]
        states = [start for _rows, _accepts, start in groups]
        for pos, byte in enumerate(data):
            for index, (rows, accepts, _start) in enumerate(groups):
                state = rows[states[index]][byte]
                states[index] = state
                acc = accepts[state]
                if acc:
                    for match_id in acc:
                        out.append(MatchEvent(pos, match_id))
        if data:
            final = len(data) - 1
            for index, dfa in enumerate(self.groups):
                for match_id in dfa.accepts_end[states[index]]:
                    out.append(MatchEvent(final, match_id))
        out.sort()
        return out

    def scan(self, data: bytes) -> tuple[int, ...]:
        """Benchmark loop: advance all groups without collecting matches."""
        groups = [(dfa.rows, dfa.start) for dfa in self.groups]
        states = [start for _rows, start in groups]
        for byte in data:
            for index, (rows, _start) in enumerate(groups):
                states[index] = rows[states[index]][byte]
        return tuple(states)


def build_mdfa(
    patterns: Sequence[Pattern],
    group_state_budget: int = DEFAULT_GROUP_BUDGET,
    time_budget_per_group: float = 20.0,
) -> MDFA:
    """Greedily partition ``patterns`` into budget-respecting DFA groups."""
    member_lists: list[list[Pattern]] = []
    built: list[DFA] = []

    for pattern in patterns:
        placed = False
        for index, members in enumerate(member_lists):
            candidate = members + [pattern]
            try:
                dfa = build_dfa(
                    candidate,
                    state_budget=group_state_budget,
                    time_budget=time_budget_per_group,
                )
            except DfaExplosionError:
                continue
            member_lists[index] = candidate
            built[index] = dfa
            placed = True
            break
        if not placed:
            try:
                dfa = build_dfa(
                    [pattern],
                    state_budget=group_state_budget,
                    time_budget=time_budget_per_group,
                )
            except DfaExplosionError as exc:
                raise DfaExplosionError(exc.budget, exc.reason) from exc
            member_lists.append([pattern])
            built.append(dfa)

    group_patterns = [[p.match_id for p in members] for members in member_lists]
    return MDFA(built, group_patterns)
