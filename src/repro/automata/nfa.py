"""Nondeterministic finite automata over byte payloads.

Two layers live here:

* a Thompson construction from :mod:`repro.regex.ast` trees, producing an
  ε-NFA fragment per pattern that a union step combines into one machine,
  followed by ε-elimination into the compact form every other automaton in
  this package is built from;
* an active-set simulation engine — the paper's NFA baseline, whose cost
  per byte grows with the number of simultaneously active states.

Matching semantics are the paper's: a pattern reports its match-id at every
payload position where some substring ending there matches.  Unanchored
patterns get a ``.*`` prefix at construction, so the machine itself never
needs restart logic.  End-anchored (``$``) patterns report only at the final
payload byte; their ids are kept in a separate decision set.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..regex import ast
from ..regex.ast import ClassNode, Alt, Concat, Empty, Node, Pattern, Repeat
from ..regex.charclass import CharClass

__all__ = ["NFA", "NfaContext", "build_nfa", "MatchEvent"]


@dataclass(frozen=True, slots=True, order=True)
class MatchEvent:
    """A reported match: ``pos`` is the index of the *last* matched byte."""

    pos: int
    match_id: int


class _Builder:
    """Mutable ε-NFA under construction (Thompson style)."""

    def __init__(self) -> None:
        self.transitions: list[list[tuple[CharClass, int]]] = []
        self.epsilons: list[list[int]] = []
        self.accepts: list[set[int]] = []
        self.accepts_end: list[set[int]] = []

    def new_state(self) -> int:
        self.transitions.append([])
        self.epsilons.append([])
        self.accepts.append(set())
        self.accepts_end.append(set())
        return len(self.transitions) - 1

    def add_edge(self, src: int, klass: CharClass, dst: int) -> None:
        self.transitions[src].append((klass, dst))

    def add_eps(self, src: int, dst: int) -> None:
        self.epsilons[src].append(dst)

    # -- Thompson fragments --------------------------------------------------

    def fragment(self, node: Node) -> tuple[int, int]:
        """Compile ``node`` to a fragment, returning (entry, exit) states."""
        if isinstance(node, Empty):
            q = self.new_state()
            return q, q
        if isinstance(node, ClassNode):
            a, b = self.new_state(), self.new_state()
            self.add_edge(a, node.cls, b)
            return a, b
        if isinstance(node, Concat):
            entry, out = self.fragment(node.parts[0])
            for part in node.parts[1:]:
                nxt_in, nxt_out = self.fragment(part)
                self.add_eps(out, nxt_in)
                out = nxt_out
            return entry, out
        if isinstance(node, Alt):
            entry, out = self.new_state(), self.new_state()
            for option in node.options:
                o_in, o_out = self.fragment(option)
                self.add_eps(entry, o_in)
                self.add_eps(o_out, out)
            return entry, out
        if isinstance(node, Repeat):
            return self._repeat_fragment(node)
        raise TypeError(f"unknown node type: {type(node).__name__}")

    def _repeat_fragment(self, node: Repeat) -> tuple[int, int]:
        lo, hi = node.min, node.max
        if hi is None:
            # child{lo,} == child^lo followed by child*
            entry = out = self.new_state()
            for _ in range(lo):
                c_in, c_out = self.fragment(node.child)
                self.add_eps(out, c_in)
                out = c_out
            star_in, star_out = self.fragment(node.child)
            hub = self.new_state()
            self.add_eps(out, hub)
            self.add_eps(hub, star_in)
            self.add_eps(star_out, hub)
            # The exit must be inert (no outgoing edges): enclosing
            # fragments ε-jump straight to it, and via the hub they could
            # otherwise sneak back into the loop — (aa+)? would accept "a".
            exit_ = self.new_state()
            self.add_eps(hub, exit_)
            return entry, exit_
        # child{lo,hi}: lo mandatory copies then (hi-lo) optional ones.
        entry = out = self.new_state()
        for _ in range(lo):
            c_in, c_out = self.fragment(node.child)
            self.add_eps(out, c_in)
            out = c_out
        skips: list[int] = []
        for _ in range(hi - lo):
            c_in, c_out = self.fragment(node.child)
            self.add_eps(out, c_in)
            skips.append(out)
            out = c_out
        for state in skips:
            self.add_eps(state, out)
        return entry, out


class NfaContext:
    """Per-flow NFA state (the active set) for the streaming interface."""

    __slots__ = ("active", "offset")

    def __init__(self, nfa: "NFA"):
        self.active = nfa.initial
        self.offset = 0


class NFA:
    """ε-free NFA with per-state decision sets.

    ``transitions[q]`` is a list of ``(bitmap, target)`` pairs where
    ``bitmap`` is the 256-bit integer of the edge's character class —
    membership tests in the hot loop are a shift-and-mask.  ``initial`` is
    the ε-closure of the start state.
    """

    def __init__(
        self,
        transitions: list[list[tuple[int, int]]],
        initial: tuple[int, ...],
        accepts: list[tuple[int, ...]],
        accepts_end: list[tuple[int, ...]],
    ):
        self.transitions = transitions
        self.initial = initial
        self.accepts = accepts
        self.accepts_end = accepts_end
        # Lazily-built run tables (alphabet-compressed moves); see _prepare.
        self._alpha_map: list[int] | None = None
        self._moves: list[list[tuple[int, ...]]] | None = None
        self._alpha_groups: tuple[array, list[int]] | None = None

    def alphabet_groups(self) -> tuple[array, list[int]]:
        """Partition the 256 byte values into edge-equivalence groups.

        Two bytes share a group when every edge class contains both or
        neither.  The per-byte signature is built as an integer bitmask over
        the distinct-class list (one bit per class the byte belongs to)
        rather than a 256-tuple of bools, so computing the partition costs
        one pass over the class memberships instead of 256 tuple
        allocations.  The result is cached on the NFA — subset construction,
        the simulation tables and the hybrid/bit-parallel builders all want
        the same partition.

        Returns ``(group_of_byte, representatives)``; callers must treat
        both as read-only (they are shared with every other caller).
        """
        if self._alpha_groups is not None:
            return self._alpha_groups
        classes = sorted(self.distinct_classes())
        signature = [0] * 256
        for index, bits in enumerate(classes):
            marker = 1 << index
            while bits:
                low = bits & -bits
                signature[low.bit_length() - 1] |= marker
                bits ^= low
        group_of: dict[int, int] = {}
        group_of_byte = array("i", [0] * 256)
        representatives: list[int] = []
        for byte in range(256):
            group = group_of.get(signature[byte])
            if group is None:
                group = len(representatives)
                group_of[signature[byte]] = group
                representatives.append(byte)
            group_of_byte[byte] = group
        self._alpha_groups = (group_of_byte, representatives)
        return self._alpha_groups

    def _prepare(self) -> tuple[list[int], list[list[tuple[int, ...]]]]:
        """Build per-state move tables indexed by alphabet group.

        Bytes that no edge class distinguishes share a group, so the
        simulation does one list-index per active state per byte instead of
        testing every edge bitmap — the same alphabet compression the DFA
        construction uses, reused for honest-but-not-naive NFA simulation.
        """
        if self._moves is not None:
            return self._alpha_map, self._moves  # type: ignore[return-value]
        group_of_byte, representatives = self.alphabet_groups()
        alpha_map = list(group_of_byte)
        moves: list[list[tuple[int, ...]]] = []
        for edges in self.transitions:
            per_group: list[tuple[int, ...]] = []
            for rep in representatives:
                bit = 1 << rep
                per_group.append(tuple(t for bits, t in edges if bits & bit))
            moves.append(per_group)
        self._alpha_map = alpha_map
        self._moves = moves
        return alpha_map, moves

    # -- introspection -------------------------------------------------------

    @property
    def n_states(self) -> int:
        return len(self.transitions)

    @property
    def n_transitions(self) -> int:
        return sum(len(t) for t in self.transitions)

    def distinct_classes(self) -> set[int]:
        """Unique character-class bitmaps appearing on edges."""
        return {bits for edges in self.transitions for bits, _ in edges}

    def memory_bytes(self) -> int:
        """Modelled memory image size of a sparse NFA encoding.

        Per state: an 8-byte header (edge-list offset + decision index).
        Per edge: 8 bytes (class-table index + target).  Each distinct
        character class is stored once as a 32-byte bitmap.  Decision lists
        cost 4 bytes per entry.  This mirrors the compact NFA encodings the
        paper's NFA sizes (0.1–0.5 MB for hundreds of states) imply.
        """
        decisions = sum(len(a) for a in self.accepts) + sum(len(a) for a in self.accepts_end)
        return (
            8 * self.n_states
            + 8 * self.n_transitions
            + 32 * len(self.distinct_classes())
            + 4 * decisions
        )

    # -- simulation ----------------------------------------------------------

    def run(self, data: bytes) -> list[MatchEvent]:
        """Collect every match event over ``data``."""
        return list(self.iter_matches(data))

    def iter_matches(self, data: bytes) -> Iterator[MatchEvent]:
        alpha_map, moves = self._prepare()
        accepts = self.accepts
        active: tuple[int, ...] = self.initial
        last = len(data) - 1
        for pos, byte in enumerate(data):
            group = alpha_map[byte]
            nxt: set[int] = set()
            for state in active:
                nxt.update(moves[state][group])
            # No re-seeding: unanchored patterns carry their own ``.*``
            # self-loop, and anchored patterns must be allowed to die.
            active = tuple(nxt)
            ids: set[int] = set()
            for state in active:
                if accepts[state]:
                    ids.update(accepts[state])
                if pos == last:
                    ids.update(self.accepts_end[state])
            if ids:
                for match_id in sorted(ids):
                    yield MatchEvent(pos, match_id)

    # -- streaming (same trio as the MFA, for dispatch/replay drivers) ------

    def new_context(self) -> "NfaContext":
        return NfaContext(self)

    def feed(self, context: "NfaContext", data: bytes) -> Iterator[MatchEvent]:
        alpha_map, moves = self._prepare()
        accepts = self.accepts
        active = context.active
        base = context.offset
        for pos, byte in enumerate(data):
            group = alpha_map[byte]
            nxt: set[int] = set()
            for state in active:
                nxt.update(moves[state][group])
            active = tuple(nxt)
            ids: set[int] = set()
            for state in active:
                if accepts[state]:
                    ids.update(accepts[state])
            if ids:
                absolute = base + pos
                for match_id in sorted(ids):
                    yield MatchEvent(absolute, match_id)
        context.active = active
        context.offset = base + len(data)

    def finish(self, context: "NfaContext") -> Iterator[MatchEvent]:
        if context.offset:
            ids: set[int] = set()
            for state in context.active:
                ids.update(self.accepts_end[state])
            for match_id in sorted(ids):
                yield MatchEvent(context.offset - 1, match_id)

    def count_active(self, data: bytes) -> float:
        """Mean active-set size over ``data`` — explains NFA slowness."""
        alpha_map, moves = self._prepare()
        active: tuple[int, ...] = self.initial
        total = 0
        for byte in data:
            group = alpha_map[byte]
            nxt: set[int] = set()
            for state in active:
                nxt.update(moves[state][group])
            active = tuple(nxt)
            total += len(active)
        return total / len(data) if data else float(len(self.initial))


def build_nfa(patterns: Sequence[Pattern]) -> NFA:
    """Compile a rule set into one compact ε-free NFA.

    Unanchored patterns receive an implicit ``.*`` prefix.  The union is a
    fresh start state with ε-edges to every pattern fragment.
    """
    builder = _Builder()
    start = builder.new_state()
    for pattern in patterns:
        root = pattern.root
        if not pattern.anchored:
            root = ast.concat([ast.dot_star(), root])
        entry, out = builder.fragment(root)
        builder.add_eps(start, entry)
        if pattern.end_anchored:
            builder.accepts_end[out].add(pattern.match_id)
        else:
            builder.accepts[out].add(pattern.match_id)
    return _eliminate_epsilons(builder, start)


def _eps_closures(builder: _Builder) -> list[tuple[int, ...]]:
    """ε-closure of each state, computed iteratively (graphs can be deep)."""
    n = len(builder.epsilons)
    closures: list[tuple[int, ...]] = [()] * n
    for root in range(n):
        seen = {root}
        stack = [root]
        while stack:
            state = stack.pop()
            for nxt in builder.epsilons[state]:
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        closures[root] = tuple(sorted(seen))
    return closures


def _eliminate_epsilons(builder: _Builder, start: int) -> NFA:
    """Convert the ε-NFA to the compact ε-free form.

    Keeps only states with incoming character edges (plus the start
    closure), so the result is near-Glushkov in size: one state per
    character position, the count Table V reports as "NFA Qs".
    """
    closures = _eps_closures(builder)

    # Effective decisions of a state = union over its closure.
    def closure_accepts(state: int) -> tuple[tuple[int, ...], tuple[int, ...]]:
        acc: set[int] = set()
        acc_end: set[int] = set()
        for member in closures[state]:
            acc |= builder.accepts[member]
            acc_end |= builder.accepts_end[member]
        return tuple(sorted(acc)), tuple(sorted(acc_end))

    # Effective outgoing character edges of a state = edges of its closure.
    def closure_edges(state: int) -> list[tuple[CharClass, int]]:
        edges: list[tuple[CharClass, int]] = []
        for member in closures[state]:
            edges.extend(builder.transitions[member])
        return edges

    # Reachable "kept" states: targets of character edges, discovered from
    # the start closure.
    kept: dict[int, int] = {start: 0}
    order: list[int] = [start]
    frontier = [start]
    while frontier:
        state = frontier.pop()
        for _klass, target in closure_edges(state):
            if target not in kept:
                kept[target] = len(kept)
                order.append(target)
                frontier.append(target)

    transitions: list[list[tuple[int, int]]] = []
    accepts: list[tuple[int, ...]] = []
    accepts_end: list[tuple[int, ...]] = []
    for state in order:
        merged: dict[int, int] = {}
        for klass, target in closure_edges(state):
            idx = kept[target]
            merged[idx] = merged.get(idx, 0) | klass.bits
        transitions.append([(bits, idx) for idx, bits in merged.items()])
        acc, acc_end = closure_accepts(state)
        accepts.append(acc)
        accepts_end.append(acc_end)

    # The start state stands for its whole closure; seed the active set with
    # just it (its edges/decisions already include the closure's).
    return NFA(transitions, (0,), accepts, accepts_end)
