"""Hopcroft DFA minimization, respecting multi-match decision sets.

Two states may only merge when they report the same decision tuples (both
the per-entry and end-anchored sets), so minimization never changes the
match stream — the property tests check exactly that.  Minimization is
optional in the compile pipeline (the paper does not minimize either), but
it tightens the Table V state counts and is ammunition for the ablation
benchmarks.

The splitter loop iterates the DFA's *alphabet groups* rather than all 256
raw bytes: subset construction records the byte-equivalence partition on
the DFA (``group_of_byte``), and bytes in one group act identically on
every state, so refining on a group representative refines for the whole
group.  Predecessors are stored as one flat counting-sorted array per
group (``pred_flat[g]`` ordered by target, ``pred_off[g]`` the offsets)
instead of 256 per-byte ``defaultdict`` maps — the same minimal DFA,
a fraction of the setup cost and worklist size.  A DFA without a recorded
group map (e.g. loaded from an old serialized blob) falls back to
singleton groups, i.e. the classic per-byte refinement.
"""

from __future__ import annotations

from array import array

from .dfa import DFA

__all__ = ["minimize_dfa"]


def _group_representatives(dfa: DFA) -> list[int]:
    """One sample byte per alphabet group (singleton groups as fallback)."""
    group_of_byte = dfa.group_of_byte
    if group_of_byte is None or not dfa.n_groups:
        return list(range(256))
    representatives: list[int] = [-1] * dfa.n_groups
    for byte in range(256):
        group = group_of_byte[byte]
        if representatives[group] < 0:
            representatives[group] = byte
    return representatives


def minimize_dfa(dfa: DFA) -> DFA:
    """Return an equivalent DFA with the minimal number of states."""
    n = dfa.n_states
    representatives = _group_representatives(dfa)
    n_groups = len(representatives)

    # Initial partition: group states by their decision signature.
    signature_of: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
    block_of = array("i", [0] * n)
    for q in range(n):
        sig = (dfa.accepts[q], dfa.accepts_end[q])
        block = signature_of.setdefault(sig, len(signature_of))
        block_of[q] = block
    n_blocks = len(signature_of)

    # Inverse transitions per alphabet group, counting-sorted flat:
    # sources reaching q on group g are pred_flat[g][pred_off[g][q] :
    # pred_off[g][q + 1]].
    pred_flat: list[array] = []
    pred_off: list[array] = []
    rows = dfa.rows
    for rep in representatives:
        counts = [0] * (n + 1)
        targets = array("i", [rows[src][rep] for src in range(n)])
        for target in targets:
            counts[target + 1] += 1
        for q in range(n):
            counts[q + 1] += counts[q]
        fill = counts[:]
        flat = array("i", bytes(4 * n) if n else b"")
        for src in range(n):
            target = targets[src]
            flat[fill[target]] = src
            fill[target] += 1
        pred_flat.append(flat)
        pred_off.append(array("i", counts))

    blocks: list[set[int]] = [set() for _ in range(n_blocks)]
    for q in range(n):
        blocks[block_of[q]].add(q)

    # Hopcroft's worklist of (block, alphabet-group) splitters.
    worklist: set[tuple[int, int]] = {
        (b, g) for b in range(n_blocks) for g in range(n_groups)
    }
    while worklist:
        block_id, group = worklist.pop()
        splitter = blocks[block_id]
        # X = states with a transition on `group` into the splitter block.
        x: set[int] = set()
        flat = pred_flat[group]
        off = pred_off[group]
        for q in splitter:
            start, end = off[q], off[q + 1]
            if start != end:
                x.update(flat[start:end])
        if not x:
            continue
        # Refine every block against X.
        touched = {block_of[q] for q in x}
        for b in touched:
            block = blocks[b]
            inside = block & x
            outside = block - x
            if not inside or not outside:
                continue
            # Replace block b with the smaller half as a new block.
            if len(inside) <= len(outside):
                new_set, old_set = inside, outside
            else:
                new_set, old_set = outside, inside
            new_id = len(blocks)
            blocks[b] = old_set
            blocks.append(new_set)
            for q in new_set:
                block_of[q] = new_id
            # Queue the smaller half for every group (standard Hopcroft;
            # the shrunken original block keeps any queue entries it had).
            for g in range(n_groups):
                worklist.add((new_id, g))

    # Rebuild the DFA over blocks, keeping the start block as state 0.
    remap = array("i", [0] * len(blocks))
    order: list[int] = []
    seen = [False] * len(blocks)

    def visit(block: int) -> None:
        if seen[block]:
            return
        seen[block] = True
        remap[block] = len(order)
        order.append(block)

    visit(block_of[dfa.start])
    # Breadth-first over block transitions for a deterministic layout.  One
    # probe per alphabet group covers every distinct successor, but raw
    # bytes are walked here to keep the layout identical to the historical
    # per-byte traversal (group order need not match byte order).
    i = 0
    while i < len(order):
        block = order[i]
        representative = next(iter(blocks[block]))
        row = dfa.rows[representative]
        for byte in range(256):
            visit(block_of[row[byte]])
        i += 1

    rows_out: list[array] = []
    accepts: list[tuple[int, ...]] = []
    accepts_end: list[tuple[int, ...]] = []
    for block in order:
        representative = next(iter(blocks[block]))
        src_row = dfa.rows[representative]
        rows_out.append(
            array("i", [remap[block_of[src_row[byte]]] for byte in range(256)])
        )
        accepts.append(dfa.accepts[representative])
        accepts_end.append(dfa.accepts_end[representative])

    # Byte-equivalence groups of the source remain valid: merging states
    # never lets the machine distinguish bytes it could not before.
    return DFA(
        rows_out,
        0,
        accepts,
        accepts_end,
        group_of_byte=dfa.group_of_byte,
        n_groups=dfa.n_groups,
    )
