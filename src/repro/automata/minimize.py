"""Hopcroft DFA minimization, respecting multi-match decision sets.

Two states may only merge when they report the same decision tuples (both
the per-entry and end-anchored sets), so minimization never changes the
match stream — the property tests check exactly that.  Minimization is
optional in the compile pipeline (the paper does not minimize either), but
it tightens the Table V state counts and is ammunition for the ablation
benchmarks.
"""

from __future__ import annotations

from array import array
from collections import defaultdict

from .dfa import DFA

__all__ = ["minimize_dfa"]


def minimize_dfa(dfa: DFA) -> DFA:
    """Return an equivalent DFA with the minimal number of states."""
    n = dfa.n_states

    # Initial partition: group states by their decision signature.
    signature_of: dict[tuple[tuple[int, ...], tuple[int, ...]], int] = {}
    block_of = array("i", [0] * n)
    for q in range(n):
        sig = (dfa.accepts[q], dfa.accepts_end[q])
        block = signature_of.setdefault(sig, len(signature_of))
        block_of[q] = block
    n_blocks = len(signature_of)

    # Inverse transition lists per byte: who reaches q on byte c?
    # Stored flat as preds[c][q] -> list of sources.
    preds: list[dict[int, list[int]]] = [defaultdict(list) for _ in range(256)]
    for src in range(n):
        row = dfa.rows[src]
        for byte in range(256):
            preds[byte][row[byte]].append(src)

    blocks: list[set[int]] = [set() for _ in range(n_blocks)]
    for q in range(n):
        blocks[block_of[q]].add(q)

    # Hopcroft's worklist of (block, byte) splitters.
    worklist: set[tuple[int, int]] = {
        (b, c) for b in range(n_blocks) for c in range(256)
    }
    while worklist:
        block_id, byte = worklist.pop()
        splitter = blocks[block_id]
        # X = states with a transition on `byte` into the splitter block.
        x: set[int] = set()
        pred_map = preds[byte]
        for q in splitter:
            x.update(pred_map.get(q, ()))
        if not x:
            continue
        # Refine every block against X.
        touched = {block_of[q] for q in x}
        for b in touched:
            block = blocks[b]
            inside = block & x
            outside = block - x
            if not inside or not outside:
                continue
            # Replace block b with the smaller half as a new block.
            if len(inside) <= len(outside):
                new_set, old_set = inside, outside
            else:
                new_set, old_set = outside, inside
            new_id = len(blocks)
            blocks[b] = old_set
            blocks.append(new_set)
            for q in new_set:
                block_of[q] = new_id
            # Queue the smaller half for every byte (standard Hopcroft; the
            # shrunken original block keeps any queue entries it had).
            for c in range(256):
                worklist.add((new_id, c))

    # Rebuild the DFA over blocks, keeping the start block as state 0.
    remap = array("i", [0] * len(blocks))
    order: list[int] = []
    seen = [False] * len(blocks)

    def visit(block: int) -> None:
        if seen[block]:
            return
        seen[block] = True
        remap[block] = len(order)
        order.append(block)

    visit(block_of[dfa.start])
    # Breadth-first over block transitions for a deterministic layout.
    i = 0
    while i < len(order):
        block = order[i]
        representative = next(iter(blocks[block]))
        row = dfa.rows[representative]
        for byte in range(256):
            visit(block_of[row[byte]])
        i += 1

    rows: list[array] = []
    accepts: list[tuple[int, ...]] = []
    accepts_end: list[tuple[int, ...]] = []
    for block in order:
        representative = next(iter(blocks[block]))
        src_row = dfa.rows[representative]
        rows.append(array("i", [remap[block_of[src_row[byte]]] for byte in range(256)]))
        accepts.append(dfa.accepts[representative])
        accepts_end.append(dfa.accepts_end[representative])

    # Byte-equivalence groups of the source remain valid: merging states
    # never lets the machine distinguish bytes it could not before.
    return DFA(
        rows,
        0,
        accepts,
        accepts_end,
        group_of_byte=dfa.group_of_byte,
        n_groups=dfa.n_groups,
    )
