"""Automata substrates: NFA, DFA (+minimization), and the HFA/XFA baselines."""

from .compress import CompressedDFA, compress_dfa
from .dot import dfa_to_dot, nfa_to_dot
from .dfa import DFA, DEFAULT_STATE_BUDGET, DfaExplosionError, build_dfa, build_dfa_from_nfa
from .hfa import HFA, build_hfa
from .hybridfa import HybridFA, build_hybrid_fa
from .mdfa import MDFA, build_mdfa
from .memory import ImageSize, format_mb, image_size
from .minimize import minimize_dfa
from .nfa import NFA, MatchEvent, build_nfa
from .serialize import dumps_dfa, load_dfa, loads_dfa, save_dfa
from .shiftand import ShiftAndMatcher, build_shift_and, linearize
from .xfa import XFA, build_xfa

__all__ = [
    "CompressedDFA",
    "compress_dfa",
    "dfa_to_dot",
    "nfa_to_dot",
    "DFA",
    "DEFAULT_STATE_BUDGET",
    "DfaExplosionError",
    "build_dfa",
    "build_dfa_from_nfa",
    "HFA",
    "build_hfa",
    "HybridFA",
    "build_hybrid_fa",
    "ImageSize",
    "format_mb",
    "image_size",
    "MDFA",
    "build_mdfa",
    "minimize_dfa",
    "NFA",
    "MatchEvent",
    "build_nfa",
    "dumps_dfa",
    "load_dfa",
    "loads_dfa",
    "save_dfa",
    "ShiftAndMatcher",
    "build_shift_and",
    "linearize",
    "XFA",
    "build_xfa",
]
