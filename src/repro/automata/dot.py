"""Graphviz (DOT) export for automata.

Debugging a decomposition is much easier when you can *see* the machines;
these helpers render NFAs and DFAs as DOT text (pipe into ``dot -Tsvg``).
Edges are labelled with compact character-class syntax; DFA renderings
collapse the 256 byte columns into one edge per distinct target and omit
the dead state's self-loops to keep graphs readable.
"""

from __future__ import annotations

from collections import defaultdict

from ..regex.charclass import CharClass
from .dfa import DFA
from .nfa import NFA

__all__ = ["nfa_to_dot", "dfa_to_dot"]


def _escape(label: str) -> str:
    return label.replace("\\", "\\\\").replace('"', '\\"')


def _class_label(klass: CharClass) -> str:
    from ..regex.printer import to_text
    from ..regex.ast import ClassNode

    return to_text(ClassNode(klass))


def nfa_to_dot(nfa: NFA, name: str = "nfa") -> str:
    """Render an ε-free NFA as DOT text."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", '  node [shape=circle];']
    for state in range(nfa.n_states):
        attributes = []
        if nfa.accepts[state] or nfa.accepts_end[state]:
            attributes.append("shape=doublecircle")
            ids = sorted(set(nfa.accepts[state]) | set(nfa.accepts_end[state]))
            attributes.append(f'xlabel="{",".join(map(str, ids))}"')
        if state in nfa.initial:
            attributes.append("style=bold")
        if attributes:
            lines.append(f"  {state} [{', '.join(attributes)}];")
    for state, edges in enumerate(nfa.transitions):
        # Merge parallel edges to the same target.
        merged: dict[int, int] = defaultdict(int)
        for bits, target in edges:
            merged[target] |= bits
        for target, bits in sorted(merged.items()):
            label = _escape(_class_label(CharClass(bits)))
            lines.append(f'  {state} -> {target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def dfa_to_dot(dfa: DFA, name: str = "dfa", max_states: int = 200) -> str:
    """Render a DFA as DOT text (refuses unreadably large machines)."""
    if dfa.n_states > max_states:
        raise ValueError(
            f"DFA has {dfa.n_states} states; raise max_states (now {max_states}) "
            "to render it anyway"
        )
    # Identify a dead state (self-loop on all bytes, non-accepting) to omit.
    dead = None
    for state in range(dfa.n_states):
        if dfa.accepts[state] or dfa.accepts_end[state]:
            continue
        if all(dfa.rows[state][byte] == state for byte in range(256)):
            dead = state
            break

    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    for state in range(dfa.n_states):
        if state == dead:
            continue
        attributes = []
        if dfa.accepts[state] or dfa.accepts_end[state]:
            attributes.append("shape=doublecircle")
            ids = sorted(set(dfa.accepts[state]) | set(dfa.accepts_end[state]))
            attributes.append(f'xlabel="{",".join(map(str, ids))}"')
        if state == dfa.start:
            attributes.append("style=bold")
        if attributes:
            lines.append(f"  {state} [{', '.join(attributes)}];")
    for state in range(dfa.n_states):
        if state == dead:
            continue
        by_target: dict[int, list[int]] = defaultdict(list)
        for byte in range(256):
            by_target[dfa.rows[state][byte]].append(byte)
        for target, bytes_list in sorted(by_target.items()):
            if target == dead:
                continue
            label = _escape(_class_label(CharClass(bytes_list)))
            lines.append(f'  {state} -> {target} [label="{label}"];')
    lines.append("}")
    return "\n".join(lines)
