"""Hybrid finite automaton — the Becchi & Crowley baseline (paper §II-A).

The hybrid-FA stops subset construction at the *border* where state
explosion would begin: everything before a pattern's first unbounded gap
compiles into one head DFA, and the remainder of each pattern becomes a
small *tail NFA* that is activated whenever the head reports the prefix.
One head lookup per byte plus work proportional to the number of active
tail states — "a fixed or bounded number of active states", bought with
NFA-speed processing whenever tails are hot (the §II-A critique: "using
just 2 active states reduces their throughput to 50%").

This implementation derives the border from the same separator scan the
match-filtering splitter uses, but needs *no safety conditions and no
filter*: the tail automaton is the exact remainder (separator included),
compiled anchored and seeded at the byte after each prefix match, so no
information is lost by construction.  That freedom from conditions is the
hybrid-FA's advantage; paying per-byte tail simulation is its cost, and
the contrast against the MFA's constant-cost filter is the point of the
comparison benchmark.
"""

from __future__ import annotations

from typing import Sequence

from ..regex import ast
from ..regex.analysis import min_length
from ..regex.ast import Pattern
from .dfa import DFA, DEFAULT_STATE_BUDGET, build_dfa
from .nfa import NFA, MatchEvent, build_nfa

__all__ = ["HybridFA", "build_hybrid_fa"]


class HybridFA:
    """Head DFA plus per-pattern tail NFAs."""

    def __init__(
        self,
        head: DFA,
        head_actions: dict[int, tuple[str, int]],
        tails: list[NFA],
        tail_ids: list[int],
    ):
        self.head = head
        # head match-id -> ("direct", original id) | ("activate", tail index)
        self.head_actions = head_actions
        self.tails = tails
        self.tail_ids = tail_ids

    @property
    def n_states(self) -> int:
        return self.head.n_states + sum(tail.n_states for tail in self.tails)

    @property
    def n_tails(self) -> int:
        return len(self.tails)

    def memory_bytes(self, compressed: bool | None = None) -> int:
        """Head DFA plus every tail NFA.

        ``compressed`` follows the :meth:`repro.automata.dfa.DFA.memory_bytes`
        contract for the head table; tails are sparse NFAs, whose accounting
        has no dense/compressed distinction.
        """
        return self.head.memory_bytes(compressed=compressed) + sum(
            t.memory_bytes() for t in self.tails
        )

    def run(self, data: bytes) -> list[MatchEvent]:
        out: list[MatchEvent] = []
        head = self.head
        rows = head.rows
        head_accepts = head.accepts
        head_actions = self.head_actions
        tails = self.tails
        tail_ids = self.tail_ids
        tail_tables = [tail._prepare() for tail in tails]

        head_state = head.start
        # Only live tails cost anything: the whole point of the border.
        live: dict[int, set[int]] = {}

        for pos, byte in enumerate(data):
            # Step the live tails first: an activation at position p seeds
            # the tail to start consuming at p + 1.
            if live:
                dead = []
                for index, states in live.items():
                    alpha_map, moves = tail_tables[index]
                    group = alpha_map[byte]
                    nxt: set[int] = set()
                    for state in states:
                        nxt.update(moves[state][group])
                    if nxt:
                        live[index] = nxt
                        accepts = tails[index].accepts
                        for state in nxt:
                            if accepts[state]:
                                out.append(MatchEvent(pos, tail_ids[index]))
                                break
                    else:
                        dead.append(index)
                for index in dead:
                    del live[index]

            head_state = rows[head_state][byte]
            acc = head_accepts[head_state]
            if acc:
                for head_id in acc:
                    kind, value = head_actions[head_id]
                    if kind == "direct":
                        out.append(MatchEvent(pos, value))
                    else:
                        states = live.get(value)
                        if states is None:
                            live[value] = set(tails[value].initial)
                        else:
                            states.update(tails[value].initial)
        return out

    def mean_active_tail_states(self, data: bytes) -> float:
        """Diagnostic: average live tail states per byte (the cost driver)."""
        total = 0
        head = self.head
        rows = head.rows
        tail_tables = [tail._prepare() for tail in self.tails]
        head_state = head.start
        live: dict[int, set[int]] = {}
        for byte in data:
            dead = []
            for index, states in live.items():
                alpha_map, moves = tail_tables[index]
                group = alpha_map[byte]
                nxt: set[int] = set()
                for state in states:
                    nxt.update(moves[state][group])
                if nxt:
                    live[index] = nxt
                else:
                    dead.append(index)
            for index in dead:
                del live[index]
            head_state = rows[head_state][byte]
            for head_id in head.accepts[head_state]:
                kind, value = self.head_actions[head_id]
                if kind == "activate":
                    states = live.get(value)
                    if states is None:
                        live[value] = set(self.tails[value].initial)
                    else:
                        states.update(self.tails[value].initial)
            total += sum(len(s) for s in live.values())
        return total / len(data) if data else 0.0


def build_hybrid_fa(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
) -> HybridFA:
    """Split each pattern at its first unbounded gap; heads DFA, rests NFA."""
    from ..core.splitter import SplitterOptions, _classify, _top_parts

    options = SplitterOptions()
    head_patterns: list[Pattern] = []
    head_actions: dict[int, tuple[str, int]] = {}
    tails: list[NFA] = []
    tail_ids: list[int] = []
    next_head_id = 1

    for pattern in patterns:
        if pattern.end_anchored:
            raise ValueError(
                f"pattern {{{{{pattern.match_id}}}}} is end-anchored; "
                "the hybrid-FA model here does not support $"
            )
        parts = _top_parts(pattern.root)
        border = None
        for index, part in enumerate(parts):
            if index == 0:
                continue  # a leading separator is just unanchored-ness
            if _classify(part, options) is not None:
                border = index
                break
        head_id = next_head_id
        next_head_id += 1
        if border is None:
            head_patterns.append(
                Pattern(
                    pattern.root,
                    match_id=head_id,
                    anchored=pattern.anchored,
                    source=pattern.source,
                )
            )
            head_actions[head_id] = ("direct", pattern.match_id)
            continue
        head_node = ast.concat(list(parts[:border]))
        tail_node = ast.concat(list(parts[border:]))
        if min_length(head_node) == 0:
            # Nullable prefix: no meaningful border, keep the pattern whole.
            head_patterns.append(
                Pattern(pattern.root, match_id=head_id, anchored=pattern.anchored)
            )
            head_actions[head_id] = ("direct", pattern.match_id)
            continue
        head_patterns.append(
            Pattern(
                head_node,
                match_id=head_id,
                anchored=pattern.anchored,
                source=pattern.source,
            )
        )
        head_actions[head_id] = ("activate", len(tails))
        # The tail is the exact remainder, anchored at the activation point.
        tails.append(build_nfa([Pattern(tail_node, match_id=1, anchored=True)]))
        tail_ids.append(pattern.match_id)

    head = build_dfa(head_patterns, state_budget=state_budget, time_budget=time_budget)
    return HybridFA(head, head_actions, tails, tail_ids)
