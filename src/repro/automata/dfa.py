"""Deterministic finite automata: subset construction and the table engine.

The DFA is both the paper's fastest baseline and the matching core inside
every MFA.  Construction uses the classic subset algorithm with *alphabet
compression*: bytes that every edge class treats identically are grouped, so
each subset is expanded once per alphabet group instead of 256 times.  The
runtime table is still dense (one row of 256 targets per state, as an
``array('i')`` row) because the per-byte hot loop must be a plain indexed
lookup — exactly the trade the paper describes.

Construction takes a state budget and raises :class:`DfaExplosionError` when
subset construction exceeds it; this models the paper's observation that the
B217p pattern set "could not be constructed as a DFA".
"""

from __future__ import annotations

import time
from array import array
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

from ..regex.ast import Pattern
from .nfa import NFA, MatchEvent, build_nfa

__all__ = [
    "DFA",
    "DfaContext",
    "DfaExplosionError",
    "build_dfa",
    "build_dfa_from_nfa",
    "build_dfa_from_nfa_reference",
    "alphabet_groups",
    "DEFAULT_STATE_BUDGET",
]

DEFAULT_STATE_BUDGET = 250_000


class DfaExplosionError(RuntimeError):
    """Subset construction exceeded its state or time budget.

    Models the paper's "pattern set B217p could not be constructed as a
    DFA": past a resource budget the engine gives up rather than thrash.
    """

    def __init__(self, budget: int, reason: str = "states"):
        super().__init__(
            f"DFA subset construction exceeded the budget of {budget} {reason}"
        )
        self.budget = budget
        self.reason = reason


def alphabet_groups(nfa: NFA) -> tuple[array, list[int]]:
    """Partition the 256 byte values into equivalence groups.

    Two bytes are equivalent when every edge class in the NFA either contains
    both or neither; a DFA transition can only ever distinguish inequivalent
    bytes.  Returns ``(group_of_byte, representatives)`` where
    ``group_of_byte`` maps each byte to its group id and ``representatives``
    holds one sample byte per group.

    The partition is computed (once) and cached on the NFA — see
    :meth:`repro.automata.nfa.NFA.alphabet_groups`.  A fresh copy of the
    byte map is returned so callers may hand it to a DFA without sharing
    mutable state.
    """
    group_of_byte, representatives = nfa.alphabet_groups()
    return array("i", group_of_byte), list(representatives)


class DfaContext:
    """Per-flow DFA state for the streaming interface."""

    __slots__ = ("state", "offset")

    def __init__(self, dfa: "DFA"):
        self.state = dfa.start
        self.offset = 0


class DFA:
    """Dense-table DFA with multi-match decision sets.

    ``rows[q][c]`` is the next state from ``q`` on byte ``c``.  ``accepts[q]``
    is the (possibly empty) tuple of match-ids reported whenever state ``q``
    is entered; ``accepts_end[q]`` are ids reported only when ``q`` is the
    state after the final payload byte (``$``-anchored patterns).
    """

    def __init__(
        self,
        rows: list[array],
        start: int,
        accepts: list[tuple[int, ...]],
        accepts_end: list[tuple[int, ...]],
        group_of_byte: array | None = None,
        n_groups: int | None = None,
    ):
        self.rows = rows
        self.start = start
        self.accepts = accepts
        self.accepts_end = accepts_end
        # Alphabet-compression provenance: byte -> equivalence group, kept
        # from subset construction so the image accounting (and vectorized
        # engines) can use the byte-class compressed table layout.
        self.group_of_byte = group_of_byte
        self.n_groups = n_groups if n_groups is not None else (
            len(set(group_of_byte)) if group_of_byte is not None else None
        )
        # Hot-loop accelerators: one (row, decisions) pair per state, so the
        # per-byte loop resolves the next state's row and decision set with a
        # single list index, and an engine-wide flag for the common
        # benign-traffic case where no state ever reports.
        self._steps: list[tuple[array, tuple[int, ...]]] = list(zip(rows, accepts))
        self._has_accepts = any(accepts)

    @property
    def n_states(self) -> int:
        return len(self.rows)

    def memory_bytes(self, compressed: bool | None = None) -> int:
        """Modelled image size: 4-byte dense entries plus decision lists.

        Matches the paper's accounting (e.g. a ~244k-state DFA at 250 MB is
        ~1 KB/state, i.e. 256 four-byte entries).

        ``compressed=True`` models the byte-class compressed layout instead
        — one row of ``n_groups`` entries per state plus a shared 256-byte
        byte->group map — which is how engines built with alphabet
        compression actually store their tables.  ``compressed=None`` keeps
        the dense accounting unless the caller opted in (dense is what the
        paper reports for the plain-DFA baseline).  A DFA with no recorded
        group map falls back to dense accounting.
        """
        decisions = sum(len(a) for a in self.accepts) + sum(len(a) for a in self.accepts_end)
        if compressed and self.n_groups is not None and self.n_groups < 256:
            # Per state: n_groups entries * 4B + a 4B decision-list offset;
            # plus the shared one-byte-per-byte indirection map.
            return self.n_states * (self.n_groups * 4 + 4) + 256 + 4 * decisions
        # Per state: 256 entries * 4B + a 4B decision-list offset.
        return self.n_states * (256 * 4 + 4) + 4 * decisions

    # -- execution -----------------------------------------------------------

    def run(self, data: bytes) -> list[MatchEvent]:
        """Collect every match event over ``data``."""
        out: list[MatchEvent] = []
        if not self._has_accepts:
            # No state ever reports mid-stream: a pure table walk suffices.
            state = self.scan(data)
        else:
            steps = self._steps
            state = self.start
            row, acc = steps[state]
            append = out.append
            for pos, byte in enumerate(data):
                state = row[byte]
                row, acc = steps[state]
                if acc:
                    for match_id in acc:
                        append(MatchEvent(pos, match_id))
        if data:
            for match_id in self.accepts_end[state]:
                out.append(MatchEvent(len(data) - 1, match_id))
        return out

    def iter_matches(self, data: bytes) -> Iterator[MatchEvent]:
        yield from self.run(data)

    def scan(self, data: bytes, state: Optional[int] = None) -> int:
        """Advance through ``data`` without collecting matches.

        This is the benchmark inner loop — the pure table-walk cost that the
        paper's cycles-per-byte numbers measure on non-matching traffic.
        Returns the final state so streaming callers can continue.
        """
        rows = self.rows
        current = self.start if state is None else state
        for byte in data:
            current = rows[current][byte]
        return current

    # -- streaming (same trio as the MFA, for dispatch/replay drivers) ------

    def new_context(self) -> "DfaContext":
        return DfaContext(self)

    def feed(self, context: "DfaContext", data: bytes) -> Iterator[MatchEvent]:
        state = context.state
        base = context.offset
        if not self._has_accepts:
            context.state = self.scan(data, state)
            context.offset = base + len(data)
            return
        steps = self._steps
        row, acc = steps[state]
        for pos, byte in enumerate(data):
            state = row[byte]
            row, acc = steps[state]
            if acc:
                absolute = base + pos
                for match_id in acc:
                    yield MatchEvent(absolute, match_id)
        context.state = state
        context.offset = base + len(data)

    def finish(self, context: "DfaContext") -> Iterator[MatchEvent]:
        if context.offset:
            for match_id in self.accepts_end[context.state]:
                yield MatchEvent(context.offset - 1, match_id)

    def final_states(self) -> list[int]:
        """States with a non-empty decision set."""
        return [q for q, acc in enumerate(self.accepts) if acc]


def build_dfa(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
) -> DFA:
    """Compile a rule set straight to a DFA (the paper's DFA baseline)."""
    return build_dfa_from_nfa(
        build_nfa(patterns), state_budget=state_budget, time_budget=time_budget
    )


def build_dfa_from_nfa(
    nfa: NFA,
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
) -> DFA:
    """Subset construction with alphabet compression and resource budgets.

    ``time_budget`` (seconds of wall time, checked periodically) bounds the
    pathological sets whose subsets are individually expensive enough that
    the state budget alone would take minutes to trip.

    The walk itself is the bitset core of :mod:`repro.fastcompile.bitset`:
    NFA state sets are Python ints and the per-group successor computation
    is a handful of big-integer ORs, which is several times faster than the
    classic frozenset expansion.  The frozenset version is retained as
    :func:`build_dfa_from_nfa_reference` for equivalence tests and the
    construction benchmark's pre-optimization baseline.  Both produce
    byte-identical automata (same state numbering, same tables).
    """
    from ..fastcompile.bitset import subset_construct

    return subset_construct(nfa, state_budget=state_budget, time_budget=time_budget)


def build_dfa_from_nfa_reference(
    nfa: NFA,
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
) -> DFA:
    """The classic frozenset-of-states subset construction (pre-bitset).

    Kept as the reference implementation: equivalence tests assert the
    bitset core reproduces its output exactly, and
    ``benchmarks/bench_construction.py`` uses it as the single-core
    baseline its speedups are measured against.
    """
    group_of_byte, representatives = alphabet_groups(nfa)
    n_groups = len(representatives)

    # Pre-compute, for each NFA state, its target tuple per alphabet group.
    moves: list[list[tuple[int, ...]]] = []
    for edges in nfa.transitions:
        per_group: list[tuple[int, ...]] = []
        for rep in representatives:
            bit = 1 << rep
            per_group.append(tuple(t for bits, t in edges if bits & bit))
        moves.append(per_group)

    initial = frozenset(nfa.initial)
    index_of: dict[frozenset[int], int] = {initial: 0}
    subsets: list[frozenset[int]] = [initial]
    group_rows: list[array] = []

    deadline = None if time_budget is None else time.perf_counter() + time_budget

    # Process subsets in index order; newly discovered subsets are appended,
    # so group_rows[i] always describes subsets[i].
    i = 0
    while i < len(subsets):
        if deadline is not None and i % 512 == 0 and time.perf_counter() > deadline:
            raise DfaExplosionError(int(time_budget), "seconds")
        subset = subsets[i]
        row = array("i", [0] * n_groups)
        for group in range(n_groups):
            # Plain NFA move — no initial-state re-seeding (unanchored
            # patterns self-loop via their ``.*`` prefix; anchored ones die).
            nxt: set[int] = set()
            for state in subset:
                nxt.update(moves[state][group])
            key = frozenset(nxt)
            target = index_of.get(key)
            if target is None:
                target = len(subsets)
                if target >= state_budget:
                    raise DfaExplosionError(state_budget)
                index_of[key] = target
                subsets.append(key)
            row[group] = target
        group_rows.append(row)
        i += 1

    # Expand compressed rows to dense 256-entry rows and collect decisions.
    rows: list[array] = []
    accepts: list[tuple[int, ...]] = []
    accepts_end: list[tuple[int, ...]] = []
    for subset, group_row in zip(subsets, group_rows):
        rows.append(array("i", [group_row[group_of_byte[byte]] for byte in range(256)]))
        acc: set[int] = set()
        acc_end: set[int] = set()
        for state in subset:
            acc.update(nfa.accepts[state])
            acc_end.update(nfa.accepts_end[state])
        accepts.append(tuple(sorted(acc)))
        accepts_end.append(tuple(sorted(acc_end)))

    return DFA(
        rows,
        0,
        accepts,
        accepts_end,
        group_of_byte=group_of_byte,
        n_groups=n_groups,
    )
