"""Serialisation of compiled automata.

A security middlebox compiles rule sets offline and ships the automaton to
the data plane, so engines must round-trip through a stable on-disk form.
The format is a small JSON header followed by the raw little-endian
transition table — fast to load, easy to inspect, and byte-for-byte
deterministic for identical inputs (tested).
"""

from __future__ import annotations

import json
import struct
from array import array
from typing import BinaryIO, cast

from .dfa import DFA

__all__ = ["DFA_MAGIC", "save_dfa", "load_dfa", "dumps_dfa", "loads_dfa", "decode_dfa_header"]

_MAGIC = b"MFADFA1\n"

# Public alias for tolerant decoders (repro.analyze.bundle).
DFA_MAGIC = _MAGIC


def dumps_dfa(dfa: DFA) -> bytes:
    """Serialise a DFA to bytes."""
    header = {
        "n_states": dfa.n_states,
        "start": dfa.start,
        "accepts": [list(a) for a in dfa.accepts],
        "accepts_end": [list(a) for a in dfa.accepts_end],
    }
    if dfa.group_of_byte is not None:
        # Alphabet-compression provenance rides along so loaded automata
        # keep the byte-class compressed accounting and fastpath layout.
        header["group_of_byte"] = list(dfa.group_of_byte)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    table = array("i")
    for row in dfa.rows:
        table.extend(row)
    if table.itemsize != 4:
        table = array("l", table)  # pragma: no cover - platform fallback
    body = table.tobytes()
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + body


def decode_dfa_header(blob: bytes) -> tuple[dict, bytes]:
    """Split a DFA blob into its decoded JSON header and raw table bytes.

    Only the framing is validated (magic, header length, JSON syntax); the
    table bytes are returned undecoded so tolerant consumers — the static
    analyzer — can diagnose truncation themselves.  Raises
    :class:`ValueError` naming the structural defect.
    """
    if not blob.startswith(_MAGIC):
        raise ValueError("not a serialised DFA (bad magic)")
    offset = len(_MAGIC)
    if len(blob) < offset + 4:
        raise ValueError("truncated DFA blob (missing header length)")
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    header_bytes = blob[offset : offset + header_len]
    if len(header_bytes) != header_len:
        raise ValueError("truncated DFA blob (incomplete header)")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ValueError(f"corrupt DFA header JSON: {exc}") from None
    return header, blob[offset + header_len :]


def loads_dfa(blob: "bytes | memoryview", mmap: bool = False) -> DFA:
    """Deserialise a DFA produced by :func:`dumps_dfa`.

    With ``mmap=True`` the transition table is *not* copied: each row is a
    zero-copy ``memoryview`` slice (cast to 4-byte ints) over the caller's
    buffer, which is what lets N worker processes share one
    :mod:`multiprocessing.shared_memory` artifact segment with zero
    per-process table copies.  The caller owns the buffer's lifetime — the
    returned DFA holds views into it, so the segment must outlive the
    engine (``repro.serve.shm`` manages exactly that).
    """
    view = memoryview(blob)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a serialised DFA (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    header = json.loads(bytes(view[offset : offset + header_len]))
    offset += header_len
    n_states = header["n_states"]
    body = view[offset : offset + n_states * 256 * 4]
    if len(body) != n_states * 256 * 4:
        raise ValueError("truncated DFA transition table")
    rows: list[array]
    if mmap:
        table_view = body.cast("i")
        rows = cast(
            "list[array]",
            [table_view[i * 256 : (i + 1) * 256] for i in range(n_states)],
        )
    else:
        table = array("i")
        table.frombytes(bytes(body))
        rows = [table[i * 256 : (i + 1) * 256] for i in range(n_states)]
    group_blob = header.get("group_of_byte")
    return DFA(
        rows,
        header["start"],
        [tuple(a) for a in header["accepts"]],
        [tuple(a) for a in header["accepts_end"]],
        group_of_byte=array("i", group_blob) if group_blob is not None else None,
    )


def save_dfa(dfa: DFA, stream: BinaryIO) -> None:
    stream.write(dumps_dfa(dfa))


def load_dfa(stream: BinaryIO) -> DFA:
    return loads_dfa(stream.read())
