"""Serialisation of compiled automata.

A security middlebox compiles rule sets offline and ships the automaton to
the data plane, so engines must round-trip through a stable on-disk form.
The format is a small JSON header followed by the raw little-endian
transition table — fast to load, easy to inspect, and byte-for-byte
deterministic for identical inputs (tested).
"""

from __future__ import annotations

import json
import struct
from array import array
from typing import BinaryIO, cast

from .compress import CompressedDFA
from .dfa import DFA

__all__ = [
    "DFA_MAGIC",
    "CDFA_MAGIC",
    "save_dfa",
    "load_dfa",
    "dumps_dfa",
    "loads_dfa",
    "decode_dfa_header",
    "dumps_cdfa",
    "loads_cdfa",
    "decode_cdfa_header",
]

_MAGIC = b"MFADFA1\n"
_CMAGIC = b"MFADFA2\n"

# Public aliases for tolerant decoders (repro.analyze.bundle).
DFA_MAGIC = _MAGIC
CDFA_MAGIC = _CMAGIC


def dumps_dfa(dfa: DFA) -> bytes:
    """Serialise a DFA to bytes."""
    header = {
        "n_states": dfa.n_states,
        "start": dfa.start,
        "accepts": [list(a) for a in dfa.accepts],
        "accepts_end": [list(a) for a in dfa.accepts_end],
    }
    if dfa.group_of_byte is not None:
        # Alphabet-compression provenance rides along so loaded automata
        # keep the byte-class compressed accounting and fastpath layout.
        header["group_of_byte"] = list(dfa.group_of_byte)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    table = array("i")
    for row in dfa.rows:
        table.extend(row)
    if table.itemsize != 4:
        table = array("l", table)  # pragma: no cover - platform fallback
    body = table.tobytes()
    return _MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + body


def decode_dfa_header(blob: bytes) -> tuple[dict, bytes]:
    """Split a DFA blob into its decoded JSON header and raw table bytes.

    Only the framing is validated (magic, header length, JSON syntax); the
    table bytes are returned undecoded so tolerant consumers — the static
    analyzer — can diagnose truncation themselves.  Raises
    :class:`ValueError` naming the structural defect.
    """
    if not blob.startswith(_MAGIC):
        raise ValueError("not a serialised DFA (bad magic)")
    offset = len(_MAGIC)
    if len(blob) < offset + 4:
        raise ValueError("truncated DFA blob (missing header length)")
    (header_len,) = struct.unpack_from("<I", blob, offset)
    offset += 4
    header_bytes = blob[offset : offset + header_len]
    if len(header_bytes) != header_len:
        raise ValueError("truncated DFA blob (incomplete header)")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ValueError(f"corrupt DFA header JSON: {exc}") from None
    return header, blob[offset + header_len :]


def loads_dfa(blob: "bytes | memoryview", mmap: bool = False) -> DFA:
    """Deserialise a DFA produced by :func:`dumps_dfa`.

    With ``mmap=True`` the transition table is *not* copied: each row is a
    zero-copy ``memoryview`` slice (cast to 4-byte ints) over the caller's
    buffer, which is what lets N worker processes share one
    :mod:`multiprocessing.shared_memory` artifact segment with zero
    per-process table copies.  The caller owns the buffer's lifetime — the
    returned DFA holds views into it, so the segment must outlive the
    engine (``repro.serve.shm`` manages exactly that).
    """
    view = memoryview(blob)
    if bytes(view[: len(_MAGIC)]) != _MAGIC:
        raise ValueError("not a serialised DFA (bad magic)")
    offset = len(_MAGIC)
    (header_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    header = json.loads(bytes(view[offset : offset + header_len]))
    offset += header_len
    n_states = header["n_states"]
    body = view[offset : offset + n_states * 256 * 4]
    if len(body) != n_states * 256 * 4:
        raise ValueError("truncated DFA transition table")
    rows: list[array]
    if mmap:
        table_view = body.cast("i")
        rows = cast(
            "list[array]",
            [table_view[i * 256 : (i + 1) * 256] for i in range(n_states)],
        )
    else:
        table = array("i")
        table.frombytes(bytes(body))
        rows = [table[i * 256 : (i + 1) * 256] for i in range(n_states)]
    group_blob = header.get("group_of_byte")
    return DFA(
        rows,
        header["start"],
        [tuple(a) for a in header["accepts"]],
        [tuple(a) for a in header["accepts_end"]],
        group_of_byte=array("i", group_blob) if group_blob is not None else None,
    )


def dumps_cdfa(cdfa: CompressedDFA) -> bytes:
    """Serialise a default-transition-compressed DFA to bytes.

    Same framing discipline as :func:`dumps_dfa` — magic, ``<I`` header
    length, JSON header — followed by six fixed-layout binary sections:
    ``parent`` int32[n], ``root_index`` int32[n], dense ``root_rows``
    int32[256*R], ``ov_offsets`` int32[n+1] (CSR offsets into the overlay
    arrays), ``ov_bytes`` uint8[E] and ``ov_targets`` int32[E].  Overlay
    entries are stored in ascending byte order per state, so identical
    forests serialise byte-for-byte identically.
    """
    n = cdfa.n_states
    header = {
        "n_states": n,
        "start": cdfa.start,
        "accepts": [list(a) for a in cdfa.accepts],
        "accepts_end": [list(a) for a in cdfa.accepts_end],
        "n_roots": cdfa.n_roots,
        "n_overlays": cdfa.overlay_entries,
        "max_depth": cdfa.chain_depth(),
    }
    if cdfa.group_of_byte is not None:
        header["group_of_byte"] = list(cdfa.group_of_byte)
    header_bytes = json.dumps(header, separators=(",", ":")).encode()

    root_table = array("i")
    for row in cdfa.root_rows:
        root_table.extend(row)
    ov_offsets = array("i", [0] * (n + 1))
    ov_bytes = bytearray()
    ov_targets = array("i")
    cursor = 0
    for q in range(n):
        overlay = cdfa.overlays[q]
        for byte in sorted(overlay):
            ov_bytes.append(byte)
            ov_targets.append(overlay[byte])
        cursor += len(overlay)
        ov_offsets[q + 1] = cursor

    body = (
        cdfa.parent.tobytes()
        + cdfa.root_index.tobytes()
        + root_table.tobytes()
        + ov_offsets.tobytes()
        + bytes(ov_bytes)
        + ov_targets.tobytes()
    )
    return _CMAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + body


def decode_cdfa_header(blob: "bytes | memoryview") -> tuple[dict, memoryview]:
    """Split a compressed-DFA blob into its JSON header and body bytes.

    Framing-only validation, mirroring :func:`decode_dfa_header`: the
    binary sections come back as one undecoded view so the static
    analyzer can diagnose truncation itself.
    """
    view = memoryview(blob)
    if bytes(view[: len(_CMAGIC)]) != _CMAGIC:
        raise ValueError("not a compressed serialised DFA (bad magic)")
    offset = len(_CMAGIC)
    if len(view) < offset + 4:
        raise ValueError("truncated compressed DFA blob (missing header length)")
    (header_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    header_bytes = bytes(view[offset : offset + header_len])
    if len(header_bytes) != header_len:
        raise ValueError("truncated compressed DFA blob (incomplete header)")
    try:
        header = json.loads(header_bytes)
    except ValueError as exc:
        raise ValueError(f"corrupt compressed DFA header JSON: {exc}") from None
    return header, view[offset + header_len :]


def loads_cdfa(blob: "bytes | memoryview") -> CompressedDFA:
    """Deserialise a compressed DFA produced by :func:`dumps_cdfa`.

    Unlike :func:`loads_dfa` there is no ``mmap`` mode: the decoded
    structures (overlay dicts) are rebuilt per process.  The *source*
    buffer can still live in shared memory — the whole point of the tier
    is that the image being mapped is an order of magnitude smaller, and
    the per-worker decode cost is proportional to that smaller size.
    """
    header, body = decode_cdfa_header(blob)
    n = header["n_states"]
    n_roots = header["n_roots"]
    n_entries = header["n_overlays"]
    expect = 4 * n + 4 * n + 1024 * n_roots + 4 * (n + 1) + n_entries + 4 * n_entries
    if len(body) != expect:
        raise ValueError(
            f"truncated compressed DFA sections (have {len(body)}, need {expect})"
        )
    offset = 0

    def take_ints(count: int) -> array:
        nonlocal offset
        out = array("i")
        out.frombytes(bytes(body[offset : offset + 4 * count]))
        offset += 4 * count
        return out

    parent = take_ints(n)
    root_index = take_ints(n)
    root_table = take_ints(256 * n_roots)
    ov_offsets = take_ints(n + 1)
    ov_bytes = bytes(body[offset : offset + n_entries])
    offset += n_entries
    ov_targets = take_ints(n_entries)

    root_rows = [root_table[r * 256 : (r + 1) * 256] for r in range(n_roots)]
    overlays: list[dict[int, int]] = []
    for q in range(n):
        lo, hi = ov_offsets[q], ov_offsets[q + 1]
        overlays.append(
            {ov_bytes[i]: ov_targets[i] for i in range(lo, hi)}
        )
    group_blob = header.get("group_of_byte")
    return CompressedDFA(
        parent,
        root_index,
        root_rows,
        overlays,
        header["start"],
        [tuple(a) for a in header["accepts"]],
        [tuple(a) for a in header["accepts_end"]],
        group_of_byte=array("i", group_blob) if group_blob is not None else None,
    )


def save_dfa(dfa: DFA, stream: BinaryIO) -> None:
    stream.write(dumps_dfa(dfa))


def load_dfa(stream: BinaryIO) -> DFA:
    return loads_dfa(stream.read())
