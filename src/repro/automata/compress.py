"""Default-transition DFA compression (a D2FA/CompactDFA-style engine).

The paper's introduction frames the whole design space as "a fundamental
tradeoff between the complexity of each transition and the total memory
size needed to store the transition function".  This module implements the
classic point on that curve the related work (CompactDFA [12], D2FA) sits
at, so the benchmarks can show it next to MFA: each state carries a
*default pointer* to a similar state and stores only the bytes on which
their rows differ; lookups walk the default chain until a stored entry (or
a dense root row) answers.  Memory drops by an order of magnitude; every
byte now costs a chain walk — exactly the trade the paper argues match
filtering avoids.

Building the exact minimum-weight default forest (the D2FA space-reduction
graph) is quadratic in states; this implementation uses the standard
locality trick instead: states are sorted by a row signature so that
similar rows become neighbours, and each state picks its best default among
a window of predecessors, subject to a chain-depth bound.  Matching
behaviour is identical to the source DFA (property-tested).
"""

from __future__ import annotations

from array import array

from .dfa import DFA
from .nfa import MatchEvent

__all__ = ["CompressedDFA", "compress_dfa"]

# Bytes sampled for the similarity signature: spread over the alphabet with
# a bias toward printable values, where IDS rows differ most.
_SIGNATURE_BYTES = (0, 10, 13, 32, 47, 61, 65, 90, 97, 101, 110, 115, 122, 128, 192, 255)


class CompressedDFA:
    """A DFA stored as a default-pointer forest with sparse overlays.

    ``parent[q]`` is the default state (-1 for roots); roots keep their
    dense row in ``root_rows`` (indexed by ``root_index[q]``); every other
    state stores the differing bytes in ``overlays[q]``.
    """

    def __init__(
        self,
        parent: array,
        root_index: array,
        root_rows: list[array],
        overlays: list[dict[int, int]],
        start: int,
        accepts: list[tuple[int, ...]],
        accepts_end: list[tuple[int, ...]],
    ):
        self.parent = parent
        self.root_index = root_index
        self.root_rows = root_rows
        self.overlays = overlays
        self.start = start
        self.accepts = accepts
        self.accepts_end = accepts_end

    @property
    def n_states(self) -> int:
        return len(self.overlays)

    def memory_bytes(self) -> int:
        """Dense root rows at 4 B/entry; overlay entries at 8 B (byte +
        target + bucket overhead); an 8 B header (default pointer +
        decision offset) per state."""
        dense = len(self.root_rows) * 256 * 4
        sparse = sum(len(o) for o in self.overlays) * 8
        decisions = sum(len(a) for a in self.accepts) + sum(
            len(a) for a in self.accepts_end
        )
        return dense + sparse + 8 * self.n_states + 4 * decisions

    def next_state(self, state: int, byte: int) -> int:
        overlays = self.overlays
        parent = self.parent
        current = state
        while True:
            target = overlays[current].get(byte)
            if target is not None:
                return target
            up = parent[current]
            if up < 0:
                return self.root_rows[self.root_index[current]][byte]
            current = up

    def run(self, data: bytes) -> list[MatchEvent]:
        out: list[MatchEvent] = []
        overlays = self.overlays
        parent = self.parent
        root_rows = self.root_rows
        root_index = self.root_index
        accepts = self.accepts
        state = self.start
        for pos, byte in enumerate(data):
            current = state
            while True:
                target = overlays[current].get(byte)
                if target is not None:
                    break
                up = parent[current]
                if up < 0:
                    target = root_rows[root_index[current]][byte]
                    break
                current = up
            state = target
            acc = accepts[state]
            if acc:
                for match_id in acc:
                    out.append(MatchEvent(pos, match_id))
        if data:
            for match_id in self.accepts_end[state]:
                out.append(MatchEvent(len(data) - 1, match_id))
        return out

    def scan(self, data: bytes) -> int:
        overlays = self.overlays
        parent = self.parent
        root_rows = self.root_rows
        root_index = self.root_index
        state = self.start
        for byte in data:
            current = state
            while True:
                target = overlays[current].get(byte)
                if target is not None:
                    break
                up = parent[current]
                if up < 0:
                    target = root_rows[root_index[current]][byte]
                    break
                current = up
            state = target
        return state


def compress_dfa(
    dfa: DFA,
    window: int = 12,
    max_depth: int = 8,
    min_savings: int = 64,
) -> CompressedDFA:
    """Compress ``dfa`` into a default-pointer forest.

    ``window`` is how many signature-order neighbours each state considers
    as its default; ``max_depth`` bounds default chains (the lookup cost);
    a state becomes a dense root unless a neighbour saves at least
    ``min_savings`` of its 256 entries.
    """
    if window < 1:
        raise ValueError("window must be positive")
    n = dfa.n_states
    rows = dfa.rows

    order = sorted(
        range(n), key=lambda q: tuple(rows[q][b] for b in _SIGNATURE_BYTES)
    )

    parent = array("i", [-1] * n)
    depth = array("i", [0] * n)
    overlays: list[dict[int, int]] = [dict() for _ in range(n)]
    roots: list[int] = []

    for position, q in enumerate(order):
        row = rows[q]
        best_parent = -1
        best_diff = 256 - min_savings + 1
        lo = max(0, position - window)
        for other_position in range(lo, position):
            candidate = order[other_position]
            if depth[candidate] + 1 > max_depth:
                continue
            candidate_row = rows[candidate]
            diff = 0
            limit = best_diff
            for byte in range(256):
                if row[byte] != candidate_row[byte]:
                    diff += 1
                    if diff >= limit:
                        break
            if diff < best_diff:
                best_diff = diff
                best_parent = candidate
        if best_parent < 0:
            roots.append(q)
        else:
            parent[q] = best_parent
            depth[q] = depth[best_parent] + 1
            candidate_row = rows[best_parent]
            overlays[q] = {
                byte: row[byte]
                for byte in range(256)
                if row[byte] != candidate_row[byte]
            }

    root_index = array("i", [-1] * n)
    root_rows: list[array] = []
    for q in roots:
        root_index[q] = len(root_rows)
        root_rows.append(array("i", rows[q]))

    return CompressedDFA(
        parent,
        root_index,
        root_rows,
        overlays,
        dfa.start,
        dfa.accepts,
        dfa.accepts_end,
    )
