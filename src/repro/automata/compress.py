"""Default-transition DFA compression (a D2FA/CompactDFA-style engine).

The paper's introduction frames the whole design space as "a fundamental
tradeoff between the complexity of each transition and the total memory
size needed to store the transition function".  This module implements the
classic point on that curve the related work (CompactDFA [12], D2FA) sits
at, so the benchmarks can show it next to MFA: each state carries a
*default pointer* to a similar state and stores only the bytes on which
their rows differ; lookups walk the default chain until a stored entry (or
a dense root row) answers.  Memory drops by an order of magnitude; every
byte now costs a chain walk — exactly the trade the paper argues match
filtering avoids.

Building the exact minimum-weight default forest (the D2FA space-reduction
graph) is quadratic in states; this implementation uses the standard
locality trick instead: states are sorted by a row signature so that
similar rows become neighbours, and each state picks its best default among
a window of predecessors, subject to a chain-depth bound.  Matching
behaviour is identical to the source DFA (property-tested).

Beyond the in-memory engine, the forest is a first-class *artifact tier*:
:func:`repro.core.mfa.build_mfa` attaches it at compile time
(``compress=`` / ``REPRO_COMPILE_COMPRESS``), the bundle format
serialises it (:func:`repro.automata.serialize.dumps_cdfa`), and loaders
decode it back either by :meth:`CompressedDFA.flatten` (dense again,
when memory allows) or as a :class:`ChainDFA` whose rows answer lookups
straight off the forest (the fastpath engine then runs its chain-walk
lane kernel over it).
"""

from __future__ import annotations

import os
from array import array
from typing import cast

from .dfa import DFA
from .nfa import MatchEvent

__all__ = [
    "CompressedDFA",
    "ChainDFA",
    "compress_dfa",
    "resolve_compress_option",
    "DEFAULT_CHAIN_DEPTH",
    "ARTIFACT_WINDOW",
    "COMPRESS_ENV",
]

# Bytes sampled for the similarity signature: spread over the alphabet with
# a bias toward printable values, where IDS rows differ most.
_SIGNATURE_BYTES = (0, 10, 13, 32, 47, 61, 65, 90, 97, 101, 110, 115, 122, 128, 192, 255)

# The compile-time defaults of the compressed artifact tier.  Depth 4 keeps
# worst-case lookups at five probes (four hops + the root row) — the bound
# the acceptance benchmarks gate on; window 32 is where the locality search
# stops buying much ratio for its quadratic-ish cost.
DEFAULT_CHAIN_DEPTH = 4
ARTIFACT_WINDOW = 32
COMPRESS_ENV = "REPRO_COMPILE_COMPRESS"


def resolve_compress_option(value: "bool | int | None") -> int:
    """Normalise a ``compress=`` option to a chain-depth bound (0 = off).

    ``None`` reads ``REPRO_COMPILE_COMPRESS``: unset/``0``/``off``/
    ``false`` disable, ``1``/``on``/``true`` enable at
    :data:`DEFAULT_CHAIN_DEPTH`, and any other integer is the depth bound
    itself.  ``True`` maps to the default depth; an explicit integer is
    used as-is (it must be positive).
    """
    if value is None:
        raw = os.environ.get(COMPRESS_ENV, "").strip().lower()
        if raw in ("", "0", "off", "false", "no"):
            return 0
        if raw in ("1", "on", "true", "yes"):
            return DEFAULT_CHAIN_DEPTH
        try:
            depth = int(raw)
        except ValueError:
            raise ValueError(
                f"{COMPRESS_ENV} must be a boolean flag or a chain-depth "
                f"integer, got {raw!r}"
            ) from None
        if depth < 0:
            raise ValueError(f"{COMPRESS_ENV} depth must be >= 0, got {depth}")
        return depth
    if value is True:
        return DEFAULT_CHAIN_DEPTH
    if value is False:
        return 0
    depth = int(value)
    if depth < 0:
        raise ValueError(f"compress depth must be >= 0, got {depth}")
    return depth


class CompressedDFA:
    """A DFA stored as a default-pointer forest with sparse overlays.

    ``parent[q]`` is the default state (-1 for roots); roots keep their
    dense row in ``root_rows`` (indexed by ``root_index[q]``); every other
    state stores the differing bytes in ``overlays[q]``.  ``group_of_byte``
    carries the source DFA's alphabet-compression provenance so a
    flattened copy round-trips byte-identically through
    :mod:`repro.automata.serialize`.
    """

    def __init__(
        self,
        parent: array,
        root_index: array,
        root_rows: list[array],
        overlays: list[dict[int, int]],
        start: int,
        accepts: list[tuple[int, ...]],
        accepts_end: list[tuple[int, ...]],
        group_of_byte: array | None = None,
        n_groups: int | None = None,
    ):
        self.parent = parent
        self.root_index = root_index
        self.root_rows = root_rows
        self.overlays = overlays
        self.start = start
        self.accepts = accepts
        self.accepts_end = accepts_end
        self.group_of_byte = group_of_byte
        self.n_groups = n_groups if n_groups is not None else (
            len(set(group_of_byte)) if group_of_byte is not None else None
        )

    @property
    def n_states(self) -> int:
        return len(self.overlays)

    @property
    def n_roots(self) -> int:
        return len(self.root_rows)

    @property
    def overlay_entries(self) -> int:
        return sum(len(o) for o in self.overlays)

    def chain_depth(self) -> int:
        """The longest default chain any lookup can walk (0 = all roots)."""
        parent = self.parent
        depth = [0] * self.n_states
        deepest = 0
        for q in range(self.n_states):
            hops = 0
            current = q
            while parent[current] >= 0:
                if depth[current]:
                    hops += depth[current]
                    break
                current = parent[current]
                hops += 1
            depth[q] = hops
            if hops > deepest:
                deepest = hops
        return deepest

    def memory_bytes(self) -> int:
        """The transition structures counted exactly as serialised.

        Mirrors the binary sections of
        :func:`repro.automata.serialize.dumps_cdfa` entry for entry:
        ``parent`` and ``root_index`` at 4 B/state, dense root rows at
        256 x 4 B, overlay offsets at 4 B/state (+1 sentinel), overlay
        bytes at 1 B and overlay targets at 4 B per entry — plus the usual
        4 B per decision-list id every engine's accounting includes.
        """
        n = self.n_states
        dense = self.n_roots * 256 * 4
        entries = self.overlay_entries
        decisions = sum(len(a) for a in self.accepts) + sum(
            len(a) for a in self.accepts_end
        )
        return 4 * n + 4 * n + dense + 4 * (n + 1) + 5 * entries + 4 * decisions

    def next_state(self, state: int, byte: int) -> int:
        overlays = self.overlays
        parent = self.parent
        current = state
        while True:
            target = overlays[current].get(byte)
            if target is not None:
                return target
            up = parent[current]
            if up < 0:
                return self.root_rows[self.root_index[current]][byte]
            current = up

    def run(self, data: bytes) -> list[MatchEvent]:
        out: list[MatchEvent] = []
        overlays = self.overlays
        parent = self.parent
        root_rows = self.root_rows
        root_index = self.root_index
        accepts = self.accepts
        state = self.start
        for pos, byte in enumerate(data):
            current = state
            while True:
                target = overlays[current].get(byte)
                if target is not None:
                    break
                up = parent[current]
                if up < 0:
                    target = root_rows[root_index[current]][byte]
                    break
                current = up
            state = target
            acc = accepts[state]
            if acc:
                for match_id in acc:
                    out.append(MatchEvent(pos, match_id))
        if data:
            for match_id in self.accepts_end[state]:
                out.append(MatchEvent(len(data) - 1, match_id))
        return out

    def scan(self, data: bytes) -> int:
        overlays = self.overlays
        parent = self.parent
        root_rows = self.root_rows
        root_index = self.root_index
        state = self.start
        for byte in data:
            current = state
            while True:
                target = overlays[current].get(byte)
                if target is not None:
                    break
                up = parent[current]
                if up < 0:
                    target = root_rows[root_index[current]][byte]
                    break
                current = up
            state = target
        return state

    # -- decode paths --------------------------------------------------------

    def flatten(self) -> DFA:
        """Reconstruct the dense source DFA, byte-identically.

        State numbering, decision lists and the alphabet-compression map
        are all preserved, so ``dumps_dfa(cdfa.flatten())`` reproduces the
        bytes of the DFA the forest was built from (tested).  Rows are
        materialised parents-before-children, so each one is a single copy
        plus its overlay patch.
        """
        n = self.n_states
        parent = self.parent
        rows: list[array | None] = [None] * n
        for q in range(n):
            if rows[q] is not None:
                continue
            # Walk up to the nearest materialised ancestor (or a root),
            # then patch back down.
            chain = [q]
            current = q
            while parent[current] >= 0 and rows[parent[current]] is None:
                current = parent[current]
                chain.append(current)
            top = chain[-1]
            if parent[top] < 0:
                base = array("i", self.root_rows[self.root_index[top]])
                rows[top] = base
                chain.pop()
            else:
                base = rows[parent[top]]  # type: ignore[assignment]
            for state in reversed(chain):
                patched = array("i", cast(array, rows[parent[state]]))
                for byte, target in self.overlays[state].items():
                    patched[byte] = target
                rows[state] = patched
        group = array("i", self.group_of_byte) if self.group_of_byte is not None else None
        return DFA(
            cast("list[array]", rows),
            self.start,
            self.accepts,
            self.accepts_end,
            group_of_byte=group,
            n_groups=self.n_groups,
        )

    def to_chain_dfa(self) -> "ChainDFA":
        """The zero-flatten decode path: a DFA whose rows answer off the
        forest (see :class:`ChainDFA`)."""
        return ChainDFA(self)


class _ChainRow:
    """One state's virtual dense row: ``row[byte]`` walks the forest."""

    __slots__ = ("_forest", "_state")

    def __init__(self, forest: CompressedDFA, state: int):
        self._forest = forest
        self._state = state

    def __getitem__(self, byte: int) -> int:
        return self._forest.next_state(self._state, byte)

    def __len__(self) -> int:
        return 256

    def __iter__(self):  # type: ignore[no-untyped-def]
        forest = self._forest
        state = self._state
        return (forest.next_state(state, byte) for byte in range(256))


class ChainDFA(DFA):
    """A :class:`DFA` backed by a default-pointer forest, not a dense table.

    Every ``rows[q][byte]`` access resolves through the forest's chain
    walk, so scalar engines (``MFA.feed``, the stitch pass of the fastpath
    engine, the equivalence prover) run unchanged — slower per byte, but
    without ever materialising the dense table.  The fastpath engine
    detects this class and builds its vectorized chain-walk lane kernel
    from :attr:`forest` instead of dense rows.
    """

    def __init__(self, forest: CompressedDFA):
        rows = [_ChainRow(forest, q) for q in range(forest.n_states)]
        group = array("i", forest.group_of_byte) if forest.group_of_byte is not None else None
        super().__init__(
            cast("list[array]", rows),
            forest.start,
            forest.accepts,
            forest.accepts_end,
            group_of_byte=group,
            n_groups=forest.n_groups,
        )
        self.forest = forest

    def memory_bytes(self, compressed: bool | None = None) -> int:
        """The forest's serialised accounting — the whole point of the tier."""
        return self.forest.memory_bytes()

    def scan(self, data: bytes, state: int | None = None) -> int:
        current = self.start if state is None else state
        forest = self.forest
        for byte in data:
            current = forest.next_state(current, byte)
        return current


def compress_dfa(
    dfa: DFA,
    window: int = 12,
    max_depth: int = 8,
    min_savings: int = 64,
) -> CompressedDFA:
    """Compress ``dfa`` into a default-pointer forest.

    ``window`` is how many signature-order neighbours each state considers
    as its default; ``max_depth`` bounds default chains (the lookup cost);
    a state becomes a dense root unless a neighbour saves at least
    ``min_savings`` of its 256 entries.
    """
    if window < 1:
        raise ValueError("window must be positive")
    if max_depth < 1:
        raise ValueError("max_depth must be positive")
    n = dfa.n_states
    rows = dfa.rows

    order = sorted(
        range(n), key=lambda q: tuple(rows[q][b] for b in _SIGNATURE_BYTES)
    )

    parent = array("i", [-1] * n)
    depth = array("i", [0] * n)
    overlays: list[dict[int, int]] = [dict() for _ in range(n)]
    roots: list[int] = []

    for position, q in enumerate(order):
        row = rows[q]
        best_parent = -1
        best_diff = 256 - min_savings + 1
        lo = max(0, position - window)
        for other_position in range(lo, position):
            candidate = order[other_position]
            if depth[candidate] + 1 > max_depth:
                continue
            candidate_row = rows[candidate]
            diff = 0
            limit = best_diff
            for byte in range(256):
                if row[byte] != candidate_row[byte]:
                    diff += 1
                    if diff >= limit:
                        break
            if diff < best_diff:
                best_diff = diff
                best_parent = candidate
        if best_parent < 0:
            roots.append(q)
        else:
            parent[q] = best_parent
            depth[q] = depth[best_parent] + 1
            candidate_row = rows[best_parent]
            overlays[q] = {
                byte: row[byte]
                for byte in range(256)
                if row[byte] != candidate_row[byte]
            }

    root_index = array("i", [-1] * n)
    root_rows: list[array] = []
    for q in roots:
        root_index[q] = len(root_rows)
        root_rows.append(array("i", rows[q]))

    group = array("i", dfa.group_of_byte) if dfa.group_of_byte is not None else None
    return CompressedDFA(
        parent,
        root_index,
        root_rows,
        overlays,
        dfa.start,
        dfa.accepts,
        dfa.accepts_end,
        group_of_byte=group,
        n_groups=dfa.n_groups,
    )
