"""Shared-memory artifact segments for the scan daemon.

A long-lived service must not pay one artifact copy per worker: the
compiled rule set is serialized once into a named
:class:`multiprocessing.shared_memory.SharedMemory` segment and every
worker *attaches* — the kernel maps the same physical pages into each
process.  Combined with the zero-copy bundle load path
(``loads_mfa(..., mmap=True)``), N workers share one transition-table
image regardless of N.

Segment layout (one *generation* of the rule set)::

    b"MFASHMS1\\n"
    <I header_len> header_json     # generation id + per-shard spans
    bundle bytes, concatenated     # one .mfab bundle per compile shard

Shard bundles are kept separate (rather than re-merged) so live reload
can rebuild one shard and so the loaded engine recombines through the
same :class:`repro.fastcompile.ShardedMFA` layer the batch compiler uses.

Lifetime rules: the *daemon* creates and unlinks segments; workers only
attach and close.  Engines loaded with ``mmap=True`` hold views into the
segment buffer, so a segment must outlive every engine loaded from it —
:meth:`ArtifactSegment.close` tolerates still-exported views (the
mapping then lives until process exit, which is the worker shutdown
path).

Resource-tracker note: workers are spawned by the daemon, so every
process shares the daemon's tracker (its pipe fd is inherited).  A
worker's attach re-registers the same name into the tracker's *set* (a
no-op), a SIGKILLed worker triggers no tracker action (the daemon still
holds the pipe), and the daemon's ``unlink`` unregisters exactly once.
Do NOT "fix" attachments with ``resource_tracker.unregister`` — with a
shared tracker that removes the *daemon's* entry, so a daemon crash
would leak the segment instead of letting the tracker reap it.
"""

from __future__ import annotations

import json
import secrets
import struct
from multiprocessing import shared_memory
from typing import Sequence

from ..core.mfa import MFA
from ..core.serialize import dumps_mfa, loads_mfa

__all__ = [
    "SEGMENT_MAGIC",
    "ArtifactSegment",
    "pack_bundles",
    "unpack_bundles",
    "serialize_engine",
    "load_engine_from_buffer",
]

SEGMENT_MAGIC = b"MFASHMS1\n"


def pack_bundles(bundles: Sequence[bytes], generation: int) -> bytes:
    """Frame shard bundles (plus the generation id) into one segment blob."""
    if not bundles:
        raise ValueError("a segment needs at least one shard bundle")
    spans = []
    offset = 0
    for blob in bundles:
        spans.append({"offset": offset, "length": len(blob)})
        offset += len(blob)
    header = json.dumps(
        {"generation": generation, "shards": spans}, separators=(",", ":")
    ).encode()
    return (
        SEGMENT_MAGIC
        + struct.pack("<I", len(header))
        + header
        + b"".join(bundles)
    )


def unpack_bundles(buffer: "bytes | memoryview") -> tuple[dict, list[memoryview]]:
    """Split a segment blob into its header and zero-copy bundle views."""
    view = memoryview(buffer)
    if bytes(view[: len(SEGMENT_MAGIC)]) != SEGMENT_MAGIC:
        raise ValueError("not an artifact segment (bad magic)")
    offset = len(SEGMENT_MAGIC)
    (header_len,) = struct.unpack_from("<I", view, offset)
    offset += 4
    header = json.loads(bytes(view[offset : offset + header_len]))
    offset += header_len
    views = []
    for span in header["shards"]:
        start = offset + span["offset"]
        part = view[start : start + span["length"]]
        if len(part) != span["length"]:
            raise ValueError("truncated artifact segment")
        views.append(part)
    return header, views


def serialize_engine(engine: object) -> list[bytes]:
    """The per-shard ``.mfab`` bundles of a servable engine.

    Serves only MFA-backed engines: a plain :class:`MFA` is one shard, a
    :class:`~repro.fastcompile.shards.ShardedMFA` contributes one bundle
    per shard.  Fallback engines (Hybrid-FA, NFA) have no serialized
    form, so a degraded shard cannot be served — the error says so
    rather than silently serving the wrong thing.
    """
    if isinstance(engine, MFA):
        return [dumps_mfa(engine)]
    shards = getattr(engine, "shards", None)
    if shards is not None:
        out = []
        for index, shard in enumerate(shards):
            if not isinstance(shard, MFA):
                raise TypeError(
                    f"shard {index} is a {type(shard).__name__}, not an MFA; "
                    "only MFA shards are servable (recompile with a larger "
                    "budget or drop the degraded rules)"
                )
            out.append(dumps_mfa(shard))
        return out
    raise TypeError(f"cannot serve a {type(engine).__name__} engine")


def load_engine_from_buffer(
    buffer: "bytes | memoryview",
    engine: str = "mfa",
    mmap: bool = True,
    prefilter: str | None = None,
) -> object:
    """Build a runnable engine over a segment buffer, copy-free by default.

    ``engine="fastpath"`` wraps each shard in the lockstep batch engine
    (its derived numpy tables are per-process working state, not artifact
    copies); ``prefilter`` ("on"/"off"/"auto", default env-resolved) is
    its required-literal prefilter mode.  With ``mmap=True`` the returned
    engine references the buffer — keep the segment open for as long as
    the engine lives.

    Compressed bundles (``MFADFA2`` DFA sections, ``ServeConfig.compress``)
    stay zero-copy in the *segment*: every worker maps the same small
    compressed image and decodes per-process — flatten or chain-walk, per
    ``REPRO_DECODE``/``REPRO_DECODE_BUDGET`` — into private working
    tables, so the shared artifact footprint is the compressed size.
    """
    _header, views = unpack_bundles(buffer)
    mfas = [loads_mfa(view, mmap=mmap) for view in views]
    shards: list[object] = list(mfas)
    if engine == "fastpath":
        from ..fastpath.engine import build_fastpath

        shards = [build_fastpath(mfa, prefilter=prefilter) for mfa in mfas]
    elif engine != "mfa":
        raise ValueError(f"unknown serve engine {engine!r}; have mfa, fastpath")
    if len(shards) == 1:
        return shards[0]
    from ..fastcompile.shards import ShardedMFA

    return ShardedMFA(shards)


class ArtifactSegment:
    """One generation of the rule set, resident in shared memory."""

    def __init__(self, shm: shared_memory.SharedMemory, generation: int, owner: bool):
        self._shm = shm
        self.generation = generation
        self.owner = owner
        self.size = shm.size

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buffer(self) -> memoryview:
        return self._shm.buf

    @classmethod
    def create(
        cls, bundles: Sequence[bytes], generation: int, name: str | None = None
    ) -> "ArtifactSegment":
        """Pack shard bundles into a fresh named segment (daemon side)."""
        blob = pack_bundles(bundles, generation)
        if name is None:
            name = f"repro-serve-{secrets.token_hex(6)}"
        shm = shared_memory.SharedMemory(name=name, create=True, size=len(blob))
        shm.buf[: len(blob)] = blob
        return cls(shm, generation, owner=True)

    @classmethod
    def attach(cls, name: str) -> "ArtifactSegment":
        """Attach to an existing segment by name (worker side)."""
        shm = shared_memory.SharedMemory(name=name)
        header, _views = unpack_bundles(shm.buf)
        return cls(shm, int(header["generation"]), owner=False)

    def load_engine(
        self, engine: str = "mfa", mmap: bool = True, prefilter: str | None = None
    ) -> object:
        return load_engine_from_buffer(
            self._shm.buf, engine=engine, mmap=mmap, prefilter=prefilter
        )

    def close(self) -> None:
        """Drop this process's mapping (tolerates still-exported views)."""
        try:
            self._shm.close()
        except BufferError:
            # An engine loaded with mmap=True still holds views.  The
            # mapping then lives until the process exits — the normal
            # worker shutdown path — rather than crashing the close.
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only; attached mappings stay valid)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - double unlink
            pass
