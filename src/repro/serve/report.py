"""Health and degradation accounting for the scan daemon.

:class:`ServeReport` extends the batch :class:`~repro.robust.report.ScanReport`
with the serving-side story: per-worker throughput, restart and shed
counters, reload history and the active artifact generation.  It is the
single health surface — queryable live over the control socket, dumped
as JSON on SIGTERM, and asserted on by the soak tests.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Iterable

from ..robust.report import ScanReport
from ..traffic.flows import FlowMatch

__all__ = ["WorkerStats", "ReloadEvent", "ServeReport", "canonical_stream"]


@dataclass(slots=True)
class WorkerStats:
    """One worker slot's lifetime counters (across restarts)."""

    worker_id: int
    pid: int | None = None
    generation: int = 0
    flows: int = 0
    bytes_scanned: int = 0
    alerts: int = 0
    restarts: int = 0
    busy_seconds: float = 0.0
    load_seconds: float = 0.0
    last_error: str | None = None

    @property
    def throughput_bps(self) -> float:
        """Payload bytes per second of actual scan time (not wall time)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.bytes_scanned / self.busy_seconds


@dataclass(frozen=True, slots=True)
class ReloadEvent:
    """One live rule reload: what was rebuilt and how long the swap took."""

    generation: int
    shards_rebuilt: int
    shards_cached: int
    seconds: float
    drained: bool = True


@dataclass(slots=True)
class ServeReport(ScanReport):
    """Everything a batch scan reports, plus the daemon's service health."""

    workers: list[WorkerStats] = field(default_factory=list)
    reloads: list[ReloadEvent] = field(default_factory=list)
    generation: int = 0
    n_workers: int = 0
    flows_shed: int = 0
    flows_quarantined: int = 0
    restarts: int = 0
    hangs: int = 0
    uptime_seconds: float = 0.0
    # Exceptions swallowed by the daemon's own threads (collector /
    # supervisor) to stay alive — never fatal, never silent.
    internal_errors: list[str] = field(default_factory=list)

    # Explicit base-class calls: zero-arg super() is broken inside
    # @dataclass(slots=True) methods (slots recreates the class, so the
    # compiler's __class__ cell points at the discarded original).

    @property
    def degraded(self) -> bool:  # type: ignore[override]
        return bool(
            ScanReport.degraded.fget(self)  # type: ignore[attr-defined]
            or self.flows_shed
            or self.flows_quarantined
            or self.restarts
        )

    def to_dict(self) -> dict:
        doc = ScanReport.to_dict(self)
        doc.update(
            {
                "generation": self.generation,
                "n_workers": self.n_workers,
                "flows_shed": self.flows_shed,
                "flows_quarantined": self.flows_quarantined,
                "restarts": self.restarts,
                "hangs": self.hangs,
                "uptime_seconds": self.uptime_seconds,
                "internal_errors": list(self.internal_errors),
                "workers": [
                    dict(asdict(w), throughput_bps=w.throughput_bps)
                    for w in self.workers
                ],
                "reloads": [asdict(r) for r in self.reloads],
            }
        )
        return doc

    def describe(self) -> list[str]:
        lines = ScanReport.describe(self)
        lines.append(
            f"serve: generation {self.generation}, {self.n_workers} worker(s), "
            f"{self.restarts} restart(s) ({self.hangs} hang(s)), "
            f"{self.flows_shed} shed, {self.flows_quarantined} quarantined, "
            f"{len(self.reloads)} reload(s), up {self.uptime_seconds:.1f}s"
        )
        for w in self.workers:
            mbps = w.throughput_bps / 1e6
            lines.append(
                f"  worker {w.worker_id}: {w.flows} flows, "
                f"{w.bytes_scanned} B ({mbps:.1f} MB/s), {w.alerts} alerts, "
                f"{w.restarts} restart(s), gen {w.generation}"
                + (f", last error: {w.last_error}" if w.last_error else "")
            )
        for r in self.reloads:
            lines.append(
                f"  reload -> gen {r.generation}: {r.shards_rebuilt} shard(s) "
                f"rebuilt, {r.shards_cached} cached, {r.seconds * 1e3:.1f} ms"
                + ("" if r.drained else " (old generation not fully drained)")
            )
        return lines


def canonical_stream(alerts: Iterable[FlowMatch]) -> list[tuple]:
    """A deterministic rendering of a match stream for cross-run diffs.

    Workers complete flows in nondeterministic order, but each flow's
    events are deterministic, so sorting by (flow key, position,
    match id) yields a stream that is byte-identical between the daemon
    and a single-process :func:`~repro.robust.pipeline.resilient_scan`
    of the same traffic.
    """
    return sorted(
        (
            alert.key.proto,
            alert.key.src_ip,
            alert.key.src_port,
            alert.key.dst_ip,
            alert.key.dst_port,
            alert.event.pos,
            alert.event.match_id,
        )
        for alert in alerts
    )
