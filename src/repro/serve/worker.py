"""The scan worker process: attach, scan, heartbeat, swap generations.

A worker owns no artifact — it attaches to the supervisor's shared-memory
segment and builds its engine over zero-copy table views.  The loop is a
strict message protocol on two queues:

inbound (work queue)
    ``("flow", flow_id, key, payload)`` — scan one reassembled flow;
    ``("reload", segment_name, generation)`` — attach the new segment and
    swap engines (flows queued *before* the marker drained on the old
    generation, which is what makes reload torn-artifact-free);
    ``("stop",)`` — graceful exit.

outbound (this worker's private result pipe)
    ``("ready", worker_id, generation, load_seconds)``;
    ``("done", worker_id, flow_id, generation, events, n_bytes, seconds)``;
    ``("poisoned", worker_id, flow_id, generation, error)``;
    ``("reloaded", worker_id, generation)``.

Results are *atomic per flow*: a worker reports a flow only after the
whole payload scanned, so a crash mid-flow loses only messages that were
never sent — the supervisor re-dispatches from its own ledger and the
aggregate stream stays exactly-once.

Liveness is a heartbeat timestamp (updated between flows — never inside
a scan, so a poison-flow infinite loop goes stale and is detected) plus
an ``active_flow`` slot naming the flow being scanned, which is how the
supervisor attributes a crash or hang to the flow that caused it.

Deterministic fault hooks (``faults=True`` in the config, used by the
robustness tests and the soak driver) interpret a magic payload prefix:
``CRASH`` SIGKILLs the worker mid-flow, ``HANG`` spins past any
heartbeat timeout, ``RAISE`` throws inside the scan.  They are the
daemon-level analogue of :mod:`repro.robust.faults` and are inert unless
explicitly enabled.
"""

from __future__ import annotations

import os
import queue as queue_module
import signal
import time

from .shm import ArtifactSegment

__all__ = ["FAULT_PREFIX", "fault_payload", "worker_main"]

# Payload prefix of the deterministic in-band fault hooks.  NUL-led so no
# text rule ever matches it by accident.
FAULT_PREFIX = b"\x00\x00REPRO-FAULT:"

_IDLE_POLL_SECONDS = 0.1


def fault_payload(kind: str, filler: bytes = b"") -> bytes:
    """Build a payload that triggers a worker fault hook (tests/soak)."""
    return FAULT_PREFIX + kind.encode() + b";" + filler


def _maybe_inject_fault(payload: bytes) -> None:
    if not payload.startswith(FAULT_PREFIX):
        return
    kind = payload[len(FAULT_PREFIX) :].split(b";", 1)[0]
    if kind == b"CRASH":
        os.kill(os.getpid(), signal.SIGKILL)
    if kind == b"HANG":
        while True:  # heartbeat goes stale; the supervisor kills us
            time.sleep(0.5)
    if kind == b"RAISE":
        raise RuntimeError("injected fault: poison flow")


def worker_main(
    worker_id: int,
    segment_name: str,
    generation: int,
    work_queue,
    result_conn,
    heartbeat,
    active_flow,
    config: dict,
) -> None:
    """Entry point of one worker process (spawned by the supervisor)."""
    # The supervisor owns shutdown; a stray ^C in the parent's terminal —
    # or a SIGTERM delivered to the whole process group, which is what
    # systemd and `timeout` do — must not kill workers before their
    # queues drain.  Workers exit on the in-band ("stop",) marker.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    engine_kind = config.get("engine", "mfa")
    prefilter = config.get("prefilter", "auto")
    faults = bool(config.get("faults", False))

    tick = time.perf_counter()
    segment = ArtifactSegment.attach(segment_name)
    engine = segment.load_engine(engine_kind, prefilter=prefilter)
    load_seconds = time.perf_counter() - tick
    heartbeat[worker_id] = time.time()
    active_flow[worker_id] = -1
    result_conn.send(("ready", worker_id, generation, load_seconds))

    while True:
        try:
            item = work_queue.get(timeout=_IDLE_POLL_SECONDS)
        except queue_module.Empty:
            heartbeat[worker_id] = time.time()
            continue
        kind = item[0]
        if kind == "stop":
            break
        if kind == "reload":
            _, new_name, new_generation = item
            new_segment = ArtifactSegment.attach(new_name)
            # Load the new engine *before* dropping the old one — a bad
            # segment must not leave the worker engineless.  Swap order
            # matters after that: release the old engine (and its table
            # views) before closing the old segment, so the close is a
            # real detach rather than a leaked mapping; the dels keep no
            # stray local alive holding buffer views.
            engine = new_segment.load_engine(engine_kind, prefilter=prefilter)
            old_segment, segment = segment, new_segment
            del new_segment
            generation = new_generation
            old_segment.close()
            del old_segment
            heartbeat[worker_id] = time.time()
            result_conn.send(("reloaded", worker_id, generation))
            continue
        _, flow_id, _key, payload = item
        heartbeat[worker_id] = time.time()
        active_flow[worker_id] = flow_id
        tick = time.perf_counter()
        try:
            if faults:
                _maybe_inject_fault(payload)
            events = engine.run(payload)  # type: ignore[attr-defined]
        except Exception as exc:  # noqa: BLE001 - per-flow isolation
            active_flow[worker_id] = -1
            heartbeat[worker_id] = time.time()
            result_conn.send(
                (
                    "poisoned",
                    worker_id,
                    flow_id,
                    generation,
                    f"{type(exc).__name__}: {exc}",
                )
            )
            continue
        seconds = time.perf_counter() - tick
        active_flow[worker_id] = -1
        heartbeat[worker_id] = time.time()
        result_conn.send(
            (
                "done",
                worker_id,
                flow_id,
                generation,
                [(event.pos, event.match_id) for event in events],
                len(payload),
                seconds,
            )
        )

    engine = None  # release table views before detaching
    segment.close()
    result_conn.close()
