"""The long-lived scan service: shared artifacts, supervised workers.

``repro.serve`` turns the batch pipeline into a daemon: the compiled
rule set lives in one shared-memory segment that N supervised worker
processes map copy-free, ingress is bounded with explicit backpressure,
worker death/hang is detected and restarted with backoff (the offending
flow quarantined), and rules reload live — only changed shards
recompile, and the artifact generation swaps without a torn read.
Health is a :class:`ServeReport`, queryable over a control socket.
"""

from .control import ControlServer, control_request
from .daemon import ScanDaemon, ServeConfig, serve_scan
from .report import ReloadEvent, ServeReport, WorkerStats, canonical_stream
from .shm import ArtifactSegment, pack_bundles, serialize_engine, unpack_bundles
from .worker import FAULT_PREFIX, fault_payload

__all__ = [
    "ScanDaemon",
    "ServeConfig",
    "serve_scan",
    "ControlServer",
    "control_request",
    "ServeReport",
    "WorkerStats",
    "ReloadEvent",
    "canonical_stream",
    "ArtifactSegment",
    "pack_bundles",
    "unpack_bundles",
    "serialize_engine",
    "FAULT_PREFIX",
    "fault_payload",
]
