"""The long-lived scan daemon: supervisor, bounded ingress, live reload.

:class:`ScanDaemon` turns the batch pipeline into a service:

* the rule set compiles once (per-shard, through the
  :class:`~repro.fastpath.cache.ArtifactCache`) and lives in a shared
  memory :class:`~repro.serve.shm.ArtifactSegment` that every worker
  maps copy-free;
* N supervised worker processes scan whole reassembled flows; the
  supervisor detects death (crash), hangs (heartbeat timeout — the
  poison-loop case) and restarts the slot with exponential backoff,
  re-dispatching the dead worker's undone flows and quarantining a flow
  that keeps killing workers;
* ingress is bounded: each worker slot accepts at most ``queue_depth``
  outstanding flows, and a full daemon either blocks the submitter
  (backpressure, the default) or sheds the flow with an explicit counter
  — there is no unbounded queue and no silent drop anywhere;
* :meth:`reload` recompiles only the shards whose rules changed (cache
  hits for the rest), publishes a new segment generation, and swaps it
  in-band so every in-flight flow drains on the generation it started
  on — no flow ever observes a torn artifact;
* :meth:`status` returns a live :class:`~repro.serve.report.ServeReport`
  and :meth:`stop` is the graceful-shutdown contract (drain, reap,
  unlink, final report).

Match delivery is *exactly-once* per flow: workers report whole-flow
results atomically, the supervisor's ledger re-dispatches anything
unreported after a death, and a late duplicate result (sent in the race
between a report and a crash) is discarded by flow id.
"""

from __future__ import annotations

import multiprocessing
import threading
import time
from multiprocessing import connection as mp_connection
from collections import OrderedDict
from dataclasses import dataclass
from io import BytesIO
from os import PathLike
from typing import BinaryIO, Iterable, Sequence

from ..automata.dfa import DEFAULT_STATE_BUDGET
from ..automata.nfa import MatchEvent
from ..core.compiler import compile_patterns
from ..core.splitter import SplitterOptions
from ..fastcompile.shards import compile_shards, partition_patterns
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions
from ..traffic.flows import FiveTuple, Flow, FlowAssembler, FlowLimits, FlowMatch, Packet
from ..traffic.pcap import read_pcap
from .report import ReloadEvent, ServeReport, WorkerStats
from .shm import ArtifactSegment, serialize_engine

__all__ = ["ServeConfig", "ScanDaemon", "serve_scan"]

_TICK_SECONDS = 0.05


@dataclass(frozen=True, slots=True)
class ServeConfig:
    """Service-side knobs (compile-side knobs ride on the constructor).

    ``queue_depth`` bounds outstanding flows per worker; ``shed=True``
    turns backpressure blocking into counted load-shedding.
    ``hang_timeout`` is how stale a busy worker's heartbeat may go before
    the supervisor declares a hang — it must exceed the worst honest
    single-flow scan time.  ``max_flow_kills`` is the quarantine
    threshold: a flow that has killed that many workers is abandoned
    (counted and attributed) instead of retried forever.  ``faults``
    arms the deterministic in-payload fault hooks of
    :mod:`repro.serve.worker` (tests and soak only).
    """

    workers: int = 2
    engine: str = "mfa"
    # Prefilter disposition for fastpath workers ("on"/"off"/"auto"); the
    # mfa engine ignores it.  Recorded in the ServeReport either way.
    prefilter: str = "auto"
    # Default-transition compression of the shared-memory bundles: a
    # chain-depth bound (0 = dense).  Workers map the compressed image
    # zero-copy and decode per-worker (flatten or chain-walk per
    # REPRO_DECODE), so N workers share one small artifact segment.
    compress: int = 0
    queue_depth: int = 8
    shed: bool = False
    hang_timeout: float = 30.0
    max_flow_kills: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    backoff_reset: float = 30.0
    ready_timeout: float = 60.0
    reload_timeout: float = 30.0
    faults: bool = False
    start_method: str = "spawn"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        if self.engine not in ("mfa", "fastpath"):
            raise ValueError(f"unknown serve engine {self.engine!r}")
        if self.prefilter not in ("on", "off", "auto"):
            raise ValueError(f"unknown prefilter mode {self.prefilter!r}")
        if self.compress < 0:
            raise ValueError("compress chain depth must be >= 0")


class _Slot:
    """One supervised worker position (stable across restarts)."""

    __slots__ = (
        "worker_id",
        "process",
        "queue",
        "assigned",
        "generation",
        "ready",
        "respawn_at",
        "consecutive_kills",
        "last_death",
        "stats",
        "result_recv",
    )

    def __init__(self, worker_id: int) -> None:
        self.worker_id = worker_id
        self.process = None
        self.queue = None
        # flow_id -> None, in dispatch order; the re-dispatch ledger.
        self.assigned: "OrderedDict[int, None]" = OrderedDict()
        self.generation = 0
        self.ready = False
        self.respawn_at: float | None = None
        self.consecutive_kills = 0
        self.last_death = 0.0
        self.stats = WorkerStats(worker_id)
        # The daemon-side end of this worker's private result pipe.
        # Results deliberately do NOT ride a shared multiprocessing.Queue:
        # its write side is guarded by a cross-process lock, and a worker
        # SIGKILLed mid-put would leave that lock held forever, wedging
        # every other worker's results.  One single-writer pipe per
        # worker means a kill can only sever that worker's own stream.
        self.result_recv = None


class ScanDaemon:
    """Compile once, serve forever: the supervised multi-process matcher."""

    def __init__(
        self,
        rules: Sequence[str | Pattern],
        shards: int = 1,
        config: ServeConfig | None = None,
        cache=None,
        splitter_options: SplitterOptions | None = None,
        parser_options: ParserOptions | None = None,
        state_budget: int = DEFAULT_STATE_BUDGET,
        engine: object | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.rules = list(rules)
        self.shards = max(1, shards)
        self.cache = cache
        self.splitter_options = splitter_options
        self.parser_options = parser_options
        self.state_budget = state_budget
        self._prebuilt = engine
        self.report = ServeReport(n_workers=self.config.workers)
        self.alerts: list[FlowMatch] = []
        self._ctx = multiprocessing.get_context(self.config.start_method)
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._slots = [_Slot(i) for i in range(self.config.workers)]
        # Result pipes of dead workers, kept until their buffered final
        # messages are drained to EOF by the collector.
        self._draining_conns: list = []
        self._heartbeat = None
        self._active_flow = None
        self._segment: ArtifactSegment | None = None
        self._retired: list[ArtifactSegment] = []
        self._generation = 0
        self._next_flow_id = 0
        # flow_id -> (slot_id, key, payload): everything submitted and
        # not yet completed/poisoned/quarantined.
        self._inflight: dict[int, tuple[int, FiveTuple, bytes]] = {}
        self._kill_counts: dict[int, int] = {}
        self._submitted = 0
        self._completed = 0
        self._running = False
        self._threads: list[threading.Thread] = []
        self._started_at = 0.0

    # -- compile and segment construction ------------------------------------

    def _compile_bundles(self, rules: Sequence[str | Pattern]) -> tuple[list[bytes], int, int]:
        """Per-shard bundles for a rule list, through the artifact cache.

        Returns ``(bundles, rebuilt, cached)``.  Any shard failure
        propagates — the daemon's contract is a servable MFA per shard;
        degraded serving is the batch pipeline's job.
        """
        patterns = compile_patterns(list(rules), self.parser_options)
        shard_patterns = partition_patterns(patterns, self.shards)
        builds = compile_shards(
            shard_patterns,
            self.splitter_options,
            self.parser_options,
            state_budget=self.state_budget,
            cache=self.cache,
            compress=self.config.compress,
        )
        for build in builds:
            if build.error is not None:
                raise build.error
        bundles = [serialize_engine(build.engine)[0] for build in builds]
        rebuilt = sum(1 for build in builds if not build.cached)
        cached = sum(1 for build in builds if build.cached)
        return bundles, rebuilt, cached

    def _worker_config(self) -> dict:
        return {
            "engine": self.config.engine,
            "prefilter": self.config.prefilter,
            "faults": self.config.faults,
        }

    def _spawn_locked(self, slot: _Slot) -> None:
        """(Re)start one worker slot against the current generation."""
        assert self._segment is not None
        slot.queue = self._ctx.Queue()
        slot.generation = self._generation
        slot.ready = False
        slot.respawn_at = None
        if slot.result_recv is not None:
            # The dead worker's pipe may still hold final messages; the
            # collector drains it to EOF before closing it.
            self._draining_conns.append(slot.result_recv)
            slot.result_recv = None
        result_recv, result_send = self._ctx.Pipe(duplex=False)
        slot.result_recv = result_recv
        # Re-dispatch the ledger: everything assigned to this slot that
        # never reported lands in the fresh queue, oldest first.
        for flow_id in slot.assigned:
            _slot_id, key, payload = self._inflight[flow_id]
            slot.queue.put(("flow", flow_id, key, payload))
        process = self._ctx.Process(
            target=_worker_entry,
            args=(
                slot.worker_id,
                self._segment.name,
                self._generation,
                slot.queue,
                result_send,
                self._heartbeat,
                self._active_flow,
                self._worker_config(),
            ),
            daemon=True,
        )
        process.start()
        # Close the daemon's copy of the send end: the worker now holds
        # the only writer, so its death EOFs the pipe.
        result_send.close()
        slot.process = process
        self._heartbeat[slot.worker_id] = time.time()
        self._active_flow[slot.worker_id] = -1
        slot.stats.pid = process.pid
        slot.stats.generation = self._generation

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ScanDaemon":
        if self._running:
            raise RuntimeError("daemon already started")
        if self._prebuilt is not None:
            bundles = serialize_engine(self._prebuilt)
            self.shards = len(bundles)
        else:
            bundles, _rebuilt, _cached = self._compile_bundles(self.rules)
        self._generation = 1
        self._segment = ArtifactSegment.create(bundles, self._generation)
        self._heartbeat = self._ctx.Array("d", self.config.workers, lock=False)
        self._active_flow = self._ctx.Array("q", self.config.workers, lock=False)
        self._running = True
        self._started_at = time.time()
        self.report.generation = self._generation
        if self.config.engine == "fastpath":
            # Workers build their engines process-locally; mirror the
            # disposition they will resolve so status() can report it.
            from ..core.serialize import BUNDLE_MAGIC
            from ..fastpath import HAVE_NUMPY

            self.report.prefilter_mode = self.config.prefilter
            self.report.prefilter_active = bool(
                HAVE_NUMPY
                and self.config.prefilter != "off"
                and any(not blob.startswith(BUNDLE_MAGIC) for blob in bundles)
            )
        with self._lock:
            for slot in self._slots:
                self._spawn_locked(slot)
        collector = threading.Thread(target=self._collect_loop, daemon=True)
        supervisor = threading.Thread(target=self._supervise_loop, daemon=True)
        self._threads = [collector, supervisor]
        collector.start()
        supervisor.start()
        self._wait_ready()
        return self

    def _wait_ready(self) -> None:
        deadline = time.time() + self.config.ready_timeout
        with self._cond:
            while not all(slot.ready for slot in self._slots):
                remaining = deadline - time.time()
                if remaining <= 0:
                    raise TimeoutError("workers failed to become ready")
                self._cond.wait(min(remaining, 0.2))

    def worker_pids(self) -> list[int | None]:
        with self._lock:
            return [
                slot.process.pid if slot.process is not None else None
                for slot in self._slots
            ]

    # -- ingress ---------------------------------------------------------------

    def submit(self, key: FiveTuple, payload: bytes, timeout: float | None = None) -> bool:
        """Queue one reassembled flow; returns False when it was shed.

        With ``shed=False`` (default) a full daemon *blocks* the caller —
        explicit backpressure — until a slot frees or ``timeout``
        expires (then the flow is shed and counted).  With ``shed=True``
        a full daemon sheds immediately.
        """
        if not self._running:
            raise RuntimeError("daemon is not running")
        if not payload:
            return True
        deadline = None if timeout is None else time.time() + timeout
        with self._cond:
            while True:
                slot = self._pick_slot_locked()
                if slot is not None:
                    break
                if self.config.shed:
                    self._shed_locked(key)
                    return False
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.time()
                    if remaining <= 0:
                        self._shed_locked(key)
                        return False
                self._cond.wait(0.2 if remaining is None else min(remaining, 0.2))
                if not self._running:
                    raise RuntimeError("daemon stopped while submitting")
            flow_id = self._next_flow_id
            self._next_flow_id += 1
            self._inflight[flow_id] = (slot.worker_id, key, payload)
            slot.assigned[flow_id] = None
            self._submitted += 1
            slot.queue.put(("flow", flow_id, key, payload))
        return True

    def _pick_slot_locked(self) -> _Slot | None:
        best = None
        for slot in self._slots:
            if slot.queue is None:  # dead, awaiting respawn
                continue
            if len(slot.assigned) >= self.config.queue_depth:
                continue
            if best is None or len(slot.assigned) < len(best.assigned):
                best = slot
        return best

    def _shed_locked(self, key: FiveTuple) -> None:
        self.report.flows_shed += 1
        self.report.dispatch.errors.append((key, "shed: ingress queues full"))

    def drain(self, timeout: float = 60.0) -> None:
        """Block until every submitted flow has been accounted for."""
        deadline = time.time() + timeout
        with self._cond:
            while self._completed < self._submitted:
                remaining = deadline - time.time()
                if remaining <= 0:
                    raise TimeoutError(
                        f"drain timed out with {self._submitted - self._completed} "
                        "flows outstanding"
                    )
                self._cond.wait(min(remaining, 0.2))

    # -- result collection -----------------------------------------------------

    def _collect_loop(self) -> None:
        """Drain every worker's private result pipe (the only reader).

        Pipes, not a shared queue: see :class:`_Slot.result_recv`.  A
        dead worker's pipe stays in the wait set until its buffered final
        messages have been recv'd and EOF reached — so results a worker
        managed to send before dying are never discarded.
        """
        while True:
            with self._lock:
                conns = [
                    slot.result_recv
                    for slot in self._slots
                    if slot.result_recv is not None
                ]
                conns.extend(self._draining_conns)
            if not conns:
                if not self._running:
                    return
                time.sleep(_TICK_SECONDS)
                continue
            try:
                ready = mp_connection.wait(conns, timeout=0.1)
            except OSError:
                continue
            for conn in ready:
                self._drain_conn(conn)

    def _drain_conn(self, conn) -> None:
        """Dispatch every complete message buffered in one pipe."""
        while True:
            try:
                if not conn.poll(0):
                    return
                message = conn.recv()
            except EOFError:
                self._retire_conn(conn, error=None)
                return
            except Exception as exc:  # noqa: BLE001 - a frame truncated by
                # SIGKILL mid-send; the flow it reported stays in the
                # ledger and re-dispatches when the death is handled.
                self._retire_conn(conn, error=exc)
                return
            try:
                kind = message[0]
                with self._cond:
                    if kind == "done":
                        self._on_done(*message[1:])
                    elif kind == "poisoned":
                        self._on_poisoned(*message[1:])
                    elif kind == "ready":
                        self._on_ready(*message[1:])
                    elif kind == "reloaded":
                        self._on_reloaded(*message[1:])
                    self._cond.notify_all()
            except Exception as exc:  # noqa: BLE001 - a malformed message
                # must not kill the collector: that stalls every drain.
                self._record_thread_error("collector", exc)

    def _retire_conn(self, conn, error: Exception | None) -> None:
        """A pipe reached EOF (worker gone) or broke: close and forget it."""
        with self._lock:
            try:
                conn.close()
            except OSError:
                pass
            if conn in self._draining_conns:
                self._draining_conns.remove(conn)
            for slot in self._slots:
                if slot.result_recv is conn:
                    slot.result_recv = None
            if error is not None:
                self.report.internal_errors.append(
                    f"collector: result pipe broke: {type(error).__name__}: {error}"
                )

    def _on_ready(self, worker_id: int, generation: int, load_seconds: float) -> None:
        slot = self._slots[worker_id]
        slot.ready = True
        slot.generation = max(slot.generation, generation)
        slot.stats.generation = slot.generation
        slot.stats.load_seconds = load_seconds

    def _on_reloaded(self, worker_id: int, generation: int) -> None:
        slot = self._slots[worker_id]
        slot.generation = max(slot.generation, generation)
        slot.stats.generation = slot.generation

    def _finish_flow_locked(self, flow_id: int) -> tuple[FiveTuple, bytes] | None:
        """Retire one flow from the ledger; None when already retired."""
        info = self._inflight.pop(flow_id, None)
        if info is None:
            return None  # duplicate report after a crash re-dispatch
        slot_id, key, payload = info
        self._slots[slot_id].assigned.pop(flow_id, None)
        self._kill_counts.pop(flow_id, None)
        self._completed += 1
        return key, payload

    def _on_done(
        self,
        worker_id: int,
        flow_id: int,
        generation: int,
        events: list[tuple[int, int]],
        n_bytes: int,
        seconds: float,
    ) -> None:
        info = self._finish_flow_locked(flow_id)
        if info is None:
            return
        key, _payload = info
        stats = self._slots[worker_id].stats
        stats.flows += 1
        stats.bytes_scanned += n_bytes
        stats.alerts += len(events)
        stats.busy_seconds += seconds
        stats.generation = max(stats.generation, generation)
        self.report.n_flows += 1
        for pos, match_id in events:
            self.alerts.append(FlowMatch(key, MatchEvent(pos, match_id)))
        self.report.n_alerts = len(self.alerts)

    def _on_poisoned(
        self, worker_id: int, flow_id: int, generation: int, error: str
    ) -> None:
        info = self._finish_flow_locked(flow_id)
        if info is None:
            return
        key, _payload = info
        self.report.n_flows += 1
        self.report.dispatch.flows_poisoned += 1
        self.report.dispatch.errors.append((key, f"engine error: {error}"))
        self._slots[worker_id].stats.last_error = error

    # -- supervision -----------------------------------------------------------

    def _supervise_loop(self) -> None:
        while self._running:
            try:
                self._supervise_tick()
            except Exception as exc:  # noqa: BLE001 - a supervisor death
                # would silently end restarts and hang detection; record
                # and keep ticking instead.
                self._record_thread_error("supervisor", exc)
            time.sleep(_TICK_SECONDS)

    def _supervise_tick(self) -> None:
        now = time.time()
        with self._cond:
            for slot in self._slots:
                process = slot.process
                if process is None:
                    if slot.respawn_at is not None and now >= slot.respawn_at:
                        self._spawn_locked(slot)
                    continue
                if not process.is_alive():
                    self._on_death_locked(slot, hang=False)
                    continue
                if (
                    self._active_flow[slot.worker_id] >= 0
                    and now - self._heartbeat[slot.worker_id]
                    > self.config.hang_timeout
                ):
                    process.kill()
                    process.join(timeout=5.0)
                    self._on_death_locked(slot, hang=True)
            self._cond.notify_all()

    def _record_thread_error(self, where: str, exc: Exception) -> None:
        with self._lock:
            self.report.internal_errors.append(f"{where}: {type(exc).__name__}: {exc}")

    def _on_death_locked(self, slot: _Slot, hang: bool) -> None:
        """Account a dead worker, blame its active flow, schedule respawn."""
        now = time.time()
        exitcode = slot.process.exitcode if slot.process is not None else None
        slot.process = None
        slot.ready = False
        if slot.queue is not None:
            # Abandon the dead worker's queue: its feeder thread may be
            # wedged in a pipe write nobody will ever read (the reader
            # was SIGKILLed), so skip the join-at-exit or the whole
            # process hangs in multiprocessing's atexit finalizer.
            slot.queue.cancel_join_thread()
            slot.queue.close()
        slot.queue = None  # unread items re-dispatch from the ledger
        self.report.restarts += 1
        slot.stats.restarts += 1
        if hang:
            self.report.hangs += 1
            slot.stats.last_error = "hang: heartbeat timeout"
        else:
            slot.stats.last_error = f"worker died (exit {exitcode})"
        active = int(self._active_flow[slot.worker_id])
        self._active_flow[slot.worker_id] = -1
        if active >= 0 and active in self._inflight:
            kills = self._kill_counts.get(active, 0) + 1
            self._kill_counts[active] = kills
            if kills >= self.config.max_flow_kills:
                key, _payload = self._finish_flow_locked(active)
                self.report.n_flows += 1
                self.report.flows_quarantined += 1
                self.report.dispatch.flows_poisoned += 1
                self.report.dispatch.errors.append(
                    (key, f"quarantined after killing {kills} worker(s)")
                )
        # Exponential backoff, reset after a quiet spell.
        if now - slot.last_death > self.config.backoff_reset:
            slot.consecutive_kills = 0
        slot.last_death = now
        delay = min(
            self.config.backoff_cap,
            self.config.backoff_base * (2**slot.consecutive_kills),
        )
        slot.consecutive_kills += 1
        slot.respawn_at = now + delay

    # -- live reload -----------------------------------------------------------

    def reload(self, rules: Sequence[str | Pattern] | None = None) -> ReloadEvent:
        """Recompile changed shards, publish a new generation, drain the old.

        Unchanged shards load from the per-shard
        :class:`~repro.fastpath.cache.ArtifactCache` (a one-rule edit
        rebuilds one shard).  The swap is in-band: flows queued before
        the marker finish on the generation they started on, and the old
        segment is destroyed only after every worker has switched.
        """
        if not self._running:
            raise RuntimeError("daemon is not running")
        tick = time.perf_counter()
        if rules is not None:
            self.rules = list(rules)
        bundles, rebuilt, cached = self._compile_bundles(self.rules)
        with self._cond:
            new_generation = self._generation + 1
            segment = ArtifactSegment.create(bundles, new_generation)
            old_segment = self._segment
            self._segment = segment
            self._generation = new_generation
            self.report.generation = new_generation
            for slot in self._slots:
                if slot.queue is not None:
                    slot.queue.put(("reload", segment.name, new_generation))
                # A slot awaiting respawn attaches the new segment anyway.
        drained = self._wait_generation(new_generation)
        if old_segment is not None:
            if drained:
                old_segment.close()
                old_segment.unlink()
            else:
                self._retired.append(old_segment)
        event = ReloadEvent(
            generation=new_generation,
            shards_rebuilt=rebuilt,
            shards_cached=cached,
            seconds=time.perf_counter() - tick,
            drained=drained,
        )
        with self._lock:
            self.report.reloads.append(event)
        return event

    def _wait_generation(self, generation: int) -> bool:
        deadline = time.time() + self.config.reload_timeout
        with self._cond:
            while True:
                pending = [
                    slot
                    for slot in self._slots
                    if slot.process is not None and slot.generation < generation
                ]
                if not pending:
                    return True
                remaining = deadline - time.time()
                if remaining <= 0:
                    return False
                self._cond.wait(min(remaining, 0.2))

    # -- health / shutdown -----------------------------------------------------

    def status(self) -> ServeReport:
        """The live health report (shared instance; serialize under lock)."""
        with self._lock:
            self.report.uptime_seconds = (
                time.time() - self._started_at if self._started_at else 0.0
            )
            self.report.generation = self._generation
            self.report.workers = [slot.stats for slot in self._slots]
            return self.report

    def stop(self, timeout: float = 10.0) -> ServeReport:
        """Graceful shutdown: stop ingress, drain workers, reap, unlink."""
        if not self._running:
            return self.status()
        with self._cond:
            self._running = False
            for slot in self._slots:
                if slot.queue is not None:
                    slot.queue.put(("stop",))
            self._cond.notify_all()
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            process.join(timeout=timeout)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        for slot in self._slots:
            if slot.queue is not None:
                # Same wedged-feeder hazard as respawn: a killed worker
                # leaves its queue pipe unread, so never join-at-exit.
                slot.queue.cancel_join_thread()
                slot.queue.close()
                slot.queue = None
        for thread in self._threads:
            thread.join(timeout=5.0)
        for segment in [self._segment, *self._retired]:
            if segment is not None:
                segment.close()
                segment.unlink()
        self._segment = None
        self._retired = []
        return self.status()

    def __enter__(self) -> "ScanDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def _worker_entry(*args) -> None:
    """Picklable spawn target (kept tiny so spawn imports stay lean)."""
    from .worker import worker_main

    worker_main(*args)


def serve_scan(
    daemon: ScanDaemon,
    capture: "BinaryIO | bytes | str | PathLike | Iterable[Packet]",
    limits: FlowLimits | None = None,
) -> tuple[list[FlowMatch], ServeReport]:
    """Feed one capture through a running daemon (the serving twin of
    :func:`repro.robust.pipeline.resilient_scan`).

    Ingest is identical to the batch path — tolerant pcap decode, bounded
    reassembly with scan-at-eviction — but every reassembled flow is
    dispatched to the worker pool instead of scanned inline.  Returns the
    daemon's accumulated alerts plus its :class:`ServeReport` (which
    doubles as the batch :class:`~repro.robust.report.ScanReport`).
    """
    report = daemon.report

    def submit_flow(flow: Flow) -> None:
        if flow.payload:
            daemon.submit(flow.key, flow.payload)

    if isinstance(capture, (str, PathLike)):
        with open(capture, "rb") as stream:
            return serve_scan(daemon, stream, limits)
    if isinstance(capture, bytes):
        capture = BytesIO(capture)
    if hasattr(capture, "read"):
        packets = read_pcap(capture, errors="skip", stats=report.pcap)
    else:
        packets = iter(capture)

    assembler = FlowAssembler(limits=limits, on_evict=submit_flow)
    for packet in packets:
        with daemon._lock:
            report.n_packets += 1
        assembler.add(packet)
    with daemon._lock:
        report.assembler.flows_evicted += assembler.stats.flows_evicted
        report.assembler.bytes_evicted += assembler.stats.bytes_evicted
        report.assembler.segments_dropped += assembler.stats.segments_dropped
        report.assembler.bytes_dropped += assembler.stats.bytes_dropped
    for flow in assembler.flows():
        submit_flow(flow)
    daemon.drain()
    return daemon.alerts, daemon.status()
