"""The daemon's control socket: health queries and operator commands.

A tiny JSON-lines protocol over a Unix domain socket — one request
object per line, one response object per line:

``{"op": "ping"}``
    liveness probe; answers ``{"ok": true, "pong": true}``.
``{"op": "status"}``
    the full :class:`~repro.serve.report.ServeReport` as
    ``{"ok": true, "report": {...}}``.
``{"op": "reload", "rules": [...]}``
    live rule reload (omit ``rules`` to recompile the current set, e.g.
    after an options change); answers with the
    :class:`~repro.serve.report.ReloadEvent` fields.
``{"op": "shutdown"}``
    graceful stop; answers with the final report, then the server
    thread exits.

The server is deliberately single-threaded (one operator request at a
time): control traffic is rare, and serialising it means a reload can
never race another reload.  Malformed requests get
``{"ok": false, "error": ...}`` rather than a dropped connection.
"""

from __future__ import annotations

import json
import os
import socket
import threading
from dataclasses import asdict

from .daemon import ScanDaemon

__all__ = ["ControlServer", "control_request"]

_MAX_REQUEST_BYTES = 16 * 1024 * 1024  # a full rule set fits; junk does not


class ControlServer:
    """Serve control requests for a :class:`ScanDaemon` on a Unix socket."""

    def __init__(self, daemon: ScanDaemon, path: str):
        self.daemon = daemon
        self.path = path
        self._sock: socket.socket | None = None
        self._thread: threading.Thread | None = None
        self._stopping = threading.Event()
        self.shutdown_requested = threading.Event()

    def start(self) -> "ControlServer":
        if os.path.exists(self.path):
            os.unlink(self.path)
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.bind(self.path)
        sock.listen(4)
        sock.settimeout(0.2)
        self._sock = sock
        self._thread = threading.Thread(target=self._serve_loop, daemon=True)
        self._thread.start()
        return self

    def _serve_loop(self) -> None:
        assert self._sock is not None
        while not self._stopping.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with conn:
                try:
                    self._serve_connection(conn)
                except OSError:
                    continue  # client went away mid-request

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        buffer = b""
        while b"\n" not in buffer:
            chunk = conn.recv(65536)
            if not chunk:
                return
            buffer += chunk
            if len(buffer) > _MAX_REQUEST_BYTES:
                conn.sendall(b'{"ok": false, "error": "request too large"}\n')
                return
        line = buffer.split(b"\n", 1)[0]
        response = self._handle(line)
        conn.sendall(json.dumps(response).encode() + b"\n")

    def _handle(self, line: bytes) -> dict:
        try:
            request = json.loads(line)
            op = request.get("op")
        except (ValueError, AttributeError):
            return {"ok": False, "error": "malformed request (want a JSON object)"}
        try:
            if op == "ping":
                return {"ok": True, "pong": True}
            if op == "status":
                return {"ok": True, "report": self.daemon.status().to_dict()}
            if op == "reload":
                rules = request.get("rules")
                event = self.daemon.reload(rules)
                return {"ok": True, "reload": asdict(event)}
            if op == "shutdown":
                report = self.daemon.stop()
                self.shutdown_requested.set()
                self._stopping.set()
                return {"ok": True, "report": report.to_dict()}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except Exception as exc:  # noqa: BLE001 - operator gets the error, not a hangup
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def stop(self) -> None:
        self._stopping.set()
        if self._sock is not None:
            self._sock.close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        if os.path.exists(self.path):
            os.unlink(self.path)


def control_request(path: str, request: dict, timeout: float = 30.0) -> dict:
    """Send one control request to a daemon's socket, return its response."""
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
        sock.settimeout(timeout)
        sock.connect(path)
        sock.sendall(json.dumps(request).encode() + b"\n")
        buffer = b""
        while b"\n" not in buffer:
            chunk = sock.recv(65536)
            if not chunk:
                raise ConnectionError("daemon closed the control connection")
            buffer += chunk
    return json.loads(buffer.split(b"\n", 1)[0])
