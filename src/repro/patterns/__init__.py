"""Pattern sets and rule-file front ends."""

from .rulesets import RULESETS, RuleSet, ruleset, ruleset_names
from .snortlike import (
    SnortParseError,
    SnortRule,
    parse_rule,
    parse_rules,
    parse_rules_restoring,
    rules_to_patterns,
)

__all__ = [
    "RULESETS",
    "RuleSet",
    "ruleset",
    "ruleset_names",
    "SnortParseError",
    "SnortRule",
    "parse_rule",
    "parse_rules",
    "parse_rules_restoring",
    "rules_to_patterns",
]
