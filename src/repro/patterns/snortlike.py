"""Snort-style rule file front end.

The paper's S-pattern sets are extracted from Snort rules, whose matching
payload lives in ``content:"..."`` and ``pcre:"/.../flags"`` options. This
module parses that rule syntax (the subset relevant to payload inspection)
so real-world rule files can feed the MFA compiler directly:

* ``content:"bytes"`` with ``|41 42|`` hex spans and the ``nocase``,
  ``depth:N`` and ``offset:N`` modifiers;
* ``pcre:"/body/flags"`` with ``i`` and ``s`` flags;
* multiple contents per rule combine in order with ``.*`` gaps — precisely
  the dot-star shape match filtering decomposes;
* ``msg`` and ``sid`` are carried through for alert attribution.

Everything else in the rule (header, flow options, thresholds) is parsed
but ignored for matching purposes.
"""

from __future__ import annotations

import re as _stdre
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..regex.lexer import RegexSyntaxError

__all__ = ["SnortRule", "SnortParseError", "parse_rule", "parse_rules", "rules_to_patterns"]

_METACHARS = set("\\.^$*+?()[]{}|/")


class SnortParseError(ValueError):
    """Malformed Snort-style rule text."""


@dataclass(frozen=True, slots=True)
class ContentOption:
    """One ``content`` option with its position modifiers."""

    data: bytes
    nocase: bool = False
    depth: Optional[int] = None
    offset: int = 0


@dataclass(frozen=True, slots=True)
class SnortRule:
    """A parsed rule, reduced to what payload matching needs."""

    action: str
    header: str
    msg: str
    sid: Optional[int]
    contents: tuple[ContentOption, ...]
    pcre: Optional[str]          # "/body/flags" as written
    raw: str = field(compare=False, default="")

    def to_pattern_text(self) -> str:
        """The rule's payload condition as one pattern in our syntax.

        Contents chain with ``.*`` gaps (content B is searched after
        content A, the Snort semantics without ``distance/within``); a
        ``pcre`` option, when present, is appended the same way.  A content
        with ``offset:0 depth:len`` pins to the payload start (``^``).
        """
        parts: list[str] = []
        prefix = ""
        for index, content in enumerate(self.contents):
            escaped = _escape_bytes(content.data, content.nocase)
            if index == 0 and (content.offset > 0 or content.depth is not None):
                prefix, escaped = _position_window(content, escaped)
            parts.append(escaped)
        if self.pcre is not None:
            parts.append(_pcre_body(self.pcre))
        if not parts:
            raise SnortParseError(f"rule has no payload condition: {self.raw!r}")
        return prefix + ".*".join(parts)


def _position_window(content: "ContentOption", escaped: str) -> tuple[str, str]:
    """Translate ``offset``/``depth`` on the leading content into an
    anchored positional window.

    Snort semantics: the content must *begin* within
    ``[offset, offset + depth - len]`` of the payload start (``depth``
    counts bytes searched from ``offset``... historically from the payload
    start; we use the common from-offset reading).  Expressed as a pattern:
    ``^.{lo,hi}CONTENT``.
    """
    length = len(content.data)
    lo = content.offset
    if content.depth is None:
        return (f"^.{{{lo},}}" if lo else "^"), escaped
    hi = content.offset + content.depth - length
    if hi < lo:
        raise SnortParseError(
            f"depth {content.depth} cannot fit content of length {length}"
        )
    if lo == hi == 0:
        return "^", escaped
    if lo == hi:
        return f"^.{{{lo}}}", escaped
    return f"^.{{{lo},{hi}}}", escaped


def _escape_bytes(data: bytes, nocase: bool) -> str:
    out: list[str] = []
    for byte in data:
        ch = chr(byte)
        if nocase and ch.isalpha() and ch.isascii():
            out.append(f"[{ch.lower()}{ch.upper()}]")
        elif ch in _METACHARS:
            out.append("\\" + ch)
        elif 0x20 <= byte < 0x7F:
            out.append(ch)
        else:
            out.append(f"\\x{byte:02x}")
    return "".join(out)


def _pcre_body(pcre: str) -> str:
    """Strip the /.../ wrapper; honour only the flags our parser supports."""
    if not pcre.startswith("/"):
        raise SnortParseError(f"pcre option must start with '/': {pcre!r}")
    end = pcre.rfind("/")
    if end <= 0:
        raise SnortParseError(f"unterminated pcre option: {pcre!r}")
    body, flags = pcre[1:end], pcre[end + 1 :]
    unsupported = set(flags) - set("ism")
    if unsupported:
        raise SnortParseError(f"unsupported pcre flags {sorted(unsupported)} in {pcre!r}")
    if "i" in flags:
        body = f"/{body}/i"          # our parser's slash syntax
        return f"(?:{_reparse_slash(body)})"
    return f"(?:{body})"


def _reparse_slash(slashed: str) -> str:
    """Expand /body/i into case-folded text via our own parser/printer."""
    from ..regex.parser import parse
    from ..regex.printer import pattern_to_text

    return pattern_to_text(parse(slashed))


def _decode_content(text: str) -> bytes:
    """Snort content syntax: literal text with |41 42| hex spans."""
    out = bytearray()
    in_hex = False
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "|":
            in_hex = not in_hex
            i += 1
            continue
        if in_hex:
            if ch.isspace():
                i += 1
                continue
            pair = text[i : i + 2]
            try:
                out.append(int(pair, 16))
            except ValueError:
                raise SnortParseError(f"bad hex span near {pair!r} in {text!r}") from None
            i += 2
            continue
        if ch == "\\" and i + 1 < len(text):
            out.append(ord(text[i + 1]))
            i += 2
            continue
        out.append(ord(ch))
        i += 1
    if in_hex:
        raise SnortParseError(f"unterminated hex span in {text!r}")
    return bytes(out)


_OPTION_RE = _stdre.compile(r'\s*(?P<key>[a-z_]+)\s*(?::\s*(?P<value>"(?:\\.|[^"])*"|[^;]*))?;')


def parse_rule(line: str) -> SnortRule:
    """Parse one rule line (``action header ( options )``)."""
    line = line.strip()
    open_paren = line.find("(")
    if open_paren < 0 or not line.endswith(")"):
        raise SnortParseError(f"rule has no option body: {line!r}")
    head = line[:open_paren].split()
    if not head:
        raise SnortParseError(f"rule has no header: {line!r}")
    action, header = head[0], " ".join(head[1:])

    body = line[open_paren + 1 : -1]
    msg = ""
    sid: Optional[int] = None
    pcre: Optional[str] = None
    contents: list[ContentOption] = []
    pending: Optional[dict] = None

    def flush() -> None:
        nonlocal pending
        if pending is not None:
            contents.append(ContentOption(**pending))
            pending = None

    position = 0
    while position < len(body):
        match = _OPTION_RE.match(body, position)
        if match is None:
            if body[position:].strip():
                raise SnortParseError(f"cannot parse options near {body[position:]!r}")
            break
        position = match.end()
        key = match.group("key")
        value = (match.group("value") or "").strip()
        if value.startswith('"') and value.endswith('"'):
            value = value[1:-1]
        if key == "msg":
            msg = value
        elif key == "sid":
            sid = int(value)
        elif key == "content":
            flush()
            pending = {"data": _decode_content(value)}
        elif key == "nocase":
            if pending is None:
                raise SnortParseError("nocase with no preceding content")
            pending["nocase"] = True
        elif key == "depth":
            if pending is None:
                raise SnortParseError("depth with no preceding content")
            pending["depth"] = int(value)
        elif key == "offset":
            if pending is None:
                raise SnortParseError("offset with no preceding content")
            pending["offset"] = int(value)
        elif key == "pcre":
            pcre = value
        # every other option (flow, classtype, rev, ...) is non-payload
    flush()

    return SnortRule(
        action=action,
        header=header,
        msg=msg,
        sid=sid,
        contents=tuple(contents),
        pcre=pcre,
        raw=line,
    )


def parse_rules(text: str) -> list[SnortRule]:
    """Parse a rule file: one rule per line, ``#`` comments and blanks
    skipped.  Lines starting with ``#`` followed by a rule action are the
    "commented-out" rules the paper's p-variants restore; they are skipped
    here (use :func:`parse_rules_restoring` to include them)."""
    rules = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        rules.append(parse_rule(stripped))
    return rules


def parse_rules_restoring(text: str) -> list[SnortRule]:
    """Like :func:`parse_rules` but also restores commented-out rules —
    how the paper built its B217p/C7p/S31p "p" pattern-set variants."""
    rules = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#"):
            candidate = stripped.lstrip("# ")
            if not candidate.split("(")[0].strip().split():
                continue
            first = candidate.split()[0]
            if first not in ("alert", "log", "pass", "drop", "reject"):
                continue
            stripped = candidate
        rules.append(parse_rule(stripped))
    return rules


def rules_to_patterns(rules: Iterable[SnortRule]):
    """Compile parsed rules into :class:`~repro.regex.ast.Pattern` objects,
    match-ids taken from ``sid`` (or assigned sequentially)."""
    from ..regex.parser import parse

    patterns = []
    next_id = 1
    for rule in rules:
        match_id = rule.sid if rule.sid is not None else next_id
        next_id = max(next_id, match_id) + 1
        try:
            pattern = parse(rule.to_pattern_text(), match_id=match_id)
        except RegexSyntaxError as exc:
            raise SnortParseError(
                f"rule sid={rule.sid} compiles to invalid pattern: {exc}"
            ) from exc
        patterns.append(pattern)
    return patterns
