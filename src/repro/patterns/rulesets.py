"""The seven pattern sets of the paper's evaluation (Table V).

The paper's sets are: B217p (Bro, 224 regexes, mostly unanchored string
matches plus a few dot-stars and some very short patterns), C7p/C8/C10
(proprietary vendor sets, 8–11 regexes using dot-star and almost-dot-star
heavily, often several per pattern) and S24/S31p/S34 (Snort-derived,
24–40 regexes mixing almost-dot-star, long strings and anchored heads —
the anchoring is what keeps their plain DFAs buildable).

The vendor sets are proprietary and the exact Snort/Bro extracts are not
bundled here, so each set is *re-synthesized* to the published structural
recipe: same regex count, same anchoring mix, same dot-star /
almost-dot-star density, comparable literal lengths.  Hand-written
security-flavoured patterns form each set's core; deterministic filler
patterns (seeded per set) bring the counts up.  State-explosion behaviour —
the property every experiment measures — depends only on this structure.

Absolute state counts are scaled down roughly 2–4x from the paper's (the
reproduction's subset construction runs in interpreted Python; see
EXPERIMENTS.md for paper-vs-measured tables); the *ratios* between the
columns of Table V are the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..utils.rng import make_rng

__all__ = ["RuleSet", "RULESETS", "ruleset", "ruleset_names"]


@dataclass(frozen=True, slots=True)
class RuleSet:
    """A named pattern set with its provenance notes."""

    name: str
    description: str
    rules: tuple[str, ...]
    dfa_constructible: bool = True

    def __len__(self) -> int:
        return len(self.rules)


_CONSONANT = "bcdfghklmnprstvwz"
_VOWEL = "aeiou"


def _filler_word(rng, length: int) -> str:
    """A pronounceable pseudo-token (distinct across sets via the RNG)."""
    out = []
    for i in range(length):
        out.append(rng.choice(_CONSONANT if i % 2 == 0 else _VOWEL))
    return "".join(out)


# -- C sets: vendor-style, dot-star heavy -------------------------------------


def _build_c7p() -> RuleSet:
    """11 regexes, every one a dot-star pattern, several with three
    segments: the DFA blow-up poster child (paper: 295 NFA states vs
    244,366 DFA states vs 104 MFA states)."""
    rng = make_rng(7, "c7p")
    rules = [
        ".*cmd\\.exe.*system",
        ".*union.*passwd",
        ".*/bin/sh.*root",
        ".*%u9090.*call",
        ".*script.*alert",
        ".*admin\\.p.*shell",
        ".*EHLO .*vrfy",
        ".*quote site",
        ".*jmp .*ret",
    ]
    for _ in range(2):
        a = _filler_word(rng, 4)
        b = _filler_word(rng, 4)
        rules.append(f".*{a}.*{b}")
    return RuleSet(
        "C7p",
        "vendor-style, 11 regexes, all multi-segment dot-star (DFA huge)",
        tuple(rules),
    )


def _build_c8() -> RuleSet:
    """8 regexes with moderate dot-star use (paper DFA 3,786 states)."""
    rules = (
        ".*GET /cgi-bin/.*\\.\\./",
        ".*POST /login.*passwd=",
        ".*%c0%af[^\\n]*system32",
        ".*USER anonymous.*PASS ",
        ".*\\x90\\x90\\x90\\x90",
        ".*SITE EXEC[^\\n]*%p",
        ".*boundary=--",
        ".*MAIL FROM:.*RCPT TO:",
    )
    return RuleSet("C8", "vendor-style, 8 regexes, mixed dot-star", rules)


def _build_c10() -> RuleSet:
    """10 cleanly decomposable regexes, one dot-star each (paper MFA = 81
    states against DFA = 19,508: the best-case compression)."""
    rng = make_rng(10, "c10")
    rules = [
        ".*select .*where ",
        ".*jmp esp.*ret",
        ".*document\\.wr.*unescape",
        ".*wget htt.*chmod ",
        ".*open\\(.*O_CREAT",
        ".*sledge.*\\x90\\x25",
        ".*%6e%63%20",
        ".*rhosts\\+\\+",
    ]
    for _ in range(2):
        a = _filler_word(rng, 5)
        b = _filler_word(rng, 5)
        rules.append(f".*{a}.*{b}")
    return RuleSet("C10", "vendor-style, 10 dot-star regexes", tuple(rules))


# -- S sets: Snort-style, anchored heads + almost-dot-star --------------------

# Anchored literal rules: cheap for a DFA — their distinct fixed heads make
# them mutually exclusive, exactly why the paper calls anchored matching
# "much easier".
_S_ANCHORED = (
    "^GET /scripts/\\.\\.%c1%1c/",
    "^HEAD /cgi-bin/phf\\?",
    "^SSH-1\\.",
    "^OPTIONS \\* HTTP",
    "^SITE CHMOD 777",
    "^RETR \\.\\./\\.\\./",
    "^EXPN root",
    "^DEBUG\\r\\n",
    "^VRFY decode",
    "^PORT 127,0,0,1",
    "^CEL \\x90\\x90",
    "^LIST \\.\\./",
    "^STAT -A",
    "^MKD AAAA",
)

# Anchored almost-dot-star rules: one line-window each, still cheap.
_S_ANCHORED_ADS = (
    "^POST /_vti_bin/[^\\n]*%00",
    "^USER [^\\n]*%x%x",
    "^CONNECT [^\\n]*:25",
    "^PUT /[^\\n]*\\.asa",
)

# Unanchored long strings: Aho-Corasick-like, additive.
_S_STRINGS = (
    ".*xp_cmdshell",
    ".*/etc/shadow",
    ".*AAAAAAAAAAAAAAAA",
    ".*uid=0\\(root\\)",
    ".*\\|/bin/id\\|",
    ".*<iframe src=",
    ".*%255c%255c",
    ".*\\x04\\x01\\x00P",
)

# The explosive minority: unanchored almost-dot-star / dot-star rules,
# each a multiplicative dimension for the plain DFA and a decomposition
# target for the MFA.
_S_UNANCHORED_ADS = (
    ".*name=[^\\n]*<script",
    ".*cmd=[^\\n]*;cat ",
    ".*\\.ida\\?[^\\n]*NNNN",
    ".*Content-Disposition:[^\\n]*\\.scr",
    ".*href=[^\\n]*javascript:",
)
_S_UNANCHORED_DS = (
    ".*wget .*chmod ",
    ".*SELECT.*UNION",
    ".*passwd .*setuid",
)


def _snort_fillers(seed_name: str, count: int) -> list[str]:
    """Cheap fillers only (anchored literals and plain strings): the
    explosive shapes are budgeted explicitly per set above."""
    rng = make_rng(31, seed_name)
    fillers = []
    for i in range(count):
        kind = i % 3
        word = _filler_word(rng, rng.randrange(5, 9))
        tail = _filler_word(rng, rng.randrange(4, 7))
        if kind == 0:
            fillers.append(f"^GET /{word}/{tail}\\.cgi")
        elif kind == 1:
            fillers.append(f"^POST /{word} HTTP")
        else:
            fillers.append(f".*{word}{tail}")
    return fillers


def _build_s24() -> RuleSet:
    rules = (
        _S_ANCHORED[:10]
        + _S_ANCHORED_ADS[:1]
        + _S_STRINGS[:6]
        + _S_UNANCHORED_ADS[:3]
        + _S_UNANCHORED_DS[:1]
        + tuple(_snort_fillers("s24", 3))
    )
    return RuleSet("S24", "Snort-style, 24 regexes, anchored + almost-dot-star", rules)


def _build_s31p() -> RuleSet:
    rules = (
        _S_ANCHORED
        + _S_ANCHORED_ADS[:2]
        + _S_STRINGS
        + _S_UNANCHORED_ADS[:4]
        + _S_UNANCHORED_DS[:1]
        + tuple(_snort_fillers("s31p", 11))
    )
    return RuleSet("S31p", "Snort-style, 40 regexes (restored p-variant)", rules)


def _build_s34() -> RuleSet:
    rules = (
        _S_ANCHORED[:13]
        + _S_ANCHORED_ADS[:1]
        + _S_STRINGS
        + _S_UNANCHORED_ADS[:3]
        + _S_UNANCHORED_DS[:1]
        + tuple(_snort_fillers("s34", 8))
    )
    return RuleSet("S34", "Snort-style, 34 regexes, string-heavy", rules)


# -- B set: Bro-style, many strings + a few dot-stars -------------------------

# Literal byte strings with regex metacharacters escaped (these are
# Bro-style *string* matches, not regexes: "?", "+", "." and parentheses
# are payload bytes).
_B_STRINGS = (
    "wu-2\\.6\\.0", "PASS ddd@", "CWD ~root", "SITE EXEC", "0wn3d", "r00t",
    "/c\\+dir", "cmd\\.exe", "default\\.ida", "boot\\.ini", "msadcs\\.dll",
    "awstats\\.pl", "formmail", "phf\\?Qalias", "test-cgi", "xterm -display",
    "TERM=vt100", "uid=0\\(root\\)", "/etc/passwd", "/etc/shadow", "id;uname",
)


def _build_b217p() -> RuleSet:
    """224 regexes: mostly unanchored strings with some very short patterns
    plus enough multi-dot-star rules that plain DFA construction explodes
    (the paper could not build B217p as a DFA at all)."""
    rng = make_rng(217, "b217p")
    rules: list[str] = list(_B_STRINGS)
    # Very short patterns: the cause of the paper's huge NFA active sets.
    rules += ["ls", "id", "su", "sh -i"]
    # String fillers of realistic lengths.
    while len(rules) < 208:
        length = rng.randrange(5, 14)
        rules.append(_filler_word(rng, length))
    # The explosive minority: multi-dot-star rules.
    while len(rules) < 224:
        a = _filler_word(rng, 4)
        b = _filler_word(rng, 4)
        c = _filler_word(rng, 4)
        if len(rules) % 2:
            rules.append(f".*{a}.*{b}.*{c}")
        else:
            rules.append(f".*{a}.*{b}")
    return RuleSet(
        "B217p",
        "Bro-style, 224 regexes, strings + dot-star minority (DFA infeasible)",
        tuple(rules),
        dfa_constructible=False,
    )


# -- R set: synthetic redundant family for the cross-rule analyzer ------------


def _build_r32() -> RuleSet:
    """32 rules shaped like an organically-grown production set: literal-head
    clusters with duplicates and subsumed members (RS101/RS102 fodder for
    :mod:`repro.analyze.ruleset`), and a contiguous block of explosive
    overlap-separator rules appended at the end — exactly the growth
    pattern that makes contiguous shard partitioning pay a multiplicative
    state product one shard over, and interaction-aware planning win."""
    rng = make_rng(32, "r32")
    rules: list[str] = [
        # Literal-head cluster around ".exe" droppers: the broad rule
        # subsumes the specific ones (same-position containment: every
        # specific hit ends where a ".exe" hit ends).
        ".*\\.exe",
        ".*cmd\\.exe",          # RS102: subsumed by .*\.exe
        ".*powershell\\.exe",   # RS102: subsumed by .*\.exe
        # /admin probe cluster with an exact duplicate (rules merged from
        # two feeds, as happens when lists are concatenated untriaged).
        ".*GET /admin",
        ".*GET /admin",         # RS101: duplicate
        ".*GET /administrator", # same head cluster, NOT subsumed (position)
        # Shell-command cluster: character class generalizes a literal.
        ".*uid=[0-9]+;",
        ".*uid=1000;",          # RS102: subsumed by .*uid=[0-9]+;
        ".*uid=1001;",          # RS102: subsumed by .*uid=[0-9]+;
        # Shadowing fodder: no single peer contains [2-5], but the union
        # of [0-3] and [4-7] does — the RS103 shape pairwise checks miss.
        ".*sid=[0-3]x",
        ".*sid=[4-7]x",
        ".*sid=[2-5]x",         # RS103: shadowed by the union of the two above
    ]
    # Benign string fillers of realistic lengths, distinct heads.
    while len(rules) < 26:
        length = rng.randrange(6, 12)
        rules.append(f".*{_filler_word(rng, length)}")
    # The explosive tail: overlap-separator dot-star rules whose segment
    # reversal defeats safe decomposition (residual factor stays > 1), so
    # their interaction cost is real at compile time — and they sit
    # contiguously, as appended rules do.
    while len(rules) < 32:
        word = _filler_word(rng, 3)
        rules.append(f".*{word}.*{word[::-1]}")
    return RuleSet(
        "R32",
        "synthetic redundant family: duplicate/subsumed clusters + a "
        "contiguous explosive tail (cross-rule analyzer fixture)",
        tuple(rules),
    )


def _base_variant(p_set: RuleSet, base_name: str, n_restored: int) -> RuleSet:
    """The paper's 'p' sets restore commented-out rules from the originals
    (C7, S31, B217); the base variant is the p set minus the restored
    minority — here modelled as the final ``n_restored`` rules."""
    return RuleSet(
        base_name,
        f"{p_set.description} (without the {n_restored} restored rules)",
        p_set.rules[: len(p_set.rules) - n_restored],
        dfa_constructible=True,
    )


_B217P = _build_b217p()
_C7P = _build_c7p()
_S31P = _build_s31p()

RULESETS: dict[str, RuleSet] = {
    rs.name: rs
    for rs in (
        _B217P,
        _base_variant(_B217P, "B217", 7),
        _C7P,
        _base_variant(_C7P, "C7", 4),
        _build_c8(),
        _build_c10(),
        _build_s24(),
        _S31P,
        _base_variant(_S31P, "S31", 9),
        _build_s34(),
        _build_r32(),
    )
}


def ruleset(name: str) -> RuleSet:
    """Look up a pattern set by its paper name (e.g. ``"C7p"``)."""
    try:
        return RULESETS[name]
    except KeyError:
        raise KeyError(f"unknown rule set {name!r}; have {sorted(RULESETS)}") from None


def ruleset_names() -> list[str]:
    """The seven evaluated sets, in paper order: B first, then C, then S.

    The base (non-p) variants B217/C7/S31 also exist in :data:`RULESETS`
    but are not part of the published evaluation matrix."""
    return ["B217p", "C7p", "C8", "C10", "S24", "S31p", "S34"]
