"""Static verifier for filter-bytecode programs (paper §III-A actions).

The filter half of an MFA is a tiny ``(test, set, clear, report)``
bytecode — exactly the kind of object whose invariants can be *proved*
without traffic.  This verifier checks, per program:

* **references** — every bit index inside ``[0, width)``, every register
  inside ``[0, n_registers)``, every reported id inside the final set;
* **conflicts** — no action sets and clears the same bit, no malformed
  distance window;
* **liveness** — bits set but never tested (dead bits — removable without
  changing the filtered stream, see :func:`dead_bits`), bits tested but
  never set (the guarded action can never fire), registers recorded but
  never distance-tested and vice versa;
* **guard-chain connectivity** — the ``Test i to Set j`` chains emitted
  for ``.*A.*B.*C`` must bottom out at an unguarded set; a guard cycle
  (bits only settable when already set) makes every downstream report
  unreachable, and any report action behind an unsatisfiable guard is
  flagged.

The verifier accepts a validated :class:`~repro.core.filters.FilterProgram`
*or* the raw JSON dict of a serialized bundle, so corrupted bundles that
the strict loader would refuse still get precise findings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from ..core.filters import NONE, WINDOW_BITS, FilterAction, FilterProgram
from .report import ERROR, INFO, WARNING, AnalysisReport

__all__ = ["RawAction", "RawProgram", "raw_program", "analyze_program", "dead_bits", "strip_dead_bits"]

COMPONENT = "filter"


@dataclass(frozen=True, slots=True)
class RawAction:
    """A filter action as raw integers, with no constructor validation."""

    test: int = NONE
    set: int = NONE
    clear: int = NONE
    report: int = NONE
    record: int = NONE
    distance: Optional[tuple[int, int, Optional[int]]] = None


@dataclass(frozen=True, slots=True)
class RawProgram:
    """An unvalidated filter program, as found in a (possibly corrupt) bundle."""

    actions: dict[int, RawAction]
    width: int
    n_registers: int
    final_ids: frozenset[int]


def raw_program(source: FilterProgram | Mapping) -> RawProgram:
    """Normalise a validated program or a bundle JSON dict to raw form."""
    if isinstance(source, FilterProgram):
        return RawProgram(
            actions={
                match_id: RawAction(
                    test=a.test,
                    set=a.set,
                    clear=a.clear,
                    report=a.report,
                    record=a.record,
                    distance=a.distance,
                )
                for match_id, a in source.actions.items()
            },
            width=source.width,
            n_registers=source.n_registers,
            final_ids=frozenset(source.final_ids),
        )
    actions: dict[int, RawAction] = {}
    for key, fields in dict(source.get("actions", {})).items():
        distance = fields.get("distance")
        actions[int(key)] = RawAction(
            test=int(fields.get("test", NONE)),
            set=int(fields.get("set", NONE)),
            clear=int(fields.get("clear", NONE)),
            report=int(fields.get("report", NONE)),
            record=int(fields.get("record", NONE)),
            distance=tuple(distance) if distance else None,
        )
    return RawProgram(
        actions=actions,
        width=int(source.get("width", 0)),
        n_registers=int(source.get("n_registers", 0)),
        final_ids=frozenset(int(i) for i in source.get("final_ids", ())),
    )


def analyze_program(
    source: FilterProgram | Mapping | RawProgram,
    report: AnalysisReport | None = None,
) -> AnalysisReport:
    """Run every bytecode check; returns (or extends) an :class:`AnalysisReport`."""
    program = source if isinstance(source, RawProgram) else raw_program(source)
    out = report if report is not None else AnalysisReport()
    _check_structure(program, out)
    _check_liveness(program, out)
    _check_guard_chains(program, out)
    return out


# -- structural checks --------------------------------------------------------


def _check_structure(program: RawProgram, out: AnalysisReport) -> None:
    if program.width < 0:
        out.add("FB106", ERROR, COMPONENT, f"negative memory width {program.width}")
    if program.n_registers < 0:
        out.add("FB106", ERROR, COMPONENT, f"negative register count {program.n_registers}")
    for match_id in sorted(program.actions):
        action = program.actions[match_id]
        where = f"action {match_id}"
        for name, bit in (("test", action.test), ("set", action.set), ("clear", action.clear)):
            if bit != NONE and not 0 <= bit < program.width:
                out.add(
                    "FB101",
                    ERROR,
                    COMPONENT,
                    f"{name} references bit {bit} outside the {program.width}-bit memory",
                    where,
                )
        if action.set != NONE and action.set == action.clear:
            out.add(
                "FB103",
                ERROR,
                COMPONENT,
                f"sets and clears the same bit {action.set}",
                where,
            )
        if action.record != NONE and not 0 <= action.record < program.n_registers:
            out.add(
                "FB102",
                ERROR,
                COMPONENT,
                f"records register {action.record} outside the "
                f"{program.n_registers}-register file",
                where,
            )
        if action.distance is not None:
            if len(action.distance) != 3:
                out.add("FB104", ERROR, COMPONENT, "malformed distance tuple", where)
            else:
                reg, lo, hi = action.distance
                if not 0 <= reg < program.n_registers:
                    out.add(
                        "FB102",
                        ERROR,
                        COMPONENT,
                        f"distance tests register {reg} outside the "
                        f"{program.n_registers}-register file",
                        where,
                    )
                upper = lo if hi is None else hi
                if lo < 0 or upper < lo or upper >= WINDOW_BITS:
                    out.add(
                        "FB104",
                        ERROR,
                        COMPONENT,
                        f"distance window [{lo},{hi}] outside [0,{WINDOW_BITS})",
                        where,
                    )
        if action.report != NONE and action.report not in program.final_ids:
            out.add(
                "FB105",
                ERROR,
                COMPONENT,
                f"reports id {action.report} which is not in the final set",
                where,
            )


# -- liveness -----------------------------------------------------------------


def _bit_uses(program: RawProgram) -> tuple[set[int], set[int], set[int]]:
    """(set bits, cleared bits, tested bits), range-checked uses only."""
    set_bits: set[int] = set()
    clear_bits: set[int] = set()
    test_bits: set[int] = set()
    for action in program.actions.values():
        if 0 <= action.set < program.width:
            set_bits.add(action.set)
        if 0 <= action.clear < program.width:
            clear_bits.add(action.clear)
        if 0 <= action.test < program.width:
            test_bits.add(action.test)
    return set_bits, clear_bits, test_bits


def dead_bits(source: FilterProgram | Mapping | RawProgram) -> set[int]:
    """Bits that are set but never tested.

    Setting (or clearing) such a bit can never influence a guard, so the
    bit can be stripped without changing the filtered match stream — the
    property the hypothesis suite checks against :func:`strip_dead_bits`.
    """
    program = source if isinstance(source, RawProgram) else raw_program(source)
    set_bits, clear_bits, test_bits = _bit_uses(program)
    return (set_bits | clear_bits) - test_bits


def strip_dead_bits(program: FilterProgram) -> FilterProgram:
    """Remove every set/clear of a dead bit (the stream-preserving rewrite)."""
    dead = dead_bits(program)
    if not dead:
        return program
    actions = {}
    for match_id, action in program.actions.items():
        new_set = NONE if action.set in dead else action.set
        new_clear = NONE if action.clear in dead else action.clear
        actions[match_id] = FilterAction(
            test=action.test,
            set=new_set,
            clear=new_clear,
            report=action.report,
            record=action.record,
            distance=action.distance,
        )
    return FilterProgram(
        actions=actions,
        width=program.width,
        n_registers=program.n_registers,
        final_ids=program.final_ids,
    )


def _check_liveness(program: RawProgram, out: AnalysisReport) -> None:
    set_bits, clear_bits, test_bits = _bit_uses(program)
    for bit in sorted(set_bits - test_bits):
        out.add(
            "FB110",
            WARNING,
            COMPONENT,
            f"bit {bit} is set but never tested (dead bit: removable "
            f"without changing the filtered stream)",
        )
    for bit in sorted(test_bits - set_bits):
        out.add(
            "FB111",
            ERROR,
            COMPONENT,
            f"bit {bit} is tested but no action ever sets it "
            f"(the guarded action can never fire)",
        )
    for bit in sorted(clear_bits - set_bits - test_bits):
        out.add(
            "FB112",
            WARNING,
            COMPONENT,
            f"bit {bit} is cleared but never set or tested",
        )
    used = set_bits | clear_bits | test_bits
    unused = [bit for bit in range(program.width) if bit not in used]
    if unused:
        out.add(
            "FB113",
            INFO,
            COMPONENT,
            f"{len(unused)} of {program.width} memory bits are never "
            f"referenced (first: {unused[0]})",
        )
    recorded: set[int] = set()
    dist_tested: set[int] = set()
    for action in program.actions.values():
        if 0 <= action.record < program.n_registers:
            recorded.add(action.record)
        if action.distance is not None and len(action.distance) == 3:
            reg = action.distance[0]
            if 0 <= reg < program.n_registers:
                dist_tested.add(reg)
    for reg in sorted(dist_tested - recorded):
        out.add(
            "FB114",
            ERROR,
            COMPONENT,
            f"register {reg} is distance-tested but no action ever records it",
        )
    for reg in sorted(recorded - dist_tested):
        out.add(
            "FB115",
            WARNING,
            COMPONENT,
            f"register {reg} is recorded but never distance-tested",
        )


# -- guard-chain connectivity -------------------------------------------------


def _satisfiable_guards(program: RawProgram) -> tuple[set[int], set[int]]:
    """Fixpoint of (settable bits, recordable registers).

    A guard ``test=b`` is satisfiable only if some action can actually set
    ``b``; that setter may itself be guarded, so satisfiability is the
    least fixpoint over the guard graph.  Distance guards are satisfiable
    when their register is recordable under the same rules.
    """
    settable: set[int] = set()
    recordable: set[int] = set()
    changed = True
    while changed:
        changed = False
        for action in program.actions.values():
            if not _guard_ok(action, settable, recordable, program):
                continue
            if 0 <= action.set < program.width and action.set not in settable:
                settable.add(action.set)
                changed = True
            if (
                0 <= action.record < program.n_registers
                and action.record not in recordable
            ):
                recordable.add(action.record)
                changed = True
    return settable, recordable


def _guard_ok(
    action: RawAction,
    settable: set[int],
    recordable: set[int],
    program: RawProgram,
) -> bool:
    if action.test != NONE and action.test not in settable:
        return False
    if action.distance is not None:
        if len(action.distance) != 3:
            return False
        if action.distance[0] not in recordable:
            return False
    return True


def _check_guard_chains(program: RawProgram, out: AnalysisReport) -> None:
    settable, recordable = _satisfiable_guards(program)
    set_bits, _clear_bits, _test_bits = _bit_uses(program)
    # Bits that have setters yet are unsatisfiable form a guard cycle: every
    # path to them is guarded on bits inside the same strongly-guarded knot.
    for bit in sorted(set_bits - settable):
        out.add(
            "FB121",
            ERROR,
            COMPONENT,
            f"bit {bit} sits in a guard cycle: every action setting it is "
            f"itself guarded on an unsettable bit",
        )
    reportable: set[int] = set()
    for match_id in sorted(program.actions):
        action = program.actions[match_id]
        ok = _guard_ok(action, settable, recordable, program)
        if action.report != NONE:
            if ok:
                reportable.add(action.report)
            else:
                out.add(
                    "FB120",
                    ERROR,
                    COMPONENT,
                    f"report of id {action.report} is unreachable: its guard "
                    f"can never be satisfied",
                    f"action {match_id}",
                )
    # Every final id must remain confirmable: either implicitly (no action
    # at all — the engine passes it through) or via a reachable report.
    for final_id in sorted(program.final_ids):
        if final_id not in program.actions:
            continue
        if final_id not in reportable:
            out.add(
                "FB122",
                ERROR,
                COMPONENT,
                f"final id {final_id} has actions but no reachable report: "
                f"the original pattern can never be confirmed",
            )
