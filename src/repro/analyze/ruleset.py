"""Cross-rule interaction analyzer: subsumption, shadowing, shard planning.

Every other analyzer audits one compiled artifact; this one audits the
*relationships between rules* before they reach the compiler.  Real
Snort/Suricata-scale rule sets accumulate exact duplicates, rules whose
language is strictly contained in another rule's (so they can never add
an alert the broader rule would not raise at the same byte), and pairs
of non-decomposable patterns whose co-location in one shard multiplies
the compiled state space.  Three products come out of one pass:

* **RS1xx findings** — RS101 duplicate / RS102 subsumed pairs proved by
  an exact product-automaton walk over the per-rule NFAs (the same
  int-mask machinery as :mod:`repro.fastcompile.bitset`), each carrying
  a replay-confirmed witness byte stream on which *both* rules fire at
  the same position through the real engine; RS103 for rules shadowed
  by the union of their literal-head cluster; RS110 when a pair or
  product budget bounded the walk; RS130 census.
* **an interaction graph** — edges between rules whose predicted
  combined-DFA cost (the EX1xx triage model: sizes times surviving
  separator factors, discounted to zero for disjoint alphabets) says
  co-locating them is expensive.
* **a shard plan** — :func:`plan_shards` spreads explosive rules across
  shards (the state product is multiplicative, so two explosive rules
  in one shard cost more than one each in two) while keeping
  literal-head clusters together for prefix sharing.  It plugs into
  ``compile_mfa(shard_plan="interaction")``; contiguous stays the
  cache-friendly default.

Containment here is **event containment**: rule A contains rule B iff at
every byte position where B reports a match on any input, A reports one
too.  Because unanchored patterns compile with an implicit ``.*`` prefix,
this is exactly language containment of the prefixed NFAs, checked
per-position during one BFS over the determinized product — which also
yields the *shortest* witness accepted by B, with lowest-byte tie-breaks,
so witnesses are deterministic across runs and hosts.

Pruning (``prune_patterns``) drops RS101/RS102 losers and returns the
kept rules (original match ids intact) plus an alias map from each
dropped id to its surviving subsumer, so a match stream from the pruned
compile can be checked event-for-event against the unpruned one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..automata.dfa import DfaExplosionError
from ..automata.nfa import NFA, build_nfa
from ..core.splitter import SplitterOptions
from ..fastcompile.bitset import move_masks
from ..regex.analysis import alphabet, last_class, min_length, required_chains
from ..regex.ast import Pattern
from .explosion import _PRODUCT_CAP, PatternCensus, _census_one
from .report import ERROR, INFO, WARNING, AnalysisReport

__all__ = [
    "Containment",
    "InteractionEdge",
    "RulesetResult",
    "ShardPlan",
    "SubsumptionWitness",
    "analyze_ruleset",
    "pattern_contains",
    "plan_shards",
    "prune_patterns",
]

COMPONENT = "ruleset"

# Product-walk budget per rule pair.  Per-rule NFAs are small (one rule
# each), so real pairs determinize in well under a thousand product
# states; the budget exists for pathological counted forms.
DEFAULT_PAIR_BUDGET = 20_000

# How many full product walks one analysis may spend.  The cheap
# necessary-condition screens (min length, last byte class, anchor
# shape) reject the vast majority of the O(n^2) pairs first; this caps
# the survivors on adversarial sets, surfacing as RS110.
DEFAULT_MAX_PAIRS = 2_000

# Largest cluster the RS103 union-shadowing check will build a union NFA
# for; beyond this the check is skipped (census still reports the
# cluster).
_MAX_UNION_CLUSTER = 8

# Witness replay compiles the two-rule (or cluster) MFA under this state
# budget before falling back to the reference NFA.
_REPLAY_STATE_BUDGET = 20_000

# Literal-head clustering key length: rules whose required literal heads
# share this many leading bytes land in one cluster.
_HEAD_KEY_BYTES = 3


# -- per-rule automaton ----------------------------------------------------


@dataclass(slots=True)
class _RuleAutomaton:
    """One rule's NFA packed into int masks for subset walks."""

    group_of: Sequence[int]  # byte -> alphabet group
    moves: list[list[int]]  # state -> group -> successor mask
    initial: int  # initial state mask
    mid: int  # states that report a (mid-stream) match
    end: int  # states that report only at end of input


def _prepare(patterns: Sequence[Pattern]) -> _RuleAutomaton:
    """Pack the NFA of ``patterns`` (ids ignored) into subset-walk masks."""
    nfa: NFA = build_nfa([p.with_id(1) for p in patterns])
    group_of, representatives = nfa.alphabet_groups()
    moves = move_masks(nfa, representatives)
    initial = 0
    for q in nfa.initial:
        initial |= 1 << q
    mid = 0
    end = 0
    for q in range(nfa.n_states):
        if nfa.accepts[q]:
            mid |= 1 << q
        if nfa.accepts_end[q]:
            end |= 1 << q
    return _RuleAutomaton(group_of, moves, initial, mid, end)


def _successor(auto: _RuleAutomaton, mask: int, group: int) -> int:
    out = 0
    moves = auto.moves
    rest = mask
    while rest:
        low = rest & -rest
        out |= moves[low.bit_length() - 1][group]
        rest ^= low
    return out


# -- the containment oracle ------------------------------------------------


@dataclass(frozen=True, slots=True)
class Containment:
    """Result of one event-containment walk (does A fire wherever B does?)."""

    contains: bool
    bounded: bool  # budget hit before the walk closed; ``contains`` unproven
    states: int  # product states explored
    witness: Optional[bytes]  # shortest input on which B fires
    refutation: Optional[bytes]  # shortest input where B fires and A does not


def _contains(
    auto_a: _RuleAutomaton,
    auto_b: _RuleAutomaton,
    budget: int,
) -> Containment:
    """BFS the determinized product of two packed NFAs.

    Checks, at every reachable non-initial product state: if B reports a
    mid-stream match, A must too (same position); if B reports at end of
    input, A must report mid or at end.  The BFS explores symbols in
    byte order (joint alphabet groups are discovered lowest-byte-first),
    so the recorded witness — the shortest input B accepts — and any
    refutation are deterministic.
    """
    # Joint alphabet: one representative byte per (group_a, group_b) pair,
    # discovered in byte order so representatives are the lowest bytes.
    seen_pairs: dict[tuple[int, int], int] = {}
    symbols: list[int] = []
    for byte in range(256):
        key = (auto_a.group_of[byte], auto_b.group_of[byte])
        if key not in seen_pairs:
            seen_pairs[key] = len(symbols)
            symbols.append(byte)

    start = (auto_a.initial, auto_b.initial)
    parent: dict[tuple[int, int], tuple[tuple[int, int], int] | None] = {start: None}
    order: list[tuple[int, int]] = [start]
    witness: Optional[bytes] = None

    def path_to(node: tuple[int, int]) -> bytes:
        out: list[int] = []
        while True:
            link = parent[node]
            if link is None:
                break
            node, byte = link[0], link[1]
            out.append(byte)
        return bytes(reversed(out))

    head = 0
    while head < len(order):
        a, b = order[head]
        head += 1
        if head > 1:  # non-initial states are reached by >= 1 byte
            b_mid = b & auto_b.mid
            b_end = b & auto_b.end
            a_mid = a & auto_a.mid
            a_any = a & (auto_a.mid | auto_a.end)
            if b_mid and not a_mid:
                payload = path_to((a, b))
                if a & auto_a.end:
                    # A still end-accepts here, so the bare path is no
                    # counterexample if the input stops at this position;
                    # one more byte pushes the position mid-stream (B's
                    # mid event only depends on the prefix).
                    payload += bytes([symbols[0]])
                return Containment(False, False, len(order), witness, payload)
            if b_end and not a_any:
                return Containment(False, False, len(order), witness, path_to((a, b)))
            if witness is None and (b_mid or b_end):
                witness = path_to((a, b))
        for byte in symbols:
            nxt = (
                _successor(auto_a, a, auto_a.group_of[byte]),
                _successor(auto_b, b, auto_b.group_of[byte]),
            )
            if nxt not in parent:
                if len(parent) >= budget:
                    return Containment(True, True, len(order), witness, None)
                parent[nxt] = ((a, b), byte)
                order.append(nxt)
    return Containment(True, False, len(order), witness, None)


def pattern_contains(
    a: Pattern,
    b: Pattern,
    *,
    budget: int = DEFAULT_PAIR_BUDGET,
) -> Containment:
    """Does rule ``a`` fire at every position rule ``b`` fires, on any input?

    Exact (up to ``budget`` product states): both rules are compiled to
    NFAs exactly as the real pipeline compiles them (unanchored rules
    get the implicit ``.*`` prefix), and the determinized product is
    walked checking per-position event containment.
    """
    return _contains(_prepare([a]), _prepare([b]), budget)


def _shortest_match(auto: _RuleAutomaton, budget: int) -> Optional[bytes]:
    """Shortest non-empty input the packed NFA reports a match on."""
    trivially = _contains(auto, auto, budget)
    return trivially.witness


# -- pairwise screens ------------------------------------------------------


@dataclass(slots=True)
class _RuleFacts:
    """Cheap per-rule facts backing the necessary-condition screens."""

    index: int
    pattern: Pattern
    min_len: int
    last_bits: int  # CharClass bitmap of possible final match bytes
    alpha_bits: int  # CharClass bitmap of the rule alphabet
    head: bytes  # required literal head ("" when none)
    census: PatternCensus


def _head_literal(pattern: Pattern) -> bytes:
    """The rule's leading required literal bytes (empty when none).

    Uses the prefilter's required-chain cover: the first chain's
    single-byte classes give the literal head that drives prefix
    sharing in a combined DFA.
    """
    chains = required_chains(pattern.root)
    if not chains:
        return b""
    head: list[int] = []
    for cls in chains[0].classes:
        bits = cls.bits
        if bits == 0 or bits & (bits - 1):  # empty or more than one byte
            break
        head.append(bits.bit_length() - 1)
    return bytes(head)


def _facts(
    index: int,
    pattern: Pattern,
    splitter_options: Optional[SplitterOptions],
) -> _RuleFacts:
    return _RuleFacts(
        index=index,
        pattern=pattern,
        min_len=min_length(pattern.root),
        last_bits=last_class(pattern.root).bits,
        alpha_bits=alphabet(pattern.root).bits,
        head=_head_literal(pattern),
        census=_census_one(pattern, splitter_options),
    )


def _may_contain(a: _RuleFacts, b: _RuleFacts) -> bool:
    """Necessary conditions for ``a`` to event-contain ``b`` (sound screen).

    * B's earliest possible fire is at position ``min_len(B) - 1``; A can
      only fire there if some A-word of length <= min_len(B) exists.
    * Every fire of B ends on a byte in B's last class; unless A can
      match the empty word, A's fire at the same position ends on a byte
      in A's last class — so B's last class must be a subset.
    * An end-anchored A reports only at the final byte; it cannot cover a
      B that reports mid-stream.
    """
    if a.min_len > b.min_len:
        return False
    if a.min_len > 0 and b.last_bits & ~a.last_bits:
        return False
    if a.pattern.end_anchored and not b.pattern.end_anchored:
        return False
    return True


# -- witnesses -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SubsumptionWitness:
    """A replayed byte stream proving keeper and dropped both fire."""

    keeper_id: int
    dropped_id: int
    kind: str  # "duplicate" | "subsumed" | "shadowed"
    payload: bytes
    engine: str  # "mfa" | "nfa" — which real engine replayed it
    confirmed: bool

    def to_dict(self) -> dict[str, object]:
        return {
            "keeper_id": self.keeper_id,
            "dropped_id": self.dropped_id,
            "kind": self.kind,
            "payload_hex": self.payload.hex(),
            "engine": self.engine,
            "confirmed": self.confirmed,
        }


def _render_payload(payload: bytes, limit: int = 24) -> str:
    shown = payload[:limit].hex()
    suffix = "…" if len(payload) > limit else ""
    return f"{len(payload)}B:{shown}{suffix}"


def _replay_pair(
    keeper: Pattern,
    dropped: Pattern,
    payload: bytes,
) -> tuple[bool, str]:
    """Replay ``payload`` through a real engine compiled from both rules.

    Confirms the containment proof end to end: the dropped rule fires at
    least once, and at every position it fires the keeper fires too.
    Tries the real MFA pipeline first, falling back to the reference NFA
    when the pair alone explodes the subset construction.
    """
    pair = [keeper.with_id(1), dropped.with_id(2)]
    from ..core.mfa import build_mfa  # lazy: core imports are heavy

    engine_name = "mfa"
    try:
        events = build_mfa(pair, state_budget=_REPLAY_STATE_BUDGET).run(payload)
    except DfaExplosionError:
        engine_name = "nfa"
        events = build_nfa(pair).run(payload)
    dropped_at = {e.pos for e in events if e.match_id == 2}
    keeper_at = {e.pos for e in events if e.match_id == 1}
    confirmed = bool(dropped_at) and dropped_at <= keeper_at
    return confirmed, engine_name


def _replay_cluster(
    member: Pattern,
    others: Sequence[Pattern],
    payload: bytes,
) -> tuple[bool, str]:
    """Replay a shadowing witness: the member and >= 1 cluster peer fire."""
    rules = [member.with_id(1)] + [p.with_id(i + 2) for i, p in enumerate(others)]
    events = build_nfa(rules).run(payload)
    member_at = {e.pos for e in events if e.match_id == 1}
    union_at = {e.pos for e in events if e.match_id != 1}
    confirmed = bool(member_at) and member_at <= union_at
    return confirmed, "nfa"


# -- interaction graph and shard planning ----------------------------------


@dataclass(frozen=True, slots=True)
class InteractionEdge:
    """Predicted cost of co-locating two rules in one shard."""

    a: int  # match id
    b: int  # match id
    cost: int  # predicted combined-DFA state product (capped)
    reason: str  # "explosive-overlap" | "prefix-cluster"

    def to_dict(self) -> dict[str, object]:
        return {"a": self.a, "b": self.b, "cost": self.cost, "reason": self.reason}


@dataclass(slots=True)
class ShardPlan:
    """An assignment of rule indices (into the input order) to shards."""

    strategy: str
    assignments: list[list[int]]
    predicted_peaks: list[int]

    @property
    def peak(self) -> int:
        return max(self.predicted_peaks, default=0)

    def to_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "assignments": self.assignments,
            "predicted_peaks": self.predicted_peaks,
            "peak": self.peak,
        }


def _predicted_shard_cost(sizes: Sequence[int], factors: Sequence[int]) -> int:
    """EX1xx-style predicted states of one shard: base size times the
    product of the members' surviving separator factors."""
    base = 1 + sum(sizes)
    product = 1
    for factor in factors:
        product *= max(1, factor)
        if product >= _PRODUCT_CAP:
            return _PRODUCT_CAP
    return min(_PRODUCT_CAP, base * product)


def _cluster_indices(facts: Sequence[_RuleFacts]) -> list[list[int]]:
    """Group rule indices by shared literal-head prefix (>= 1 byte head)."""
    by_key: dict[bytes, list[int]] = {}
    for f in facts:
        if f.head:
            by_key.setdefault(f.head[:_HEAD_KEY_BYTES], []).append(f.index)
    return [members for _, members in sorted(by_key.items()) if len(members) > 1]


def _interaction_edges(facts: Sequence[_RuleFacts], clusters: Sequence[Sequence[int]]) -> list[InteractionEdge]:
    edges: list[InteractionEdge] = []
    explosive = [f for f in facts if f.census.residual_factor > 1]
    for i, fa in enumerate(explosive):
        for fb in explosive[i + 1 :]:
            if not fa.alpha_bits & fb.alpha_bits:
                continue  # disjoint alphabets cannot co-activate
            cost = min(
                _PRODUCT_CAP,
                (fa.census.size + fb.census.size)
                * fa.census.residual_factor
                * fb.census.residual_factor,
            )
            edges.append(
                InteractionEdge(
                    fa.pattern.match_id, fb.pattern.match_id, cost, "explosive-overlap"
                )
            )
    for members in clusters:
        for i, ia in enumerate(members):
            for ib in members[i + 1 :]:
                edges.append(
                    InteractionEdge(
                        facts[ia].pattern.match_id,
                        facts[ib].pattern.match_id,
                        facts[ia].census.size + facts[ib].census.size,
                        "prefix-cluster",
                    )
                )
    edges.sort(key=lambda e: (-e.cost, e.a, e.b))
    return edges


def plan_shards(
    patterns: Sequence[Pattern],
    shards: int,
    *,
    splitter_options: Optional[SplitterOptions] = None,
) -> ShardPlan:
    """Interaction-aware shard assignment for ``compile_mfa_sharded``.

    Contiguous partitioning is cache-friendly but oblivious: rule sets
    grow by appending, so correlated explosive rules land in the same
    chunk and the subset construction pays their *product*.  This
    planner spreads rules with surviving separator factors across
    shards (greedy: each unit goes to the shard whose predicted cost
    grows least) while keeping literal-head clusters together so their
    shared prefixes still share states.  Deterministic: ties break to
    the lowest shard index, units order by weight, size, then position.

    The returned assignments are a permutation partition of
    ``range(len(patterns))`` — match ids are assigned globally before
    partitioning, so any plan preserves the merged match stream.
    """
    n = len(patterns)
    if n == 0:
        return ShardPlan("interaction", [], [])
    shards = max(1, min(shards, n))
    facts = [_facts(i, p, splitter_options) for i, p in enumerate(patterns)]
    clusters = _cluster_indices(facts)

    # Units: explosive rules ride alone (isolating them is the point);
    # remaining cluster members stay together; the rest are singletons.
    in_cluster: set[int] = set()
    units: list[list[int]] = []
    for members in clusters:
        calm = [i for i in members if facts[i].census.residual_factor <= 1]
        if len(calm) > 1:
            units.append(calm)
            in_cluster.update(calm)
    for f in facts:
        if f.index not in in_cluster:
            units.append([f.index])

    def unit_key(unit: list[int]) -> tuple[int, int, int]:
        weight = 1
        for i in unit:
            weight *= max(1, facts[i].census.residual_factor)
        size = sum(facts[i].census.size for i in unit)
        return (-weight, -size, min(unit))

    units.sort(key=unit_key)

    shard_sizes: list[list[int]] = [[] for _ in range(shards)]
    shard_factors: list[list[int]] = [[] for _ in range(shards)]
    assignments: list[list[int]] = [[] for _ in range(shards)]
    for unit in units:
        sizes = [facts[i].census.size for i in unit]
        factors = [facts[i].census.residual_factor for i in unit]
        best = 0
        best_cost = -1
        for s in range(shards):
            cost = _predicted_shard_cost(shard_sizes[s] + sizes, shard_factors[s] + factors)
            if best_cost < 0 or cost < best_cost or (
                cost == best_cost and len(assignments[s]) < len(assignments[best])
            ):
                best = s
                best_cost = cost
        assignments[best].extend(unit)
        shard_sizes[best].extend(sizes)
        shard_factors[best].extend(factors)

    for chunk in assignments:
        chunk.sort()
    populated = [(chunk, _predicted_shard_cost(
        [facts[i].census.size for i in chunk],
        [facts[i].census.residual_factor for i in chunk],
    )) for chunk in assignments if chunk]
    return ShardPlan(
        "interaction",
        [chunk for chunk, _ in populated],
        [peak for _, peak in populated],
    )


def contiguous_plan(
    patterns: Sequence[Pattern],
    shards: int,
    *,
    splitter_options: Optional[SplitterOptions] = None,
) -> ShardPlan:
    """The default contiguous partition, scored with the same cost model."""
    n = len(patterns)
    if n == 0:
        return ShardPlan("contiguous", [], [])
    shards = max(1, min(shards, n))
    facts = [_facts(i, p, splitter_options) for i, p in enumerate(patterns)]
    base = n // shards
    extra = n % shards
    assignments = []
    start = 0
    for s in range(shards):
        size = base + (1 if s < extra else 0)
        assignments.append(list(range(start, start + size)))
        start += size
    peaks = [
        _predicted_shard_cost(
            [facts[i].census.size for i in chunk],
            [facts[i].census.residual_factor for i in chunk],
        )
        for chunk in assignments
    ]
    return ShardPlan("contiguous", assignments, peaks)


# -- the analysis ----------------------------------------------------------


@dataclass(slots=True)
class RulesetResult:
    """Everything one cross-rule analysis pass proved."""

    patterns: tuple[Pattern, ...]
    report: AnalysisReport
    duplicates: list[tuple[int, int]] = field(default_factory=list)  # (keeper, dropped) ids
    subsumed: list[tuple[int, int]] = field(default_factory=list)  # (keeper, dropped) ids
    shadowed: list[tuple[int, tuple[int, ...]]] = field(default_factory=list)
    witnesses: list[SubsumptionWitness] = field(default_factory=list)
    clusters: list[list[int]] = field(default_factory=list)  # rule indices
    edges: list[InteractionEdge] = field(default_factory=list)
    pairs_walked: int = 0
    pairs_screened: int = 0
    pairs_skipped: int = 0

    @property
    def alias(self) -> dict[int, int]:
        """Dropped match id -> surviving keeper id, chains resolved."""
        raw: dict[int, int] = {}
        for keeper, dropped in self.duplicates + self.subsumed:
            raw.setdefault(dropped, keeper)
        resolved: dict[int, int] = {}
        for dropped in raw:
            keeper = raw[dropped]
            hops = 0
            while keeper in raw and hops <= len(raw):
                keeper = raw[keeper]
                hops += 1
            resolved[dropped] = keeper
        return resolved

    def to_dict(self) -> dict[str, object]:
        return {
            "n_rules": len(self.patterns),
            "report": self.report.to_dict(),
            "duplicates": [list(pair) for pair in self.duplicates],
            "subsumed": [list(pair) for pair in self.subsumed],
            "shadowed": [[rule, list(others)] for rule, others in self.shadowed],
            "witnesses": [w.to_dict() for w in self.witnesses],
            "clusters": self.clusters,
            "edges": [e.to_dict() for e in self.edges],
            "alias": {str(k): v for k, v in sorted(self.alias.items())},
            "pairs": {
                "walked": self.pairs_walked,
                "screened_out": self.pairs_screened,
                "skipped": self.pairs_skipped,
            },
        }


def _label(pattern: Pattern) -> str:
    return f"rule {pattern.match_id}"


def analyze_ruleset(
    patterns: Sequence[Pattern],
    *,
    splitter_options: Optional[SplitterOptions] = None,
    pair_budget: int = DEFAULT_PAIR_BUDGET,
    max_pairs: int = DEFAULT_MAX_PAIRS,
    replay: bool = True,
    report: Optional[AnalysisReport] = None,
) -> RulesetResult:
    """Run the full cross-rule pass: subsumption, shadowing, interaction.

    Never raises on analysis trouble — walk budgets surface as RS110
    findings.  ``replay=False`` skips engine replay of witnesses (the
    walk proof stands alone); the CLI and lint sweeps keep it on so
    every RS101/RS102 on tracked sets is replay-confirmed.
    """
    if report is None:
        report = AnalysisReport()
    result = RulesetResult(tuple(patterns), report)
    n = len(patterns)
    if n == 0:
        report.add("RS130", INFO, COMPONENT, "empty rule set: nothing to analyze")
        return result

    facts = [_facts(i, p, splitter_options) for i, p in enumerate(patterns)]
    autos: list[Optional[_RuleAutomaton]] = [None] * n

    def auto_of(i: int) -> _RuleAutomaton:
        cached = autos[i]
        if cached is None:
            cached = _prepare([patterns[i]])
            autos[i] = cached
        return cached

    # Pass 1: exact structural duplicates (cheap, no walks needed).
    by_shape: dict[tuple[object, bool, bool], int] = {}
    duplicate_of: dict[int, int] = {}  # index -> keeper index
    for i, p in enumerate(patterns):
        shape = (p.root, p.anchored, p.end_anchored)
        keeper = by_shape.setdefault(shape, i)
        if keeper != i:
            duplicate_of[i] = keeper

    # Pass 2: pairwise containment walks behind the screens.
    contained_by: dict[int, int] = {}  # subsumed index -> keeper index
    walks = 0
    budget_hit = False

    def walk(ka: int, kb: int) -> Optional[Containment]:
        """One budgeted product walk, or None once the pair budget is gone."""
        nonlocal walks, budget_hit
        if walks >= max_pairs:
            result.pairs_skipped += 1
            budget_hit = True
            return None
        walks += 1
        verdict = _contains(auto_of(ka), auto_of(kb), pair_budget)
        if verdict.bounded:
            budget_hit = True
        return verdict

    for i in range(n):
        if i in duplicate_of or i in contained_by:
            continue
        for j in range(i + 1, n):
            if j in duplicate_of or j in contained_by:
                continue
            fwd_ok = _may_contain(facts[i], facts[j])
            rev_ok = _may_contain(facts[j], facts[i])
            if not fwd_ok and not rev_ok:
                result.pairs_screened += 1
                continue
            fwd = walk(i, j) if fwd_ok else None
            if fwd is not None and fwd.contains and not fwd.bounded:
                rev = walk(j, i) if rev_ok else None
                if rev is not None and rev.contains and not rev.bounded:
                    duplicate_of[j] = i  # semantic duplicate, lower id keeps
                else:
                    contained_by[j] = i
                continue
            if rev_ok:
                rev = walk(j, i)
                if rev is not None and rev.contains and not rev.bounded:
                    contained_by[i] = j
                    break  # i is gone; stop scanning its row
    result.pairs_walked = walks

    # Pass 3: clusters, union shadowing, interaction graph.
    clusters = _cluster_indices(facts)
    result.clusters = clusters
    redundant = set(duplicate_of) | set(contained_by)
    shadowed: dict[int, tuple[int, ...]] = {}
    for members in clusters:
        if len(members) < 3 or len(members) > _MAX_UNION_CLUSTER:
            continue
        for idx in members:
            if idx in redundant or idx in shadowed:
                continue
            others = [m for m in members if m != idx and m not in redundant]
            if len(others) < 2:
                continue
            union = _prepare([patterns[m] for m in others])
            verdict = _contains(union, auto_of(idx), pair_budget)
            if verdict.bounded:
                budget_hit = True
            elif verdict.contains:
                shadowed[idx] = tuple(others)
    result.edges = _interaction_edges(facts, clusters)

    # Findings + witnesses.
    for dropped_idx in sorted(duplicate_of):
        keeper_idx = duplicate_of[dropped_idx]
        keeper, dropped = patterns[keeper_idx], patterns[dropped_idx]
        payload = _shortest_match(auto_of(dropped_idx), pair_budget)
        if _emit_pair(
            result,
            "RS101",
            "duplicate",
            keeper,
            dropped,
            payload,
            replay,
            f"duplicate of {_label(keeper)} ({keeper.source!r}): "
            f"identical match events on every input",
        ):
            result.duplicates.append((keeper.match_id, dropped.match_id))
    for dropped_idx in sorted(contained_by):
        keeper_idx = contained_by[dropped_idx]
        keeper, dropped = patterns[keeper_idx], patterns[dropped_idx]
        payload = _shortest_match(auto_of(dropped_idx), pair_budget)
        if _emit_pair(
            result,
            "RS102",
            "subsumed",
            keeper,
            dropped,
            payload,
            replay,
            f"subsumed by {_label(keeper)} ({keeper.source!r}): wherever this "
            f"rule fires, {_label(keeper)} fires at the same position",
        ):
            result.subsumed.append((keeper.match_id, dropped.match_id))
    for idx in sorted(shadowed):
        others = shadowed[idx]
        member = patterns[idx]
        payload = _shortest_match(auto_of(idx), pair_budget)
        other_ids = tuple(patterns[m].match_id for m in others)
        confirmed, engine = (False, "none")
        if payload is not None and replay:
            confirmed, engine = _replay_cluster(
                member, [patterns[m] for m in others], payload
            )
            result.witnesses.append(
                SubsumptionWitness(
                    other_ids[0], member.match_id, "shadowed", payload, engine, confirmed
                )
            )
        report.add(
            "RS103",
            WARNING,
            COMPONENT,
            f"shadowed by the union of its literal-head cluster "
            f"(rules {', '.join(str(i) for i in other_ids)}): every match "
            f"position is already reported by a cluster peer"
            + (f"; witness {_render_payload(payload)}" if payload else ""),
            _label(member),
        )
        result.shadowed.append((member.match_id, other_ids))

    if budget_hit or result.pairs_skipped:
        report.add(
            "RS110",
            WARNING,
            COMPONENT,
            f"analysis bounded: {walks} pair walk(s) run, "
            f"{result.pairs_skipped} pair(s) skipped at the "
            f"{max_pairs}-pair budget; unchecked pairs may hide "
            f"duplicates or subsumption",
        )
    n_explosive = sum(1 for f in facts if f.census.residual_factor > 1)
    report.add(
        "RS130",
        INFO,
        COMPONENT,
        f"{n} rule(s): {len(result.duplicates)} duplicate, "
        f"{len(result.subsumed)} subsumed, {len(result.shadowed)} shadowed, "
        f"{len(clusters)} literal-head cluster(s), {n_explosive} rule(s) "
        f"with surviving separator factors, {len(result.edges)} interaction "
        f"edge(s); {walks} pair walk(s), {result.pairs_screened} pair(s) "
        f"screened out",
    )
    return result


def _emit_pair(
    result: RulesetResult,
    code: str,
    kind: str,
    keeper: Pattern,
    dropped: Pattern,
    payload: Optional[bytes],
    replay: bool,
    message: str,
) -> bool:
    """Emit one RS101/RS102 finding; False when replay refuted the proof."""
    suffix = ""
    if payload is not None:
        if replay:
            confirmed, engine = _replay_pair(keeper, dropped, payload)
            result.witnesses.append(
                SubsumptionWitness(
                    keeper.match_id, dropped.match_id, kind, payload, engine, confirmed
                )
            )
            if not confirmed:
                result.report.add(
                    "RS100",
                    ERROR,
                    COMPONENT,
                    f"witness replay through the {engine} engine failed to "
                    f"confirm the containment proof against {_label(keeper)} "
                    f"on {_render_payload(payload)} — analyzer/engine drift",
                    _label(dropped),
                )
                return False
            suffix = f"; replay-confirmed witness {_render_payload(payload)} ({engine})"
        else:
            suffix = f"; witness {_render_payload(payload)}"
    result.report.add(code, WARNING, COMPONENT, message + suffix, _label(dropped))
    return True


# -- pruning ---------------------------------------------------------------


def prune_patterns(
    patterns: Sequence[Pattern],
    result: RulesetResult,
) -> tuple[list[Pattern], dict[int, int]]:
    """Drop RS101/RS102 losers; keep original match ids on survivors.

    Returns the kept rules and the alias map (dropped id -> surviving
    keeper id).  Because containment was proved per-position, the
    unpruned stream maps onto the pruned one exactly: kept-id events are
    identical, and every dropped-id event at position ``p`` implies a
    kept ``(p, alias[id])`` event.
    """
    alias = result.alias
    kept = [p for p in patterns if p.match_id not in alias]
    return kept, alias


def map_stream(
    events: Sequence[object],
    alias: dict[int, int],
) -> set[tuple[int, int]]:
    """Project an unpruned match stream into pruned-id space.

    Each event must expose ``pos`` and ``match_id`` (``MatchEvent``
    does).  Dropped ids map to their keeper; duplicates collapse.
    """
    out: set[tuple[int, int]] = set()
    for event in events:
        pos = int(getattr(event, "pos"))
        match_id = int(getattr(event, "match_id"))
        out.add((pos, alias.get(match_id, match_id)))
    return out
