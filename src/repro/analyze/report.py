"""Findings and reports for the static-analysis pass.

Every analyzer in :mod:`repro.analyze` emits :class:`Finding` objects into
an :class:`AnalysisReport`.  A finding is one provable fact about an
artifact — "filter action 7 tests bit 3 but no action ever sets bit 3" —
with a stable machine code, a severity, and a location inside the named
component.  Reports render two ways: ``describe()`` for humans and the
CLI, ``to_dict()``/``to_json()`` for CI logs and tests.

Finding order is **deterministic**: reports sort by (severity rank, code,
component, location, message), so two runs over the same artifact produce
byte-identical JSON — a hard requirement for diffable CI gate logs.

Code namespaces (see ``docs/static-analysis.md`` for the full registry):

* ``BN*`` — bundle framing (magic, lengths, JSON syntax)
* ``FB*`` — filter-bytecode verifier (:mod:`repro.analyze.bytecode`)
* ``AU*`` — automaton invariants (:mod:`repro.analyze.automaton`)
* ``DS*`` — decomposition-safety audit (:mod:`repro.analyze.safety`)
* ``EX*`` — explosion triage (:mod:`repro.analyze.explosion`)
* ``EQ*`` — equivalence prover (:mod:`repro.analyze.equivalence`)
* ``AV*`` — adversarial worst-case audit (:mod:`repro.analyze.adversary`)
* ``RS*`` — cross-rule interaction analysis (:mod:`repro.analyze.ruleset`)
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["ERROR", "WARNING", "INFO", "SEVERITIES", "Finding", "AnalysisReport"]

ERROR = "error"
WARNING = "warning"
INFO = "info"

# Rank order for sorting and gating: errors first.
SEVERITIES: tuple[str, ...] = (ERROR, WARNING, INFO)
_SEVERITY_RANK = {severity: rank for rank, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True, slots=True)
class Finding:
    """One statically-proven fact about an artifact.

    ``component`` names what was audited (``filter``, ``dfa``, ``split``,
    ``ruleset``, ``bundle``); ``location`` pins the finding inside it
    (``action 7``, ``state 12``, ``rule 3``) and may be empty for
    whole-component findings.
    """

    code: str
    severity: str
    component: str
    message: str
    location: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def sort_key(self) -> tuple:
        return (
            _SEVERITY_RANK[self.severity],
            self.code,
            self.component,
            self.location,
            self.message,
        )

    def describe(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity.upper():7s} {self.code} {self.component}{where}: {self.message}"

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity,
            "component": self.component,
            "location": self.location,
            "message": self.message,
        }


class AnalysisReport:
    """An ordered, mergeable collection of findings.

    ``findings`` is always returned in the deterministic sort order, no
    matter the order analyzers ran or merged in.
    """

    def __init__(self, findings: Iterable[Finding] = ()):
        self._findings: list[Finding] = list(findings)

    # -- building ------------------------------------------------------------

    def add(
        self,
        code: str,
        severity: str,
        component: str,
        message: str,
        location: str = "",
    ) -> Finding:
        finding = Finding(code, severity, component, message, location)
        self._findings.append(finding)
        return finding

    def extend(self, other: "AnalysisReport | Iterable[Finding]") -> "AnalysisReport":
        findings = other._findings if isinstance(other, AnalysisReport) else other
        self._findings.extend(findings)
        return self

    def relocated(self, prefix: str) -> "AnalysisReport":
        """A copy with every location prefixed (e.g. ``shard 2: state 5``)."""
        return AnalysisReport(
            Finding(
                f.code,
                f.severity,
                f.component,
                f.message,
                f"{prefix}: {f.location}" if f.location else prefix,
            )
            for f in self._findings
        )

    # -- reading -------------------------------------------------------------

    @property
    def findings(self) -> list[Finding]:
        return sorted(self._findings, key=lambda f: f.sort_key)

    def __iter__(self) -> Iterator[Finding]:
        return iter(self.findings)

    def __len__(self) -> int:
        return len(self._findings)

    def __bool__(self) -> bool:
        return bool(self._findings)

    def by_severity(self, severity: str) -> list[Finding]:
        return [f for f in self.findings if f.severity == severity]

    @property
    def errors(self) -> list[Finding]:
        return self.by_severity(ERROR)

    @property
    def warnings(self) -> list[Finding]:
        return self.by_severity(WARNING)

    @property
    def has_errors(self) -> bool:
        return any(f.severity == ERROR for f in self._findings)

    def counts(self) -> dict[str, int]:
        out = {severity: 0 for severity in SEVERITIES}
        for finding in self._findings:
            out[finding.severity] += 1
        return out

    # -- rendering -----------------------------------------------------------

    def to_dict(self) -> dict:
        counts = self.counts()
        return {
            "findings": [f.to_dict() for f in self.findings],
            "counts": counts,
            "ok": counts[ERROR] == 0,
        }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def describe(self) -> list[str]:
        counts = self.counts()
        lines = [
            f"{len(self._findings)} finding(s): "
            f"{counts[ERROR]} error, {counts[WARNING]} warning, {counts[INFO]} info"
        ]
        lines.extend(finding.describe() for finding in self.findings)
        if not self._findings:
            lines.append("clean: no findings")
        return lines
