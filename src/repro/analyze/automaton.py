"""Static invariant checker for compiled automata (DFA / MFA / ShardedMFA).

Everything here is provable from the transition table alone:

* **table completeness** — every state owns a full 256-entry row, every
  target (and the start state) lands inside the table;
* **reachability** — states unreachable from the start state are flagged
  (they inflate the image for nothing), states that can never reach a
  decision are reported at info severity (one sink is normal for anchored
  rule sets);
* **referential integrity** — with a filter program in hand, every
  match-id the DFA can emit must be meaningful to the filter (an action
  or a final id), and every filter action must be triggerable by some
  decision set;
* **serialize fixpoint** — ``dumps → loads → dumps`` must be
  byte-identical, the contract the offline-compile/data-plane split
  relies on.
"""

from __future__ import annotations

from ..automata.dfa import DFA
from .bytecode import RawProgram, analyze_program, raw_program
from .report import ERROR, INFO, WARNING, AnalysisReport

__all__ = ["analyze_dfa", "analyze_mfa", "analyze_engine"]

COMPONENT = "dfa"


def analyze_dfa(
    dfa: DFA,
    program: "RawProgram | None" = None,
    report: AnalysisReport | None = None,
    roundtrip: bool = True,
) -> AnalysisReport:
    """Audit one DFA's invariants; ``program`` adds referential checks."""
    out = report if report is not None else AnalysisReport()
    structure_ok = _check_table(dfa, out)
    if structure_ok:
        _check_reachability(dfa, out)
        _check_groups(dfa, out)
    if program is not None:
        _check_referential(dfa, program, out)
    if roundtrip and structure_ok:
        _check_roundtrip(dfa, out)
    return out


# -- table structure ----------------------------------------------------------


def _check_table(dfa: DFA, out: AnalysisReport) -> bool:
    n = dfa.n_states
    ok = True
    if n == 0:
        out.add("AU103", ERROR, COMPONENT, "automaton has no states at all")
        return False
    if not 0 <= dfa.start < n:
        out.add(
            "AU103", ERROR, COMPONENT, f"start state {dfa.start} outside [0,{n})"
        )
        ok = False
    for q, row in enumerate(dfa.rows):
        if len(row) != 256:
            out.add(
                "AU101",
                ERROR,
                COMPONENT,
                f"transition row has {len(row)} entries, want 256 "
                f"(incomplete alphabet coverage)",
                f"state {q}",
            )
            ok = False
            continue
        bad = next((t for t in row if not 0 <= t < n), None)
        if bad is not None:
            out.add(
                "AU102",
                ERROR,
                COMPONENT,
                f"transition targets state {bad} outside [0,{n})",
                f"state {q}",
            )
            ok = False
    for name, decisions in (("accepts", dfa.accepts), ("accepts_end", dfa.accepts_end)):
        if len(decisions) != n:
            out.add(
                "AU104",
                ERROR,
                COMPONENT,
                f"{name} covers {len(decisions)} states, want {n}",
            )
            ok = False
    return ok


# -- reachability -------------------------------------------------------------


def _check_reachability(dfa: DFA, out: AnalysisReport) -> None:
    n = dfa.n_states
    reachable = {dfa.start}
    frontier = [dfa.start]
    while frontier:
        state = frontier.pop()
        for target in set(dfa.rows[state]):
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    unreachable = [q for q in range(n) if q not in reachable]
    if unreachable:
        out.add(
            "AU110",
            WARNING,
            COMPONENT,
            f"{len(unreachable)} of {n} states unreachable from start "
            f"(first: state {unreachable[0]}): dead table weight",
        )
    # Co-reachability of a decision: states from which no accepting state
    # can ever be reached again.  One such sink is the normal fate of
    # anchored rule sets, so this is informational.
    deciding = [
        q for q in range(n) if dfa.accepts[q] or dfa.accepts_end[q]
    ]
    if not deciding:
        out.add(
            "AU112",
            WARNING,
            COMPONENT,
            "no state carries any decision: the automaton can never match",
        )
        return
    reverse: list[set[int]] = [set() for _ in range(n)]
    for src in range(n):
        for dst in set(dfa.rows[src]):
            reverse[dst].add(src)
    useful = set(deciding)
    frontier = list(deciding)
    while frontier:
        state = frontier.pop()
        for prev in reverse[state]:
            if prev not in useful:
                useful.add(prev)
                frontier.append(prev)
    dead = [q for q in sorted(reachable) if q not in useful]
    if dead:
        out.add(
            "AU111",
            INFO,
            COMPONENT,
            f"{len(dead)} reachable state(s) can never reach a decision "
            f"(first: state {dead[0]}); one sink is expected for anchored sets",
        )


def _check_groups(dfa: DFA, out: AnalysisReport) -> None:
    """The recorded byte->group map must agree with the actual columns."""
    if dfa.group_of_byte is None:
        return
    if len(dfa.group_of_byte) != 256:
        out.add(
            "AU130",
            ERROR,
            COMPONENT,
            f"group_of_byte maps {len(dfa.group_of_byte)} bytes, want 256",
        )
        return
    # Two bytes in one group must be indistinguishable in every row.
    representative: dict[int, int] = {}
    for byte, group in enumerate(dfa.group_of_byte):
        representative.setdefault(group, byte)
    for q, row in enumerate(dfa.rows):
        for byte, group in enumerate(dfa.group_of_byte):
            if row[byte] != row[representative[group]]:
                out.add(
                    "AU131",
                    ERROR,
                    COMPONENT,
                    f"byte {byte} and byte {representative[group]} share "
                    f"alphabet group {group} but disagree in state {q}",
                    f"state {q}",
                )
                return  # one witness is enough; this check is O(states*256)


# -- referential integrity ----------------------------------------------------


def _check_referential(dfa: DFA, program: RawProgram, out: AnalysisReport) -> None:
    emitted: set[int] = set()
    for decisions in dfa.accepts:
        emitted.update(decisions)
    for decisions in dfa.accepts_end:
        emitted.update(decisions)
    known = set(program.actions) | set(program.final_ids)
    for match_id in sorted(emitted - known):
        out.add(
            "AU120",
            ERROR,
            COMPONENT,
            f"decision emits match-id {match_id} that the filter neither "
            f"actions nor passes through (dangling id)",
        )
    for match_id in sorted(set(program.actions) - emitted):
        out.add(
            "AU121",
            WARNING,
            "filter",
            f"action {match_id} can never trigger: no DFA decision emits it",
        )


# -- serialize fixpoint -------------------------------------------------------


def _check_roundtrip(dfa: DFA, out: AnalysisReport) -> None:
    from ..automata.serialize import dumps_dfa, loads_dfa

    try:
        first = dumps_dfa(dfa)
        again = dumps_dfa(loads_dfa(first))
    except Exception as exc:  # noqa: BLE001 - any failure is the finding
        out.add(
            "AU140",
            ERROR,
            COMPONENT,
            f"serialize round-trip failed: {type(exc).__name__}: {exc}",
        )
        return
    if first != again:
        out.add(
            "AU140",
            ERROR,
            COMPONENT,
            "serialize round-trip is not a fixpoint: dumps(loads(dumps)) "
            "differs from dumps",
        )


# -- engine-level entry points ------------------------------------------------


def analyze_mfa(mfa, report: AnalysisReport | None = None) -> AnalysisReport:
    """Audit an MFA: bytecode + automaton + referential + bundle fixpoint."""
    out = report if report is not None else AnalysisReport()
    program = raw_program(mfa.program)
    analyze_program(program, out)
    analyze_dfa(mfa.dfa, program, out, roundtrip=False)
    _check_bundle_roundtrip(mfa, out)
    if mfa.split.decompositions:
        from .safety import audit_split

        audit_split(mfa.split, out)
    return out


def _check_bundle_roundtrip(mfa, out: AnalysisReport) -> None:
    from ..core.serialize import dumps_mfa, loads_mfa

    try:
        first = dumps_mfa(mfa)
        again = dumps_mfa(loads_mfa(first))
    except Exception as exc:  # noqa: BLE001
        out.add(
            "AU140",
            ERROR,
            "bundle",
            f"bundle round-trip failed: {type(exc).__name__}: {exc}",
        )
        return
    if first != again:
        out.add(
            "AU140",
            ERROR,
            "bundle",
            "bundle round-trip is not a fixpoint: dumps(loads(dumps)) differs",
        )


def analyze_engine(engine, report: AnalysisReport | None = None) -> AnalysisReport:
    """Dispatch on engine type: MFA, ShardedMFA, plain DFA, or other."""
    out = report if report is not None else AnalysisReport()
    from ..core.mfa import MFA

    if isinstance(engine, MFA):
        return analyze_mfa(engine, out)
    if isinstance(engine, DFA):
        return analyze_dfa(engine, report=out)
    shards = getattr(engine, "shards", None)
    if shards is not None:
        for index, shard in enumerate(shards):
            out.extend(analyze_engine(shard).relocated(f"shard {index}"))
        return out
    out.add(
        "AU100",
        INFO,
        "engine",
        f"no static checks for engine type {type(engine).__name__}",
    )
    return out
