"""Rule-set explosion triage: predict state blow-up before compiling.

The resilient compiler's historical posture is try-fail-fallback: burn a
full subset construction against each budget, catch
:class:`~repro.automata.dfa.DfaExplosionError`, escalate, repeat.  This
module gives it a *predictive* signal instead, from three static
measurements the state-explosion literature ties to blow-up:

* **separator census** — internal dot-star / almost-dot-star separators
  multiply the reachable subset space: each one adds a "prefix already
  seen" flag the subset construction tracks concurrently with every other
  pattern's progress, so each non-decomposable separator contributes a
  multiplicative factor of two;
* **counted repetitions** — ``.{n,m}`` contributes ``m`` states per
  nesting level and squares under interaction;
* **class-overlap density** — the fraction of pattern pairs whose
  alphabets intersect; disjoint-alphabet patterns cannot co-activate, so
  a low density discounts the interaction product.

Two bounds come out: ``predicted_dfa_states`` for the plain (undecomposed)
DFA and ``predicted_mfa_states`` for the component DFA after every
separator that passes the safety re-check has been split off.  The
second is what :class:`~repro.robust.pipeline.ResilientCompiler` compares
against its budget schedule to skip hopeless attempts up front.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..automata.dfa import DEFAULT_STATE_BUDGET
from ..regex.analysis import alphabet
from ..regex.ast import ClassNode, Node, Pattern, Repeat, node_size
from ..core.splitter import SplitterOptions, split_patterns
from .report import INFO, WARNING, AnalysisReport

__all__ = ["PatternCensus", "TriageResult", "triage_patterns", "RISK_LOW", "RISK_MEDIUM", "RISK_HIGH"]

COMPONENT = "ruleset"

RISK_LOW = "low"
RISK_MEDIUM = "medium"
RISK_HIGH = "high"

# Interaction products are capped here: beyond any realistic budget, the
# exact magnitude stops mattering and would only overflow JSON consumers.
_PRODUCT_CAP = 10**15


@dataclass(frozen=True, slots=True)
class PatternCensus:
    """Static complexity measurements of one pattern."""

    match_id: int
    source: str
    size: int                   # AST node count (~ NFA state proxy)
    n_dot_star: int             # top-level .* separators
    n_almost: int               # top-level [^X]* separators
    n_counted: int              # top-level .{n,m} separators
    counted_span: int           # total bounded-repetition span anywhere
    anchored: bool
    raw_factor: int             # multiplicative factor, nothing decomposed
    residual_factor: int        # factor left after provable decompositions

    @property
    def explosive(self) -> bool:
        return self.raw_factor > 1

    def to_dict(self) -> dict:
        return {
            "match_id": self.match_id,
            "source": self.source,
            "size": self.size,
            "n_dot_star": self.n_dot_star,
            "n_almost": self.n_almost,
            "n_counted": self.n_counted,
            "counted_span": self.counted_span,
            "anchored": self.anchored,
            "raw_factor": self.raw_factor,
            "residual_factor": self.residual_factor,
        }


@dataclass(slots=True)
class TriageResult:
    """The triager's verdict over one rule set."""

    risk: str
    predicted_dfa_states: int
    predicted_mfa_states: int
    overlap_density: float
    state_budget: int
    census: list[PatternCensus] = field(default_factory=list)
    report: AnalysisReport = field(default_factory=AnalysisReport)

    @property
    def dfa_feasible(self) -> bool:
        return self.predicted_dfa_states <= self.state_budget

    @property
    def mfa_feasible(self) -> bool:
        return self.predicted_mfa_states <= self.state_budget

    def to_dict(self) -> dict:
        return {
            "risk": self.risk,
            "predicted_dfa_states": self.predicted_dfa_states,
            "predicted_mfa_states": self.predicted_mfa_states,
            "overlap_density": round(self.overlap_density, 4),
            "state_budget": self.state_budget,
            "n_explosive": sum(1 for c in self.census if c.explosive),
            "findings": [f.to_dict() for f in self.report],
        }

    def describe(self) -> list[str]:
        lines = [
            f"triage: risk={self.risk}, predicted states "
            f"dfa~{self.predicted_dfa_states} mfa~{self.predicted_mfa_states} "
            f"(budget {self.state_budget}), overlap density "
            f"{self.overlap_density:.2f}"
        ]
        lines.extend(f.describe() for f in self.report)
        return lines


# -- per-pattern census -------------------------------------------------------


def _top_parts(root: Node) -> tuple[Node, ...]:
    from ..regex import ast as _ast

    if isinstance(root, _ast.Concat):
        return root.parts
    if isinstance(root, _ast.Empty):
        return ()
    return (root,)


def _separator_kind(part: Node) -> Optional[str]:
    """Classify a top-level part the way the splitter would, independently."""
    if not isinstance(part, Repeat) or not isinstance(part.child, ClassNode):
        return None
    klass = part.child.cls
    if part.min == 0 and part.max is None:
        if klass.is_full():
            return "dot"
        if 0 < len(~klass) < 128:
            return "almost"
        return None
    if klass.is_full() and part.min > 0:
        return "counted"
    return None


def _counted_span(node: Node) -> int:
    """Total span of bounded repetitions anywhere in the tree."""
    if isinstance(node, Repeat):
        inner = _counted_span(node.child)
        if node.max is not None and node.max > 1:
            return node.max * max(1, inner)
        return inner
    parts: tuple[Node, ...] = ()
    if hasattr(node, "parts"):
        parts = node.parts
    elif hasattr(node, "options"):
        parts = node.options
    return sum(_counted_span(p) for p in parts)


def _interaction_factor(parts: Sequence[Node]) -> int:
    """``2**s`` where ``s`` counts the pattern's *internal* separators.

    A leading ``.*`` only says "unanchored" — Aho-Corasick-style additive
    — so leading separators are stripped first.  Every separator after
    that adds one "prefix already seen" flag the subset construction must
    track concurrently with all other patterns' progress: a binary
    dimension of the state space, i.e. a factor of two (the law the
    explosion sweep in :mod:`repro.bench.sweep` measures empirically).
    """
    index = 0
    while index < len(parts) and _separator_kind(parts[index]) is not None:
        index += 1
    internal = sum(
        1 for part in parts[index:] if _separator_kind(part) is not None
    )
    return 1 << min(internal, 50)


def _census_one(
    pattern: Pattern, splitter_options: SplitterOptions | None
) -> PatternCensus:
    parts = _top_parts(pattern.root)
    kinds = [k for k in (_separator_kind(p) for p in parts) if k is not None]
    raw_factor = 1 if pattern.anchored else _interaction_factor(parts)
    residual_factor = raw_factor
    if raw_factor > 1:
        # How much of the blow-up does decomposition provably remove?  Run
        # the splitter on this one pattern (cheap: no DFA build) and
        # re-measure the factor over the surviving components.
        try:
            result = split_patterns([pattern], splitter_options)
        except Exception:  # noqa: BLE001 - unsplittable counts as residual
            result = None
        if result is not None:
            residual_factor = 1
            for component in result.components:
                component_factor = (
                    1
                    if component.anchored
                    else _interaction_factor(_top_parts(component.root))
                )
                residual_factor = min(
                    _PRODUCT_CAP, residual_factor * component_factor
                )
    return PatternCensus(
        match_id=pattern.match_id,
        source=pattern.source or f"<pattern {pattern.match_id}>",
        size=node_size(pattern.root),
        n_dot_star=sum(1 for k in kinds if k == "dot"),
        n_almost=sum(1 for k in kinds if k == "almost"),
        n_counted=sum(1 for k in kinds if k == "counted"),
        counted_span=_counted_span(pattern.root),
        anchored=pattern.anchored,
        raw_factor=raw_factor,
        residual_factor=residual_factor,
    )


# -- set-level triage ---------------------------------------------------------


def _overlap_density(patterns: Sequence[Pattern]) -> float:
    """Fraction of pattern pairs whose alphabets intersect."""
    if len(patterns) < 2:
        return 0.0
    alphabets = [alphabet(p.root) for p in patterns]
    overlapping = 0
    pairs = 0
    for i in range(len(alphabets)):
        for j in range(i + 1, len(alphabets)):
            pairs += 1
            if alphabets[i].overlaps(alphabets[j]):
                overlapping += 1
    return overlapping / pairs if pairs else 0.0


def triage_patterns(
    patterns: Sequence[Pattern],
    state_budget: int = DEFAULT_STATE_BUDGET,
    splitter_options: SplitterOptions | None = None,
) -> TriageResult:
    """Statically predict the explosion risk of a rule set."""
    census = [_census_one(p, splitter_options) for p in patterns]
    base = sum(c.size for c in census) + 1
    density = _overlap_density(patterns)

    raw_product = 1
    residual_product = 1
    for c in census:
        raw_product = min(_PRODUCT_CAP, raw_product * c.raw_factor)
        residual_product = min(_PRODUCT_CAP, residual_product * c.residual_factor)
    # Disjoint-alphabet patterns cannot co-activate: discount the
    # interaction by how often pairs can actually interleave.
    discount = max(density, 0.1)
    predicted_dfa = min(_PRODUCT_CAP, base + int(base * (raw_product - 1) * discount))
    predicted_mfa = min(
        _PRODUCT_CAP, base + int(base * (residual_product - 1) * discount)
    )

    report = AnalysisReport()
    n_separators = sum(c.n_dot_star + c.n_almost + c.n_counted for c in census)
    report.add(
        "EX101",
        INFO,
        COMPONENT,
        f"census: {len(census)} patterns, {n_separators} top-level separators, "
        f"{sum(1 for c in census if c.explosive)} explosive, "
        f"overlap density {density:.2f}",
    )
    for c in census:
        if c.residual_factor > 1:
            report.add(
                "EX110",
                WARNING,
                COMPONENT,
                f"explosion driver survives decomposition: interaction factor "
                f"{c.residual_factor} remains (of raw {c.raw_factor})",
                f"rule {c.match_id}",
            )
    if predicted_dfa > state_budget:
        report.add(
            "EX120",
            WARNING,
            COMPONENT,
            f"plain DFA likely infeasible: predicted ~{predicted_dfa} states "
            f"exceeds the {state_budget}-state budget",
        )
    if predicted_mfa > state_budget:
        report.add(
            "EX121",
            WARNING,
            COMPONENT,
            f"even the decomposed component DFA looks risky: predicted "
            f"~{predicted_mfa} states exceeds the {state_budget}-state budget",
        )

    if predicted_mfa > state_budget:
        risk = RISK_HIGH
    elif predicted_dfa > state_budget:
        risk = RISK_MEDIUM
    else:
        risk = RISK_LOW
    return TriageResult(
        risk=risk,
        predicted_dfa_states=predicted_dfa,
        predicted_mfa_states=predicted_mfa,
        overlap_density=density,
        state_budget=state_budget,
        census=census,
        report=report,
    )
