"""Worst-case cost analyzer: static adversarial audit with witness traces.

Network security middleboxes face an attacker who *chooses* the traffic,
so the number that matters is not mean throughput but the worst case an
adversary can force.  Two recent artifact tiers deliberately traded
average-case speed for data-dependent slow paths:

* the D²FA default-transition forest resolves a lookup by walking a
  default chain (1 probe per hop), so bytes that always miss the overlay
  cost ``depth + 1`` probes instead of 1;
* the chain-walk fastpath kernel caches a BFS-bounded hot set of dense
  rows (``REPRO_CHAIN_HOT``), so traffic herded into cold states pays a
  vectorized forest walk per position;
* the required-literal prefilter skims 2-byte grams and walks only
  verified candidate windows, so gram-collision streams that flood
  candidates without matching push the engine over the density-fallback
  threshold into scan-plus-full-walk — strictly *slower* than never
  having filtered;
* filter programs differ widely in bits flipped per visited state, so
  traces parked on high-churn states maximize per-byte filter work.

This module computes a static cost bound for each channel **and
synthesizes a concrete witness trace achieving it**: a finite-horizon
value iteration over the transition table with a per-(state, byte) cost
model, followed by a greedy policy walk from the start state (the walk
enters a max-cost cycle, i.e. a repeatable adversarial flood).  Every
predicted figure is computed from the *witness itself* under the same
model, so prediction and trace never disagree by construction.

Witnesses are replay-confirmed through the real engines
(:func:`replay_witness`): measured slowdown vs a deterministic clean
trace drawn from the prefilter's byte-commonness prior, with a zero
match-stream diff required against the scalar reference.

Cost-model units are *probe-equivalents per byte*.  ``_MODEL_OVERHEAD``
is the fixed per-byte work every engine pays regardless of the table
walk (loop, accepts check, op dispatch); the prefilter model uses
``_SCAN_COST`` for the gram skim and ``_CLEAN_WALK_FLOOR`` as the
minimum walked fraction clean traffic is ever modelled at (warmup
windows, clear-summary replay and segment stitching keep it above
zero in practice).  The constants are deliberately conservative: the CI
gate requires measured slowdown >= 0.5x predicted, so the model must
never promise more than the engines deliver.

Finding codes (``AV`` = adversary; registry in docs/static-analysis.md):

* ``AV100`` error — the adversary audit itself crashed (escort wrapper);
* ``AV101`` — chain-depth witness: longest-mean D²FA default-chain walk;
* ``AV102`` — prefilter-evasion witness: gram-collision stream driving
  candidate-window density over the fallback threshold without matching;
* ``AV103`` — cache-thrash witness: cold-walk trace against the
  ``REPRO_CHAIN_HOT`` BFS hot set;
* ``AV104`` — filter bit-churn witness: trace maximizing bits flipped
  per input byte, plus the per-state churn ranking;
* ``AV105`` warning — a replayed witness under-delivered (< 0.5x its
  predicted ratio): the static cost model has drifted from the engines;
* ``AV106`` error — match-stream diff during witness replay (an engine
  disagreed with the scalar reference on adversarial input);
* ``AV110`` info — a prefilter plan is carried but auto-disabled in
  chain-decode mode (surfaced at scan time as
  ``ScanReport.prefilter_disabled``);
* ``AV120`` info — engine family out of scope (NFA/HybridFA fallbacks);
* ``AV130`` info — audit census: which witness classes were emitted.

Witness severities: ``warning`` when the predicted slowdown ratio
reaches ``_WARN_RATIO``, else ``info`` — a wasteful-but-correct artifact
is never an ``error`` (errors mean the artifact is *wrong*, and here
only a replay divergence is).
"""

from __future__ import annotations

import hashlib
import time
from array import array
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from .report import ERROR, INFO, WARNING, AnalysisReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..automata.compress import CompressedDFA
    from ..core.mfa import MFA

try:  # pragma: no cover - exercised via both branches in CI matrices
    import numpy as _np
except Exception:  # pragma: no cover - numpy-less fallback
    _np = None  # type: ignore[assignment]

__all__ = [
    "REQUIRED_WITNESS_KINDS",
    "AdversaryResult",
    "ReplayOutcome",
    "WitnessTrace",
    "analyze_adversary",
    "analyze_engine_adversary",
    "clean_payload",
    "replay_witness",
]

COMPONENT = "adversary"

#: Witness classes the B217p acceptance gate requires (bench_adversarial).
REQUIRED_WITNESS_KINDS: tuple[str, ...] = (
    "chain-depth",
    "prefilter-evasion",
    "cache-thrash",
)

# -- cost-model constants (probe-equivalents per byte) ------------------------

#: Fixed per-byte engine work independent of the table walk.
_MODEL_OVERHEAD = 1.0
#: Per-byte cost of the prefilter gram skim relative to one table walk:
#: a fixed gram-table lookup plus per-chain candidate-verify work (large
#: audit-mode plans are scan-dominated, which caps how much an evasion
#: stream can add — the model must reflect that or overpredict wildly).
_SCAN_BASE = 0.12
_SCAN_PER_CHAIN = 0.04
#: Clean traffic is never modelled below this walked fraction.
_CLEAN_WALK_FLOOR = 0.15
#: Weight of one flipped filter bit relative to one table probe.
_CHURN_WEIGHT = 0.05
#: Predicted slowdown at or above this ratio promotes the finding to warning.
_WARN_RATIO = 2.0
#: Replayed slowdown below this fraction of the prediction flags model drift
#: (the same factor bench_adversarial.py gates on).
_UNDERDELIVER_FACTOR = 0.5
#: Value-iteration sweeps before extracting the greedy policy.
_VI_SWEEPS = 48
#: Density-fallback threshold mirrored from the fastpath engine (3/8).
_DENSITY_NUM, _DENSITY_DEN = 3, 8
#: Hot-cap divisor for the stress configuration when the default cache
#: already covers every state (the memory-constrained deployment knob).
_STRESS_HOT_DIVISOR = 16

DEFAULT_TRACE_BYTES = 2048
DEFAULT_REPLAY_BYTES = 1 << 15
_CLEAN_SEED = 0


# -- data model ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class WitnessTrace:
    """One synthesized adversarial trace plus its static cost prediction.

    ``predicted_cost`` and ``baseline_cost`` are model costs per byte
    (probe-equivalents) of the witness and of the deterministic clean
    trace; their ratio is the statically predicted slowdown bound the
    replay is asked to confirm.  ``to_dict`` is replay-free and fully
    deterministic — the witness-determinism suite asserts byte-identical
    JSON across ``PYTHONHASHSEED`` runs.
    """

    kind: str
    code: str
    payload: bytes
    predicted_cost: float
    baseline_cost: float
    detail: str
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def predicted_ratio(self) -> float:
        return self.predicted_cost / max(self.baseline_cost, 1e-9)

    @property
    def digest(self) -> str:
        return hashlib.sha256(self.payload).hexdigest()[:12]

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "code": self.code,
            "length": len(self.payload),
            "digest": self.digest,
            "payload_hex": self.payload.hex(),
            "predicted_cost": round(self.predicted_cost, 4),
            "baseline_cost": round(self.baseline_cost, 4),
            "predicted_ratio": round(self.predicted_ratio, 4),
            "params": {k: self.params[k] for k in sorted(self.params)},
            "detail": self.detail,
        }


@dataclass(frozen=True, slots=True)
class ReplayOutcome:
    """One witness replayed through one real engine."""

    kind: str
    code: str
    engine: str
    witness_ns_per_byte: float
    clean_ns_per_byte: float
    measured_slowdown: float
    predicted_ratio: float
    match_events: int
    stream_diffs: int

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "code": self.code,
            "engine": self.engine,
            "witness_ns_per_byte": round(self.witness_ns_per_byte, 2),
            "clean_ns_per_byte": round(self.clean_ns_per_byte, 2),
            "measured_slowdown": round(self.measured_slowdown, 4),
            "predicted_ratio": round(self.predicted_ratio, 4),
            "match_events": self.match_events,
            "stream_diffs": self.stream_diffs,
        }


class AdversaryResult:
    """Findings + witness corpus (+ replay outcomes when requested)."""

    def __init__(
        self,
        report: AnalysisReport,
        witnesses: Sequence[WitnessTrace] = (),
        replays: Sequence[ReplayOutcome] = (),
    ):
        self.report = report
        self.witnesses = list(witnesses)
        self.replays = list(replays)

    def witness(self, kind: str) -> "WitnessTrace | None":
        for w in self.witnesses:
            if w.kind == kind:
                return w
        return None

    def slowdown(self, kind: str) -> float:
        """Best measured slowdown for a witness kind (0.0 if not replayed)."""
        return max(
            (r.measured_slowdown for r in self.replays if r.kind == kind),
            default=0.0,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "findings": self.report.to_dict(),
            "witnesses": [w.to_dict() for w in self.witnesses],
            "replays": [r.to_dict() for r in self.replays],
        }

    def describe(self) -> str:
        lines = list(self.report.describe())
        for w in self.witnesses:
            lines.append(
                f"witness {w.kind}: {len(w.payload)} B, predicted "
                f"{w.predicted_ratio:.2f}x ({w.detail})"
            )
        for r in self.replays:
            lines.append(
                f"replay {r.kind} [{r.engine}]: measured "
                f"{r.measured_slowdown:.2f}x of predicted "
                f"{r.predicted_ratio:.2f}x, {r.stream_diffs} stream diffs"
            )
        return "\n".join(lines)


# -- clean-traffic model ------------------------------------------------------


def clean_payload(length: int, seed: int = _CLEAN_SEED) -> bytes:
    """Deterministic clean traffic drawn from the byte-commonness prior.

    The same 256-entry prior the prefilter uses to rank anchor grams
    (:data:`repro.fastpath.prefilter._BYTE_WEIGHT`), sampled through
    :func:`repro.utils.rng.make_rng` — reproducible run-to-run and
    decorrelated from every other synthetic artefact.
    """
    from ..fastpath.prefilter import _BYTE_WEIGHT
    from ..utils.rng import make_rng

    rng = make_rng(seed, "adversary-clean")
    return bytes(rng.choices(range(256), weights=_BYTE_WEIGHT, k=length))


# -- table plumbing -----------------------------------------------------------


def _forest_of(mfa: "MFA") -> "CompressedDFA | None":
    forest = getattr(mfa, "compressed", None)
    if forest is None:
        forest = getattr(mfa.dfa, "forest", None)
    return forest  # type: ignore[return-value]


def _plan_of(mfa: "MFA") -> "dict[str, Any] | None":
    """The prefilter plan to audit: carried, buildable, or audit-mode.

    When the artifact has no sound plan (one pathological component is
    enough to keep ``build_prefilter`` from shipping one), the audit
    falls back to the introspection hook ``build_prefilter(audit=True)``
    — the plan covering every coverable component, marked ``audit`` and
    never used for production matching — so the worst-case cost of the
    prefilter stage is still analyzed and replayed.
    """
    plan = mfa.prefilter
    if plan is not None:
        return plan
    if getattr(mfa, "split", None) is None:
        return None
    from ..fastpath.prefilter import build_prefilter

    try:
        plan = build_prefilter(mfa)
        if plan is None:
            plan = build_prefilter(mfa, audit=True)
    except Exception:
        return None
    if plan is not None and not plan.get("chains"):
        return None
    return plan


def _dense_rows(mfa: "MFA", forest: "CompressedDFA | None") -> list[array]:
    """256-entry dense next-state rows, flattening a chain-decoded DFA."""
    rows = mfa.dfa.rows
    if rows and not isinstance(rows[0], array):
        if forest is None:  # pragma: no cover - ChainDFA always carries one
            raise ValueError("proxy-row DFA without a forest")
        rows = forest.flatten().rows
    return list(rows)


def _chain_probe_rows(forest: "CompressedDFA") -> list[list[int]]:
    """probes[q][b]: default-chain hops + 1 to resolve byte ``b`` from ``q``.

    Exactly the recurrence :meth:`CompressedDFA.next_state` executes:
    an overlay hit costs 1 probe; otherwise the lookup recurses to the
    default parent for one extra probe; root rows always answer in 1.
    Computed parents-first so each row is one add over its parent's.
    """
    n = forest.n_states
    parent = forest.parent
    depth = [0] * n
    for q in range(n):
        hops, cur = 0, q
        trail = []
        while parent[cur] >= 0:
            if depth[cur]:
                hops += depth[cur]
                break
            trail.append(cur)
            cur = parent[cur]
            hops += 1
        for back, state in enumerate(trail):
            depth[state] = hops - back
    probes: list[list[int]] = [[] for _ in range(n)]
    for q in sorted(range(n), key=depth.__getitem__):
        if parent[q] < 0:
            row = [1] * 256
        else:
            row = [c + 1 for c in probes[parent[q]]]
            for byte in forest.overlays[q]:
                row[byte] = 1
        probes[q] = row
    return probes


def _hot_states(forest: "CompressedDFA", hot_cap: int) -> set[int]:
    """The chain kernel's BFS hot set, replicated transition-for-transition.

    Must stay in lockstep with ``FastPathMFA._build_chain_tables``: BFS
    from the start state, expanding each materialised row in byte order,
    admitting states until ``hot_cap``.
    """
    parent = forest.parent
    root_index = forest.root_index
    root_rows = forest.root_rows
    overlays = forest.overlays
    n = forest.n_states

    def row_of(q: int) -> list[int]:
        path = []
        cur = q
        while parent[cur] >= 0:
            path.append(cur)
            cur = parent[cur]
        row = list(root_rows[root_index[cur]])
        for state in reversed(path):
            for byte, target in overlays[state].items():
                row[byte] = target
        return row

    seen = bytearray(n)
    seen[forest.start] = 1
    queue = [forest.start]
    head = 0
    hot: set[int] = set()
    while head < len(queue) and len(hot) < hot_cap:
        q = queue[head]
        head += 1
        hot.add(q)
        for target in row_of(q):
            if not seen[target]:
                seen[target] = 1
                queue.append(target)
    return hot


# -- witness synthesis --------------------------------------------------------


def _greedy_policy(
    rows: list[array], cost: Callable[[int, int], float], states: set[int]
) -> dict[int, int]:
    """Numpy-less fallback: per-state argmax of the immediate cost."""
    choice: dict[int, int] = {}
    for q in states:
        best_b, best_c = 0, -1.0
        row_cost = cost
        for b in range(256):
            c = row_cost(q, b)
            if c > best_c:
                best_b, best_c = b, c
        choice[q] = best_b
    return choice


def _synthesize(
    rows: list[array],
    cost: Callable[[int, int], float],
    cost_matrix: "Any | None",
    start: int,
    length: int,
) -> tuple[bytes, float]:
    """Max-cost trace of ``length`` bytes from ``start``.

    With numpy: finite-horizon value iteration over the full table, then
    a stationary greedy policy walk (ties break to the lowest byte, so
    the trace is independent of hash seeds and numpy versions).  Without
    numpy: an immediate-cost greedy walk over only the states actually
    visited.  Either way the returned cost is summed along the *actual*
    trace, so the prediction matches the witness by construction.
    """
    n = len(rows)
    choice: "Any"
    if _np is not None and cost_matrix is not None:
        nxt = _np.frombuffer(
            b"".join(row.tobytes() for row in rows), dtype=_np.int32
        ).reshape(n, 256).astype(_np.int64)
        cm = _np.asarray(cost_matrix, dtype=_np.float64)
        value = _np.zeros(n, dtype=_np.float64)
        for _ in range(_VI_SWEEPS):
            value = (cm + value[nxt]).max(axis=1)
            value -= value.min()  # keep magnitudes bounded; argmax unchanged
        choice = (cm + value[nxt]).argmax(axis=1).tolist()
    else:
        choice = None
    payload = bytearray()
    total = 0.0
    q = start
    lazy: dict[int, int] = {}
    for _ in range(length):
        if choice is not None:
            b = choice[q]
        else:
            b = lazy.get(q, -1)
            if b < 0:
                lazy.update(_greedy_policy(rows, cost, {q}))
                b = lazy[q]
        payload.append(b)
        total += cost(q, b)
        q = rows[q][b]
    return bytes(payload), total / max(1, length)


def _trace_cost(
    rows: list[array], cost: Callable[[int, int], float], start: int, payload: bytes
) -> float:
    total = 0.0
    q = start
    for b in payload:
        total += cost(q, b)
        q = rows[q][b]
    return total / max(1, len(payload))


def _chain_witness(
    rows: list[array],
    forest: "CompressedDFA",
    start: int,
    trace_bytes: int,
    clean: bytes,
) -> WitnessTrace:
    """AV101: the longest-mean default-chain walk the forest admits."""
    probes = _chain_probe_rows(forest)

    def cost(q: int, b: int) -> float:
        return float(probes[q][b])

    payload, witness_probes = _synthesize(
        rows, cost, probes if _np is not None else None, start, trace_bytes
    )
    clean_probes = _trace_cost(rows, cost, start, clean)
    return WitnessTrace(
        kind="chain-depth",
        code="AV101",
        payload=payload,
        predicted_cost=_MODEL_OVERHEAD + witness_probes,
        baseline_cost=_MODEL_OVERHEAD + clean_probes,
        detail=(
            f"mean {witness_probes:.2f} probes/byte vs {clean_probes:.2f} clean "
            f"(chain depth {forest.chain_depth()})"
        ),
        params={
            "chain_depth": forest.chain_depth(),
            "witness_probes_per_byte": round(witness_probes, 4),
            "clean_probes_per_byte": round(clean_probes, 4),
        },
    )


def _thrash_witness(
    rows: list[array],
    forest: "CompressedDFA",
    start: int,
    trace_bytes: int,
    clean: bytes,
    hot_cap: "int | None",
) -> "WitnessTrace | None":
    """AV103: a cold-walk trace against the ``REPRO_CHAIN_HOT`` BFS cache."""
    from ..fastpath.engine import _HOT_STATES

    n = forest.n_states
    default_cap = min(n, _HOT_STATES)
    cap = hot_cap if hot_cap is not None else default_cap
    stressed = False
    if cap >= n:
        # The default cache covers every state: audit the memory-constrained
        # configuration operators actually shrink REPRO_CHAIN_HOT to.
        cap = max(1, n // _STRESS_HOT_DIVISOR)
        stressed = True
    hot = _hot_states(forest, cap)
    if len(hot) >= n:
        return None
    probes = _chain_probe_rows(forest)

    def cost(q: int, b: int) -> float:
        if q in hot:
            return 1.0
        return 1.0 + probes[q][b]

    matrix: "Any | None" = None
    if _np is not None:
        matrix = _np.asarray(probes, dtype=_np.float64) + 1.0
        hot_mask = _np.zeros(n, dtype=bool)
        hot_mask[list(hot)] = True
        matrix[hot_mask] = 1.0
    payload, witness_cost = _synthesize(rows, cost, matrix, start, trace_bytes)
    clean_cost = _trace_cost(rows, cost, start, clean)
    return WitnessTrace(
        kind="cache-thrash",
        code="AV103",
        payload=payload,
        predicted_cost=witness_cost,
        baseline_cost=clean_cost,
        detail=(
            f"cold-walk trace at hot_cap={cap} "
            f"({n - len(hot)}/{n} states cold"
            + ("; default cache covers all states)" if stressed else ")")
        ),
        params={
            "hot_cap": cap,
            "default_hot_cap": default_cap,
            "n_states": n,
            "cold_states": n - len(hot),
            "stressed": stressed,
        },
    )


def _prefilter_witness(
    mfa: "MFA",
    plan: dict[str, Any],
    trace_bytes: int,
) -> "WitnessTrace | None":
    """AV102: gram-collision stream flooding candidate windows sub-match.

    Per chain, the minimal satisfying byte string (lowest byte of each
    class bitmap) followed by one separator byte outside every class:
    each repetition is a *verified* prefilter occurrence, so its record
    window covers the whole unit and the engine's density fallback
    (> 3/8 covered) degrades to scan-plus-full-walk.  Among the chains,
    prefer one whose flood confirms zero matches; the scalar engine
    decides, so "below the match threshold" is exact, not modelled.
    """
    from ..fastpath.prefilter import _BYTE_WEIGHT

    chains = plan.get("chains") or []
    if not chains:
        return None
    warmup = int(plan.get("w", 0))
    all_bits = 0
    decoded: list[list[int]] = []
    for spec in chains:
        bits_list = [int(h, 16) for h in spec["classes"]]
        decoded.append(bits_list)
        for bits in bits_list:
            all_bits |= bits
    separator = 0
    for b in range(256):
        if not (all_bits >> b) & 1:
            separator = b
            break
    total_weight = float(sum(_BYTE_WEIGHT))
    best: "tuple[int, int, bytes] | None" = None  # (events, index, unit)
    for index, (spec, bits_list) in enumerate(zip(chains, decoded)):
        unit = bytes(
            (bits & -bits).bit_length() - 1 for bits in bits_list if bits
        ) + bytes([separator])
        if len(unit) < 2:
            continue
        events = len(mfa.run(unit * 4))
        if best is None or (events, index) < (best[0], best[1]):
            best = (events, index, unit)
        if events == 0:
            break
    if best is None:
        return None
    events, index, unit = best
    spec = chains[index]
    reps = max(1, trace_bytes // len(unit))
    payload = (unit * reps)[:trace_bytes]
    # Witness coverage: each verified occurrence records a window spanning
    # the warmup plus the chain plus the tail slack — at least the unit.
    span = warmup + (len(unit) - 1) + int(spec["tail_max"]) + 1
    witness_coverage = min(1.0, span / len(unit))
    witness_walked = (
        1.0
        if witness_coverage * _DENSITY_DEN > _DENSITY_NUM
        else witness_coverage
    )
    # Clean coverage: probability a position starts a fully verified chain
    # under the byte-commonness prior, times the span each occurrence records.
    p_occ = 0.0
    for bits_list in decoded:
        p = 1.0
        for bits in bits_list:
            weight = 0
            rest = bits
            while rest:
                low = rest & -rest
                weight += _BYTE_WEIGHT[low.bit_length() - 1]
                rest ^= low
            p *= weight / total_weight
        p_occ += p
    clean_coverage = min(1.0, p_occ * span)
    clean_walked = max(_CLEAN_WALK_FLOOR, clean_coverage)
    if clean_walked * _DENSITY_DEN > _DENSITY_NUM:
        clean_walked = 1.0  # clean traffic already trips the fallback
    scan_cost = _SCAN_BASE + _SCAN_PER_CHAIN * len(chains)
    return WitnessTrace(
        kind="prefilter-evasion",
        code="AV102",
        payload=payload,
        predicted_cost=scan_cost + witness_walked,
        baseline_cost=scan_cost + clean_walked,
        detail=(
            f"chain {index} flood ({events} confirmed matches/unit x4), "
            f"window coverage {witness_coverage:.2f} "
            f"vs clean floor {clean_walked:.2f}"
        ),
        params={
            "chain": index,
            "unit_len": len(unit),
            "unit_matches": events,
            "separator": separator,
            "witness_coverage": round(witness_coverage, 4),
            "clean_coverage": round(clean_coverage, 6),
            "audit_plan": bool(plan.get("audit")),
            "uncoverable": len(plan.get("stats", {}).get("uncoverable", [])),
        },
    )


def _state_churn(mfa: "MFA") -> list[int]:
    """Filter bits flipped (upper bound) on entering each DFA state."""
    from ..core.filters import NONE

    churn: list[int] = []
    for ops in mfa._ops:
        if ops is None:
            churn.append(0)
        elif isinstance(ops, list):
            or_mask, and_mask = ops
            churn.append(int(or_mask).bit_count() + int(~and_mask).bit_count())
        else:
            bits = 0
            for op in ops:
                bits += int(op[2]).bit_count() + int(op[3]).bit_count()
                if op[4] != NONE:
                    bits += 1
                if op[5]:
                    bits += 2
            churn.append(bits)
    return churn


def _churn_witness(
    mfa: "MFA",
    rows: list[array],
    start: int,
    trace_bytes: int,
    clean: bytes,
) -> "WitnessTrace | None":
    """AV104: trace maximizing filter-bit churn per input byte."""
    churn = _state_churn(mfa)
    peak = max(churn, default=0)
    if peak == 0:
        return None

    def cost(q: int, b: int) -> float:
        return float(churn[rows[q][b]])

    matrix: "Any | None" = None
    if _np is not None:
        nxt = _np.frombuffer(
            b"".join(row.tobytes() for row in rows), dtype=_np.int32
        ).reshape(len(rows), 256).astype(_np.int64)
        matrix = _np.asarray(churn, dtype=_np.float64)[nxt]
    payload, witness_churn = _synthesize(rows, cost, matrix, start, trace_bytes)
    clean_churn = _trace_cost(rows, cost, start, clean)
    ranked = sorted(range(len(churn)), key=lambda q: (-churn[q], q))[:3]
    return WitnessTrace(
        kind="filter-churn",
        code="AV104",
        payload=payload,
        predicted_cost=_MODEL_OVERHEAD + _CHURN_WEIGHT * witness_churn,
        baseline_cost=_MODEL_OVERHEAD + _CHURN_WEIGHT * clean_churn,
        detail=(
            f"mean {witness_churn:.2f} bits/byte vs {clean_churn:.2f} clean; "
            f"peak state churn {peak} (states {ranked})"
        ),
        params={
            "witness_bits_per_byte": round(witness_churn, 4),
            "clean_bits_per_byte": round(clean_churn, 4),
            "peak_churn": peak,
            "top_states": ranked,
        },
    )


# -- replay confirmation ------------------------------------------------------


def _tile(payload: bytes, length: int) -> bytes:
    if not payload:
        return payload
    reps = -(-length // len(payload))
    return (payload * reps)[:length]


def _time_ns_per_byte(run: Callable[[bytes], Any], payload: bytes, best_of: int) -> float:
    run(payload)  # warm caches / scratch buffers
    best = None
    for _ in range(max(1, best_of)):
        tick = time.perf_counter()
        run(payload)
        elapsed = time.perf_counter() - tick
        best = elapsed if best is None else min(best, elapsed)
    return (best or 0.0) / max(1, len(payload)) * 1e9


def replay_witness(
    mfa: "MFA",
    witness: WitnessTrace,
    replay_bytes: int = DEFAULT_REPLAY_BYTES,
    best_of: int = 3,
    clean: "bytes | None" = None,
) -> list[ReplayOutcome]:
    """Replay one witness through the real scalar and fastpath engines.

    The witness and a clean trace are tiled to ``replay_bytes`` and timed
    through every engine the witness targets; each outcome also diffs the
    engine's confirmed-match stream on the witness against the dense
    scalar reference (which must agree — the engines are proven
    equivalent, and an adversarial divergence is an ``AV106`` error).
    """
    import os

    from ..core.mfa import MFA
    from ..fastpath import HAVE_NUMPY, build_fastpath
    from ..fastpath.engine import _HOT_ENV

    forest = _forest_of(mfa)
    if not isinstance(mfa.dfa.rows[0] if mfa.dfa.rows else None, array):
        dense_mfa = MFA(forest.flatten(), mfa.program) if forest else mfa
    else:
        dense_mfa = mfa
    w_payload = _tile(witness.payload, replay_bytes)
    c_payload = clean if clean is not None else clean_payload(replay_bytes)
    if len(c_payload) != len(w_payload):
        c_payload = _tile(c_payload, len(w_payload))
    reference = dense_mfa.run(w_payload)
    events = len(reference)

    runners: list[tuple[str, Callable[[bytes], list[Any]]]] = []
    if witness.kind in ("chain-depth", "cache-thrash") and forest is not None:
        chain_mfa = MFA(forest.to_chain_dfa(), mfa.program)
        chain_mfa.compressed = forest
        runners.append(("scalar-chain", chain_mfa.run))
        if HAVE_NUMPY:
            if witness.kind == "cache-thrash":
                cap = witness.params.get("hot_cap")
                saved = os.environ.get(_HOT_ENV)
                os.environ[_HOT_ENV] = str(cap)
                try:
                    engine = build_fastpath(chain_mfa, prefilter="off")
                finally:
                    if saved is None:
                        os.environ.pop(_HOT_ENV, None)
                    else:
                        os.environ[_HOT_ENV] = saved
            else:
                engine = build_fastpath(chain_mfa, prefilter="off")
            runners.append(
                ("fastpath-chain", lambda data, e=engine: e.run_batch([data])[0])
            )
    elif witness.kind == "prefilter-evasion":
        runners.append(("scalar", dense_mfa.run))
        if HAVE_NUMPY:
            # Replay against the same plan the analysis audited — injecting
            # the audit-mode plan when the artifact ships without one (the
            # witness's zero-diff check below still holds the engine to the
            # scalar reference stream on the adversarial bytes).
            plan = _plan_of(mfa)
            saved_plan = dense_mfa.prefilter
            dense_mfa.prefilter = plan
            try:
                engine = build_fastpath(dense_mfa, prefilter="on")
            finally:
                dense_mfa.prefilter = saved_plan
            if engine.prefilter_active:
                runners.append(
                    ("fastpath-prefilter", lambda data, e=engine: e.run_batch([data])[0])
                )
    else:
        runners.append(("scalar", dense_mfa.run))
        if HAVE_NUMPY:
            engine = build_fastpath(dense_mfa, prefilter="off")
            runners.append(
                ("fastpath", lambda data, e=engine: e.run_batch([data])[0])
            )

    outcomes = []
    for name, run in runners:
        diffs = 0 if run(w_payload) == reference else 1
        w_ns = _time_ns_per_byte(run, w_payload, best_of)
        c_ns = _time_ns_per_byte(run, c_payload, best_of)
        outcomes.append(
            ReplayOutcome(
                kind=witness.kind,
                code=witness.code,
                engine=name,
                witness_ns_per_byte=w_ns,
                clean_ns_per_byte=c_ns,
                measured_slowdown=w_ns / c_ns if c_ns else 0.0,
                predicted_ratio=witness.predicted_ratio,
                match_events=events,
                stream_diffs=diffs,
            )
        )
    return outcomes


# -- entry points -------------------------------------------------------------


def _witness_finding(report: AnalysisReport, w: WitnessTrace) -> None:
    severity = WARNING if w.predicted_ratio >= _WARN_RATIO else INFO
    report.add(
        w.code,
        severity,
        COMPONENT,
        f"{w.kind} witness ({len(w.payload)} B, sha256 {w.digest}) predicts "
        f"{w.predicted_ratio:.2f}x worst/clean cost: {w.detail}",
        location=w.kind,
    )


def analyze_adversary(
    mfa: "MFA",
    report: "AnalysisReport | None" = None,
    trace_bytes: int = DEFAULT_TRACE_BYTES,
    hot_cap: "int | None" = None,
    replay: bool = False,
    replay_bytes: int = DEFAULT_REPLAY_BYTES,
    best_of: int = 3,
) -> AdversaryResult:
    """Static adversarial audit of one compiled MFA (all artifact tiers).

    Synthesizes worst-case witness traces for every slow-path channel the
    artifact actually carries — D²FA default chains and the hot-state
    cache when a forest is attached, prefilter evasion when a plan is
    compiled, filter bit-churn always — and emits ``AV1xx`` findings with
    the statically predicted worst/clean cost ratios.  ``replay=True``
    additionally replay-confirms each witness through the real engines
    (:func:`replay_witness`), flagging model drift (``AV105``) and any
    match-stream divergence (``AV106``).
    """
    out = report if report is not None else AnalysisReport()
    witnesses: list[WitnessTrace] = []
    if mfa.dfa.n_states == 0:
        out.add("AV130", INFO, COMPONENT, "empty automaton: nothing to audit")
        return AdversaryResult(out, witnesses)
    forest = _forest_of(mfa)
    rows = _dense_rows(mfa, forest)
    start = mfa.dfa.start
    clean = clean_payload(trace_bytes)

    plan = _plan_of(mfa)

    if forest is not None:
        witnesses.append(_chain_witness(rows, forest, start, trace_bytes, clean))
        thrash = _thrash_witness(rows, forest, start, trace_bytes, clean, hot_cap)
        if thrash is not None:
            witnesses.append(thrash)
        if plan is not None:
            out.add(
                "AV110",
                INFO,
                COMPONENT,
                "prefilter plan is carried but auto-disabled when this "
                "artifact is chain-decoded (REPRO_DECODE=chain); scans "
                "record it as ScanReport.prefilter_disabled",
                location="prefilter",
            )
    if plan is not None:
        evasion = _prefilter_witness(mfa, plan, trace_bytes)
        if evasion is not None:
            witnesses.append(evasion)
    churn = _churn_witness(mfa, rows, start, trace_bytes, clean)
    if churn is not None:
        witnesses.append(churn)

    for w in witnesses:
        _witness_finding(out, w)
    kinds = ", ".join(w.kind for w in witnesses) or "none"
    out.add(
        "AV130",
        INFO,
        COMPONENT,
        f"audited {mfa.dfa.n_states} states: witness classes [{kinds}]",
    )

    replays: list[ReplayOutcome] = []
    if replay:
        for w in witnesses:
            outcomes = replay_witness(
                mfa, w, replay_bytes=replay_bytes, best_of=best_of, clean=None
            )
            replays.extend(outcomes)
            measured = max((o.measured_slowdown for o in outcomes), default=0.0)
            if outcomes and measured < _UNDERDELIVER_FACTOR * w.predicted_ratio:
                out.add(
                    "AV105",
                    WARNING,
                    COMPONENT,
                    f"{w.kind} witness under-delivered: measured "
                    f"{measured:.2f}x < {_UNDERDELIVER_FACTOR:.1f} x predicted "
                    f"{w.predicted_ratio:.2f}x (cost model drift)",
                    location=w.kind,
                )
            for o in outcomes:
                if o.stream_diffs:
                    out.add(
                        "AV106",
                        ERROR,
                        COMPONENT,
                        f"{w.kind} witness diverged on engine {o.engine}: "
                        "adversarial input broke scalar/fastpath agreement",
                        location=w.kind,
                    )
    return AdversaryResult(out, witnesses, replays)


def analyze_engine_adversary(
    engine: Any,
    report: "AnalysisReport | None" = None,
    **kwargs: Any,
) -> AdversaryResult:
    """Adversarial audit of any compile result (MFA / ShardedMFA / fallbacks).

    Sharded engines audit each shard independently with findings
    relocated ``shard i``; non-MFA fallback engines (NFA, HybridFA) are
    out of scope and say so (``AV120``) rather than staying silent.
    """
    from ..core.mfa import MFA

    out = report if report is not None else AnalysisReport()
    if isinstance(engine, MFA):
        return analyze_adversary(engine, out, **kwargs)
    shards = getattr(engine, "shards", None)
    if shards is not None:
        witnesses: list[WitnessTrace] = []
        replays: list[ReplayOutcome] = []
        for index, shard in enumerate(shards):
            sub = analyze_engine_adversary(shard, **kwargs)
            out.extend(sub.report.relocated(f"shard {index}"))
            for w in sub.witnesses:
                witnesses.append(
                    WitnessTrace(
                        kind=w.kind,
                        code=w.code,
                        payload=w.payload,
                        predicted_cost=w.predicted_cost,
                        baseline_cost=w.baseline_cost,
                        detail=w.detail,
                        params={**w.params, "shard": index},
                    )
                )
            replays.extend(sub.replays)
        return AdversaryResult(out, witnesses, replays)
    out.add(
        "AV120",
        INFO,
        COMPONENT,
        f"engine family {type(engine).__name__} is out of scope for the "
        "adversarial audit (no compiled cost model)",
    )
    return AdversaryResult(out)
