"""Decomposition-safety auditor (paper §IV-A/B, re-derived independently).

The splitter records a :class:`~repro.core.splitter.Decomposition` for
every split it applies.  This auditor *re-proves* each record's safety
conditions straight from :mod:`repro.regex.analysis` and
:mod:`repro.core.overlap` — it shares no state with the splitter's own
decision path, so a splitter bug that emits an unsafe decomposition
surfaces here as an error finding rather than as a wrong match stream in
production:

* both sides non-nullable (a nullable side makes the filter fire on the
  empty word, DS101);
* dot-star / almost-dot-star: the strengthened overlap test — no
  non-empty string may be simultaneously a suffix of ``.*A`` and a prefix
  of ``B`` (DS102);
* almost-dot-star: ``X`` must not intersect the alphabet of B (DS103)
  nor the final-position class of A (DS104);
* counted gaps: B must have one fixed length and the shifted window must
  fit the engine's offset window (DS106);
* the emitted filter actions must wire the recorded bit/register exactly
  as the decomposition claims (DS107) — the contract between splitter
  and bytecode generator.
"""

from __future__ import annotations

from ..core.filters import WINDOW_BITS
from ..core.overlap import segments_overlap
from ..core.splitter import Decomposition, SplitResult
from ..regex.analysis import alphabet, last_class, max_length, min_length
from .report import ERROR, AnalysisReport

__all__ = ["audit_split", "audit_decomposition"]

COMPONENT = "split"


def audit_split(
    split: SplitResult, report: AnalysisReport | None = None
) -> AnalysisReport:
    """Re-prove the safety of every recorded decomposition."""
    out = report if report is not None else AnalysisReport()
    for decomposition in split.decompositions:
        audit_decomposition(decomposition, split, out)
    return out


def audit_decomposition(
    dec: Decomposition, split: SplitResult, out: AnalysisReport
) -> None:
    where = f"rule {dec.origin} ({dec.kind} split {dec.a_id}|{dec.b_id})"
    try:
        _audit_one(dec, split, out, where)
    except Exception as exc:  # noqa: BLE001 - an unprovable split is unsafe
        out.add(
            "DS100",
            ERROR,
            COMPONENT,
            f"safety re-check itself failed ({type(exc).__name__}: {exc}); "
            f"the decomposition cannot be proved safe",
            where,
        )


def _audit_one(
    dec: Decomposition, split: SplitResult, out: AnalysisReport, where: str
) -> None:
    a_min = min_length(dec.a_node)
    b_min = min_length(dec.b_node)
    if a_min == 0 or b_min == 0:
        side = "A" if a_min == 0 else "B"
        out.add(
            "DS101",
            ERROR,
            COMPONENT,
            f"side {side} is nullable: the filter would fire on the empty word",
            where,
        )
        return

    if dec.kind in ("dot", "almost"):
        if dec.kind == "almost":
            x_class = dec.x_class
            if x_class is None:
                out.add(
                    "DS100",
                    ERROR,
                    COMPONENT,
                    "almost-dot-star decomposition lost its X class",
                    where,
                )
                return
            if x_class.overlaps(alphabet(dec.b_node)):
                out.add(
                    "DS103",
                    ERROR,
                    COMPONENT,
                    "class X intersects the alphabet of B: a clear event can "
                    "fire inside B's own span",
                    where,
                )
            if x_class.overlaps(last_class(dec.a_node)):
                out.add(
                    "DS104",
                    ERROR,
                    COMPONENT,
                    "class X intersects final positions of A: the clear can "
                    "cancel the set at the very byte A completes",
                    where,
                )
        if segments_overlap(dec.a_node, dec.b_node):
            out.add(
                "DS102",
                ERROR,
                COMPONENT,
                "strengthened overlap test fails: some non-empty string is "
                "both a suffix of .*A and a prefix of B",
                where,
            )
        _check_bit_wiring(dec, split, out, where)
        return

    if dec.kind == "counted":
        gap = dec.gap
        if gap is None:
            out.add("DS100", ERROR, COMPONENT, "counted split lost its gap", where)
            return
        gap_lo, gap_hi = gap
        b_max = max_length(dec.b_node)
        if b_max is None or b_max != b_min:
            out.add(
                "DS106",
                ERROR,
                COMPONENT,
                "counted split needs a fixed-length B; its length varies, so "
                "offset arithmetic cannot place the gap",
                where,
            )
            return
        upper = gap_lo if gap_hi is None else gap_hi
        if b_min + upper >= WINDOW_BITS:
            out.add(
                "DS106",
                ERROR,
                COMPONENT,
                f"window |B|+{upper} = {b_min + upper} does not fit the "
                f"{WINDOW_BITS}-bit offset window",
                where,
            )
        _check_register_wiring(dec, split, out, where, b_min)
        return

    out.add("DS100", ERROR, COMPONENT, f"unknown decomposition kind {dec.kind!r}", where)


def _check_bit_wiring(
    dec: Decomposition, split: SplitResult, out: AnalysisReport, where: str
) -> None:
    """The A side must set the recorded bit; the B side must test it."""
    actions = split.program.actions
    bit = dec.bit
    if bit is None:
        out.add("DS107", ERROR, COMPONENT, "bit-plane split recorded no bit", where)
        return
    a_action = actions.get(dec.a_id)
    if a_action is None or a_action.set != bit:
        got = "no action" if a_action is None else f"set={a_action.set}"
        out.add(
            "DS107",
            ERROR,
            COMPONENT,
            f"A side (id {dec.a_id}) should set bit {bit}, found {got}",
            where,
        )
    b_action = actions.get(dec.b_id)
    if b_action is None or b_action.test != bit:
        got = "no action" if b_action is None else f"test={b_action.test}"
        out.add(
            "DS107",
            ERROR,
            COMPONENT,
            f"B side (id {dec.b_id}) should test bit {bit}, found {got}",
            where,
        )
    if dec.kind == "almost":
        clear_action = actions.get(dec.clear_id) if dec.clear_id is not None else None
        if clear_action is None or clear_action.clear != bit:
            got = "no action" if clear_action is None else f"clear={clear_action.clear}"
            out.add(
                "DS107",
                ERROR,
                COMPONENT,
                f"clear component (id {dec.clear_id}) should clear bit {bit}, "
                f"found {got}",
                where,
            )


def _check_register_wiring(
    dec: Decomposition,
    split: SplitResult,
    out: AnalysisReport,
    where: str,
    b_len: int,
) -> None:
    """The A side must record the register; B must test the shifted window."""
    actions = split.program.actions
    register = dec.register
    if register is None:
        out.add("DS107", ERROR, COMPONENT, "counted split recorded no register", where)
        return
    a_action = actions.get(dec.a_id)
    if a_action is None or a_action.record != register:
        got = "no action" if a_action is None else f"record={a_action.record}"
        out.add(
            "DS107",
            ERROR,
            COMPONENT,
            f"A side (id {dec.a_id}) should record register {register}, found {got}",
            where,
        )
    gap_lo, gap_hi = dec.gap  # type: ignore[misc]
    want = (register, b_len + gap_lo, None if gap_hi is None else b_len + gap_hi)
    b_action = actions.get(dec.b_id)
    if b_action is None or b_action.distance != want:
        got = "no action" if b_action is None else f"distance={b_action.distance}"
        out.add(
            "DS107",
            ERROR,
            COMPONENT,
            f"B side (id {dec.b_id}) should test distance {want}, found {got}",
            where,
        )
