"""Formal equivalence prover: product-automaton bisimulation of an MFA
against its un-decomposed original patterns (the ``EQ`` finding family).

The paper's central correctness claim — match filtering preserves the
original patterns' match semantics — is checked at runtime by the sampled
oracle of :mod:`repro.core.verify`.  Sampling can miss divergences that
need one specific byte sequence to trigger; this module *proves* the claim
instead, or produces the shortest byte string that refutes it.

The construction is a reachability walk over the **filter-annotated
product automaton**.  One side is the shipped artifact exactly as the hot
loop executes it: a product state carries the component-DFA state, the
w-bit filter memory, the offset-register masks (normalised to the current
position, so per-byte aging is a shift) and the per-register sticky bits,
and every transition replays the compiled decision ops of
:class:`repro.core.mfa.MFA` — including the collapsed set/clear fast path.
The other side is a reference automaton built directly from the pattern
ASTs via the Thompson path of :mod:`repro.automata.nfa`, bypassing the
splitter entirely; its subset states are packed int masks and successor
computation reuses :func:`repro.fastcompile.bitset.move_masks`.  Both
sides are deterministic, so bisimulation reduces to: at every reachable
product state, both sides confirm the same match-id sets — per transition
(mid-stream) and at end-of-input (``$``-anchored ids).

The naive product is ``|DFA| * 2^w``; reachable states are explored
on-the-fly with a hashed frontier, in breadth-first order so parent links
reconstruct the **shortest distinguishing input** on inequivalence.  Every
counterexample is replay-confirmed through the real engines
(``mfa.run`` vs the reference NFA) before it is reported.  A configurable
state budget degrades the proof to bounded-depth checking, reported as an
explicit ``EQ110`` (*EQ-BOUNDED*) warning, never silently.

``prove_patterns`` fans the per-pattern proofs out over a
``ProcessPoolExecutor`` like :mod:`repro.fastcompile.shards` fans shard
compiles.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Mapping, Optional, Sequence, cast

from ..automata.dfa import DEFAULT_STATE_BUDGET, DFA
from ..automata.nfa import NFA, build_nfa
from ..core.filters import NONE, WINDOW_BITS, FilterAction
from ..core.mfa import MFA, build_mfa
from ..core.splitter import SplitterOptions
from ..regex.ast import Pattern
from .report import ERROR, INFO, WARNING, AnalysisReport, Finding

__all__ = [
    "DEFAULT_PRODUCT_BUDGET",
    "EquivalenceResult",
    "prove_mfa",
    "analyze_equivalence",
    "analyze_engine_equivalence",
    "prove_patterns",
]

COMPONENT = "equivalence"

# Product-state budget: generous for the per-pattern proofs the CI gate
# runs (those close in hundreds to a few thousand states) while keeping a
# pathological whole-set product bounded instead of unbounded.
DEFAULT_PRODUCT_BUDGET = 50_000

_WINDOW_MASK = (1 << WINDOW_BITS) - 1

# A compiled mid-stream op of MFA._compile_ops:
# (match_id, test, set_mask, clear_mask, report, needs_engine).
_Op = tuple[int, int, int, int, int, bool]

MID_STREAM = "mid-stream"
END_OF_INPUT = "end-of-input"


@dataclass(frozen=True, slots=True)
class EquivalenceResult:
    """Outcome of one product-automaton proof.

    ``equivalent`` is True only for a *full* proof: every reachable product
    state was explored within ``budget`` and no divergence was found.
    ``bounded`` marks a budget-truncated walk — ``verified_depth`` is then
    the input length up to which equivalence *was* exhaustively checked.
    On inequivalence, ``counterexample`` is the shortest distinguishing
    input, ``kind`` says where the streams diverge (``mid-stream`` or
    ``end-of-input``), ``expected_ids``/``actual_ids`` the reference/MFA
    confirmed-id sets at the diverging step, and ``replay_confirmed``
    whether re-running the real engines on the counterexample reproduces
    the disagreement.
    """

    equivalent: bool
    bounded: bool
    states: int
    verified_depth: int
    n_symbols: int
    budget: int
    counterexample: Optional[bytes] = None
    kind: Optional[str] = None
    expected_ids: Optional[tuple[int, ...]] = None
    actual_ids: Optional[tuple[int, ...]] = None
    replay_confirmed: Optional[bool] = None


def _apply_action(
    actions: Mapping[int, FilterAction],
    final_ids: frozenset[int],
    match_id: int,
    bits: int,
    regs: tuple[int, ...],
    sticky: int,
) -> tuple[int, tuple[int, ...], int, int]:
    """One filter action on the normalised register model.

    Mirrors :meth:`repro.core.filters.FilterEngine.process` with the
    register masks already aged to the current position (``delta == 0``),
    which the product walk guarantees by shifting masks once per byte.
    Returns ``(bits, regs, sticky, confirmed-id-or-NONE)``.
    """
    action = actions.get(match_id)
    if action is None:
        # Ids with no action pass through when final, drop otherwise.
        return bits, regs, sticky, (match_id if match_id in final_ids else NONE)
    if action.test != NONE and not bits >> action.test & 1:
        return bits, regs, sticky, NONE
    if action.distance is not None:
        reg, lo, hi = action.distance
        mask = regs[reg]
        if hi is None:
            if not mask >> lo and not sticky >> reg & 1:
                return bits, regs, sticky, NONE
        else:
            window = ((1 << (hi - lo + 1)) - 1) << lo
            if not mask & window:
                return bits, regs, sticky, NONE
    if action.set != NONE:
        bits |= 1 << action.set
    if action.clear != NONE:
        bits &= ~(1 << action.clear)
    if action.record != NONE:
        reg = action.record
        regs = regs[:reg] + (regs[reg] | 1,) + regs[reg + 1 :]
    return bits, regs, sticky, action.report


def _register_observations(
    actions: Mapping[int, FilterAction], n_registers: int
) -> tuple[list[int], int, list[int]]:
    """Per-register observation profile for the bisimulation quotient.

    Register masks are 256-bit position histories, so carrying them
    verbatim in the product key makes the reachable space explode.  But
    the only observations ever made of register ``r`` are its distance
    tests: bounded windows ``[lo, hi]`` read bits up to the largest such
    ``hi`` (call it ``H``), while open windows (``hi is None``) ask only
    whether *any* bit sits at or above ``lo`` — which the single oldest
    bit answers, since aging moves every bit up in lockstep and overflow
    into the sticky bit is decided by the oldest bit alone.  Two masks
    agreeing on bits ``0..H`` and on their highest above-``H`` bit are
    therefore indistinguishable by every future observation, and once the
    register's sticky bit is set the above-``H`` region is entirely dead
    (open tests pass via sticky forever; sticky never clears).

    Two sharpenings keep the above-``H`` tracking from itself blowing up
    the product.  Aging only moves bits *up*, so when no open test reads
    ``r`` at all, bits above ``H`` and the sticky bit can never influence
    any observation and are dropped outright.  And once the oldest bit
    reaches ``L`` — the largest ``lo`` of any open test on ``r`` — every
    open test passes through the mask exactly as it would through
    sticky, and keeps passing forever as the bit ages toward overflow;
    such a state is observably identical to sticky-set, so the quotient
    folds it into sticky immediately.  The oldest-bit position is
    therefore only ever tracked in the narrow band ``H+1 .. L-1``.  The
    quotient keeps the product exact while making it finite and small.

    Returns ``(low_filters, open_mask, open_caps)``: the
    ``(1 << (H+1)) - 1`` keep mask per register, a bitmask of registers
    some open test reads, and ``L`` per register (0 when none).
    """
    highs = [-1] * n_registers
    open_mask = 0
    caps = [0] * n_registers
    for action in actions.values():
        if action.distance is not None:
            reg, lo, hi = action.distance
            if hi is None:
                open_mask |= 1 << reg
                if lo > caps[reg]:
                    caps[reg] = lo
            elif hi > highs[reg]:
                highs[reg] = hi
    return [(1 << (high + 1)) - 1 for high in highs], open_mask, caps


def _dfa_byte_groups(dfa: DFA) -> list[int]:
    """Byte -> equivalence group of the component DFA.

    Always recomputed from the dense rows (two bytes are equivalent when
    every state sends them to the same target) — never taken from the
    ``group_of_byte`` provenance.  The prover's verdict rests on testing
    one representative byte per joint group, so trusting recorded groups
    that a corrupted or hand-edited artifact may contradict would let a
    divergence hide behind a non-representative byte.
    """
    signature_of: dict[tuple[int, ...], int] = {}
    groups: list[int] = []
    for byte in range(256):
        signature = tuple(row[byte] for row in dfa.rows)
        groups.append(signature_of.setdefault(signature, len(signature_of)))
    return groups


def _product_walk(mfa: MFA, reference: NFA, state_budget: int) -> EquivalenceResult:
    """The BFS over reachable ``(q, m) x reference-subset`` product states."""
    from ..fastcompile.bitset import move_masks

    dfa = mfa.dfa
    program = mfa.program
    actions = program.actions
    final_ids = program.final_ids
    n_registers = program.n_registers
    ops_table = mfa._ops
    end_table = mfa._ordered_accepts_end
    rows = dfa.rows

    ref_group_of_byte, ref_representatives = reference.alphabet_groups()
    ref_moves = move_masks(reference, list(ref_representatives))
    ref_accepts = reference.accepts
    ref_accepts_end = reference.accepts_end
    dfa_groups = _dfa_byte_groups(dfa)

    # Joint alphabet: one symbol class per distinct (DFA group, reference
    # group) pair, discovered in byte order so the walk is deterministic.
    pair_of: dict[tuple[int, int], int] = {}
    symbols: list[tuple[int, int]] = []  # (representative byte, ref group)
    for byte in range(256):
        pair = (dfa_groups[byte], ref_group_of_byte[byte])
        if pair not in pair_of:
            pair_of[pair] = len(symbols)
            symbols.append((byte, pair[1]))

    initial_mask = 0
    for state in reference.initial:
        initial_mask |= 1 << state

    # Memoised reference-side helpers (masks recur across product states).
    succ_cache: dict[tuple[int, int], int] = {}
    mid_cache: dict[int, tuple[int, ...]] = {}
    end_cache: dict[int, tuple[int, ...]] = {}

    def mask_ids(
        mask: int,
        decisions: list[tuple[int, ...]],
        cache: dict[int, tuple[int, ...]],
    ) -> tuple[int, ...]:
        got = cache.get(mask)
        if got is None:
            ids: set[int] = set()
            rest = mask
            while rest:
                low = rest & -rest
                ids.update(decisions[low.bit_length() - 1])
                rest ^= low
            got = tuple(sorted(ids))
            cache[mask] = got
        return got

    def successor(mask: int, group: int) -> int:
        key = (mask, group)
        got = succ_cache.get(key)
        if got is None:
            got = 0
            rest = mask
            while rest:
                low = rest & -rest
                got |= ref_moves[low.bit_length() - 1][group]
                rest ^= low
            succ_cache[key] = got
        return got

    def run_ops(
        ops: object, bits: int, regs: tuple[int, ...], sticky: int
    ) -> tuple[int, tuple[int, ...], int, tuple[int, ...]]:
        """Execute one state's compiled decision ops; returns the updated
        memory plus the *set* of confirmed ids (the reference NFA reports
        each id at most once per position, so duplicates are collapsed)."""
        if ops is None:
            return bits, regs, sticky, ()
        if isinstance(ops, list):
            # Collapsed fast path: unconditional set/clear masks only.
            return bits & ops[1] | ops[0], regs, sticky, ()
        reported: set[int] = set()
        for match_id, test, set_mask, clear_mask, report, needs_engine in cast(
            tuple[_Op, ...], ops
        ):
            if needs_engine:
                bits, regs, sticky, confirmed = _apply_action(
                    actions, final_ids, match_id, bits, regs, sticky
                )
                if confirmed != NONE:
                    reported.add(confirmed)
                continue
            if test >= 0 and not bits >> test & 1:
                continue
            if set_mask or clear_mask:
                bits = bits & ~clear_mask | set_mask
            if report >= 0:
                reported.add(report)
        return bits, regs, sticky, tuple(sorted(reported))

    def end_ids(q: int, bits: int, regs: tuple[int, ...], sticky: int) -> tuple[int, ...]:
        """The MFA's end-of-input confirmations at this product state
        (``MFA.finish`` semantics: actions run in priority order and see
        each other's memory effects)."""
        ids: set[int] = set()
        for match_id in end_table[q]:
            bits, regs, sticky, confirmed = _apply_action(
                actions, final_ids, match_id, bits, regs, sticky
            )
            if confirmed != NONE:
                ids.add(confirmed)
        return tuple(sorted(ids))

    def age(regs: tuple[int, ...], sticky: int) -> tuple[tuple[int, ...], int]:
        """Advance every register mask by one byte; overflow saturates
        into the sticky bit exactly as ``FilterEngine._aged_mask`` does."""
        aged: list[int] = []
        for index, mask in enumerate(regs):
            shifted = mask << 1
            if shifted >> WINDOW_BITS:
                sticky |= 1 << index
                shifted &= _WINDOW_MASK
            aged.append(shifted)
        return tuple(aged), sticky

    low_filters, open_reg_mask, open_caps = _register_observations(actions, n_registers)

    def canon(regs: tuple[int, ...], sticky: int) -> tuple[tuple[int, ...], int]:
        """Quotient register state before hashing (see
        :func:`_register_observations`): exact low window; for
        open-tested registers at most one above-window bit (the oldest),
        folded into sticky once it reaches every open ``lo``, nothing
        once sticky; for bounded-only registers no above bits and no
        sticky bit at all."""
        out: list[int] = []
        for index, mask in enumerate(regs):
            low = mask & low_filters[index]
            if open_reg_mask >> index & 1:
                if not sticky >> index & 1:
                    above = mask ^ low
                    if above:
                        oldest = above.bit_length() - 1
                        if oldest >= open_caps[index]:
                            sticky |= 1 << index
                        else:
                            low |= 1 << oldest
            else:
                sticky &= ~(1 << index)
            out.append(low)
        return tuple(out), sticky

    ProductKey = tuple[int, int, tuple[int, ...], int, int]
    start_key: ProductKey = (dfa.start, 0, (0,) * n_registers, 0, initial_mask)
    index_of: dict[ProductKey, int] = {start_key: 0}
    keys: list[ProductKey] = [start_key]
    parents: list[tuple[int, int]] = [(-1, -1)]
    depths: list[int] = [0]

    def path_to(slot: int) -> bytes:
        out = bytearray()
        while slot > 0:
            parent, byte = parents[slot]
            out.append(byte)
            slot = parent
        out.reverse()
        return bytes(out)

    bounded = False
    refused_depth: Optional[int] = None
    divergence: Optional[tuple[bytes, str, tuple[int, ...], tuple[int, ...]]] = None

    head = 0
    while head < len(keys) and divergence is None:
        q, bits, regs, sticky, ref_mask = keys[head]
        depth = depths[head]
        aged_regs, aged_sticky = age(regs, sticky) if n_registers else (regs, sticky)
        for rep, ref_group in symbols:
            q2 = rows[q][rep]
            mask2 = successor(ref_mask, ref_group)
            bits2, regs2, sticky2, got_mid = run_ops(
                ops_table[q2], bits, aged_regs, aged_sticky
            )
            want_mid = mask_ids(mask2, ref_accepts, mid_cache)
            if got_mid != want_mid:
                divergence = (path_to(head) + bytes([rep]), MID_STREAM, want_mid, got_mid)
                break
            if n_registers:
                regs2, sticky2 = canon(regs2, sticky2)
            key2: ProductKey = (q2, bits2, regs2, sticky2, mask2)
            if key2 in index_of:
                continue
            if len(keys) >= state_budget:
                bounded = True
                if refused_depth is None:
                    refused_depth = depth + 1
                continue
            slot = len(keys)
            index_of[key2] = slot
            keys.append(key2)
            parents.append((head, rep))
            depths.append(depth + 1)
            # End-of-input outputs are a property of the state; checking at
            # discovery keeps counterexamples shortest (a depth-d state's
            # end divergence is a length-d input).
            got_end = end_ids(q2, bits2, regs2, sticky2)
            want_end = mask_ids(mask2, ref_accepts_end, end_cache)
            if got_end != want_end:
                divergence = (path_to(slot), END_OF_INPUT, want_end, got_end)
                break
        head += 1

    states = len(keys)
    if divergence is not None:
        data, kind, want, got = divergence
        return EquivalenceResult(
            equivalent=False,
            bounded=False,
            states=states,
            verified_depth=max(len(data) - 1, 0),
            n_symbols=len(symbols),
            budget=state_budget,
            counterexample=data,
            kind=kind,
            expected_ids=want,
            actual_ids=got,
        )
    if bounded:
        # Every state of depth < refused_depth was admitted and expanded,
        # so all inputs up to refused_depth - 1 bytes are fully checked
        # (mid-stream and end-of-input).
        verified = max((refused_depth or 1) - 1, 0)
        return EquivalenceResult(
            equivalent=False,
            bounded=True,
            states=states,
            verified_depth=verified,
            n_symbols=len(symbols),
            budget=state_budget,
        )
    return EquivalenceResult(
        equivalent=True,
        bounded=False,
        states=states,
        verified_depth=max(depths),
        n_symbols=len(symbols),
        budget=state_budget,
    )


def _replay_diverges(mfa: MFA, reference: NFA, data: bytes) -> bool:
    """Ground truth: do the real engines actually disagree on ``data``?"""
    got = {(event.pos, event.match_id) for event in mfa.run(data)}
    want = {(event.pos, event.match_id) for event in reference.run(data)}
    return got != want


def prove_mfa(
    mfa: MFA,
    patterns: Sequence[Pattern],
    *,
    state_budget: int = DEFAULT_PRODUCT_BUDGET,
) -> EquivalenceResult:
    """Prove ``mfa`` equivalent to the un-decomposed ``patterns``.

    The reference automaton is built straight from the pattern ASTs via
    the Thompson path — the splitter is bypassed entirely, so nothing the
    decomposition could get wrong is shared between the two sides.  Any
    counterexample is replay-confirmed through the real engines.
    """
    reference = build_nfa(list(patterns))
    result = _product_walk(mfa, reference, state_budget)
    if result.counterexample is not None:
        confirmed = _replay_diverges(mfa, reference, result.counterexample)
        result = replace(result, replay_confirmed=confirmed)
    return result


# -- finding emission ---------------------------------------------------------


def _render_input(data: bytes) -> str:
    shown = data if len(data) <= 64 else data[:64]
    suffix = "..." if len(data) > 64 else ""
    return f"{shown!r}{suffix} (hex {shown.hex()}{suffix}, {len(data)} bytes)"


def _render_ids(ids: tuple[int, ...]) -> str:
    return "{" + ", ".join(str(i) for i in ids) + "}"


def emit_findings(
    result: EquivalenceResult,
    report: AnalysisReport,
    location: str = "",
) -> None:
    """Translate one proof outcome into ``EQ`` findings on ``report``."""
    if result.counterexample is not None:
        where = _render_input(result.counterexample)
        want = _render_ids(result.expected_ids or ())
        got = _render_ids(result.actual_ids or ())
        if not result.replay_confirmed:
            report.add(
                "EQ103",
                ERROR,
                COMPONENT,
                f"prover found a {result.kind} divergence on {where} that replay "
                f"does not confirm (prover model drift: reference {want}, "
                f"product model {got})",
                location,
            )
            return
        code = "EQ101" if result.kind == MID_STREAM else "EQ102"
        report.add(
            code,
            ERROR,
            COMPONENT,
            f"{result.kind} divergence on shortest input {where}: reference "
            f"confirms {want}, MFA confirms {got} (replay-confirmed)",
            location,
        )
        return
    if result.bounded:
        report.add(
            "EQ110",
            WARNING,
            COMPONENT,
            f"EQ-BOUNDED: product budget of {result.budget} states exhausted "
            f"after {result.states} reachable states; equivalence verified "
            f"only for inputs up to {result.verified_depth} bytes",
            location,
        )
        return
    report.add(
        "EQ130",
        INFO,
        COMPONENT,
        f"proved equivalent: {result.states} product states, depth "
        f"{result.verified_depth}, {result.n_symbols} symbol classes",
        location,
    )


def analyze_equivalence(
    mfa: MFA,
    patterns: Sequence[Pattern],
    report: AnalysisReport | None = None,
    *,
    state_budget: int = DEFAULT_PRODUCT_BUDGET,
    location: str = "",
) -> AnalysisReport:
    """Run the prover and emit its outcome as ``EQ`` findings."""
    out = report if report is not None else AnalysisReport()
    try:
        result = prove_mfa(mfa, patterns, state_budget=state_budget)
    except Exception as exc:  # noqa: BLE001 - a prover crash IS a finding
        out.add(
            "EQ100",
            ERROR,
            COMPONENT,
            f"prover failed: {type(exc).__name__}: {exc}",
            location,
        )
        return out
    emit_findings(result, out, location)
    return out


def analyze_engine_equivalence(
    engine: object,
    patterns: Sequence[Pattern],
    report: AnalysisReport | None = None,
    *,
    state_budget: int = DEFAULT_PRODUCT_BUDGET,
) -> AnalysisReport:
    """Prove whatever engine shipped, shard by shard when sharded.

    MFA shards are matched to their patterns through the program's final-id
    set (robust to shards the resilient compiler dropped or degraded);
    engine families without a filter program are outside the prover's
    scope and reported as ``EQ120`` info.
    """
    out = report if report is not None else AnalysisReport()
    if isinstance(engine, MFA):
        return analyze_equivalence(engine, patterns, out, state_budget=state_budget)
    shards = getattr(engine, "shards", None)
    if shards is not None:
        for index, shard in enumerate(shards):
            where = f"shard {index}"
            if not isinstance(shard, MFA):
                out.add(
                    "EQ120",
                    INFO,
                    COMPONENT,
                    f"engine family {type(shard).__name__} is outside the "
                    f"prover's scope (no filter program to prove)",
                    where,
                )
                continue
            shard_ids = shard.program.final_ids
            shard_patterns = [p for p in patterns if p.match_id in shard_ids]
            if frozenset(p.match_id for p in shard_patterns) != shard_ids:
                out.add(
                    "EQ100",
                    ERROR,
                    COMPONENT,
                    f"cannot attribute original patterns to the shard: its "
                    f"final ids are {sorted(shard_ids)} but the pattern list "
                    f"provides {sorted(p.match_id for p in shard_patterns)}",
                    where,
                )
                continue
            analyze_equivalence(
                shard, shard_patterns, out, state_budget=state_budget, location=where
            )
        return out
    out.add(
        "EQ120",
        INFO,
        COMPONENT,
        f"engine family {type(engine).__name__} is outside the prover's "
        f"scope (no filter program to prove)",
    )
    return out


# -- per-pattern fan-out ------------------------------------------------------


def _prove_one_pattern(
    pattern: Pattern,
    report: AnalysisReport,
    state_budget: int,
    dfa_budget: int,
    splitter_options: SplitterOptions | None,
) -> None:
    where = f"pattern {pattern.match_id}"
    try:
        mfa = build_mfa([pattern], splitter_options, state_budget=dfa_budget)
    except Exception as exc:  # noqa: BLE001 - an unbuildable pattern is a finding
        report.add(
            "EQ100",
            ERROR,
            COMPONENT,
            f"cannot build the MFA to prove: {type(exc).__name__}: {exc}",
            where,
        )
        return
    analyze_equivalence(mfa, [pattern], report, state_budget=state_budget, location=where)


_WorkerPayload = tuple[Pattern, int, int, Optional[SplitterOptions]]


def _prove_pattern_worker(payload: _WorkerPayload) -> list[tuple[str, str, str, str, str]]:
    """Pool worker: prove one pattern, return findings as plain tuples.

    Findings cross the process boundary as 5-tuples (like the tagged
    error tuples of :mod:`repro.fastcompile.shards`) so the parent never
    depends on pickling dataclass internals.
    """
    pattern, state_budget, dfa_budget, splitter_options = payload
    report = AnalysisReport()
    _prove_one_pattern(pattern, report, state_budget, dfa_budget, splitter_options)
    return [
        (f.code, f.severity, f.component, f.message, f.location) for f in report.findings
    ]


def prove_patterns(
    patterns: Sequence[Pattern],
    report: AnalysisReport | None = None,
    *,
    state_budget: int = DEFAULT_PRODUCT_BUDGET,
    dfa_budget: int = DEFAULT_STATE_BUDGET,
    splitter_options: SplitterOptions | None = None,
    jobs: int = 1,
) -> AnalysisReport:
    """Prove every pattern individually: ``MFA([p])`` vs its own reference.

    This is the per-pattern decomposition check the paper's theorem is
    stated over ("for each original pattern"), and it stays feasible even
    for sets whose *combined* un-decomposed automaton explodes (B217p).
    With ``jobs > 1`` the proofs fan out over a ``ProcessPoolExecutor``;
    findings come back located as ``pattern <match_id>`` either way, so
    the merged report is identical to a serial run.
    """
    out = report if report is not None else AnalysisReport()
    items = list(patterns)
    workers = min(jobs, len(items))
    if workers > 1:
        payloads: list[_WorkerPayload] = [
            (pattern, state_budget, dfa_budget, splitter_options) for pattern in items
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for findings in pool.map(_prove_pattern_worker, payloads):
                out.extend(Finding(*fields) for fields in findings)
    else:
        for pattern in items:
            _prove_one_pattern(pattern, out, state_budget, dfa_budget, splitter_options)
    return out
