"""Static verifier & lint suite for MFA artifacts, bytecode, and rule sets.

Seven analyzers, one report type, zero traffic:

* :mod:`~repro.analyze.bytecode` — proves invariants of the
  ``(test, set, clear, report)`` filter programs: references, liveness,
  guard-chain connectivity;
* :mod:`~repro.analyze.automaton` — transition-table completeness,
  reachability, match-id referential integrity, serialize fixpoints for
  DFA / MFA / ShardedMFA;
* :mod:`~repro.analyze.safety` — re-derives the splitter's decomposition
  safety conditions independently and flags any split it cannot prove;
* :mod:`~repro.analyze.explosion` — predicts state-explosion risk from a
  static census, the signal :class:`~repro.robust.pipeline.ResilientCompiler`
  uses to skip hopeless compile attempts;
* :mod:`~repro.analyze.equivalence` — *proves* the paper's correctness
  theorem per artifact: product-automaton bisimulation of the compiled
  MFA against a reference automaton built from the un-decomposed pattern
  ASTs, with shortest-counterexample extraction on inequivalence;
* :mod:`~repro.analyze.adversary` — worst-case cost audit: synthesizes
  replay-confirmed witness traces for every data-dependent slow path an
  artifact carries (D²FA chain walks, hot-cache thrash, prefilter
  evasion, filter bit-churn) with statically predicted slowdown bounds;
* :mod:`~repro.analyze.ruleset` — cross-rule interaction analysis:
  exact duplicate/subsumption/shadowing proofs via product-automaton
  walks with replay-confirmed witnesses, a predicted-cost interaction
  graph, and the interaction-aware shard planner behind
  ``compile_mfa(shard_plan="interaction")``.

:mod:`~repro.analyze.bundle` applies the first two tolerantly to
serialized bundles, so a corrupt artifact yields findings instead of one
load exception.  The runtime counterpart — diffing match streams against
an oracle — lives in :mod:`repro.core.verify`; this package is the
compile-time half of the same correctness argument.
"""

from .adversary import (
    REQUIRED_WITNESS_KINDS,
    AdversaryResult,
    ReplayOutcome,
    WitnessTrace,
    analyze_adversary,
    analyze_engine_adversary,
    replay_witness,
)
from .automaton import analyze_dfa, analyze_engine, analyze_mfa
from .bundle import analyze_bundle
from .bytecode import analyze_program, dead_bits, strip_dead_bits
from .equivalence import (
    DEFAULT_PRODUCT_BUDGET,
    EquivalenceResult,
    analyze_engine_equivalence,
    analyze_equivalence,
    prove_mfa,
    prove_patterns,
)
from .explosion import (
    RISK_HIGH,
    RISK_LOW,
    RISK_MEDIUM,
    PatternCensus,
    TriageResult,
    triage_patterns,
)
from .report import ERROR, INFO, SEVERITIES, WARNING, AnalysisReport, Finding
from .ruleset import (
    Containment,
    InteractionEdge,
    RulesetResult,
    ShardPlan,
    SubsumptionWitness,
    analyze_ruleset,
    pattern_contains,
    plan_shards,
    prune_patterns,
)
from .safety import audit_split

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "Finding",
    "AnalysisReport",
    "analyze_program",
    "dead_bits",
    "strip_dead_bits",
    "analyze_dfa",
    "analyze_mfa",
    "analyze_engine",
    "analyze_bundle",
    "audit_split",
    "DEFAULT_PRODUCT_BUDGET",
    "EquivalenceResult",
    "prove_mfa",
    "prove_patterns",
    "analyze_equivalence",
    "analyze_engine_equivalence",
    "triage_patterns",
    "TriageResult",
    "PatternCensus",
    "RISK_LOW",
    "RISK_MEDIUM",
    "RISK_HIGH",
    "REQUIRED_WITNESS_KINDS",
    "AdversaryResult",
    "ReplayOutcome",
    "WitnessTrace",
    "analyze_adversary",
    "analyze_engine_adversary",
    "replay_witness",
    "Containment",
    "InteractionEdge",
    "RulesetResult",
    "ShardPlan",
    "SubsumptionWitness",
    "analyze_ruleset",
    "pattern_contains",
    "plan_shards",
    "prune_patterns",
]
