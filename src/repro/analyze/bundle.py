"""Tolerant audit of serialized MFA bundles.

The strict loader (:func:`repro.core.serialize.loads_mfa`) refuses a
corrupt bundle with a single exception.  The analyzer instead decodes
each layer tolerantly and keeps going, so one pass over a damaged
artifact names *every* defect: framing (``BN1xx``), then the filter
table through the bytecode verifier (``FB*``), then the transition table
through the automaton checker (``AU*``), then cross-references between
the two.  A bundle that decodes cleanly is additionally checked for
canonical encoding — re-serialising must reproduce the input bytes.
"""

from __future__ import annotations

import json
from array import array
from os import PathLike
from pathlib import Path

from ..automata.dfa import DFA
from ..automata.serialize import CDFA_MAGIC, decode_cdfa_header, decode_dfa_header
from ..core.serialize import split_bundle
from .automaton import analyze_dfa
from .bytecode import RawProgram, analyze_program, raw_program
from .report import ERROR, WARNING, AnalysisReport

__all__ = ["analyze_bundle"]

COMPONENT = "bundle"

# A sanity ceiling on the header's claimed state count: anything past this
# would allocate gigabytes from four header bytes, which in a *bundle
# auditor* is itself the finding.
_MAX_CLAIMED_STATES = 16_000_000


def analyze_bundle(source: bytes | str | PathLike) -> AnalysisReport:
    """Audit a serialized MFA bundle without trusting any of it."""
    out = AnalysisReport()
    if isinstance(source, (str, PathLike)):
        try:
            blob = Path(source).read_bytes()
        except OSError as exc:
            out.add("BN100", ERROR, COMPONENT, f"cannot read bundle: {exc}")
            return out
    else:
        blob = source

    try:
        program_bytes, dfa_bytes = split_bundle(blob)
    except ValueError as exc:
        out.add("BN101", ERROR, COMPONENT, str(exc))
        return out

    program = _decode_program(program_bytes, out)
    dfa = _decode_dfa(dfa_bytes, out)
    if program is not None:
        analyze_program(program, out)
    if dfa is not None:
        analyze_dfa(dfa, program, out, roundtrip=False)
    if program is not None and dfa is not None and not out.has_errors:
        _check_canonical(blob, out)
    return out


def _decode_program(program_bytes: bytes, out: AnalysisReport) -> RawProgram | None:
    try:
        blob = json.loads(program_bytes)
    except ValueError as exc:
        out.add("BN103", ERROR, "filter", f"filter table is not valid JSON: {exc}")
        return None
    try:
        return raw_program(blob)
    except (TypeError, ValueError, KeyError, AttributeError) as exc:
        out.add(
            "BN103",
            ERROR,
            "filter",
            f"filter table JSON has the wrong shape: {type(exc).__name__}: {exc}",
        )
        return None


def _decode_dfa(dfa_bytes: bytes, out: AnalysisReport) -> DFA | None:
    if bytes(memoryview(dfa_bytes)[: len(CDFA_MAGIC)]) == CDFA_MAGIC:
        return _decode_cdfa(dfa_bytes, out)
    try:
        header, table_bytes = decode_dfa_header(dfa_bytes)
    except ValueError as exc:
        out.add("BN104", ERROR, "dfa", str(exc))
        return None
    try:
        n_states = int(header["n_states"])
        start = int(header["start"])
        accepts = [tuple(int(i) for i in a) for a in header["accepts"]]
        accepts_end = [tuple(int(i) for i in a) for a in header["accepts_end"]]
        group_blob = header.get("group_of_byte")
    except (KeyError, TypeError, ValueError) as exc:
        out.add(
            "BN104",
            ERROR,
            "dfa",
            f"DFA header missing or malformed field: {type(exc).__name__}: {exc}",
        )
        return None
    if not 0 <= n_states <= _MAX_CLAIMED_STATES:
        out.add(
            "BN106",
            ERROR,
            "dfa",
            f"header claims {n_states} states, outside the plausible range",
        )
        return None

    table = array("i")
    usable = len(table_bytes) - len(table_bytes) % 4
    table.frombytes(table_bytes[:usable])
    want_entries = n_states * 256
    if len(table) != want_entries:
        out.add(
            "BN105",
            ERROR,
            "dfa",
            f"transition table holds {len(table)} entries, header wants "
            f"{want_entries} ({n_states} states x 256): truncated or overlong table",
        )
    rows = [table[i * 256 : (i + 1) * 256] for i in range(min(n_states, len(table) // 256))]
    if not rows:
        return None
    group_of_byte = None
    if group_blob is not None:
        try:
            group_of_byte = array("i", (int(g) for g in group_blob))
        except (TypeError, ValueError):
            out.add("BN104", ERROR, "dfa", "group_of_byte field is malformed")
    # Decision lists are padded out to the row count so the automaton
    # checker sees the length mismatch as its own finding rather than an
    # index crash.
    dfa = DFA(rows, start, accepts, accepts_end, group_of_byte=group_of_byte)
    if len(accepts) != n_states or len(accepts_end) != n_states or len(rows) != n_states:
        out.add(
            "BN105",
            ERROR,
            "dfa",
            f"header n_states={n_states} disagrees with decoded content "
            f"({len(rows)} rows, {len(accepts)} accepts, {len(accepts_end)} "
            f"accepts_end)",
        )
    return dfa


def _decode_cdfa(dfa_bytes: bytes, out: AnalysisReport) -> DFA | None:
    """Tolerantly decode a compressed (``MFADFA2``) DFA section.

    ``BN107`` covers framing/section damage (bad header, truncated binary
    sections); ``BN108`` covers a structurally intact forest that is
    semantically invalid (default pointers out of range, default cycles,
    overlay targets past the state count).  A clean decode is flattened
    back to a dense DFA so the ordinary automaton checks run on it.
    """
    try:
        header, _body = decode_cdfa_header(dfa_bytes)
    except ValueError as exc:
        out.add("BN107", ERROR, "dfa", str(exc))
        return None
    try:
        n_states = int(header["n_states"])
        int(header["start"])
        n_roots = int(header["n_roots"])
        int(header["n_overlays"])
        claimed_depth = int(header.get("max_depth", 0))
    except (KeyError, TypeError, ValueError) as exc:
        out.add(
            "BN107",
            ERROR,
            "dfa",
            f"compressed DFA header missing or malformed field: "
            f"{type(exc).__name__}: {exc}",
        )
        return None
    if not 0 <= n_states <= _MAX_CLAIMED_STATES:
        out.add(
            "BN106",
            ERROR,
            "dfa",
            f"header claims {n_states} states, outside the plausible range",
        )
        return None
    from ..automata.serialize import loads_cdfa

    try:
        cdfa = loads_cdfa(dfa_bytes)
    except (ValueError, TypeError, OverflowError) as exc:
        out.add(
            "BN107",
            ERROR,
            "dfa",
            f"compressed DFA sections do not decode: {exc}",
        )
        return None

    n = cdfa.n_states
    bad_forest = False
    depth = [-1] * n  # -1 unknown, -2 on current walk (cycle detection)
    for q in range(n):
        parent = cdfa.parent[q]
        if parent < -1 or parent >= n:
            out.add(
                "BN108",
                ERROR,
                "dfa",
                f"state {q} has default pointer {parent}, outside [-1, {n})",
            )
            bad_forest = True
            continue
        if parent < 0:
            slot = cdfa.root_index[q]
            if not 0 <= slot < n_roots:
                out.add(
                    "BN108",
                    ERROR,
                    "dfa",
                    f"root state {q} has dense-row index {slot}, outside "
                    f"[0, {n_roots})",
                )
                bad_forest = True
    if not bad_forest:
        for q in range(n):
            walk = []
            cur = q
            while depth[cur] == -1:
                depth[cur] = -2
                walk.append(cur)
                parent = cdfa.parent[cur]
                if parent < 0:
                    depth[cur] = 0
                    walk.pop()
                    break
                cur = parent
                if depth[cur] == -2:
                    out.add(
                        "BN108",
                        ERROR,
                        "dfa",
                        f"default-pointer cycle through state {cur}",
                    )
                    bad_forest = True
                    for s in walk:
                        depth[s] = 0  # arbitrary; forest already condemned
                    walk = []
                    break
            for s in reversed(walk):
                depth[s] = depth[cdfa.parent[s]] + 1
            if bad_forest:
                break
    if not bad_forest:
        deepest = max(depth, default=0)
        if claimed_depth and deepest > claimed_depth:
            out.add(
                "BN108",
                WARNING,
                "dfa",
                f"default chains reach depth {deepest}, header claims "
                f"max_depth={claimed_depth}",
            )
        for q in range(n):
            for byte, target in cdfa.overlays[q].items():
                if not 0 <= target < n:
                    out.add(
                        "BN108",
                        ERROR,
                        "dfa",
                        f"state {q} overlay byte {byte} targets {target}, "
                        f"outside [0, {n})",
                    )
                    bad_forest = True
        for slot, row in enumerate(cdfa.root_rows):
            for target in row:
                if not 0 <= target < n:
                    out.add(
                        "BN108",
                        ERROR,
                        "dfa",
                        f"dense root row {slot} targets {target}, outside [0, {n})",
                    )
                    bad_forest = True
                    break
    if bad_forest or n == 0:
        return None
    return cdfa.flatten()


def _check_canonical(blob: bytes, out: AnalysisReport) -> None:
    from ..core.serialize import dumps_mfa, loads_mfa

    try:
        again = dumps_mfa(loads_mfa(blob))
    except Exception as exc:  # noqa: BLE001 - strict load disagreeing is a finding
        out.add(
            "BN110",
            ERROR,
            COMPONENT,
            f"analyzer found no defects but the strict loader refused the "
            f"bundle: {type(exc).__name__}: {exc}",
        )
        return
    if again != blob:
        out.add(
            "BN110",
            WARNING,
            COMPONENT,
            "bundle is valid but not canonically encoded: re-serialising "
            "produces different bytes",
        )
