"""``python -m repro`` runs the mfa-bench command line."""

from .bench.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
