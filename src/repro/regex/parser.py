"""Recursive-descent parser producing :mod:`repro.regex.ast` trees.

Grammar (standard regex precedence):

    pattern  := '^'? alt '$'?
    alt      := cat ('|' cat)*
    cat      := repeat*
    repeat   := atom ('*' | '+' | '?' | '{m,n}')*
    atom     := CHAR | CLASS | '.' | '(' alt ')'

Anchors are only honoured at the very start/end of the whole pattern
(inner ``^``/``$`` are rejected — security rule sets do not use them and
streaming engines cannot honour mid-pattern anchors).
"""

from __future__ import annotations

from dataclasses import dataclass

from . import ast
from .ast import Node, Pattern
from .charclass import CharClass
from .lexer import Lexer, LexerOptions, RegexSyntaxError, Token, TokenKind

__all__ = ["parse", "parse_many", "ParserOptions", "RegexSyntaxError"]

_QUANTIFIERS = (TokenKind.STAR, TokenKind.PLUS, TokenKind.QMARK, TokenKind.REPEAT)
_ATOM_STARTS = (TokenKind.CHAR, TokenKind.CLASS, TokenKind.DOT, TokenKind.LPAREN)


@dataclass(frozen=True, slots=True)
class ParserOptions:
    """Parsing knobs; see :class:`~repro.regex.lexer.LexerOptions`.

    ``max_counted_repeat`` bounds ``{m,n}`` counts so that a pathological
    pattern cannot demand a billion-state automaton at parse time.
    """

    dotall: bool = True
    ignore_case: bool = False
    max_counted_repeat: int = 1024

    def lexer_options(self) -> LexerOptions:
        return LexerOptions(dotall=self.dotall, ignore_case=self.ignore_case)


def parse(text: str, match_id: int = 1, options: ParserOptions | None = None) -> Pattern:
    """Parse one pattern.

    ``/body/flags`` syntax is accepted (as Snort rules use): flags ``i``
    (ignore case) and ``s`` (DOTALL) override ``options``.
    """
    options = options or ParserOptions()
    body, options = _strip_slashes(text, options)
    return _Parser(body, options).parse_pattern(match_id, source=text)


def parse_many(texts: list[str], options: ParserOptions | None = None) -> list[Pattern]:
    """Parse a rule set, assigning match-ids 1..n in order (paper §IV)."""
    return [parse(text, match_id=i + 1, options=options) for i, text in enumerate(texts)]


def _strip_slashes(text: str, options: ParserOptions) -> tuple[str, ParserOptions]:
    if len(text) >= 2 and text.startswith("/"):
        end = text.rfind("/")
        if end > 0:
            flags = text[end + 1 :]
            if all(f in "ism" for f in flags):
                dotall = options.dotall or "s" in flags
                ignore_case = options.ignore_case or "i" in flags
                return text[1:end], ParserOptions(
                    dotall=dotall,
                    ignore_case=ignore_case,
                    max_counted_repeat=options.max_counted_repeat,
                )
    return text, options


class _Parser:
    def __init__(self, text: str, options: ParserOptions):
        self._options = options
        self._tokens = Lexer(text, options.lexer_options()).tokens()
        self._index = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def _current(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        tok = self._current
        if tok.kind is not TokenKind.EOF:
            self._index += 1
        return tok

    def _expect(self, kind: TokenKind) -> Token:
        tok = self._current
        if tok.kind is not kind:
            raise RegexSyntaxError(f"expected {kind.value}, found {tok.kind.value}", tok.pos)
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_pattern(self, match_id: int, source: str) -> Pattern:
        anchored = False
        if self._current.kind is TokenKind.CARET:
            anchored = True
            self._advance()
        root = self._parse_alt()
        end_anchored = False
        if self._current.kind is TokenKind.DOLLAR:
            end_anchored = True
            self._advance()
        tok = self._current
        if tok.kind is not TokenKind.EOF:
            raise RegexSyntaxError(f"unexpected {tok.kind.value}", tok.pos)
        return Pattern(
            root,
            match_id=match_id,
            anchored=anchored,
            end_anchored=end_anchored,
            source=source,
        )

    def _parse_alt(self) -> Node:
        options = [self._parse_cat()]
        while self._current.kind is TokenKind.PIPE:
            self._advance()
            options.append(self._parse_cat())
        return ast.alternate(options)

    def _parse_cat(self) -> Node:
        parts: list[Node] = []
        while self._current.kind in _ATOM_STARTS:
            parts.append(self._parse_repeat())
        return ast.concat(parts) if parts else ast.EMPTY

    def _parse_repeat(self) -> Node:
        node = self._parse_atom()
        while (kind := self._current.kind) in _QUANTIFIERS:
            tok = self._advance()
            if kind is TokenKind.STAR:
                node = ast.star(node)
            elif kind is TokenKind.PLUS:
                node = ast.plus(node)
            elif kind is TokenKind.QMARK:
                node = ast.optional(node)
            else:
                lo, hi = tok.value  # type: ignore[misc]
                limit = self._options.max_counted_repeat
                if lo > limit or (hi is not None and hi > limit):
                    raise RegexSyntaxError(
                        f"counted repeat exceeds limit of {limit}", tok.pos
                    )
                node = ast.repeat(node, lo, hi)
            # Lazy modifier (*?, +?, ??, {n,m}?): greedy and lazy quantifiers
            # denote the same language, and report-all-end-positions
            # semantics only depend on the language — accept and ignore, for
            # compatibility with real pcre-bearing rule sets.
            if kind is not TokenKind.QMARK and self._current.kind is TokenKind.QMARK:
                self._advance()
        return node

    def _parse_atom(self) -> Node:
        tok = self._advance()
        if tok.kind is TokenKind.CHAR:
            return ast.literal(tok.value)  # type: ignore[arg-type]
        if tok.kind is TokenKind.CLASS:
            return ast.ClassNode(tok.value)  # type: ignore[arg-type]
        if tok.kind is TokenKind.DOT:
            return ast.ClassNode(self._options.lexer_options().dot_class)
        if tok.kind is TokenKind.LPAREN:
            inner = self._parse_alt()
            self._expect(TokenKind.RPAREN)
            return inner
        raise RegexSyntaxError(f"unexpected {tok.kind.value}", tok.pos)
