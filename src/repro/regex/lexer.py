"""Tokenizer for the supported PCRE subset.

The lexer does all character-level work — escape sequences, character
classes (including ranges and negation), ``{m,n}`` counted repetitions —
and hands the parser a flat token stream.  Splitting lexing from parsing
keeps each side simple and lets the tests exercise escape handling in
isolation.

Supported syntax (the subset used by Snort/Bro-style security rules):

* literal bytes (patterns are latin-1, i.e. byte-transparent)
* ``\\n \\t \\r \\f \\v \\0 \\a \\e \\xHH`` and identity escapes
* class escapes ``\\d \\D \\w \\W \\s \\S``
* ``.`` (DOTALL by default; see :class:`LexerOptions`)
* ``[...]`` / ``[^...]`` with ranges and escapes
* ``* + ?`` and ``{n} {n,} {n,m}``
* ``( ... )`` and ``(?: ... )``
* ``|`` alternation, ``^`` / ``$`` anchors
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from . import charclass as cc
from .charclass import CharClass

__all__ = ["TokenKind", "Token", "LexerOptions", "Lexer", "RegexSyntaxError"]


class RegexSyntaxError(ValueError):
    """Raised on malformed pattern text, with the offending position."""

    def __init__(self, message: str, pos: int):
        super().__init__(f"{message} (at position {pos})")
        self.pos = pos


class TokenKind(enum.Enum):
    CHAR = "char"          # value: byte int
    CLASS = "class"        # value: CharClass
    DOT = "dot"
    STAR = "star"
    PLUS = "plus"
    QMARK = "qmark"
    REPEAT = "repeat"      # value: (min, max|None)
    LPAREN = "lparen"      # value: True if capturing
    RPAREN = "rparen"
    PIPE = "pipe"
    CARET = "caret"
    DOLLAR = "dollar"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    pos: int
    value: object = None


@dataclass(frozen=True, slots=True)
class LexerOptions:
    """Lexing behaviour knobs.

    ``dotall`` makes ``.`` match every byte including newline — the default
    here because DPI patterns operate on raw payloads, matching the paper's
    treatment of ``.*``.  ``ignore_case`` folds ASCII letters in literals and
    classes.
    """

    dotall: bool = True
    ignore_case: bool = False

    @property
    def dot_class(self) -> CharClass:
        if self.dotall:
            return CharClass.full()
        return ~CharClass.single(ord("\n"))


_SIMPLE_ESCAPES = {
    ord("n"): ord("\n"),
    ord("t"): ord("\t"),
    ord("r"): ord("\r"),
    ord("f"): ord("\f"),
    ord("v"): ord("\v"),
    ord("0"): 0,
    ord("a"): 7,
    ord("e"): 27,
}

_CLASS_ESCAPES = {
    ord("d"): cc.DIGITS,
    ord("D"): ~cc.DIGITS,
    ord("w"): cc.WORD,
    ord("W"): ~cc.WORD,
    ord("s"): cc.SPACE,
    ord("S"): ~cc.SPACE,
}

_METACHARS = {
    ord("."): TokenKind.DOT,
    ord("*"): TokenKind.STAR,
    ord("+"): TokenKind.PLUS,
    ord("?"): TokenKind.QMARK,
    ord(")"): TokenKind.RPAREN,
    ord("|"): TokenKind.PIPE,
    ord("^"): TokenKind.CARET,
    ord("$"): TokenKind.DOLLAR,
}


def _fold_case(klass: CharClass) -> CharClass:
    """Add the opposite-case twin of every ASCII letter in the class."""
    extra = []
    for b in klass:
        if ord("a") <= b <= ord("z"):
            extra.append(b - 32)
        elif ord("A") <= b <= ord("Z"):
            extra.append(b + 32)
    if not extra:
        return klass
    return klass | CharClass(extra)


class Lexer:
    """Single-pass tokenizer over pattern text."""

    def __init__(self, text: str, options: LexerOptions | None = None):
        self.options = options or LexerOptions()
        self._data = text.encode("latin-1")
        self._pos = 0

    def tokens(self) -> list[Token]:
        """Tokenize the whole input, ending with an EOF token."""
        out: list[Token] = []
        while True:
            tok = self._next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    # -- internals ----------------------------------------------------------

    def _error(self, message: str) -> RegexSyntaxError:
        return RegexSyntaxError(message, self._pos)

    def _peek(self) -> Optional[int]:
        if self._pos < len(self._data):
            return self._data[self._pos]
        return None

    def _take(self) -> int:
        b = self._peek()
        if b is None:
            raise self._error("unexpected end of pattern")
        self._pos += 1
        return b

    def _next_token(self) -> Token:
        start = self._pos
        b = self._peek()
        if b is None:
            return Token(TokenKind.EOF, start)
        self._pos += 1
        kind = _METACHARS.get(b)
        if kind is not None:
            return Token(kind, start)
        if b == ord("("):
            return Token(TokenKind.LPAREN, start, self._lex_group_open())
        if b == ord("{"):
            return self._lex_brace(start)
        if b == ord("["):
            return Token(TokenKind.CLASS, start, self._lex_class())
        if b == ord("\\"):
            return self._lex_escape(start)
        return self._char_token(start, b)

    def _char_token(self, start: int, b: int) -> Token:
        if self.options.ignore_case and (65 <= b <= 90 or 97 <= b <= 122):
            return Token(TokenKind.CLASS, start, _fold_case(CharClass.single(b)))
        return Token(TokenKind.CHAR, start, b)

    def _lex_group_open(self) -> bool:
        """Consume an optional ``?:`` after ``(``; returns capturing flag."""
        if self._peek() == ord("?"):
            self._pos += 1
            nxt = self._peek()
            if nxt == ord(":"):
                self._pos += 1
                return False
            raise self._error("only (?: ... ) groups are supported after (?")
        return True

    def _lex_brace(self, start: int) -> Token:
        """Lex ``{n}``, ``{n,}`` or ``{n,m}``; a bare ``{`` is a literal."""
        save = self._pos
        digits = self._lex_digits()
        if digits is None:
            self._pos = save
            return self._char_token(start, ord("{"))
        lo = digits
        hi: Optional[int] = lo
        if self._peek() == ord(","):
            self._pos += 1
            hi = self._lex_digits()  # None means unbounded
        if self._peek() != ord("}"):
            # Not a well-formed repetition: treat the brace literally (PCRE does).
            self._pos = save
            return self._char_token(start, ord("{"))
        self._pos += 1
        if hi is not None and hi < lo:
            raise self._error(f"bad repeat range {{{lo},{hi}}}")
        return Token(TokenKind.REPEAT, start, (lo, hi))

    def _lex_digits(self) -> Optional[int]:
        digits = b""
        while (b := self._peek()) is not None and ord("0") <= b <= ord("9"):
            digits += bytes((b,))
            self._pos += 1
        if not digits:
            return None
        return int(digits)

    def _lex_escape(self, start: int) -> Token:
        b = self._take()
        if b in _CLASS_ESCAPES:
            return Token(TokenKind.CLASS, start, _CLASS_ESCAPES[b])
        value = self._escape_byte(b)
        return self._char_token(start, value)

    def _escape_byte(self, b: int) -> int:
        """Resolve a single-byte escape (shared with class lexing)."""
        if b in _SIMPLE_ESCAPES:
            return _SIMPLE_ESCAPES[b]
        if b == ord("x"):
            hex_digits = bytes((self._take(), self._take()))
            try:
                return int(hex_digits, 16)
            except ValueError:
                raise self._error(f"bad \\x escape: {hex_digits!r}") from None
        # Identity escape: \. \* \[ \\ \/ etc.
        return b

    def _lex_class(self) -> CharClass:
        """Lex a ``[...]`` class body (the ``[`` is already consumed)."""
        negate = False
        if self._peek() == ord("^"):
            negate = True
            self._pos += 1
        result = CharClass.empty()
        first = True
        while True:
            b = self._peek()
            if b is None:
                raise self._error("unterminated character class")
            if b == ord("]") and not first:
                self._pos += 1
                break
            first = False
            self._pos += 1
            if b == ord("\\"):
                esc = self._take()
                if esc in _CLASS_ESCAPES:
                    result |= _CLASS_ESCAPES[esc]
                    continue
                lo = self._escape_byte(esc)
            else:
                lo = b
            hi = self._maybe_range_end(lo)
            result |= CharClass.range(lo, hi)
        if not result:
            raise self._error("empty character class")
        if self.options.ignore_case:
            result = _fold_case(result)
        if negate:
            result = ~result
        return result

    def _maybe_range_end(self, lo: int) -> int:
        """After a class atom, consume ``-x`` if it forms a range."""
        if self._peek() != ord("-"):
            return lo
        # A trailing '-' right before ']' is a literal dash.
        if self._pos + 1 < len(self._data) and self._data[self._pos + 1] == ord("]"):
            return lo
        self._pos += 1
        b = self._take()
        if b == ord("\\"):
            hi = self._escape_byte(self._take())
        else:
            hi = b
        if hi < lo:
            raise self._error(f"reversed class range {lo}-{hi}")
        return hi
