"""Light AST normalisation passes.

Run before splitting and automaton construction so that structurally equal
patterns compare equal and the splitter's shape-matching sees a canonical
tree.  All passes are language-preserving; the property tests check each
rewritten tree against the original via the NFA engine.
"""

from __future__ import annotations

from . import ast
from .ast import Alt, ClassNode, Concat, Empty, Node, Pattern, Repeat

__all__ = ["simplify", "simplify_pattern"]


def simplify(node: Node) -> Node:
    """Return a normalised, language-equal tree."""
    if isinstance(node, (Empty, ClassNode)):
        return node
    if isinstance(node, Concat):
        return ast.concat([simplify(p) for p in node.parts])
    if isinstance(node, Alt):
        return _simplify_alt(node)
    if isinstance(node, Repeat):
        return _simplify_repeat(node)
    raise TypeError(f"unknown node type: {type(node).__name__}")


def simplify_pattern(pattern: Pattern) -> Pattern:
    return pattern.with_root(simplify(pattern.root))


def _simplify_alt(node: Alt) -> Node:
    options = [simplify(o) for o in node.options]
    # Merge single-byte alternatives into one character class: a|b|[cd] -> [a-d]
    classes = [o for o in options if isinstance(o, ClassNode)]
    if len(classes) >= 2:
        merged = classes[0].cls
        for other in classes[1:]:
            merged |= other.cls
        rest = [o for o in options if not isinstance(o, ClassNode)]
        options = [ClassNode(merged), *rest]
    return ast.alternate(options)


def _simplify_repeat(node: Repeat) -> Node:
    child = simplify(node.child)
    lo, hi = node.min, node.max
    if isinstance(child, Repeat):
        # x{a,}{c,} and friends collapse when either inner or outer is a pure
        # star/plus shape; keep the general case nested (rare and harmless).
        if child.min == 0 and child.max is None:
            # (x*){lo,hi}: if it may repeat at least once the result is x*;
            # {0,0} degenerates to Empty.
            if hi == 0:
                return ast.EMPTY
            return child
        if child.min == 1 and child.max is None and hi is None and lo >= 1:
            return ast.repeat(child.child, lo, None)
    if hi == 0:
        return ast.EMPTY
    return ast.repeat(child, lo, hi)
