"""Character classes over the byte alphabet.

DPI engines operate on raw packet bytes, so the alphabet here is always the
256 byte values.  A :class:`CharClass` is an immutable set of byte values
with set-algebra operations and the queries the regex splitter needs (size,
membership, overlap with another class).

The implementation stores the set as a 256-bit integer bitmap, which makes
union/intersection/complement single integer operations and keeps hashing
and equality cheap — classes are used as dict keys throughout automaton
construction.
"""

from __future__ import annotations

from typing import Iterable, Iterator

ALPHABET_SIZE = 256
_FULL_MASK = (1 << ALPHABET_SIZE) - 1

__all__ = ["ALPHABET_SIZE", "CharClass"]


class CharClass:
    """An immutable set of byte values (0..255) backed by a bitmap."""

    __slots__ = ("_bits",)

    def __init__(self, bytes_or_bits: Iterable[int] | int = 0):
        """Build a class from an iterable of byte values or a raw bitmap.

        Passing an ``int`` treats it as the bitmap directly; anything else is
        iterated for byte values.
        """
        if isinstance(bytes_or_bits, int):
            bits = bytes_or_bits
            if bits < 0 or bits > _FULL_MASK:
                raise ValueError("bitmap out of range for a 256-bit class")
        else:
            bits = 0
            for value in bytes_or_bits:
                if not 0 <= value < ALPHABET_SIZE:
                    raise ValueError(f"byte value out of range: {value!r}")
                bits |= 1 << value
        object.__setattr__(self, "_bits", bits)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("CharClass is immutable")

    def __reduce__(self) -> tuple[type["CharClass"], tuple[int]]:
        # The immutability guard above blocks pickle's default slot
        # restoration; rebuild from the bitmap instead (the parallel shard
        # compiler ships Pattern trees to worker processes).
        return (CharClass, (self._bits,))

    # -- constructors ------------------------------------------------------

    @classmethod
    def empty(cls) -> "CharClass":
        """The empty class (matches nothing)."""
        return _EMPTY

    @classmethod
    def full(cls) -> "CharClass":
        """The class of all 256 byte values."""
        return _FULL

    @classmethod
    def of(cls, text: str | bytes) -> "CharClass":
        """Class containing every byte of ``text`` (str is latin-1 encoded)."""
        if isinstance(text, str):
            text = text.encode("latin-1")
        return cls(iter(text))

    @classmethod
    def single(cls, value: int) -> "CharClass":
        """Class containing exactly one byte value."""
        return cls((value,))

    @classmethod
    def range(cls, lo: int, hi: int) -> "CharClass":
        """Class of the inclusive byte range ``lo..hi``."""
        if not (0 <= lo <= hi < ALPHABET_SIZE):
            raise ValueError(f"invalid range {lo}-{hi}")
        bits = ((1 << (hi - lo + 1)) - 1) << lo
        return cls(bits)

    # -- set algebra -------------------------------------------------------

    def union(self, other: "CharClass") -> "CharClass":
        return CharClass(self._bits | other._bits)

    def intersect(self, other: "CharClass") -> "CharClass":
        return CharClass(self._bits & other._bits)

    def difference(self, other: "CharClass") -> "CharClass":
        return CharClass(self._bits & ~other._bits & _FULL_MASK)

    def complement(self) -> "CharClass":
        return CharClass(~self._bits & _FULL_MASK)

    __or__ = union
    __and__ = intersect
    __sub__ = difference
    __invert__ = complement

    # -- queries -----------------------------------------------------------

    @property
    def bits(self) -> int:
        """The raw 256-bit bitmap."""
        return self._bits

    def __contains__(self, value: int) -> bool:
        return bool(self._bits >> value & 1)

    def __len__(self) -> int:
        return self._bits.bit_count()

    def __bool__(self) -> bool:
        return self._bits != 0

    def __iter__(self) -> Iterator[int]:
        bits = self._bits
        while bits:
            low = bits & -bits
            yield low.bit_length() - 1
            bits ^= low

    def overlaps(self, other: "CharClass") -> bool:
        """True when the two classes share at least one byte value."""
        return bool(self._bits & other._bits)

    def is_full(self) -> bool:
        return self._bits == _FULL_MASK

    def min_byte(self) -> int:
        """Smallest member; raises ``ValueError`` on the empty class."""
        if not self._bits:
            raise ValueError("empty CharClass has no minimum")
        return (self._bits & -self._bits).bit_length() - 1

    def sample(self) -> int:
        """A deterministic representative member (the smallest)."""
        return self.min_byte()

    def ranges(self) -> list[tuple[int, int]]:
        """The class as a sorted list of inclusive (lo, hi) byte ranges."""
        out: list[tuple[int, int]] = []
        start = None
        prev = None
        for b in self:
            if start is None:
                start = prev = b
            elif b == prev + 1:
                prev = b
            else:
                out.append((start, prev))
                start = prev = b
        if start is not None:
            out.append((start, prev))
        return out

    # -- dunder plumbing ---------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return isinstance(other, CharClass) and self._bits == other._bits

    def __hash__(self) -> int:
        return hash(self._bits)

    def __repr__(self) -> str:
        if self.is_full():
            return "CharClass.full()"
        if not self:
            return "CharClass.empty()"
        if len(self) > 128:
            return f"CharClass(~{(~self)!r})"
        parts = []
        for lo, hi in self.ranges():
            if lo == hi:
                parts.append(_show_byte(lo))
            else:
                parts.append(f"{_show_byte(lo)}-{_show_byte(hi)}")
        return f"CharClass[{''.join(parts)}]"


def _show_byte(b: int) -> str:
    if 0x20 < b < 0x7F and chr(b) not in "[]-\\^":
        return chr(b)
    return f"\\x{b:02x}"


_EMPTY = CharClass(0)
_FULL = CharClass(_FULL_MASK)

# Named classes used by the lexer for escape sequences.
DIGITS = CharClass.range(ord("0"), ord("9"))
WORD = (
    CharClass.range(ord("a"), ord("z"))
    | CharClass.range(ord("A"), ord("Z"))
    | DIGITS
    | CharClass.single(ord("_"))
)
SPACE = CharClass.of(" \t\n\r\x0b\x0c")
