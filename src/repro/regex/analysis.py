"""Pure-AST structural analyses used by the regex splitter.

These answer the questions the paper's de-composition safety conditions ask
of sub-expressions:

* :func:`first_class` / :func:`last_class` — which bytes can begin / end a
  word of the language (``last_class`` drives the "characters of X must not
  be in final positions of A" condition of almost-dot-star).
* :func:`alphabet` — every byte that can appear anywhere in a word (drives
  the "characters of X cannot appear in B" condition).
* :func:`exact_strings` — enumerate the language when it is small and
  finite (used for fast-path overlap checks and for tests).
* :func:`min_length` — shortest word length; a zero-min segment cannot be
  split off safely.

The language-level suffix/prefix overlap test needs automata and lives in
:mod:`repro.core.overlap`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from .ast import Alt, ClassNode, Concat, Empty, Node, Repeat
from .charclass import CharClass

__all__ = [
    "first_class",
    "last_class",
    "alphabet",
    "min_length",
    "max_length",
    "exact_strings",
    "is_literal_string",
    "literal_bytes",
    "class_string",
    "LiteralChain",
    "required_chains",
]


def first_class(node: Node) -> CharClass:
    """Bytes that can be the first byte of a non-empty word of ``node``."""
    if isinstance(node, Empty):
        return CharClass.empty()
    if isinstance(node, ClassNode):
        return node.cls
    if isinstance(node, Alt):
        result = CharClass.empty()
        for option in node.options:
            result |= first_class(option)
        return result
    if isinstance(node, Concat):
        result = CharClass.empty()
        for part in node.parts:
            result |= first_class(part)
            if not part.matches_empty():
                break
        return result
    if isinstance(node, Repeat):
        return first_class(node.child) if node.max != 0 else CharClass.empty()
    raise TypeError(f"unknown node type: {type(node).__name__}")


def last_class(node: Node) -> CharClass:
    """Bytes that can be the last byte of a non-empty word of ``node``."""
    if isinstance(node, Empty):
        return CharClass.empty()
    if isinstance(node, ClassNode):
        return node.cls
    if isinstance(node, Alt):
        result = CharClass.empty()
        for option in node.options:
            result |= last_class(option)
        return result
    if isinstance(node, Concat):
        result = CharClass.empty()
        for part in reversed(node.parts):
            result |= last_class(part)
            if not part.matches_empty():
                break
        return result
    if isinstance(node, Repeat):
        return last_class(node.child) if node.max != 0 else CharClass.empty()
    raise TypeError(f"unknown node type: {type(node).__name__}")


def alphabet(node: Node) -> CharClass:
    """Every byte that can occur anywhere in some word of ``node``."""
    if isinstance(node, Empty):
        return CharClass.empty()
    if isinstance(node, ClassNode):
        return node.cls
    if isinstance(node, (Alt, Concat)):
        children = node.options if isinstance(node, Alt) else node.parts
        result = CharClass.empty()
        for child in children:
            result |= alphabet(child)
        return result
    if isinstance(node, Repeat):
        return alphabet(node.child) if node.max != 0 else CharClass.empty()
    raise TypeError(f"unknown node type: {type(node).__name__}")


def min_length(node: Node) -> int:
    """Length of the shortest word in the language."""
    if isinstance(node, Empty):
        return 0
    if isinstance(node, ClassNode):
        return 1
    if isinstance(node, Alt):
        return min(min_length(o) for o in node.options)
    if isinstance(node, Concat):
        return sum(min_length(p) for p in node.parts)
    if isinstance(node, Repeat):
        return node.min * min_length(node.child)
    raise TypeError(f"unknown node type: {type(node).__name__}")


def max_length(node: Node) -> Optional[int]:
    """Length of the longest word, or ``None`` when unbounded."""
    if isinstance(node, Empty):
        return 0
    if isinstance(node, ClassNode):
        return 1
    if isinstance(node, Alt):
        lengths = [max_length(o) for o in node.options]
        if any(length is None for length in lengths):
            return None
        return max(lengths)  # type: ignore[type-var]
    if isinstance(node, Concat):
        total = 0
        for part in node.parts:
            length = max_length(part)
            if length is None:
                return None
            total += length
        return total
    if isinstance(node, Repeat):
        if node.max == 0:
            return 0
        if node.max is None:
            return None if max_length(node.child) != 0 else 0
        length = max_length(node.child)
        return None if length is None else node.max * length
    raise TypeError(f"unknown node type: {type(node).__name__}")


def exact_strings(node: Node, limit: int = 64) -> Optional[list[bytes]]:
    """Enumerate the full language if it has at most ``limit`` strings.

    Returns ``None`` when the language is infinite or larger than ``limit``.
    """
    out: list[bytes] = []
    for word in _enumerate(node, limit + 1):
        out.append(word)
        if len(out) > limit:
            return None
    return out


def _enumerate(node: Node, limit: int) -> Iterator[bytes]:
    if isinstance(node, Empty):
        yield b""
        return
    if isinstance(node, ClassNode):
        if len(node.cls) >= limit:
            # Caller will overflow anyway; yield up to limit members.
            for i, b in enumerate(node.cls):
                if i >= limit:
                    return
                yield bytes((b,))
            return
        for b in node.cls:
            yield bytes((b,))
        return
    if isinstance(node, Alt):
        count = 0
        for option in node.options:
            for word in _enumerate(option, limit - count):
                yield word
                count += 1
                if count >= limit:
                    return
        return
    if isinstance(node, Concat):
        yield from _enumerate_concat(node.parts, limit)
        return
    if isinstance(node, Repeat):
        if node.max is None:
            # Infinite language unless the child only matches empty.
            if min_length(node.child) == 0 and max_length(node.child) == 0:
                yield b""
                return
            # Signal "too many" by yielding limit sentinel words.
            for word in _enumerate_concat((node.child,) * max(node.min, 1), limit):
                yield word
            yield from (b"" for _ in range(limit))  # force overflow
            return
        count = 0
        for n in range(node.min, node.max + 1):
            parts = (node.child,) * n
            for word in _enumerate_concat(parts, limit - count):
                yield word
                count += 1
                if count >= limit:
                    return
        return
    raise TypeError(f"unknown node type: {type(node).__name__}")


def _enumerate_concat(parts: tuple[Node, ...], limit: int) -> Iterator[bytes]:
    if not parts:
        yield b""
        return
    count = 0
    for head in _enumerate(parts[0], limit):
        for tail in _enumerate_concat(parts[1:], limit - count):
            yield head + tail
            count += 1
            if count >= limit:
                return


# Chains longer than this are pointless as prefilter anchors and could
# only come from pathological rules; give up rather than build huge tables.
_MAX_CHAIN_LENGTH = 64


def class_string(node: Node, limit: int = _MAX_CHAIN_LENGTH) -> Optional[list[CharClass]]:
    """The node's language as a fixed-length positional class sequence.

    Returns classes ``[C_0 .. C_{k-1}]`` such that *every* word of the
    language has exactly ``k`` bytes and byte ``i`` lies in ``C_i`` (a sound
    overapproximation: the product of the classes may be larger than the
    language).  ``None`` when the language has words of different lengths,
    is longer than ``limit``, or the shape cannot be analysed.

    This is what makes case-insensitive literals (``[aA][bB]``) and
    class-wrapped literals (``[a]``) as good as plain literals for
    prefiltering: the positional classes carry the alternatives.
    """
    if isinstance(node, Empty):
        return []
    if isinstance(node, ClassNode):
        return [node.cls]
    if isinstance(node, Concat):
        out: list[CharClass] = []
        for part in node.parts:
            sub = class_string(part, limit)
            if sub is None or len(out) + len(sub) > limit:
                return None
            out.extend(sub)
        return out
    if isinstance(node, Alt):
        merged: Optional[list[CharClass]] = None
        for option in node.options:
            sub = class_string(option, limit)
            if sub is None:
                return None
            if merged is None:
                merged = sub
            elif len(merged) != len(sub):
                return None  # variable-length alternation
            else:
                merged = [a | b for a, b in zip(merged, sub)]
        return merged
    if isinstance(node, Repeat):
        if node.max is None or node.max != node.min:
            return None
        sub = class_string(node.child, limit)
        if sub is None or len(sub) * node.min > limit:
            return None
        return sub * node.min
    raise TypeError(f"unknown node type: {type(node).__name__}")


@dataclass(frozen=True)
class LiteralChain:
    """A required positional-class run with bounded distance to the match end.

    Every word ``w`` covered by this chain contains an occurrence of the
    classes (``w[e-len+1..e]`` matches positionally for some end index
    ``e``) with ``len(w) - 1 - e`` in ``[tail_min, tail_max]``.
    """

    classes: tuple[CharClass, ...]
    tail_min: int
    tail_max: int


def required_chains(node: Node) -> Optional[list[LiteralChain]]:
    """Required literal chains covering every word of ``node``'s language.

    For every word ``w`` there is some chain in the result that occurs in
    ``w`` within its tail bounds (see :class:`LiteralChain`) — which is the
    no-false-negative guarantee a prefilter needs.  Returns ``None`` when
    no such cover exists (e.g. an unbounded tail, or no fixed-length run
    anywhere).  A top-level alternation contributes one chain per option.
    """
    if isinstance(node, Alt):
        chains: list[LiteralChain] = []
        for option in node.options:
            sub = required_chains(option)
            if sub is None:
                return None
            chains.extend(sub)
        return chains
    parts: tuple[Node, ...]
    if isinstance(node, Concat):
        parts = node.parts
    elif isinstance(node, Empty):
        parts = ()
    else:
        parts = (node,)
    strings = [class_string(part) for part in parts]
    # Maximal runs of class-string-able parts, as (start, end) part indexes.
    runs: list[tuple[int, int]] = []
    index = 0
    while index < len(parts):
        if strings[index] is None:
            index += 1
            continue
        end = index
        while end + 1 < len(parts) and strings[end + 1] is not None:
            end += 1
        runs.append((index, end))
        index = end + 1
    best: Optional[LiteralChain] = None
    best_score: tuple[int, int] = (0, 0)
    for start, end in runs:
        classes: list[CharClass] = []
        for i in range(start, end + 1):
            sub = strings[i]
            assert sub is not None
            classes.extend(sub)
        if not classes or len(classes) > _MAX_CHAIN_LENGTH:
            continue
        tail_min = 0
        tail_max = 0
        bounded = True
        for part in parts[end + 1 :]:
            length = max_length(part)
            if length is None:
                bounded = False
                break
            tail_min += min_length(part)
            tail_max += length
        if not bounded:
            continue
        score = (_chain_selectivity(classes), tail_max)
        if best is None or score < best_score:
            best = LiteralChain(tuple(classes), tail_min, tail_max)
            best_score = score
    return [best] if best is not None else None


def _chain_selectivity(classes: list[CharClass]) -> int:
    """Expected-candidate score of the chain's best anchor (lower = rarer)."""
    if len(classes) == 1:
        return len(classes[0]) * 256
    return min(
        len(a) * len(b) for a, b in zip(classes, classes[1:])
    )


def is_literal_string(node: Node) -> bool:
    """True when the node matches exactly one string."""
    if isinstance(node, Empty):
        return True
    if isinstance(node, ClassNode):
        return len(node.cls) == 1
    if isinstance(node, Concat):
        return all(is_literal_string(p) for p in node.parts)
    if isinstance(node, Repeat):
        return node.max == node.min and is_literal_string(node.child)
    return False


def literal_bytes(node: Node) -> Optional[bytes]:
    """The single string matched by a literal node, or ``None``."""
    if not is_literal_string(node):
        return None
    words = exact_strings(node, limit=1)
    if words is None or len(words) != 1:
        return None
    return words[0]
