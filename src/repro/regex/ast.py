"""Abstract syntax tree for the supported regex subset.

The tree is deliberately small: every leaf is a :class:`ClassNode` (a single
byte is just a singleton class), and the only combinators are concatenation,
alternation and bounded/unbounded repetition.  Anchoring (``^`` / ``$``) is
not represented inside the tree — it is a property of the whole pattern and
lives on :class:`Pattern` — which keeps every structural algorithm (NFA
construction, splitting, analysis) free of anchor special cases.

All nodes are immutable; helpers like :func:`concat` and :func:`alternate`
normalise as they build (flattening nested concats/alts, dropping ``Empty``
units) so the splitter can pattern-match on a canonical shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from .charclass import CharClass

__all__ = [
    "Node",
    "Empty",
    "ClassNode",
    "Concat",
    "Alt",
    "Repeat",
    "Pattern",
    "EMPTY",
    "literal",
    "string",
    "concat",
    "alternate",
    "star",
    "plus",
    "optional",
    "repeat",
    "dot_star",
    "node_size",
]


class Node:
    """Base class for all regex AST nodes."""

    __slots__ = ()

    def matches_empty(self) -> bool:
        """True when the empty string is in the node's language."""
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class Empty(Node):
    """The regex matching exactly the empty string."""

    def matches_empty(self) -> bool:
        return True


EMPTY = Empty()


@dataclass(frozen=True, slots=True)
class ClassNode(Node):
    """A single input byte drawn from a character class."""

    cls: CharClass

    def __post_init__(self) -> None:
        if not self.cls:
            raise ValueError("a ClassNode over the empty class matches nothing")

    def matches_empty(self) -> bool:
        return False


@dataclass(frozen=True, slots=True)
class Concat(Node):
    """Concatenation of two or more sub-expressions."""

    parts: tuple[Node, ...]

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise ValueError("Concat needs at least two parts; use concat()")

    def matches_empty(self) -> bool:
        return all(p.matches_empty() for p in self.parts)


@dataclass(frozen=True, slots=True)
class Alt(Node):
    """Alternation between two or more sub-expressions."""

    options: tuple[Node, ...]

    def __post_init__(self) -> None:
        if len(self.options) < 2:
            raise ValueError("Alt needs at least two options; use alternate()")

    def matches_empty(self) -> bool:
        return any(o.matches_empty() for o in self.options)


@dataclass(frozen=True, slots=True)
class Repeat(Node):
    """``child{min,max}`` with ``max=None`` meaning unbounded."""

    child: Node
    min: int
    max: Optional[int]

    def __post_init__(self) -> None:
        if self.min < 0:
            raise ValueError("Repeat.min must be >= 0")
        if self.max is not None and self.max < self.min:
            raise ValueError("Repeat.max must be >= Repeat.min")

    def matches_empty(self) -> bool:
        return self.min == 0 or self.child.matches_empty()


# -- construction helpers with normalisation -------------------------------


def literal(byte: int) -> ClassNode:
    """A node matching exactly one byte value."""
    return ClassNode(CharClass.single(byte))


def string(text: str | bytes) -> Node:
    """A node matching the literal byte string ``text``."""
    if isinstance(text, str):
        text = text.encode("latin-1")
    return concat([literal(b) for b in text])


def concat(parts: Sequence[Node]) -> Node:
    """Concatenate, flattening nested Concats and dropping Empty units."""
    flat: list[Node] = []
    for part in parts:
        if isinstance(part, Empty):
            continue
        if isinstance(part, Concat):
            flat.extend(part.parts)
        else:
            flat.append(part)
    if not flat:
        return EMPTY
    if len(flat) == 1:
        return flat[0]
    return Concat(tuple(flat))


def alternate(options: Sequence[Node]) -> Node:
    """Alternate, flattening nested Alts and de-duplicating options."""
    flat: list[Node] = []
    seen: set[Node] = set()
    for option in options:
        subs = option.options if isinstance(option, Alt) else (option,)
        for sub in subs:
            if sub not in seen:
                seen.add(sub)
                flat.append(sub)
    if not flat:
        raise ValueError("alternate() of zero options")
    if len(flat) == 1:
        return flat[0]
    return Alt(tuple(flat))


def star(child: Node) -> Node:
    return repeat(child, 0, None)


def plus(child: Node) -> Node:
    return repeat(child, 1, None)


def optional(child: Node) -> Node:
    return repeat(child, 0, 1)


def repeat(child: Node, lo: int, hi: Optional[int]) -> Node:
    """Build ``child{lo,hi}`` with light normalisation."""
    if isinstance(child, Empty):
        return EMPTY
    if lo == 1 and hi == 1:
        return child
    if isinstance(child, Repeat) and child.min == 0 and child.max is None:
        # (x*)* == x*, (x*){a,b} == x* when it may repeat at all
        if hi is None or hi >= 1:
            return child
    return Repeat(child, lo, hi)


def dot_star(dot: CharClass | None = None) -> Node:
    """The ubiquitous ``.*`` (DOTALL by default, per common DPI semantics)."""
    return star(ClassNode(dot if dot is not None else CharClass.full()))


def node_size(node: Node) -> int:
    """Number of AST nodes — a cheap complexity measure used in reporting."""
    if isinstance(node, (Empty, ClassNode)):
        return 1
    if isinstance(node, Concat):
        return 1 + sum(node_size(p) for p in node.parts)
    if isinstance(node, Alt):
        return 1 + sum(node_size(o) for o in node.options)
    if isinstance(node, Repeat):
        return 1 + node_size(node.child)
    raise TypeError(f"unknown node type: {type(node).__name__}")


@dataclass(frozen=True, slots=True)
class Pattern:
    """A complete security pattern: AST plus anchoring and identity.

    ``match_id`` is the identifier reported when the pattern matches, the
    ``{{n}}`` annotation of the paper.  ``anchored`` corresponds to a leading
    ``^``: the pattern must match starting at the first payload byte.
    ``end_anchored`` corresponds to a trailing ``$``.
    """

    root: Node
    match_id: int = 1
    anchored: bool = False
    end_anchored: bool = False
    source: str = field(default="", compare=False)

    def with_id(self, match_id: int) -> "Pattern":
        return Pattern(self.root, match_id, self.anchored, self.end_anchored, self.source)

    def with_root(self, root: Node) -> "Pattern":
        return Pattern(root, self.match_id, self.anchored, self.end_anchored, self.source)
