"""Regex frontend: parsing, AST, character classes and structural analysis."""

from .ast import Pattern
from .charclass import CharClass
from .lexer import RegexSyntaxError
from .parser import ParserOptions, parse, parse_many
from .printer import pattern_to_text, to_text
from .simplify import simplify, simplify_pattern

__all__ = [
    "Pattern",
    "CharClass",
    "RegexSyntaxError",
    "ParserOptions",
    "parse",
    "parse_many",
    "pattern_to_text",
    "to_text",
    "simplify",
    "simplify_pattern",
]
