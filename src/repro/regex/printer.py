"""Render AST nodes back to pattern text.

The printed form re-parses to an equal tree (tested property-based), which
makes decomposition results inspectable and lets the splitter hand textual
sub-patterns to external tooling.  Output always uses DOTALL conventions:
a full 256-byte class prints as ``.``.
"""

from __future__ import annotations

from . import ast
from .ast import Alt, ClassNode, Concat, Empty, Node, Pattern, Repeat
from .charclass import ALPHABET_SIZE, CharClass

__all__ = ["to_text", "pattern_to_text"]

_CLASS_META = set(b"\\]^-")
_TOP_META = set(b"\\.*+?()[]{}|^$/")
_SIMPLE_ESCAPES = {0x0A: "\\n", 0x09: "\\t", 0x0D: "\\r", 0x0C: "\\f", 0x0B: "\\v", 0x00: "\\0"}


def _show_byte(b: int, in_class: bool) -> str:
    if b in _SIMPLE_ESCAPES:
        return _SIMPLE_ESCAPES[b]
    meta = _CLASS_META if in_class else _TOP_META
    if 0x20 <= b < 0x7F:
        ch = chr(b)
        return f"\\{ch}" if b in meta else ch
    return f"\\x{b:02x}"


def _show_class(klass: CharClass) -> str:
    if klass.is_full():
        return "."
    if len(klass) == 1:
        return _show_byte(klass.min_byte(), in_class=False)
    negated = len(klass) > ALPHABET_SIZE // 2
    body = ~klass if negated else klass
    parts = []
    for lo, hi in body.ranges():
        if lo == hi:
            parts.append(_show_byte(lo, in_class=True))
        elif hi == lo + 1:
            parts.append(_show_byte(lo, in_class=True) + _show_byte(hi, in_class=True))
        else:
            parts.append(f"{_show_byte(lo, in_class=True)}-{_show_byte(hi, in_class=True)}")
    prefix = "^" if negated else ""
    return f"[{prefix}{''.join(parts)}]"


# Precedence levels: alt < cat < repeat < atom.
_PREC_ALT, _PREC_CAT, _PREC_REPEAT, _PREC_ATOM = range(4)


def _prec(node: Node) -> int:
    if isinstance(node, Alt):
        return _PREC_ALT
    if isinstance(node, Concat):
        return _PREC_CAT
    if isinstance(node, Repeat):
        return _PREC_REPEAT
    return _PREC_ATOM


def _render(node: Node, parent_prec: int) -> str:
    text = _render_bare(node)
    if _prec(node) < parent_prec:
        return f"(?:{text})"
    return text


def _render_bare(node: Node) -> str:
    if isinstance(node, Empty):
        return ""
    if isinstance(node, ClassNode):
        return _show_class(node.cls)
    if isinstance(node, Concat):
        return "".join(_render(p, _PREC_CAT) for p in node.parts)
    if isinstance(node, Alt):
        return "|".join(_render(o, _PREC_CAT) for o in node.options)
    if isinstance(node, Repeat):
        child = _render(node.child, _PREC_ATOM)
        lo, hi = node.min, node.max
        if (lo, hi) == (0, None):
            return f"{child}*"
        if (lo, hi) == (1, None):
            return f"{child}+"
        if (lo, hi) == (0, 1):
            return f"{child}?"
        if hi is None:
            return f"{child}{{{lo},}}"
        if lo == hi:
            return f"{child}{{{lo}}}"
        return f"{child}{{{lo},{hi}}}"
    raise TypeError(f"unknown node type: {type(node).__name__}")


def to_text(node: Node) -> str:
    """Render a bare AST node as pattern text."""
    if isinstance(node, Empty):
        return "(?:)"
    return _render_bare(node)


def pattern_to_text(pattern: Pattern) -> str:
    """Render a full :class:`Pattern`, including anchors."""
    body = to_text(pattern.root) if not isinstance(pattern.root, Empty) else ""
    prefix = "^" if pattern.anchored else ""
    suffix = "$" if pattern.end_anchored else ""
    return f"{prefix}{body}{suffix}"
