"""Fast rule compilation: bitset determinization + sharded parallel builds.

The paper's second headline claim is construction time — MFAs build "in
seconds instead of minutes" (Fig. 3).  This package is the reproduction's
compile-side performance layer, mirroring what :mod:`repro.fastpath` does
for the scan side, without changing any observable compile semantics:

* :mod:`repro.fastcompile.bitset` — subset construction over int bitsets
  and packed move vectors (now the engine behind
  :func:`repro.automata.dfa.build_dfa_from_nfa`);
* :mod:`repro.fastcompile.shards` — rule-set partitioning, process-pool
  shard compiles, per-shard artifact caching, and the
  :class:`ShardedMFA` recombination layer.

Entry points: ``repro.compile_mfa(rules, shards=, jobs=)`` for plain use,
:class:`repro.robust.ResilientCompiler` (``shards=``/``jobs=``) for
per-shard degradation, ``mfa-bench compile SET --shards N --jobs N`` from
the CLI, and ``benchmarks/bench_construction.py`` for the numbers.
"""

from .bitset import PACKED_LIMIT_BITS, subset_construct
from .shards import (
    ShardBuild,
    ShardedContext,
    ShardedMFA,
    compile_mfa_sharded,
    compile_shards,
    partition_patterns,
)

__all__ = [
    "PACKED_LIMIT_BITS",
    "ShardBuild",
    "ShardedContext",
    "ShardedMFA",
    "compile_mfa_sharded",
    "compile_shards",
    "partition_patterns",
    "subset_construct",
]
