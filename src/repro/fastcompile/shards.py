"""Sharded parallel MFA compilation with per-shard incremental caching.

Rule-shard compiles are embarrassingly parallel: the MFA splitter treats
every pattern independently (its components and filter bits never interact
with another pattern's), so a rule set partitioned into shards compiles
into per-shard MFAs whose *union* of confirmed matches is exactly the
single-shot engine's stream.  That is the same multiplexing argument the
:class:`repro.automata.mdfa.MDFA` baseline makes for group DFAs — here
applied at the compile pipeline level, where it buys three things:

* **less work** — subset construction is superlinear in the number of
  interacting dot-star rules, so k shards cost less than one combined
  build even on a single core;
* **parallelism** — shards compile in a ``ProcessPoolExecutor``
  (``jobs=``), each worker round-tripping its artifact through the
  versioned :mod:`repro.core.serialize` bundle format;
* **incrementality** — each shard is keyed separately in the
  :class:`repro.fastpath.ArtifactCache`, so editing one rule re-builds
  only the shard containing it.

:class:`ShardedMFA` is the recombination layer: per-shard engines run side
by side and their confirmed streams merge into the canonical
``(pos, match_id)`` order (the order :class:`~repro.automata.mdfa.MDFA`
uses).  Because match-ids are assigned globally *before* partitioning,
alerts map back to the operator's rule list exactly as in a single-shot
compile.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterator, Sequence

from ..automata.dfa import DEFAULT_STATE_BUDGET
from ..automata.nfa import MatchEvent
from ..core.compiler import compile_patterns
from ..core.mfa import MFA, build_mfa
from ..core.splitter import SplitterOptions
from ..regex.ast import Pattern
from ..regex.parser import ParserOptions

__all__ = [
    "ShardBuild",
    "ShardedMFA",
    "ShardedContext",
    "partition_patterns",
    "compile_shards",
    "compile_mfa_sharded",
]


@dataclass(frozen=True, slots=True)
class ShardBuild:
    """Outcome of one shard compile: the engine or the error, plus whether
    it came from the artifact cache and how long the build itself took."""

    engine: MFA | None
    error: Exception | None
    cached: bool
    seconds: float

    @property
    def ok(self) -> bool:
        return self.engine is not None


def partition_patterns(
    patterns: Sequence[Pattern], shards: int
) -> list[list[Pattern]]:
    """Split ``patterns`` into at most ``shards`` contiguous, non-empty chunks.

    Contiguity is what makes the per-shard cache keys incremental-friendly:
    editing rule *i* changes the content (and therefore the key) of exactly
    one chunk, so a re-compile misses only that shard.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    n = len(patterns)
    if n == 0:
        return []
    shards = min(shards, n)
    base, extra = divmod(n, shards)
    out: list[list[Pattern]] = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        out.append(list(patterns[start : start + size]))
        start += size
    return out


class ShardedContext:
    """Per-flow state of a sharded engine: one sub-context per shard."""

    __slots__ = ("contexts", "offset")

    def __init__(self, sharded: "ShardedMFA"):
        self.contexts = [shard.new_context() for shard in sharded.shards]
        self.offset = 0


class ShardedMFA:
    """Per-shard engines recombined into one multiplexed matcher.

    Shards are usually :class:`~repro.core.mfa.MFA` instances, but any
    engine with the ``run``/``new_context``/``feed``/``finish`` interface
    slots in — the resilient compiler exploits that to degrade a single
    exploding shard to a weaker engine while the rest stay MFAs.

    Confirmed matches are reported in the canonical ``(pos, match_id)``
    order within each fed chunk (chunk boundaries align across shards, so
    the global stream is ordered too).
    """

    def __init__(self, shards: Sequence[object]):
        if not shards:
            raise ValueError("ShardedMFA needs at least one shard")
        self.shards = list(shards)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def n_states(self) -> int:
        return sum(shard.n_states for shard in self.shards)  # type: ignore[attr-defined]

    def memory_bytes(self) -> int:
        return sum(shard.memory_bytes() for shard in self.shards)  # type: ignore[attr-defined]

    # -- matching ------------------------------------------------------------

    def run(self, data: bytes) -> list[MatchEvent]:
        """Every confirmed match, merged across shards and sorted into the
        canonical ``(pos, match_id)`` order."""
        out: list[MatchEvent] = []
        for shard in self.shards:
            out.extend(shard.run(data))  # type: ignore[attr-defined]
        out.sort()
        return out

    def matches(self, data: bytes) -> bool:
        return any(shard.run(data) for shard in self.shards)  # type: ignore[attr-defined]

    # -- streaming (same trio as the MFA, for dispatch/replay drivers) ------

    def new_context(self) -> ShardedContext:
        return ShardedContext(self)

    def feed(self, context: ShardedContext, data: bytes) -> Iterator[MatchEvent]:
        events: list[MatchEvent] = []
        for shard, sub in zip(self.shards, context.contexts):
            events.extend(shard.feed(sub, data))  # type: ignore[attr-defined]
        context.offset += len(data)
        events.sort()
        yield from events

    def finish(self, context: ShardedContext) -> Iterator[MatchEvent]:
        events: list[MatchEvent] = []
        for shard, sub in zip(self.shards, context.contexts):
            events.extend(shard.finish(sub))  # type: ignore[attr-defined]
        events.sort()
        yield from events


def _compile_shard_worker(
    payload: tuple,
) -> tuple[bool, object, dict[str, float], float]:
    """Pool worker: compile one shard, return its serialized bundle.

    Runs in a separate process, so the result crosses back as the
    versioned bundle bytes of :func:`repro.core.serialize.dumps_mfa`
    rather than a pickled object graph.  Failures come back as a tagged
    ``(False, (type_name, message, reason), phases, seconds)`` tuple —
    exceptions with non-trivial constructors (e.g. ``DfaExplosionError``)
    do not round-trip reliably through pickle.
    """
    from ..core.serialize import dumps_mfa

    (
        patterns,
        splitter_options,
        state_budget,
        time_budget,
        minimize,
        prefilter,
        compress,
    ) = payload
    phases: dict[str, float] = {}
    tick = time.perf_counter()
    try:
        mfa = build_mfa(
            patterns,
            splitter_options,
            state_budget=state_budget,
            minimize=minimize,
            time_budget=time_budget,
            phases=phases,
            prefilter=prefilter,
            compress=compress,
        )
    except Exception as exc:  # noqa: BLE001 - reported to the parent
        elapsed = time.perf_counter() - tick
        info = (type(exc).__name__, str(exc), getattr(exc, "reason", None))
        return False, info, phases, elapsed
    return True, dumps_mfa(mfa), phases, time.perf_counter() - tick


def _shard_cache_key(
    shard: Sequence[Pattern],
    splitter_options: SplitterOptions | None,
    parser_options: ParserOptions | None,
    state_budget: int,
    minimize: bool,
    prefilter: bool,
    compress: int,
) -> str:
    from ..fastpath.cache import cache_key

    return cache_key(
        list(shard),
        splitter_options=splitter_options,
        parser_options=parser_options,
        state_budget=state_budget,
        minimize=minimize,
        prefilter=prefilter,
        compress=compress,
    )


def compile_shards(
    shard_patterns: Sequence[Sequence[Pattern]],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
    minimize: bool = False,
    jobs: int = 1,
    cache=None,
    phases: dict[str, float] | None = None,
    prefilter: bool = True,
    compress: "bool | int | None" = None,
) -> list[ShardBuild]:
    """Compile each shard to an MFA, in parallel when ``jobs > 1``.

    Returns one :class:`ShardBuild` per shard: the compiled :class:`MFA`,
    or the exception that shard raised (so callers — the resilient
    compiler — can degrade a single shard without losing the others).
    With a ``cache`` (:class:`repro.fastpath.ArtifactCache`), each shard
    is looked up and stored under its own content key, which is what
    makes one-rule edits rebuild one shard.
    """
    from ..automata.compress import resolve_compress_option
    from ..core.serialize import loads_mfa

    # Resolve env-deferred options once here so pool workers and cache
    # keys see one explicit chain-depth integer.
    depth = resolve_compress_option(compress)
    results: list[ShardBuild | None] = [None] * len(shard_patterns)
    keys: list[str | None] = [None] * len(shard_patterns)
    to_build: list[int] = []
    for index, shard in enumerate(shard_patterns):
        if cache is not None:
            keys[index] = _shard_cache_key(
                shard, splitter_options, parser_options, state_budget, minimize,
                prefilter, depth,
            )
            tick = time.perf_counter()
            cached = cache.load(keys[index])
            if cached is not None:
                results[index] = ShardBuild(
                    cached, None, True, time.perf_counter() - tick
                )
                continue
        to_build.append(index)

    def record_phases(sub: dict[str, float]) -> None:
        if phases is not None:
            for name, seconds in sub.items():
                phases[name] = phases.get(name, 0.0) + seconds

    def rebuild_error(info: object) -> Exception:
        from ..automata.dfa import DfaExplosionError

        type_name, message, reason = info  # type: ignore[misc]
        if type_name == "DfaExplosionError":
            if time_budget is not None and reason == "seconds":
                return DfaExplosionError(int(time_budget), "seconds")
            return DfaExplosionError(state_budget, reason or "states")
        return RuntimeError(f"{type_name}: {message}")

    workers = min(jobs, len(to_build))
    if workers > 1:
        payloads = [
            (
                list(shard_patterns[index]),
                splitter_options,
                state_budget,
                time_budget,
                minimize,
                prefilter,
                depth,
            )
            for index in to_build
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for index, (ok, blob, sub_phases, seconds) in zip(
                to_build, pool.map(_compile_shard_worker, payloads)
            ):
                record_phases(sub_phases)
                if ok:
                    results[index] = ShardBuild(
                        loads_mfa(blob, decode="flatten"), None, False, seconds
                    )
                else:
                    results[index] = ShardBuild(None, rebuild_error(blob), False, seconds)
    else:
        for index in to_build:
            sub_phases: dict[str, float] = {}
            tick = time.perf_counter()
            try:
                built = build_mfa(
                    shard_patterns[index],
                    splitter_options,
                    state_budget=state_budget,
                    minimize=minimize,
                    time_budget=time_budget,
                    phases=sub_phases,
                    prefilter=prefilter,
                    compress=depth,
                )
                results[index] = ShardBuild(
                    built, None, False, time.perf_counter() - tick
                )
            except Exception as exc:  # noqa: BLE001 - per-shard isolation
                results[index] = ShardBuild(
                    None, exc, False, time.perf_counter() - tick
                )
            record_phases(sub_phases)

    if cache is not None:
        for index in to_build:
            built = results[index]
            if built is not None and built.engine is not None and keys[index] is not None:
                cache.store(keys[index], built.engine)
    return results  # type: ignore[return-value]


def compile_mfa_sharded(
    rules: Sequence[str | Pattern],
    splitter_options: SplitterOptions | None = None,
    parser_options: ParserOptions | None = None,
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
    minimize: bool = False,
    shards: int = 2,
    jobs: int = 1,
    cache=None,
    phases: dict[str, float] | None = None,
    prefilter: bool = True,
    compress: "bool | int | None" = None,
    shard_plan: str = "contiguous",
) -> ShardedMFA | MFA:
    """Parse, partition and compile a rule set as parallel shards.

    Match-ids are assigned globally (1-based input position) before
    partitioning, so the recombined engine reports exactly the ids a
    single-shot :func:`repro.core.compile_mfa` would — under *any*
    partition, which is what makes ``shard_plan`` safe.  ``"contiguous"``
    (the default) keeps the incremental-cache-friendly chunks of
    :func:`partition_patterns`; ``"interaction"`` asks
    :func:`repro.analyze.ruleset.plan_shards` for an assignment that
    spreads explosive rules across shards instead of letting appended
    neighbors multiply one shard's subset construction.  ``shards <= 1``
    degenerates to the single-shot compile and returns a plain
    :class:`MFA`.  A shard failure propagates — use
    :class:`repro.robust.ResilientCompiler` (``shards=``) for per-shard
    degradation instead.
    """
    import time as _time

    tick = _time.perf_counter()
    patterns = compile_patterns(rules, parser_options)
    if phases is not None:
        phases["parse"] = phases.get("parse", 0.0) + (_time.perf_counter() - tick)
    if shards <= 1 or len(patterns) <= 1:
        built = compile_shards(
            [patterns],
            splitter_options,
            parser_options,
            state_budget,
            time_budget,
            minimize,
            jobs=1,
            cache=cache,
            phases=phases,
            prefilter=prefilter,
            compress=compress,
        )[0]
        if built.error is not None:
            raise built.error
        return built.engine
    if shard_plan == "contiguous":
        shard_patterns = partition_patterns(patterns, shards)
    elif shard_plan == "interaction":
        # Lazy import: repro.analyze imports this package at module load.
        from ..analyze.ruleset import plan_shards

        plan = plan_shards(patterns, shards, splitter_options=splitter_options)
        shard_patterns = [
            [patterns[i] for i in chunk] for chunk in plan.assignments
        ]
    else:
        raise ValueError(f"unknown shard_plan {shard_plan!r}")
    results = compile_shards(
        shard_patterns,
        splitter_options,
        parser_options,
        state_budget,
        time_budget,
        minimize,
        jobs=jobs,
        cache=cache,
        phases=phases,
        prefilter=prefilter,
        compress=compress,
    )
    for built in results:
        if built.error is not None:
            raise built.error
    return ShardedMFA([built.engine for built in results])
