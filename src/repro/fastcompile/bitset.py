"""Bitset subset construction: the determinization hot loop as integer ops.

The classic subset walk (kept as
:func:`repro.automata.dfa.build_dfa_from_nfa_reference`) spends nearly all
of its time building Python ``set`` objects — one ``set.update`` per
(subset member, alphabet group) pair, then a ``frozenset`` allocation and
hash per candidate successor.  This module replaces every one of those
structures with machine-word-dense Python ints:

* an NFA state set is a single int with bit *s* set for member state *s*;
* each NFA state's successors are precomputed as a **packed move vector** —
  the per-alphabet-group target masks concatenated into one big int, one
  ``n_states``-wide field per group;
* a subset's successors *for every group at once* are then the OR of its
  members' move vectors: one C-level bignum OR per member instead of
  ``n_groups`` set updates, after which each group's target mask is peeled
  off the combined vector with a shift and mask;
* successor memoization keys the ``int`` masks directly — int hashing is a
  fraction of frozenset hashing.

For very large NFAs the packed vectors would get wide (``n_states *
n_groups`` bits per state), so past :data:`PACKED_LIMIT_BITS` of total
table the core falls back to per-group target masks (still ints, still no
sets).  Both layouts explore subsets in exactly the reference discovery
order, so the resulting DFA is byte-identical to the reference
construction — same state numbering, same dense rows, same decision sets
(property-tested).

Budget semantics are unchanged: ``state_budget`` trips
:class:`DfaExplosionError` with ``reason="states"`` (the default) and
``time_budget`` trips it with ``reason="seconds"``, at the same check
cadence as the reference walk.
"""

from __future__ import annotations

import time
from array import array

from ..automata.dfa import DEFAULT_STATE_BUDGET, DFA, DfaExplosionError
from ..automata.nfa import NFA

__all__ = ["subset_construct", "move_masks", "PACKED_LIMIT_BITS"]

# Total packed-vector table size (bits) above which the core switches to
# the per-group mask layout: n_states**2 * n_groups for the full table.
# 2**29 bits is 64 MB of move vectors — far beyond every bundled set.
PACKED_LIMIT_BITS = 1 << 29


def move_masks(nfa: NFA, representatives: list[int]) -> list[list[int]]:
    """Per-state, per-group successor bitmasks.

    Public because the equivalence prover (:mod:`repro.analyze.equivalence`)
    reuses the same packing for its reference-side successor computation.
    """
    masks: list[list[int]] = []
    for edges in nfa.transitions:
        per_group = []
        for rep in representatives:
            bit = 1 << rep
            mask = 0
            for bits, target in edges:
                if bits & bit:
                    mask |= 1 << target
            per_group.append(mask)
        masks.append(per_group)
    return masks


def subset_construct(
    nfa: NFA,
    state_budget: int = DEFAULT_STATE_BUDGET,
    time_budget: float | None = None,
) -> DFA:
    """Determinize ``nfa`` with the bitset core (see the module docstring).

    Drop-in replacement for the reference frozenset walk: same signature,
    same budgets, same exceptions, byte-identical output.
    """
    group_of_byte, representatives = nfa.alphabet_groups()
    group_of_byte = array("i", group_of_byte)
    n_groups = len(representatives)
    n = nfa.n_states
    width = n  # bits per packed field; OR never carries across fields
    masks = move_masks(nfa, representatives)

    packed = n * n * n_groups <= PACKED_LIMIT_BITS
    if packed:
        vectors: list[int] = []
        for per_group in masks:
            vector = 0
            for group in range(n_groups - 1, -1, -1):
                vector = (vector << width) | per_group[group]
            vectors.append(vector)
    field_mask = (1 << width) - 1

    initial = 0
    for state in nfa.initial:
        initial |= 1 << state
    index_of: dict[int, int] = {initial: 0}
    subsets: list[int] = [initial]
    group_rows: list[array] = []

    deadline = None if time_budget is None else time.perf_counter() + time_budget

    # Process subsets in index order; newly discovered subsets are appended,
    # so group_rows[i] always describes subsets[i] (the discovery order is
    # identical to the reference walk's, which keeps state numbering — and
    # therefore the serialized automaton — byte-identical).
    i = 0
    while i < len(subsets):
        if deadline is not None and i % 512 == 0 and time.perf_counter() > deadline:
            raise DfaExplosionError(int(time_budget), "seconds")
        members = subsets[i]
        row = array("i", [0] * n_groups)
        if packed:
            combined = 0
            rest = members
            while rest:
                low = rest & -rest
                combined |= vectors[low.bit_length() - 1]
                rest ^= low
            for group in range(n_groups):
                key = combined & field_mask
                combined >>= width
                target = index_of.get(key)
                if target is None:
                    target = len(subsets)
                    if target >= state_budget:
                        raise DfaExplosionError(state_budget)
                    index_of[key] = target
                    subsets.append(key)
                row[group] = target
        else:
            states: list[int] = []
            rest = members
            while rest:
                low = rest & -rest
                states.append(low.bit_length() - 1)
                rest ^= low
            for group in range(n_groups):
                key = 0
                for state in states:
                    key |= masks[state][group]
                target = index_of.get(key)
                if target is None:
                    target = len(subsets)
                    if target >= state_budget:
                        raise DfaExplosionError(state_budget)
                    index_of[key] = target
                    subsets.append(key)
                row[group] = target
        group_rows.append(row)
        i += 1

    # Expand compressed rows to dense 256-entry rows and collect decisions.
    nfa_accepts = nfa.accepts
    nfa_accepts_end = nfa.accepts_end
    rows: list[array] = []
    accepts: list[tuple[int, ...]] = []
    accepts_end: list[tuple[int, ...]] = []
    for members, group_row in zip(subsets, group_rows):
        rows.append(array("i", [group_row[group_of_byte[byte]] for byte in range(256)]))
        acc: set[int] = set()
        acc_end: set[int] = set()
        rest = members
        while rest:
            low = rest & -rest
            state = low.bit_length() - 1
            rest ^= low
            acc.update(nfa_accepts[state])
            acc_end.update(nfa_accepts_end[state])
        accepts.append(tuple(sorted(acc)))
        accepts_end.append(tuple(sorted(acc_end)))

    return DFA(
        rows,
        0,
        accepts,
        accepts_end,
        group_of_byte=group_of_byte,
        n_groups=n_groups,
    )
