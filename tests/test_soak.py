"""Bounded randomized soak: rule-set x options x traffic combinations.

A miniature of the offline soak harness (4,000 rule sets, zero failures):
this version runs a few hundred combinations in ~30 s so the regular test
run exercises option interactions (mitigation x rescue x alternation
explosion) that the targeted hypothesis tests sample more narrowly.
"""

import random

import pytest

from repro.core import SplitterOptions, build_mfa, verify_equivalence
from repro.regex import parse_many

SEPARATORS = [".*", "[^x]*", "[^\\n]*", ".{1,4}", ".{0,2}", ".{3}", ".+", ".{2,}", "[^ab]*"]
OPTIONS = [
    SplitterOptions(),
    SplitterOptions(coalesce_clear_runs=True),
    SplitterOptions(offset_overlap_rescue=True),
    SplitterOptions(coalesce_clear_runs=True, offset_overlap_rescue=True),
    SplitterOptions(explode_alternations=4, offset_overlap_rescue=True),
]


def _rand_word(rng):
    return "".join(rng.choice("abc") for _ in range(rng.randrange(1, 4)))


def _rand_rule(rng):
    parts = [_rand_word(rng)]
    for _ in range(rng.randrange(1, 4)):
        parts.append(rng.choice(SEPARATORS))
        parts.append(_rand_word(rng))
    prefix = rng.choice(["", "^", ".*"])
    body = "".join(parts)
    if rng.random() < 0.15:
        body = f"(?:{body}|{_rand_word(rng)})"
    return prefix + body + rng.choice(["", "", "", "$"])


def _rand_input(rng):
    return bytes(rng.choice(b"aabbccx\n.") for _ in range(rng.randrange(0, 70)))


@pytest.mark.soak
@pytest.mark.parametrize("seed", range(6))
def test_randomized_option_matrix(seed):
    rng = random.Random(97_000 + seed)
    for _ in range(40):
        rules = [_rand_rule(rng) for _ in range(rng.randrange(1, 4))]
        options = rng.choice(OPTIONS)
        patterns = parse_many(rules)
        mfa = build_mfa(patterns, options)
        for _ in range(2):
            data = _rand_input(rng)
            report = verify_equivalence(patterns, data, mfa=mfa)
            assert report.equal, (rules, options, data, report)
