"""The cross-rule interaction analyzer: oracle, findings, pruning, plans.

The containment oracle is the load-bearing piece — RS101/RS102 pruning
drops rules from production engines on its word, so it is checked two
independent ways: hand-built semantic cases with known answers, and a
hypothesis property comparing the product-automaton walk against
brute-force enumeration of every string up to length 6 over a 4-byte
alphabet (the same event semantics the engines implement: B's reported
positions must be a subset of A's on every input).
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import analyze_ruleset, pattern_contains, plan_shards, prune_patterns
from repro.analyze.ruleset import map_stream
from repro.automata.nfa import build_nfa
from repro.bench.harness import patterns_for
from repro.core import compile_mfa
from repro.fastcompile.shards import partition_patterns
from repro.regex import parse_many


def _patterns(*sources: str):
    return list(parse_many(list(sources)))


def _contains(a_src: str, b_src: str) -> bool:
    a, b = _patterns(a_src, b_src)
    verdict = pattern_contains(a, b)
    assert not verdict.bounded
    return verdict.contains


class TestContainmentOracle:
    def test_literal_prefix_subsumption(self):
        assert _contains(".*login", ".*loginpanel") is False  # different positions
        assert _contains(".*admin", ".*admin") is True

    def test_character_class_widening(self):
        assert _contains(".*uid=[0-9]", ".*uid=7") is True
        assert _contains(".*uid=7", ".*uid=[0-9]") is False

    def test_anchoring_matters(self):
        assert _contains("^abc", "^abcd") is False  # events at positions 3 vs 4
        assert _contains(".*abc", "^abc") is True

    def test_counted_repetition(self):
        # Wherever a{3,} ends, at least two trailing a's end too.
        assert _contains(".*a{2,}", ".*a{3,}") is True
        assert _contains(".*a{3,}", ".*a{2,}") is False  # "aa" fires only the lax rule
        assert _contains(".*ab.*cd", ".*ab.*cd") is True

    def test_refutation_witness_is_replayable(self):
        a, b = _patterns(".*uid=7", ".*uid=[0-9]")
        verdict = pattern_contains(a, b)
        assert not verdict.contains and verdict.refutation is not None
        nfa_a = build_nfa([a.with_id(1)])
        nfa_b = build_nfa([b.with_id(1)])
        at_b = {e.pos for e in nfa_b.run(verdict.refutation)}
        at_a = {e.pos for e in nfa_a.run(verdict.refutation)}
        assert at_b - at_a  # B fires somewhere A does not

    def test_budget_bound_is_reported(self):
        a, b = _patterns(".*a[ab]{12}b", ".*a[ab]{12}b")
        verdict = pattern_contains(a, b, budget=4)
        # A bounded walk is inconclusive: the analyzer must not prune on it.
        assert verdict.bounded and verdict.states <= 4


# -- hypothesis: oracle versus brute force ------------------------------------

_ALPHABET = b"abxy"
_ALL_STRINGS = tuple(
    bytes(combo)
    for length in range(7)
    for combo in product(_ALPHABET, repeat=length)
)

_words = st.text(alphabet="ab", min_size=1, max_size=3)
_pieces = st.sampled_from(
    ["a", "b", "x", "[ab]", "[ax]", "[^a]", "a*", "b+", "a{1,2}", ".", ".*"]
)


@st.composite
def _tiny_pattern(draw):
    prefix = draw(st.sampled_from(["", "^", ".*"]))
    body = "".join(draw(st.lists(_pieces, min_size=1, max_size=4)))
    suffix = draw(st.sampled_from(["", "$"]))
    return prefix + body + suffix


def _event_positions(nfa, payload: bytes) -> frozenset:
    return frozenset(e.pos for e in nfa.run(payload))


@given(_tiny_pattern(), _tiny_pattern())
@settings(max_examples=25, deadline=None)
def test_oracle_agrees_with_brute_force(a_src, b_src):
    a, b = _patterns(a_src, b_src)
    verdict = pattern_contains(a, b)
    assert not verdict.bounded
    nfa_a = build_nfa([a.with_id(1)])
    nfa_b = build_nfa([b.with_id(1)])
    brute = all(
        _event_positions(nfa_b, s) <= _event_positions(nfa_a, s)
        for s in _ALL_STRINGS
    )
    assert verdict.contains == brute
    if not verdict.contains:
        # The refutation must itself be a counterexample.
        payload = verdict.refutation
        assert payload is not None
        assert not (_event_positions(nfa_b, payload) <= _event_positions(nfa_a, payload))


# -- the R32 fixture end to end -----------------------------------------------


@pytest.fixture(scope="module")
def r32_result():
    return analyze_ruleset(list(patterns_for("R32")))


class TestR32Findings:
    def test_expected_findings(self, r32_result):
        codes = [f.code for f in r32_result.report]
        assert codes.count("RS101") == 1
        assert codes.count("RS102") == 4
        assert codes.count("RS103") == 1
        assert "RS130" in codes
        assert not r32_result.report.has_errors

    def test_every_witness_is_replay_confirmed(self, r32_result):
        assert len(r32_result.witnesses) == 6
        assert all(w.confirmed for w in r32_result.witnesses)

    def test_duplicate_keeps_lower_id(self, r32_result):
        assert (4, 5) in r32_result.duplicates

    def test_clusters_group_by_literal_head(self, r32_result):
        heads = {tuple(sorted(c)) for c in r32_result.clusters}
        # "GET /admin*" (rules 4-6) and "sid=*" (rules 10-12) share heads;
        # the .exe family does not (".ex"/"cmd"/"pow" differ) by design.
        assert (3, 4, 5) in heads
        assert (9, 10, 11) in heads

    def test_to_dict_round_trips(self, r32_result):
        doc = r32_result.to_dict()
        assert doc["pairs"]["walked"] > 0
        assert len(doc["witnesses"]) == 6
        assert all("payload_hex" in w for w in doc["witnesses"])


class TestPruning:
    def test_prune_drops_flagged_rules_only(self, r32_result):
        patterns = list(patterns_for("R32"))
        kept, alias = prune_patterns(patterns, r32_result)
        assert len(kept) == len(patterns) - 5  # 1 duplicate + 4 subsumed
        dropped = {p.match_id for p in patterns} - {p.match_id for p in kept}
        assert dropped == set(alias)

    def test_pruned_engine_is_stream_equivalent(self, r32_result):
        patterns = list(patterns_for("R32"))
        kept, alias = prune_patterns(patterns, r32_result)
        unpruned = compile_mfa(patterns)
        pruned = compile_mfa(kept)
        payload = b"GET /admin cmd.exe uid=1000; sid=3x"
        expect = map_stream(unpruned.run(payload), alias)
        assert expect == {(e.pos, e.match_id) for e in pruned.run(payload)}


class TestShardPlanning:
    def test_plan_is_a_permutation_partition(self):
        patterns = list(patterns_for("R32"))
        plan = plan_shards(patterns, 4)
        flat = sorted(i for chunk in plan.assignments for i in chunk)
        assert flat == list(range(len(patterns)))
        assert all(chunk == sorted(chunk) for chunk in plan.assignments)

    def test_interaction_plan_beats_contiguous_peak(self):
        from repro.analyze.ruleset import contiguous_plan

        patterns = list(patterns_for("R32"))
        inter = plan_shards(patterns, 4)
        contig = contiguous_plan(patterns, 4)
        assert inter.peak < contig.peak

    def test_compile_mfa_accepts_interaction_plan(self):
        patterns = list(patterns_for("R32"))
        contig = compile_mfa(patterns, shards=4)
        inter = compile_mfa(patterns, shards=4, shard_plan="interaction")
        payload = b"GET /administrator powershell.exe sid=5x tozzot"
        assert contig.run(payload) == inter.run(payload)

    def test_unknown_plan_raises(self):
        with pytest.raises(ValueError):
            compile_mfa(list(patterns_for("C8")), shards=2, shard_plan="bogus")

    def test_partition_patterns_empty_input(self):
        assert partition_patterns([], 4) == []


class TestEscort:
    def test_compile_limits_env_flag(self, monkeypatch):
        from repro.robust import compile_limits_from_env

        monkeypatch.setenv("REPRO_COMPILE_RULESET", "1")
        assert compile_limits_from_env().ruleset is True
        monkeypatch.delenv("REPRO_COMPILE_RULESET")
        assert compile_limits_from_env().ruleset is False

    def test_resilient_compiler_attaches_ruleset_report(self):
        from repro.robust import CompileLimits
        from repro.robust.pipeline import ResilientCompiler

        compiler = ResilientCompiler(limits=CompileLimits(ruleset=True))
        result = compiler.compile([r".*\.exe", r".*cmd\.exe"])
        report = result.report.ruleset
        assert report is not None
        assert any(f.code == "RS102" for f in report)
        assert "ruleset" in result.report.phases
        rendered = "\n".join(result.report.describe())
        assert "ruleset:" in rendered
        assert result.report.to_dict()["ruleset"] is not None

    def test_escort_off_by_default(self):
        from repro.robust.pipeline import ResilientCompiler

        result = ResilientCompiler().compile([".*abc"])
        assert result.report.ruleset is None
