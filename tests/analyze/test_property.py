"""Hypothesis property: verifier-reported dead bits really are dead.

:func:`repro.analyze.dead_bits` claims a set-but-never-tested bit cannot
influence the filtered match stream, so :func:`strip_dead_bits` must be a
semantics-preserving rewrite.  The property drives randomly generated
(valid) filter programs and random event streams through both the
original and the stripped program and requires identical confirmed
streams — state divergence is allowed, observable output is not.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analyze import dead_bits, strip_dead_bits
from repro.core.filters import NONE, FilterAction, FilterEngine, FilterProgram

WIDTH = 4
N_IDS = 6
FINAL_IDS = frozenset({1, 2})


@st.composite
def actions(draw):
    bit = st.integers(min_value=0, max_value=WIDTH - 1)
    test = draw(st.one_of(st.just(NONE), bit))
    set_ = draw(st.one_of(st.just(NONE), bit))
    clear = draw(st.one_of(st.just(NONE), bit))
    if set_ != NONE and set_ == clear:
        clear = NONE  # the engine's own invariant: set xor clear per bit
    report = draw(st.one_of(st.just(NONE), st.sampled_from(sorted(FINAL_IDS))))
    return FilterAction(test=test, set=set_, clear=clear, report=report)


@st.composite
def programs(draw):
    ids = draw(
        st.lists(
            st.integers(min_value=1, max_value=N_IDS),
            min_size=1, max_size=N_IDS, unique=True,
        )
    )
    table = {match_id: draw(actions()) for match_id in ids}
    return FilterProgram(
        actions=table, width=WIDTH, n_registers=0, final_ids=FINAL_IDS
    )


events = st.lists(
    st.integers(min_value=1, max_value=N_IDS), min_size=0, max_size=40
)


def confirmed_stream(program: FilterProgram, stream) -> list[tuple[int, int]]:
    engine = FilterEngine(program)
    state = engine.new_state()
    out = []
    for pos, match_id in enumerate(stream):
        confirmed = engine.process(state, pos, match_id)
        if confirmed != NONE:
            out.append((pos, confirmed))
    return out


class TestDeadBitProperty:
    @settings(max_examples=300, deadline=None)
    @given(program=programs(), stream=events)
    def test_stripping_dead_bits_preserves_the_stream(self, program, stream):
        stripped = strip_dead_bits(program)
        assert confirmed_stream(program, stream) == confirmed_stream(stripped, stream)

    @settings(max_examples=100, deadline=None)
    @given(program=programs())
    def test_stripped_programs_have_no_dead_bits(self, program):
        assert dead_bits(strip_dead_bits(program)) == set()
