"""Hash-seed determinism of adversarial witness synthesis.

A witness payload is a pinnable regression input: CI archives the corpus
and operators replay it against future builds.  That only works if the
same artifact always yields byte-identical witnesses — the value
iteration, greedy policy walks, gram-collision stream assembly, and
finding order must not leak Python's per-process hash randomization.
Two subprocesses under different ``PYTHONHASHSEED`` values must print
exactly the same corpus.
"""

import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

_SCRIPT = r"""
import json

from repro.analyze import analyze_adversary
from repro.bench.harness import patterns_for
from repro.core import compile_mfa

mfa = compile_mfa(patterns_for("C8"), compress=4)
result = analyze_adversary(mfa, replay=False)
print(json.dumps([w.to_dict() for w in result.witnesses], sort_keys=True))
print(result.report.to_json())
for line in result.describe().splitlines():
    print(line)
"""


def _render(seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": str(_REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
        cwd=str(_REPO_ROOT),
        check=True,
    )
    return result.stdout


def test_witness_corpus_is_hash_seed_independent():
    rendered = _render("0")
    assert "payload_hex" in rendered and "AV130" in rendered
    assert rendered == _render("1")
