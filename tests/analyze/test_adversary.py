"""The adversarial worst-case auditor: witness synthesis, replay, scoping.

Witnesses are *claims* — "this byte stream costs the engine at least
this much more than clean traffic" — so the tests hold them to the same
standard the CLI gate does: the statically predicted cost must beat the
clean baseline, the payload must be deterministic and serializable, and
replaying it through the real engines must never change the confirmed
match stream (a witness that alters what the engine reports is an attack
on the test, not on the engine).
"""

import pytest

from repro.analyze import (
    REQUIRED_WITNESS_KINDS,
    AnalysisReport,
    analyze_adversary,
    analyze_engine_adversary,
)
from repro.bench.harness import patterns_for
from repro.core import compile_mfa


@pytest.fixture(scope="module")
def compressed_c8():
    """C8 with the D²FA tier: forest + prefilter plan, every channel live."""
    return compile_mfa(patterns_for("C8"), compress=4)


@pytest.fixture(scope="module")
def audit_c8(compressed_c8):
    return analyze_adversary(compressed_c8, replay=False)


class TestWitnessSynthesis:
    def test_all_required_classes_present(self, audit_c8):
        kinds = {w.kind for w in audit_c8.witnesses}
        assert set(REQUIRED_WITNESS_KINDS) <= kinds

    def test_witnesses_predict_above_baseline(self, audit_c8):
        for witness in audit_c8.witnesses:
            assert witness.predicted_cost >= witness.baseline_cost, witness.kind
            assert witness.predicted_ratio >= 1.0, witness.kind

    def test_witness_codes_match_kinds(self, audit_c8):
        by_kind = {w.kind: w.code for w in audit_c8.witnesses}
        assert by_kind["chain-depth"] == "AV101"
        assert by_kind["prefilter-evasion"] == "AV102"
        assert by_kind["cache-thrash"] == "AV103"

    def test_every_witness_has_a_finding(self, audit_c8):
        codes = {f.code for f in audit_c8.report}
        assert {w.code for w in audit_c8.witnesses} <= codes
        assert "AV130" in codes  # the census line

    def test_to_dict_round_trips_payload(self, audit_c8):
        for witness in audit_c8.witnesses:
            doc = witness.to_dict()
            assert bytes.fromhex(doc["payload_hex"]) == witness.payload
            assert doc["length"] == len(witness.payload)
            assert doc["digest"] == witness.digest

    def test_synthesis_is_deterministic(self, compressed_c8, audit_c8):
        again = analyze_adversary(compressed_c8, replay=False)
        assert [w.to_dict() for w in again.witnesses] == [
            w.to_dict() for w in audit_c8.witnesses
        ]
        assert again.report.to_json() == audit_c8.report.to_json()

    def test_chain_disabled_prefilter_is_surfaced(self, audit_c8):
        # The artifact carries both a forest and a compiled plan, so the
        # chain-decode configuration silently loses the prefilter: AV110.
        assert any(f.code == "AV110" for f in audit_c8.report)

    def test_hot_cap_override_stresses_cache(self, compressed_c8):
        result = analyze_adversary(compressed_c8, replay=False, hot_cap=2)
        thrash = result.witness("cache-thrash")
        assert thrash is not None
        assert thrash.params["hot_cap"] == 2

    def test_dense_mfa_skips_chain_classes(self):
        mfa = compile_mfa(["alpha.*beta", "gamma"])
        result = analyze_adversary(mfa, replay=False)
        kinds = {w.kind for w in result.witnesses}
        assert "chain-depth" not in kinds
        assert "cache-thrash" not in kinds
        assert any(f.code == "AV130" for f in result.report)


class TestReplay:
    @pytest.fixture(scope="class")
    def replayed(self, compressed_c8):
        return analyze_adversary(
            compressed_c8, replay=True, replay_bytes=4096, best_of=1
        )

    def test_zero_stream_diffs(self, replayed):
        assert replayed.replays
        assert all(r.stream_diffs == 0 for r in replayed.replays)
        assert not any(f.code == "AV106" for f in replayed.report)

    def test_every_required_kind_replayed(self, replayed):
        replayed_kinds = {r.kind for r in replayed.replays}
        assert set(REQUIRED_WITNESS_KINDS) <= replayed_kinds

    def test_slowdown_is_max_over_engines(self, replayed):
        for kind in {r.kind for r in replayed.replays}:
            measured = [
                r.measured_slowdown for r in replayed.replays if r.kind == kind
            ]
            assert replayed.slowdown(kind) == pytest.approx(max(measured))

    def test_replay_timings_are_positive(self, replayed):
        for replay in replayed.replays:
            assert replay.witness_ns_per_byte > 0
            assert replay.clean_ns_per_byte > 0


class TestEngineScoping:
    def test_mfa_delegates(self, compressed_c8, audit_c8):
        result = analyze_engine_adversary(compressed_c8, replay=False)
        assert {w.kind for w in result.witnesses} == {
            w.kind for w in audit_c8.witnesses
        }

    def test_sharded_engine_relocates_findings(self, compressed_c8):
        class Sharded:
            shards = [compressed_c8]

        result = analyze_engine_adversary(Sharded(), replay=False)
        assert result.witnesses
        assert all(w.params["shard"] == 0 for w in result.witnesses)
        census = [f for f in result.report if f.code == "AV130"]
        assert census and all("shard 0" in f.location for f in census)

    def test_foreign_engine_is_out_of_scope(self):
        result = analyze_engine_adversary(object())
        assert not result.witnesses
        codes = [f.code for f in result.report]
        assert codes == ["AV120"]

    def test_external_report_is_extended(self, compressed_c8):
        report = AnalysisReport()
        result = analyze_adversary(compressed_c8, report, replay=False)
        assert result.report is report
        assert any(f.code == "AV130" for f in report)


class TestCompilerEscort:
    def test_resilient_compiler_records_adversary(self):
        from repro.robust import ResilientCompiler
        from repro.robust.limits import CompileLimits

        result = ResilientCompiler(CompileLimits(adversary=True)).compile(
            patterns_for("C8")
        )
        adversary = result.report.adversary
        assert adversary is not None and not adversary.has_errors
        assert any(f.code == "AV130" for f in adversary)
        assert "adversary" in result.report.phases
        assert result.report.to_dict()["adversary"] is not None
        assert any("adversary:" in line for line in result.report.describe())

    def test_resilient_compiler_skips_adversary_by_default(self):
        from repro.robust import ResilientCompiler

        result = ResilientCompiler().compile(patterns_for("C8"))
        assert result.report.adversary is None
        assert result.report.to_dict()["adversary"] is None

    def test_escort_crash_becomes_av100(self, monkeypatch):
        import repro.analyze as analyze_mod
        from repro.robust import ResilientCompiler
        from repro.robust.limits import CompileLimits

        def explode(engine, report=None, **kwargs):
            raise RuntimeError("seeded audit crash")

        monkeypatch.setattr(analyze_mod, "analyze_engine_adversary", explode)
        result = ResilientCompiler(CompileLimits(adversary=True)).compile(
            patterns_for("C8")
        )
        assert result.ok  # never fatal: the crash is itself a finding
        adversary = result.report.adversary
        assert adversary is not None and adversary.has_errors
        (finding,) = adversary.findings
        assert finding.code == "AV100"
        assert "seeded audit crash" in finding.message

    def test_adversary_limit_from_env(self):
        from repro.robust.limits import compile_limits_from_env

        assert compile_limits_from_env({"REPRO_COMPILE_ADVERSARY": "1"}).adversary
        assert not compile_limits_from_env({}).adversary
        assert not compile_limits_from_env({"REPRO_COMPILE_ADVERSARY": "0"}).adversary
