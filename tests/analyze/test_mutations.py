"""Seeded-mutation corpus: every corruption must surface as a finding.

Each mutation takes the known-good C8 bundle, damages exactly one thing a
real bit-rot / bad-build / version-skew incident could damage, and asserts
the bundle analyzer (which never trusts its input) flags it with the
expected code.  The final test asserts 100% detection across the corpus —
the acceptance bar of the static-analysis issue.
"""

import json
import struct

import pytest

from repro.analyze import analyze_bundle
from repro.automata.serialize import DFA_MAGIC, decode_dfa_header
from repro.bench.harness import patterns_for
from repro.core import compile_mfa, dumps_mfa
from repro.core.serialize import BUNDLE_MAGIC, split_bundle


@pytest.fixture(scope="module")
def bundle() -> bytes:
    return dumps_mfa(compile_mfa(patterns_for("C8")))


def reframe(program_bytes: bytes, dfa_bytes: bytes) -> bytes:
    return (
        BUNDLE_MAGIC
        + struct.pack("<II", len(program_bytes), len(dfa_bytes))
        + program_bytes
        + dfa_bytes
    )


def reframe_dfa(header: dict, table_bytes: bytes) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return DFA_MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + table_bytes


def mutate_program(bundle: bytes, edit) -> bytes:
    """Apply ``edit`` to the decoded filter-table JSON and reframe."""
    program_bytes, dfa_bytes = split_bundle(bundle)
    table = json.loads(program_bytes)
    edit(table)
    return reframe(json.dumps(table, separators=(",", ":")).encode(), dfa_bytes)


def mutate_dfa(bundle: bytes, edit) -> bytes:
    """Apply ``edit(header, table) -> table`` to the DFA half and reframe."""
    program_bytes, dfa_bytes = split_bundle(bundle)
    header, table_bytes = decode_dfa_header(dfa_bytes)
    table_bytes = edit(header, table_bytes)
    return reframe(program_bytes, reframe_dfa(header, table_bytes))


def first_action_with(table: dict, field: str) -> str:
    for key, fields in table["actions"].items():
        if fields.get(field, -1) != -1:
            return key
    raise AssertionError(f"C8 program has no action with {field!r}")


# -- the corpus ---------------------------------------------------------------


def bad_magic(blob: bytes) -> bytes:
    return b"NOTABDL!" + blob[8:]


def truncated(blob: bytes) -> bytes:
    return blob[: len(blob) // 2]


def flip_bytecode_integer(blob: bytes) -> bytes:
    # A version-skew classic: one bit index lands outside the memory.
    def edit(table):
        key = first_action_with(table, "set")
        table["actions"][key]["set"] = table["width"] + 7

    return mutate_program(blob, edit)


def set_equals_clear(blob: bytes) -> bytes:
    def edit(table):
        key = first_action_with(table, "set")
        table["actions"][key]["clear"] = table["actions"][key]["set"]

    return mutate_program(blob, edit)


def orphan_test_bit(blob: bytes) -> bytes:
    # Remap a setter's bit so some guard tests a bit nothing sets.
    def edit(table):
        tested = {
            f["test"] for f in table["actions"].values() if f.get("test", -1) != -1
        }
        target = sorted(tested)[0]
        for fields in table["actions"].values():
            if fields.get("set") == target:
                fields["set"] = table["width"] - 1 if target != table["width"] - 1 else 0
        table["width"] += 1

    return mutate_program(blob, edit)


def remap_match_id(blob: bytes) -> bytes:
    # The DFA emits an id the filter has never heard of.
    def edit(header, table_bytes):
        for decisions in header["accepts"]:
            if decisions:
                decisions[0] = 9999
                return table_bytes
        raise AssertionError("C8 DFA has no mid-stream decisions")

    return mutate_dfa(blob, edit)


def drop_transition_row(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        return table_bytes[: -256 * 4]

    return mutate_dfa(blob, edit)


def out_of_range_target(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        bad = struct.pack("<i", header["n_states"] + 100)
        return bad + table_bytes[4:]

    return mutate_dfa(blob, edit)


def lie_about_state_count(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        header["n_states"] += 3
        return table_bytes

    return mutate_dfa(blob, edit)


CORPUS = [
    (bad_magic, "BN101"),
    (truncated, "BN101"),
    (flip_bytecode_integer, "FB101"),
    (set_equals_clear, "FB103"),
    (orphan_test_bit, "FB111"),
    (remap_match_id, "AU120"),
    (drop_transition_row, "BN105"),
    (out_of_range_target, "AU102"),
    (lie_about_state_count, "BN105"),
]


class TestMutationCorpus:
    def test_pristine_bundle_is_clean(self, bundle):
        report = analyze_bundle(bundle)
        assert not report.has_errors
        assert len(report.findings) == 0

    @pytest.mark.parametrize("mutate,code", CORPUS, ids=[m.__name__ for m, _ in CORPUS])
    def test_mutation_detected_with_expected_code(self, bundle, mutate, code):
        report = analyze_bundle(mutate(bundle))
        assert report.has_errors, f"{mutate.__name__} produced no error finding"
        assert code in {f.code for f in report.errors}, (
            f"{mutate.__name__}: wanted {code}, got "
            f"{[f.describe() for f in report.errors]}"
        )

    def test_full_corpus_detection_rate_is_total(self, bundle):
        detected = sum(1 for mutate, _ in CORPUS if analyze_bundle(mutate(bundle)).has_errors)
        assert detected == len(CORPUS)

    def test_findings_are_deterministic(self, bundle):
        damaged = set_equals_clear(flip_bytecode_integer(bundle))
        first = analyze_bundle(damaged).to_json()
        second = analyze_bundle(damaged).to_json()
        assert first == second
