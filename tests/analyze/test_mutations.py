"""Seeded-mutation corpora: every corruption must surface, with evidence.

Two corpora over the known-good C8 artifact:

* the *bundle* corpus damages the serialized form — framing, bytecode
  integers, DFA tables — and asserts the tolerant bundle analyzer flags
  each with the expected code;
* the *semantic* corpus damages meaning while keeping the artifact
  perfectly well-formed (a retargeted report, a dropped guard, a
  redirected transition) — the class of defect only the equivalence
  prover can catch.  Each defect's shortest distinguishing input is
  pinned as a regression string, so the concrete counterexamples survive
  even if the prover's search order ever changes, and every pinned
  string is replayed through the real engines to confirm they genuinely
  disagree on it.
"""

import json
import struct
from array import array
from dataclasses import replace as dc_replace

import pytest

from repro.analyze import analyze_bundle, prove_mfa
from repro.automata.dfa import DFA
from repro.automata.nfa import build_nfa
from repro.automata.serialize import DFA_MAGIC, decode_dfa_header
from repro.bench.harness import patterns_for
from repro.core import compile_mfa, dumps_mfa
from repro.core.filters import NONE, FilterProgram
from repro.core.mfa import MFA
from repro.core.serialize import BUNDLE_MAGIC, split_bundle


@pytest.fixture(scope="module")
def bundle() -> bytes:
    return dumps_mfa(compile_mfa(patterns_for("C8")))


def reframe(program_bytes: bytes, dfa_bytes: bytes) -> bytes:
    return (
        BUNDLE_MAGIC
        + struct.pack("<II", len(program_bytes), len(dfa_bytes))
        + program_bytes
        + dfa_bytes
    )


def reframe_dfa(header: dict, table_bytes: bytes) -> bytes:
    header_bytes = json.dumps(header, separators=(",", ":")).encode()
    return DFA_MAGIC + struct.pack("<I", len(header_bytes)) + header_bytes + table_bytes


def mutate_program(bundle: bytes, edit) -> bytes:
    """Apply ``edit`` to the decoded filter-table JSON and reframe."""
    program_bytes, dfa_bytes = split_bundle(bundle)
    table = json.loads(program_bytes)
    edit(table)
    return reframe(json.dumps(table, separators=(",", ":")).encode(), dfa_bytes)


def mutate_dfa(bundle: bytes, edit) -> bytes:
    """Apply ``edit(header, table) -> table`` to the DFA half and reframe."""
    program_bytes, dfa_bytes = split_bundle(bundle)
    header, table_bytes = decode_dfa_header(dfa_bytes)
    table_bytes = edit(header, table_bytes)
    return reframe(program_bytes, reframe_dfa(header, table_bytes))


def first_action_with(table: dict, field: str) -> str:
    for key, fields in table["actions"].items():
        if fields.get(field, -1) != -1:
            return key
    raise AssertionError(f"C8 program has no action with {field!r}")


# -- the corpus ---------------------------------------------------------------


def bad_magic(blob: bytes) -> bytes:
    return b"NOTABDL!" + blob[8:]


def truncated(blob: bytes) -> bytes:
    return blob[: len(blob) // 2]


def flip_bytecode_integer(blob: bytes) -> bytes:
    # A version-skew classic: one bit index lands outside the memory.
    def edit(table):
        key = first_action_with(table, "set")
        table["actions"][key]["set"] = table["width"] + 7

    return mutate_program(blob, edit)


def set_equals_clear(blob: bytes) -> bytes:
    def edit(table):
        key = first_action_with(table, "set")
        table["actions"][key]["clear"] = table["actions"][key]["set"]

    return mutate_program(blob, edit)


def orphan_test_bit(blob: bytes) -> bytes:
    # Remap a setter's bit so some guard tests a bit nothing sets.
    def edit(table):
        tested = {
            f["test"] for f in table["actions"].values() if f.get("test", -1) != -1
        }
        target = sorted(tested)[0]
        for fields in table["actions"].values():
            if fields.get("set") == target:
                fields["set"] = table["width"] - 1 if target != table["width"] - 1 else 0
        table["width"] += 1

    return mutate_program(blob, edit)


def remap_match_id(blob: bytes) -> bytes:
    # The DFA emits an id the filter has never heard of.
    def edit(header, table_bytes):
        for decisions in header["accepts"]:
            if decisions:
                decisions[0] = 9999
                return table_bytes
        raise AssertionError("C8 DFA has no mid-stream decisions")

    return mutate_dfa(blob, edit)


def drop_transition_row(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        return table_bytes[: -256 * 4]

    return mutate_dfa(blob, edit)


def out_of_range_target(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        bad = struct.pack("<i", header["n_states"] + 100)
        return bad + table_bytes[4:]

    return mutate_dfa(blob, edit)


def lie_about_state_count(blob: bytes) -> bytes:
    def edit(header, table_bytes):
        header["n_states"] += 3
        return table_bytes

    return mutate_dfa(blob, edit)


CORPUS = [
    (bad_magic, "BN101"),
    (truncated, "BN101"),
    (flip_bytecode_integer, "FB101"),
    (set_equals_clear, "FB103"),
    (orphan_test_bit, "FB111"),
    (remap_match_id, "AU120"),
    (drop_transition_row, "BN105"),
    (out_of_range_target, "AU102"),
    (lie_about_state_count, "BN105"),
]


class TestMutationCorpus:
    def test_pristine_bundle_is_clean(self, bundle):
        report = analyze_bundle(bundle)
        assert not report.has_errors
        assert len(report.findings) == 0

    @pytest.mark.parametrize("mutate,code", CORPUS, ids=[m.__name__ for m, _ in CORPUS])
    def test_mutation_detected_with_expected_code(self, bundle, mutate, code):
        report = analyze_bundle(mutate(bundle))
        assert report.has_errors, f"{mutate.__name__} produced no error finding"
        assert code in {f.code for f in report.errors}, (
            f"{mutate.__name__}: wanted {code}, got "
            f"{[f.describe() for f in report.errors]}"
        )

    def test_full_corpus_detection_rate_is_total(self, bundle):
        detected = sum(1 for mutate, _ in CORPUS if analyze_bundle(mutate(bundle)).has_errors)
        assert detected == len(CORPUS)

    def test_findings_are_deterministic(self, bundle):
        damaged = set_equals_clear(flip_bytecode_integer(bundle))
        first = analyze_bundle(damaged).to_json()
        second = analyze_bundle(damaged).to_json()
        assert first == second


# -- the semantic corpus ------------------------------------------------------
#
# Runnable defects: each constructor returns a well-formed MFA (valid
# FilterProgram, valid DFA) whose *behavior* silently differs from the
# original C8 patterns.  The bundle analyzer cannot see these — only the
# equivalence prover can.


def _clone_dfa(dfa, rows=None, accepts=None):
    # group provenance is dropped: the prover recomputes byte groups from
    # the rows, and a mutated table may not honor the recorded partition.
    return DFA(
        [array("i", row) for row in (rows if rows is not None else dfa.rows)],
        dfa.start,
        list(accepts if accepts is not None else dfa.accepts),
        list(dfa.accepts_end),
        group_of_byte=None,
        n_groups=None,
    )


def _with_program(mfa, actions):
    prog = mfa.program
    return MFA(
        mfa.dfa, FilterProgram(dict(actions), prog.width, prog.n_registers, prog.final_ids)
    )


def _first_action(mfa, field):
    for match_id in sorted(mfa.program.actions):
        if getattr(mfa.program.actions[match_id], field) != NONE:
            return match_id
    raise AssertionError(f"C8 program has no action with {field!r}")


def report_retarget(mfa):
    match_id = _first_action(mfa, "report")
    action = mfa.program.actions[match_id]
    other = next(i for i in sorted(mfa.program.final_ids) if i != action.report)
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, report=other)}
    )


def guard_dropped(mfa):
    match_id = _first_action(mfa, "test")
    action = mfa.program.actions[match_id]
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, test=NONE)}
    )


def guard_retarget(mfa):
    match_id = _first_action(mfa, "test")
    action = mfa.program.actions[match_id]
    retargeted = (action.test + 1) % mfa.program.width
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, test=retargeted)}
    )


def set_retarget(mfa):
    match_id = _first_action(mfa, "set")
    action = mfa.program.actions[match_id]
    retargeted = (action.set + 1) % mfa.program.width
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, set=retargeted)}
    )


def set_dropped(mfa):
    match_id = _first_action(mfa, "set")
    action = mfa.program.actions[match_id]
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, set=NONE)}
    )


def guard_self_clear(mfa):
    match_id = _first_action(mfa, "test")
    action = mfa.program.actions[match_id]
    return _with_program(
        mfa, {**mfa.program.actions, match_id: dc_replace(action, clear=action.test)}
    )


def accept_dropped(mfa):
    accepts = list(mfa.dfa.accepts)
    for index, ids in enumerate(accepts):
        if ids:
            accepts[index] = ids[1:]
            break
    else:
        raise AssertionError("C8 DFA has no mid-stream decisions")
    return MFA(_clone_dfa(mfa.dfa, accepts=accepts), mfa.program)


def accept_added(mfa):
    spurious = sorted(mfa.program.final_ids)[-1]
    accepts = list(mfa.dfa.accepts)
    for index, ids in enumerate(accepts):
        if index != mfa.dfa.start and not ids:
            accepts[index] = (spurious,)
            break
    else:
        raise AssertionError("C8 DFA has no decision-free state")
    return MFA(_clone_dfa(mfa.dfa, accepts=accepts), mfa.program)


def row_redirect(mfa):
    # Redirect the transition taken on the last byte of a known segment
    # match back to the start state: that confirm never fires again.
    payload = b"RCPT TO:"
    state = mfa.dfa.start
    rows = [array("i", row) for row in mfa.dfa.rows]
    for byte in payload[:-1]:
        state = rows[state][byte]
    rows[state][payload[-1]] = mfa.dfa.start
    return MFA(_clone_dfa(mfa.dfa, rows=rows), mfa.program)


# (defect, shortest counterexample the prover extracts).  The strings are
# pinned: the prover must keep finding inputs of exactly this length, and
# the pinned bytes themselves must keep distinguishing the defective MFA
# from the reference automaton under replay — independent of any future
# change to the prover's search order.
SEMANTIC_CORPUS = [
    (report_retarget, b"GET /cgi-bin/../"),
    (guard_dropped, b"../"),
    (guard_retarget, b"MAIL FROM:../"),
    (set_retarget, b"MAIL FROM:%p"),
    (set_dropped, b"MAIL FROM:RCPT TO:"),
    (guard_self_clear, b"GET /cgi-bin/../../"),
    (accept_dropped, b"SITE EXEC\n%p"),
    (accept_added, b"MAIL FROM:\x00"),
    (row_redirect, b"MAIL FROM:RCPT TO:"),
]


@pytest.fixture(scope="module")
def c8_mfa():
    return compile_mfa(patterns_for("C8"))


@pytest.fixture(scope="module")
def c8_reference():
    return build_nfa(patterns_for("C8"))


class TestSemanticCorpus:
    @pytest.mark.parametrize(
        "defect,pinned", SEMANTIC_CORPUS, ids=[d.__name__ for d, _ in SEMANTIC_CORPUS]
    )
    def test_prover_finds_shortest_counterexample(self, c8_mfa, defect, pinned):
        result = prove_mfa(defect(c8_mfa), patterns_for("C8"))
        assert not result.equivalent and not result.bounded, (
            f"{defect.__name__}: prover failed to refute"
        )
        assert result.replay_confirmed is True
        assert result.counterexample is not None
        # The minimal distinguishing length is a property of the defect,
        # not of the search: pin it exactly.  (The byte string itself may
        # legitimately differ between equally-short witnesses.)
        assert len(result.counterexample) == len(pinned), (
            f"{defect.__name__}: shortest counterexample changed length: "
            f"{result.counterexample!r} vs pinned {pinned!r}"
        )

    @pytest.mark.parametrize(
        "defect,pinned", SEMANTIC_CORPUS, ids=[d.__name__ for d, _ in SEMANTIC_CORPUS]
    )
    def test_pinned_string_distinguishes_under_replay(
        self, c8_mfa, c8_reference, defect, pinned
    ):
        bad = defect(c8_mfa)
        got = {(e.pos, e.match_id) for e in bad.run(pinned)}
        want = {(e.pos, e.match_id) for e in c8_reference.run(pinned)}
        assert got != want, (
            f"{defect.__name__}: pinned input {pinned!r} no longer "
            f"distinguishes the defective MFA from the reference"
        )

    def test_semantic_detection_rate_is_total(self, c8_mfa):
        patterns = patterns_for("C8")
        refuted = sum(
            1
            for defect, _ in SEMANTIC_CORPUS
            if not prove_mfa(defect(c8_mfa), patterns).equivalent
        )
        assert refuted == len(SEMANTIC_CORPUS)

    def test_prover_catches_what_the_bundle_analyzer_cannot(self, c8_mfa):
        # The point of the prover: a semantically wrong artifact can be
        # perfectly well-formed.  The structural bundle analyzer must not
        # be relied on to catch a redirected transition; the prover is.
        bad = row_redirect(c8_mfa)
        report = analyze_bundle(dumps_mfa(bad))
        assert not report.has_errors
        assert not prove_mfa(bad, patterns_for("C8")).equivalent
