"""Hash-seed determinism of the analysis report renderer and the prover.

Finding order, JSON rendering, and — hardest — the prover's search
(frontier hashing, joint alphabet-group discovery, counterexample
extraction) must not leak Python's per-process hash randomization: CI
gates diff these reports run against run, and a counterexample that
changes with ``PYTHONHASHSEED`` is not a pinnable regression input.  The
renderer is exercised in subprocesses under two different seeds and the
bytes must match exactly.
"""

import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

_SCRIPT = r"""
from dataclasses import replace

from repro.analyze import analyze_equivalence, prove_patterns
from repro.bench.harness import patterns_for
from repro.core.filters import NONE, FilterProgram
from repro.core.mfa import MFA, build_mfa

patterns = patterns_for("C8")

# A clean per-pattern run: EQ130 census lines for every pattern.
clean = prove_patterns(patterns)
print(clean.to_json())
for line in clean.describe():
    print(line)

# A diverging run: EQ101 with the extracted counterexample rendered.
mfa = build_mfa(patterns)
prog = mfa.program
actions = dict(prog.actions)
for mid in sorted(actions):
    action = actions[mid]
    if action.report != NONE:
        other = next(i for i in sorted(prog.final_ids) if i != action.report)
        actions[mid] = replace(action, report=other)
        break
bad = MFA(mfa.dfa, FilterProgram(actions, prog.width, prog.n_registers, prog.final_ids))
print(analyze_equivalence(bad, patterns).to_json())
"""


def _render(seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": str(_REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
        cwd=str(_REPO_ROOT),
        check=True,
    )
    return result.stdout


def test_renderer_and_prover_are_hash_seed_independent():
    rendered = _render("0")
    assert "EQ130" in rendered and "EQ101" in rendered
    assert rendered == _render("1")
