"""Tolerant analysis of compressed (``MFADFA2``) bundle sections.

Corruption in the compressed DFA section must surface as ``BN107``
(framing/section damage) or ``BN108`` (semantically invalid forest)
findings — never as a crash — and a clean compressed bundle must lint
clean, including through the ``mfa-bench lint`` CLI.
"""

import struct

import pytest

from repro.analyze import analyze_bundle
from repro.automata.serialize import CDFA_MAGIC, decode_cdfa_header
from repro.bench.cli import main
from repro.bench.harness import patterns_for
from repro.core import compile_mfa, dumps_mfa

RULES = [".*aa.*bb", ".*cc[^\\n]*dd", ".*ee.{1,4}ffq", "^GET /x", "plain"]


@pytest.fixture(scope="module")
def compressed_bundle() -> bytes:
    return dumps_mfa(compile_mfa(RULES, compress=4))


def section_offsets(blob: bytes) -> tuple[int, int, dict]:
    """(section start, binary body start, decoded header) of the CDFA part."""
    sec = blob.index(CDFA_MAGIC)
    header, body = decode_cdfa_header(memoryview(blob)[sec:])
    body_off = len(blob) - len(body)
    return sec, body_off, header


def patch_parent(blob: bytes, state: int, value: int) -> bytes:
    """Rewrite one default-pointer entry in place (lengths unchanged)."""
    _sec, body_off, _header = section_offsets(blob)
    buf = bytearray(blob)
    struct.pack_into("<i", buf, body_off + 4 * state, value)
    return bytes(buf)


class TestCleanCompressedBundle:
    def test_analyzer_finds_nothing(self, compressed_bundle):
        report = analyze_bundle(compressed_bundle)
        assert not report.has_errors
        assert not [f for f in report if f.severity == "warning"]

    def test_lint_cli_decodes_compressed_section(self, tmp_path, capsys):
        path = tmp_path / "compressed.mfab"
        path.write_bytes(dumps_mfa(compile_mfa(patterns_for("C8"), compress=4)))
        assert main(["lint", str(path)]) == 0
        assert "0 error(s)" in capsys.readouterr().out


class TestCorruptedSections:
    def test_garbled_header_json_is_bn107(self, compressed_bundle):
        sec, _body, _header = section_offsets(compressed_bundle)
        buf = bytearray(compressed_bundle)
        buf[sec + len(CDFA_MAGIC) + 4] = ord("X")  # first byte of the JSON
        report = analyze_bundle(bytes(buf))
        assert "BN107" in {f.code for f in report}
        assert report.has_errors

    def test_undersized_sections_are_bn107(self, compressed_bundle):
        # Claim one more state than the binary sections actually carry: the
        # bundle framing stays honest (dfa_len is patched to match the grown
        # JSON header), so the finding must come from the section-size check.
        _sec, _body, header = section_offsets(compressed_bundle)
        n = header["n_states"]
        old = f'"n_states":{n}'.encode()
        new = f'"n_states":{n + 1}'.encode()
        assert old in compressed_bundle
        blob = compressed_bundle.replace(old, new, 1)
        buf = bytearray(blob)
        grown = len(blob) - len(compressed_bundle)
        if grown:  # a digit rollover also grows the section
            magic_len = 8  # both MFABDL1 and MFABDL2 magics are 8 bytes
            (dfa_len,) = struct.unpack_from("<I", buf, magic_len + 4)
            struct.pack_into("<I", buf, magic_len + 4, dfa_len + grown)
        report = analyze_bundle(bytes(buf))
        assert "BN107" in {f.code for f in report}
        assert report.has_errors

    def test_parent_out_of_range_is_bn108(self, compressed_bundle):
        _sec, _body, header = section_offsets(compressed_bundle)
        blob = patch_parent(compressed_bundle, 1, header["n_states"] + 7)
        report = analyze_bundle(blob)
        findings = {f.code for f in report}
        assert "BN108" in findings
        assert report.has_errors

    def test_default_pointer_cycle_is_bn108(self, compressed_bundle):
        _sec, _body, header = section_offsets(compressed_bundle)
        n = header["n_states"]
        assert n >= 2
        blob = patch_parent(compressed_bundle, 0, 1)
        blob = patch_parent(blob, 1, 0)
        report = analyze_bundle(blob)
        descriptions = [f.message for f in report if f.code == "BN108"]
        assert any("cycle" in d for d in descriptions)
        assert report.has_errors

    def test_depth_claim_mismatch_is_bn108_warning(self, compressed_bundle):
        _sec, _body, header = section_offsets(compressed_bundle)
        depth = header["max_depth"]
        if depth < 2:
            pytest.skip("forest too shallow to understate the depth claim")
        old = f'"max_depth":{depth}'.encode()
        new = f'"max_depth":{depth - 1}'.encode()
        assert old in compressed_bundle
        blob = compressed_bundle.replace(old, new, 1)
        report = analyze_bundle(blob)
        warnings = [f for f in report if f.code == "BN108"]
        assert warnings
        assert all(f.severity == "warning" for f in warnings)

    def test_truncated_compressed_bundle_is_framing_finding(self, compressed_bundle):
        report = analyze_bundle(compressed_bundle[:-30])
        assert report.has_errors  # BN101: bundle framing, before the section
        assert {f.code for f in report} <= {"BN101", "BN107"}

    def test_prover_accepts_compressed_loads(self, compressed_bundle):
        # The equivalence prover runs over both decode shapes of a
        # compressed load: the flattened DFA and the ChainDFA proxy rows.
        from repro.analyze import analyze_engine_equivalence
        from repro.core.serialize import loads_mfa
        from repro.regex import parse_many

        patterns = parse_many(RULES)
        for mode in ("flatten", "chain"):
            engine = loads_mfa(compressed_bundle, decode=mode)
            report = analyze_engine_equivalence(engine, patterns)
            assert not report.has_errors, (mode, report.describe())

    def test_no_corruption_crashes(self, compressed_bundle):
        # Sweep single-byte corruptions across the compressed section; every
        # one must yield a report, never an exception.
        sec, _body, _header = section_offsets(compressed_bundle)
        for offset in range(sec, len(compressed_bundle), 997):
            buf = bytearray(compressed_bundle)
            buf[offset] ^= 0xFF
            analyze_bundle(bytes(buf))
