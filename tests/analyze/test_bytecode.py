"""Unit coverage of the filter-bytecode verifier (FB* findings)."""

from repro.analyze import analyze_program, dead_bits, strip_dead_bits
from repro.analyze.bytecode import RawAction, RawProgram
from repro.core import split_patterns
from repro.core.filters import NONE, FilterAction, FilterProgram
from repro.regex import parse


def raw(actions: dict[int, RawAction], width: int = 4, n_registers: int = 0,
        final_ids=frozenset({1})) -> RawProgram:
    return RawProgram(actions=actions, width=width, n_registers=n_registers,
                      final_ids=frozenset(final_ids))


def codes(report):
    return [f.code for f in report.findings]


class TestRealPrograms:
    def test_dot_star_split_program_is_clean(self):
        split = split_patterns([parse(".*alpha.*omega", match_id=1)])
        assert codes(analyze_program(split.program)) == []

    def test_chained_split_program_is_clean(self):
        split = split_patterns([parse(".*aaa.*bbb.*ccc", match_id=1)])
        assert codes(analyze_program(split.program)) == []

    def test_counted_split_program_is_clean(self):
        split = split_patterns([parse(".*head.{3,9}tail", match_id=1)])
        assert codes(analyze_program(split.program)) == []


class TestStructure:
    def test_fb101_bit_out_of_range(self):
        program = raw({2: RawAction(set=9)}, width=4)
        assert "FB101" in codes(analyze_program(program))

    def test_fb102_register_out_of_range(self):
        program = raw({2: RawAction(record=3)}, n_registers=1)
        assert "FB102" in codes(analyze_program(program))

    def test_fb103_set_equals_clear(self):
        program = raw({2: RawAction(set=1, clear=1)})
        assert "FB103" in codes(analyze_program(program))

    def test_fb104_malformed_window(self):
        program = raw({2: RawAction(distance=(0, 9, 3))}, n_registers=1)
        assert "FB104" in codes(analyze_program(program))

    def test_fb105_report_outside_final_set(self):
        program = raw({2: RawAction(report=42)}, final_ids={1})
        assert "FB105" in codes(analyze_program(program))


class TestLiveness:
    def test_fb110_dead_bit_is_warning_not_error(self):
        program = FilterProgram(
            actions={2: FilterAction(set=0), 1: FilterAction(report=1)},
            width=1, final_ids=frozenset({1}),
        )
        report = analyze_program(program)
        assert "FB110" in codes(report)
        assert not report.has_errors

    def test_fb111_tested_never_set(self):
        program = raw({2: RawAction(test=0, report=1)}, width=1)
        assert "FB111" in codes(analyze_program(program))

    def test_fb114_distance_tested_never_recorded(self):
        program = raw({2: RawAction(distance=(0, 1, 5), report=1)}, n_registers=1)
        assert "FB114" in codes(analyze_program(program))


class TestGuardChains:
    def test_fb120_report_behind_unsatisfiable_guard(self):
        # Nothing sets bit 0, so the chain into the report never fires.
        program = raw(
            {2: RawAction(test=0, set=1), 3: RawAction(test=1, report=1)},
            width=2,
        )
        found = codes(analyze_program(program))
        assert "FB120" in found
        assert "FB121" in found  # bit 1's only setter is itself unsatisfiable

    def test_fb121_guard_cycle(self):
        program = raw(
            {2: RawAction(test=0, set=1), 3: RawAction(test=1, set=0)},
            width=2,
        )
        assert "FB121" in codes(analyze_program(program))

    def test_fb122_final_id_never_confirmable(self):
        program = raw({1: RawAction(test=0, report=1)}, width=1, final_ids={1})
        assert "FB122" in codes(analyze_program(program))

    def test_satisfiable_chain_is_clean(self):
        program = raw(
            {2: RawAction(set=0), 3: RawAction(test=0, set=1),
             1: RawAction(test=1, report=1)},
            width=2,
        )
        assert codes(analyze_program(program)) == []


class TestDeadBits:
    def test_dead_bits_found_and_stripped(self):
        program = FilterProgram(
            actions={
                2: FilterAction(set=0),                # live: tested below
                3: FilterAction(test=0, report=1),
                4: FilterAction(set=1),                # dead: never tested
            },
            width=2, final_ids=frozenset({1}),
        )
        assert dead_bits(program) == {1}
        stripped = strip_dead_bits(program)
        assert stripped.actions[4].set == NONE
        assert stripped.actions[2].set == 0
        assert dead_bits(stripped) == set()

    def test_strip_is_identity_on_clean_programs(self):
        split = split_patterns([parse(".*one.*two", match_id=1)])
        assert strip_dead_bits(split.program) is split.program
