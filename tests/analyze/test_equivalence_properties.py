"""Property tests for the equivalence prover (hypothesis).

Both directions of the prover's verdict, over randomly generated rule
sets on the oracle suite's deliberately tiny alphabet (segments overlap
often, so every splitter safety condition and register window shape gets
exercised):

* soundness of *equivalent*: any decomposable rule set that compiles
  proves fully equivalent — the prover never invents a counterexample
  for a correct artifact;
* soundness of *inequivalent*: a random, structurally valid single-field
  bytecode mutation either leaves the semantics untouched (the prover
  says equivalent) or yields a counterexample the scalar MFA and the
  reference NFA genuinely disagree on when replayed through both.
"""

from dataclasses import replace

from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analyze import prove_mfa
from repro.automata.nfa import build_nfa
from repro.core.filters import NONE, FilterProgram
from repro.core.mfa import MFA, build_mfa
from repro.regex import parse_many

# Same strategy shape as tests/core/test_mfa_oracle.py: tiny alphabet,
# separators spanning dot-star, negated classes and counted gaps.
_words = st.text(alphabet="abc", min_size=1, max_size=4)
_separators = st.sampled_from(
    [".*", "[^x]*", "[^\\n]*", ".{1,4}", ".{0,2}", ".{3}", ".+", ".{2,}"]
)


@st.composite
def decomposable_rule(draw):
    n_segments = draw(st.integers(2, 4))
    parts = [draw(_words)]
    for _ in range(n_segments - 1):
        parts.append(draw(_separators))
        parts.append(draw(_words))
    prefix = draw(st.sampled_from(["", ".*", "^"]))
    return prefix + "".join(parts)


def _build(rules):
    """Parse and compile, skipping rule sets the splitter refuses."""
    patterns = parse_many(rules)
    try:
        return patterns, build_mfa(patterns)
    except Exception:
        assume(False)
        raise AssertionError("unreachable")


@given(st.lists(decomposable_rule(), min_size=1, max_size=3))
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
def test_compiling_rule_sets_prove_equivalent(rules):
    patterns, mfa = _build(rules)
    # The claim is "decomposable sets prove *fully*", not "within the
    # default budget": hypothesis can draw counted-gap sets whose product
    # legitimately tops 50k states (e.g. three rules mixing .{1,4} and
    # .{0,2} need ~55k), so give the walk headroom rather than flaking.
    result = prove_mfa(mfa, patterns, state_budget=200_000)
    assert result.equivalent and not result.bounded, (rules, result)
    assert result.counterexample is None


def _valid_mutations(prog):
    """Every structurally valid single-field rewrite of one action.

    Validity means the mutated program still passes ``FilterAction``'s
    own invariants and only references existing bits / final ids — the
    mutation space a corrupted-but-loadable artifact lives in.
    """
    options = []
    for mid in sorted(prog.actions):
        action = prog.actions[mid]
        if action.report != NONE:
            for target in sorted(prog.final_ids):
                if target != action.report:
                    options.append(("report", mid, target))
        if action.test != NONE or action.distance is not None:
            options.append(("drop-guard", mid, None))
        if action.set != NONE:
            for bit in range(prog.width):
                if bit != action.set and bit != action.clear:
                    options.append(("set", mid, bit))
    return options


@given(st.lists(decomposable_rule(), min_size=1, max_size=3), st.data())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.filter_too_much, HealthCheck.too_slow],
)
def test_random_mutation_counterexamples_replay_confirm(rules, data):
    patterns, mfa = _build(rules)
    prog = mfa.program
    options = _valid_mutations(prog)
    assume(options)
    kind, mid, arg = data.draw(st.sampled_from(options), label="mutation")
    action = prog.actions[mid]
    if kind == "report":
        mutated = replace(action, report=arg)
    elif kind == "drop-guard":
        mutated = replace(action, test=NONE, distance=None)
    else:
        mutated = replace(action, set=arg)
    actions = dict(prog.actions)
    actions[mid] = mutated
    bad = MFA(
        mfa.dfa, FilterProgram(actions, prog.width, prog.n_registers, prog.final_ids)
    )

    result = prove_mfa(bad, patterns)
    assume(not result.bounded)
    if result.equivalent:
        # A semantically neutral mutation (dead bit, unreachable guard) —
        # the prover's claim is checked by the other property direction.
        return
    cx = result.counterexample
    assert cx is not None
    assert result.replay_confirmed is True, (rules, kind, result)
    reference = build_nfa(patterns)
    got = {(e.pos, e.match_id) for e in bad.run(cx)}
    want = {(e.pos, e.match_id) for e in reference.run(cx)}
    assert got != want, (rules, kind, cx)
