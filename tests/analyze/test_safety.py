"""The decomposition-safety auditor re-proves the splitter's decisions.

The auditor shares no code path with the splitter's own safety logic, so
these tests doctor recorded :class:`Decomposition` provenance to simulate
splitter bugs and assert the independent re-check catches each one.
"""

import dataclasses

from repro.analyze import audit_split
from repro.analyze.safety import audit_decomposition
from repro.analyze.report import AnalysisReport
from repro.core import split_patterns
from repro.regex import parse


def split_of(source: str):
    return split_patterns([parse(source, match_id=1)])


def audit_doctored(split, **changes):
    """Audit the split with its first decomposition record doctored."""
    doctored = dataclasses.replace(split.decompositions[0], **changes)
    out = AnalysisReport()
    audit_decomposition(doctored, split, out)
    return [f.code for f in out.findings]


class TestCleanSplits:
    def test_dot_star_split_audits_clean(self):
        assert len(audit_split(split_of(".*alpha.*omega"))) == 0

    def test_almost_dot_star_split_audits_clean(self):
        split = split_of(".*user[^\\n]*pass")
        assert [d.kind for d in split.decompositions] == ["almost"]
        assert len(audit_split(split)) == 0

    def test_counted_split_audits_clean(self):
        assert len(audit_split(split_of(".*head.{3,9}tail"))) == 0

    def test_chained_split_audits_clean(self):
        assert len(audit_split(split_of(".*aaa.*bbb.*ccc"))) == 0


class TestDoctoredDecompositions:
    def test_nullable_side_flagged(self):
        split = split_of(".*alpha.*omega")
        nullable = parse("x?", match_id=99).root
        assert "DS101" in audit_doctored(split, b_node=nullable)

    def test_overlapping_sides_flagged(self):
        split = split_of(".*alpha.*omega")
        # A suffix of .*ab ("b", "ab") is a prefix of B="ab..." — the
        # strengthened overlap test must refuse this pairing.
        overlapping = parse("phaX", match_id=99).root
        assert "DS102" in audit_doctored(split, b_node=overlapping)

    def test_wrong_bit_wiring_flagged(self):
        split = split_of(".*alpha.*omega")
        wrong_bit = split.decompositions[0].bit + 5
        assert "DS107" in audit_doctored(split, bit=wrong_bit)

    def test_x_class_intersecting_b_flagged(self):
        split = split_of(".*user[^\\n]*pass")
        from repro.regex.analysis import alphabet

        bad_class = alphabet(split.decompositions[0].b_node)
        assert "DS103" in audit_doctored(split, x_class=bad_class)

    def test_counted_window_overflow_flagged(self):
        split = split_of(".*head.{3,9}tail")
        assert "DS106" in audit_doctored(split, gap=(3, 400))

    def test_wrong_register_wiring_flagged(self):
        split = split_of(".*head.{3,9}tail")
        wrong = split.decompositions[0].register + 1
        assert "DS107" in audit_doctored(split, register=wrong)

    def test_unknown_kind_flagged(self):
        split = split_of(".*alpha.*omega")
        assert "DS100" in audit_doctored(split, kind="mystery")
