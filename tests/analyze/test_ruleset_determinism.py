"""Hash-seed determinism of cross-rule analysis witnesses.

An RS101/RS102 witness payload is the replayable proof a rule was safe
to prune — CI archives it and operators replay it against future builds.
The product-automaton walk, joint-alphabet representative choice, cluster
ordering, and finding order must not leak Python's per-process hash
randomization: two subprocesses under different ``PYTHONHASHSEED``
values must print exactly the same analysis, byte for byte.
"""

import subprocess
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]

_SCRIPT = r"""
import json

from repro.analyze import analyze_ruleset, plan_shards
from repro.bench.harness import patterns_for

patterns = list(patterns_for("R32"))
result = analyze_ruleset(patterns)
print(json.dumps([w.to_dict() for w in result.witnesses], sort_keys=True))
print(result.report.to_json())
print(json.dumps(result.to_dict()["pairs"], sort_keys=True))
print(json.dumps(plan_shards(patterns, 4).to_dict(), sort_keys=True))
"""


def _render(seed: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", _SCRIPT],
        capture_output=True,
        text=True,
        env={
            "PYTHONHASHSEED": seed,
            "PYTHONPATH": str(_REPO_ROOT / "src"),
            "PATH": "/usr/bin:/bin",
        },
        cwd=str(_REPO_ROOT),
        check=True,
    )
    return result.stdout


def test_ruleset_analysis_is_hash_seed_independent():
    rendered = _render("0")
    assert "payload_hex" in rendered and "RS101" in rendered
    assert rendered == _render("1")
