"""CLI contract of the lint/audit gates and the runtime-oracle verify."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import patterns_for
from repro.core import compile_mfa, dumps_mfa


@pytest.fixture(scope="module")
def bundle_bytes() -> bytes:
    return dumps_mfa(compile_mfa(patterns_for("C8")))


class TestLintCommand:
    def test_clean_ruleset_exits_zero(self, capsys):
        assert main(["lint", "C8"]) == 0
        out = capsys.readouterr().out
        assert "C8: 0 error(s)" in out

    def test_clean_bundle_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "c8.mfab"
        path.write_bytes(dumps_mfa(compile_mfa(patterns_for("C8"))))
        assert main(["lint", str(path)]) == 0

    def test_corrupt_bundle_exits_nonzero(self, tmp_path, capsys, bundle_bytes):
        blob = bytearray(bundle_bytes)
        blob[len(blob) // 2] ^= 0xFF  # one flipped bit in the table
        path = tmp_path / "corrupt.mfab"
        path.write_bytes(bytes(blob))
        assert main(["lint", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "no-such-thing"]) == 2

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "C8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["C8"]["ok"] is True
        assert "findings" in payload["C8"]

    def test_json_output_is_deterministic(self, capsys):
        main(["lint", "C8", "--json"])
        first = capsys.readouterr().out
        main(["lint", "C8", "--json"])
        assert capsys.readouterr().out == first


class TestLintFailOn:
    def test_default_threshold_tolerates_warnings(self, monkeypatch, capsys):
        from repro.analyze import AnalysisReport
        from repro.analyze.report import WARNING

        warned = AnalysisReport()
        warned.add("FB110", WARNING, "filter", "dead bit", "bit 3")
        monkeypatch.setattr(
            "repro.bench.cli._lint_one_set", lambda name: warned
        )
        assert main(["lint", "C8"]) == 0
        assert main(["lint", "C8", "--fail-on", "error"]) == 0

    def test_warning_threshold_gates_warnings(self, monkeypatch, capsys):
        from repro.analyze import AnalysisReport
        from repro.analyze.report import WARNING

        warned = AnalysisReport()
        warned.add("FB110", WARNING, "filter", "dead bit", "bit 3")
        monkeypatch.setattr(
            "repro.bench.cli._lint_one_set", lambda name: warned
        )
        assert main(["lint", "C8", "--fail-on", "warning"]) == 1
        assert main(["lint", "C8", "--fail-on", "warning", "--json"]) == 1

    def test_warning_threshold_passes_clean_report(self, monkeypatch, capsys):
        from repro.analyze import AnalysisReport

        monkeypatch.setattr(
            "repro.bench.cli._lint_one_set", lambda name: AnalysisReport()
        )
        assert main(["lint", "C8", "--fail-on", "warning"]) == 0

    def test_unknown_threshold_rejected(self):
        with pytest.raises(SystemExit):
            main(["lint", "C8", "--fail-on", "info"])


class TestAuditCommand:
    @pytest.fixture(scope="class")
    def audit_result(self):
        from repro.analyze import analyze_adversary

        mfa = compile_mfa(patterns_for("C8"), compress=4)
        return analyze_adversary(mfa, replay=False)

    def test_static_audit_exits_zero(self, monkeypatch, audit_result, capsys):
        monkeypatch.setattr(
            "repro.bench.cli._audit_one_set",
            lambda name, depth, replay: audit_result,
        )
        assert main(["audit", "C8", "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "witness chain-depth" in out
        assert "AV130" in out

    def test_json_output_carries_witness_corpus(
        self, monkeypatch, audit_result, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.cli._audit_one_set",
            lambda name, depth, replay: audit_result,
        )
        assert main(["audit", "C8", "--no-replay", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        kinds = {w["kind"] for w in payload["C8"]["witnesses"]}
        assert {"chain-depth", "cache-thrash", "prefilter-evasion"} <= kinds
        for witness in payload["C8"]["witnesses"]:
            assert bytes.fromhex(witness["payload_hex"])

    def test_out_writes_corpus_file(
        self, monkeypatch, audit_result, tmp_path, capsys
    ):
        monkeypatch.setattr(
            "repro.bench.cli._audit_one_set",
            lambda name, depth, replay: audit_result,
        )
        corpus = tmp_path / "witnesses.json"
        assert main(["audit", "C8", "--no-replay", "--out", str(corpus)]) == 0
        payload = json.loads(corpus.read_text())
        assert payload["C8"]["witnesses"]

    def test_error_findings_exit_one(self, monkeypatch, capsys):
        from repro.analyze import AnalysisReport
        from repro.analyze.adversary import AdversaryResult
        from repro.analyze.report import ERROR

        failed = AnalysisReport()
        failed.add("AV106", ERROR, "adversary", "stream diverged", "replay")
        monkeypatch.setattr(
            "repro.bench.cli._audit_one_set",
            lambda name, depth, replay: AdversaryResult(failed),
        )
        assert main(["audit", "C8"]) == 1
        assert "AV106" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["audit", "no-such-thing"]) == 2

    def test_missing_target_exits_two(self, capsys):
        assert main(["audit"]) == 2

    def test_bundle_target_is_audited(self, tmp_path, bundle_bytes, capsys):
        path = tmp_path / "c8.mfab"
        path.write_bytes(bundle_bytes)
        assert main(["audit", str(path), "--no-replay"]) == 0
        assert "AV130" in capsys.readouterr().out


class TestVerifyCommand:
    def test_verify_clean_set_exits_zero(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["verify", "C8"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "DIVERGED" not in out

    def test_verify_requires_set(self):
        with pytest.raises(SystemExit):
            main(["verify"])

    def test_verify_unknown_set(self):
        with pytest.raises(SystemExit):
            main(["verify", "nope"])
