"""CLI contract of the lint gate and the runtime-oracle verify command."""

import json

import pytest

from repro.bench.cli import main
from repro.bench.harness import patterns_for
from repro.core import compile_mfa, dumps_mfa


@pytest.fixture(scope="module")
def bundle_bytes() -> bytes:
    return dumps_mfa(compile_mfa(patterns_for("C8")))


class TestLintCommand:
    def test_clean_ruleset_exits_zero(self, capsys):
        assert main(["lint", "C8"]) == 0
        out = capsys.readouterr().out
        assert "C8: 0 error(s)" in out

    def test_clean_bundle_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "c8.mfab"
        path.write_bytes(dumps_mfa(compile_mfa(patterns_for("C8"))))
        assert main(["lint", str(path)]) == 0

    def test_corrupt_bundle_exits_nonzero(self, tmp_path, capsys, bundle_bytes):
        blob = bytearray(bundle_bytes)
        blob[len(blob) // 2] ^= 0xFF  # one flipped bit in the table
        path = tmp_path / "corrupt.mfab"
        path.write_bytes(bytes(blob))
        assert main(["lint", str(path)]) == 1
        assert "ERROR" in capsys.readouterr().out

    def test_unknown_target_exits_two(self, capsys):
        assert main(["lint", "no-such-thing"]) == 2

    def test_missing_target_exits_two(self, capsys):
        assert main(["lint"]) == 2

    def test_json_output_is_machine_readable(self, capsys):
        assert main(["lint", "C8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["C8"]["ok"] is True
        assert "findings" in payload["C8"]

    def test_json_output_is_deterministic(self, capsys):
        main(["lint", "C8", "--json"])
        first = capsys.readouterr().out
        main(["lint", "C8", "--json"])
        assert capsys.readouterr().out == first


class TestVerifyCommand:
    def test_verify_clean_set_exits_zero(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_RESULTS_DIR", str(tmp_path))
        assert main(["verify", "C8"]) == 0
        out = capsys.readouterr().out
        assert "ok" in out and "DIVERGED" not in out

    def test_verify_requires_set(self):
        with pytest.raises(SystemExit):
            main(["verify"])

    def test_verify_unknown_set(self):
        with pytest.raises(SystemExit):
            main(["verify", "nope"])
