"""The finding-code registry in the docs must cover every emitted code.

``docs/static-analysis.md`` promises "the full registry" — operators
triage CI gate failures by looking codes up there.  A code emitted by
any analyzer under ``src/repro/analyze`` that has no registry row is
documentation drift, and this test is the tripwire: it fails naming the
undocumented codes the moment one lands.
"""

import re
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parents[2]
_ANALYZE_DIR = _REPO_ROOT / "src" / "repro" / "analyze"
_REGISTRY = _REPO_ROOT / "docs" / "static-analysis.md"

# Codes appear in source as string literals ("AV101") — pulling them
# from quotes rather than AnalysisReport.add() call sites also catches
# codes routed through helpers or emitted by the CLI wrappers.
_CODE_IN_SOURCE = re.compile(r"""["']((?:BN|FB|AU|DS|EX|EQ|AV|RS)\d{3})["']""")


def _emitted_codes() -> set[str]:
    codes: set[str] = set()
    for path in sorted(_ANALYZE_DIR.glob("*.py")):
        codes.update(_CODE_IN_SOURCE.findall(path.read_text()))
    return codes


def test_analyzer_sources_emit_codes():
    codes = _emitted_codes()
    assert len(codes) > 20  # the suite emits dozens; zero means the regex broke
    assert "AV101" in codes and "EQ101" in codes and "RS101" in codes


def test_every_emitted_code_has_a_registry_row():
    registry = _REGISTRY.read_text()
    documented = {
        match.group(1)
        for match in re.finditer(
            r"^\|\s*((?:BN|FB|AU|DS|EX|EQ|AV|RS)\d{3})\s*\|", registry, re.MULTILINE
        )
    }
    undocumented = sorted(_emitted_codes() - documented)
    assert not undocumented, (
        f"finding codes emitted under src/repro/analyze but missing from "
        f"docs/static-analysis.md: {undocumented}"
    )
