"""Report determinism: same findings, same bytes, any insertion order."""

import json

import pytest

from repro.analyze import ERROR, INFO, WARNING, AnalysisReport, Finding


def sample_findings():
    return [
        Finding("FB110", WARNING, "filter", "dead bit 3"),
        Finding("AU102", ERROR, "dfa", "bad target", "state 7"),
        Finding("EX101", INFO, "ruleset", "census"),
        Finding("AU102", ERROR, "dfa", "bad target", "state 2"),
        Finding("BN101", ERROR, "bundle", "bad magic"),
    ]


class TestOrdering:
    def test_findings_sort_by_severity_then_code_then_location(self):
        report = AnalysisReport(sample_findings())
        ordered = report.findings
        assert [f.severity for f in ordered] == [ERROR, ERROR, ERROR, WARNING, INFO]
        assert [f.code for f in ordered[:3]] == ["AU102", "AU102", "BN101"]
        assert [f.location for f in ordered[:2]] == ["state 2", "state 7"]

    def test_insertion_order_never_leaks_into_json(self):
        findings = sample_findings()
        forward = AnalysisReport(findings).to_json()
        backward = AnalysisReport(reversed(findings)).to_json()
        assert forward == backward

    def test_json_is_fully_key_sorted(self):
        blob = AnalysisReport(sample_findings()).to_json()
        parsed = json.loads(blob)
        assert json.dumps(parsed, sort_keys=True) == blob


class TestGating:
    def test_has_errors_and_counts(self):
        report = AnalysisReport(sample_findings())
        assert report.has_errors
        assert report.counts() == {"error": 3, "warning": 1, "info": 1}
        assert len(report.errors) == 3
        assert report.to_dict()["ok"] is False

    def test_warnings_alone_do_not_gate(self):
        report = AnalysisReport([Finding("FB110", WARNING, "filter", "dead bit")])
        assert not report.has_errors
        assert report.to_dict()["ok"] is True

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            Finding("XX1", "fatal", "x", "boom")


class TestComposition:
    def test_extend_merges_and_resorts(self):
        first = AnalysisReport([Finding("FB110", WARNING, "filter", "dead bit")])
        second = AnalysisReport([Finding("AU102", ERROR, "dfa", "bad target")])
        first.extend(second)
        assert [f.code for f in first] == ["AU102", "FB110"]

    def test_relocated_prefixes_locations(self):
        report = AnalysisReport(
            [Finding("AU102", ERROR, "dfa", "bad", "state 3"),
             Finding("AU112", WARNING, "dfa", "no decisions")]
        )
        moved = report.relocated("shard 2")
        assert [f.location for f in moved] == ["shard 2: state 3", "shard 2"]
