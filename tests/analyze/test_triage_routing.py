"""Triage-driven budget routing in the resilient compiler.

The explosion triager predicts post-decomposition state counts; the
fallback chain uses the prediction to skip scheduled budgets that cannot
possibly fit, instead of burning a full subset construction against each.
The last scheduled budget is always tried for real.
"""

from repro.analyze import RISK_HIGH, RISK_LOW, RISK_MEDIUM, triage_patterns
from repro.bench.harness import patterns_for
from repro.robust import CompileLimits, compile_resilient

# Decomposable: every separator splits off, so the component DFA is small
# but the *predicted* size still exceeds tiny budgets.
DECOMPOSABLE = [f".*w{a}{b}x.*y{b}{a}z" for a in "abcd" for b in "efgh"]


class TestTriagePredictions:
    def test_feasible_set_is_low_risk(self):
        triage = triage_patterns(patterns_for("C8"), state_budget=150_000)
        assert triage.risk == RISK_LOW
        assert triage.dfa_feasible and triage.mfa_feasible

    def test_b217p_dfa_infeasible_mfa_feasible(self):
        # The paper's headline set: "could not be constructed" as a DFA,
        # ships as an MFA.  The triage must predict both halves.
        triage = triage_patterns(patterns_for("B217p"), state_budget=150_000)
        assert triage.risk == RISK_MEDIUM
        assert not triage.dfa_feasible
        assert triage.mfa_feasible

    def test_undecomposable_set_is_high_risk(self):
        # Overlapping sides refuse the split, so the explosion survives
        # decomposition and even the MFA prediction blows the budget.
        from repro.regex import parse

        rules = [f".*{c}a{c}.*a{c}a" for c in "bcdefgh"]
        patterns = [parse(r, match_id=i + 1) for i, r in enumerate(rules)]
        triage = triage_patterns(patterns, state_budget=100)
        assert triage.risk == RISK_HIGH
        assert any(c.residual_factor > 1 for c in triage.census)

    def test_census_counts_separators(self):
        from repro.regex import parse

        triage = triage_patterns([parse(".*aaa.*bbb.{2,5}ccc", match_id=1)])
        (census,) = triage.census
        assert census.n_dot_star == 2
        assert census.n_counted == 1
        assert census.raw_factor > 1

    def test_anchored_patterns_do_not_interact(self):
        from repro.regex import parse

        triage = triage_patterns(
            [parse("^GET /index", match_id=1), parse("^HEAD /x", match_id=2)]
        )
        assert triage.risk == RISK_LOW
        assert all(c.raw_factor == 1 for c in triage.census)


class TestBudgetRouting:
    def test_hopeless_budget_skipped_not_burned(self):
        limits = CompileLimits(budget_schedule=(50, 50_000))
        result = compile_resilient(DECOMPOSABLE, limits=limits)
        assert result.ok and result.engine_name == "mfa"
        skipped = [a for a in result.report.attempts if a.skipped]
        assert [a.state_budget for a in skipped] == [50]
        assert skipped[0].engine == "mfa"
        # A skip is not a burned budget.
        assert result.report.budgets_consumed == []

    def test_last_budget_always_tried_for_real(self):
        # Even when the triage says 50 states cannot fit, a single-entry
        # schedule must be attempted: predictions are heuristics.
        limits = CompileLimits(budget_schedule=(50,), fallback_chain=("mfa", "nfa"))
        result = compile_resilient(DECOMPOSABLE, limits=limits)
        mfa_attempts = [a for a in result.report.attempts if a.engine == "mfa"]
        assert len(mfa_attempts) == 1
        assert not mfa_attempts[0].skipped

    def test_analyze_off_disables_triage_and_audit(self):
        limits = CompileLimits(budget_schedule=(50, 50_000), analyze=False)
        result = compile_resilient(DECOMPOSABLE, limits=limits)
        assert result.report.triage is None
        assert result.report.audit is None
        assert not any(a.skipped for a in result.report.attempts)

    def test_triage_and_audit_land_on_report(self):
        result = compile_resilient(DECOMPOSABLE)
        report = result.report
        assert report.triage is not None
        assert report.audit is not None
        assert not report.audit.has_errors
        assert "triage" in report.phases and "audit" in report.phases

    def test_report_dict_is_deterministic(self):
        result = compile_resilient(DECOMPOSABLE)
        data = result.report.to_dict()
        assert list(data["phases"]) == sorted(data["phases"])
        assert data["triage"]["risk"] in ("low", "medium", "high")
        assert data["audit"]["ok"] is True

    def test_describe_mentions_skip_and_audit(self):
        limits = CompileLimits(budget_schedule=(50, 50_000))
        result = compile_resilient(DECOMPOSABLE, limits=limits)
        text = "\n".join(result.report.describe())
        assert "skipped: triage predicts" in text
        assert "audit:" in text
