"""The equivalence prover: full proofs, bounded mode, counterexamples.

The prover is the static half of the paper's correctness theorem — these
tests check both directions: every shipped artifact *proves* equivalent
(not merely samples equivalent), and every seeded semantic defect yields
a shortest distinguishing input that the real engines genuinely disagree
on when replayed.
"""

from dataclasses import replace

import pytest

from repro.analyze import (
    DEFAULT_PRODUCT_BUDGET,
    AnalysisReport,
    analyze_engine_equivalence,
    analyze_equivalence,
    prove_mfa,
    prove_patterns,
)
from repro.automata.nfa import build_nfa
from repro.bench.harness import patterns_for
from repro.core import ProofError, SplitterOptions, compile_mfa
from repro.core.filters import NONE, FilterProgram
from repro.core.mfa import MFA, build_mfa
from repro.regex import parse_many

RESCUE = SplitterOptions(offset_overlap_rescue=True)


def mutate_report(mfa: MFA) -> MFA:
    """Retarget the first reporting action to a different final id."""
    prog = mfa.program
    actions = dict(prog.actions)
    for mid in sorted(actions):
        action = actions[mid]
        if action.report != NONE:
            other = next(i for i in sorted(prog.final_ids) if i != action.report)
            actions[mid] = replace(action, report=other)
            break
    else:
        raise AssertionError("no reporting action to mutate")
    return MFA(
        mfa.dfa, FilterProgram(actions, prog.width, prog.n_registers, prog.final_ids)
    )


class TestFullProofs:
    def test_c8_whole_set_proves_equivalent(self):
        patterns = patterns_for("C8")
        result = prove_mfa(build_mfa(patterns), patterns)
        assert result.equivalent and not result.bounded
        assert result.counterexample is None
        assert result.states > 0 and result.verified_depth > 0

    def test_every_tracked_set_proves_per_pattern(self):
        # The acceptance bar of the prover issue: every pattern of every
        # tracked set gets a full (non-bounded) proof at the default
        # budget — including B217p, whose *combined* un-decomposed
        # automaton is exactly the explosion the paper is about.
        for set_name in ("C8", "C7p", "C10", "S24", "S31p", "S34", "B217p"):
            report = prove_patterns(patterns_for(set_name))
            codes = {f.code for f in report}
            assert codes == {"EQ130"}, (
                f"{set_name}: expected only proved-equivalent findings, "
                f"got {[f.describe() for f in report if f.code != 'EQ130']}"
            )

    def test_register_rescue_patterns_prove_equivalent(self):
        # Offset-register artifacts walk the register-quotient path: the
        # product stays finite because only the exact low window and the
        # oldest above-window bit are observable.
        for source in (".*abc.*bcd", ".*b.*abc"):
            patterns = parse_many([source])
            mfa = build_mfa(patterns, RESCUE)
            assert mfa.program.n_registers >= 1
            result = prove_mfa(mfa, patterns)
            assert result.equivalent and not result.bounded, (source, result)

    def test_quotient_folds_unobservable_register_state(self):
        # Hypothesis-found blowups, pinned: a bounded-only register's
        # above-window bits and sticky bit are unobservable and must be
        # dropped, and an open-tested register's oldest bit folds into
        # sticky once it reaches every open lo.  Without those folds both
        # sets exhaust a 50k budget; with them the product is tiny.
        for rules in (["a.{1,4}aaa"], ["cc.*a.*a.{2,}a", "a.*a.{3}cbbb.*a"]):
            patterns = parse_many(rules)
            result = prove_mfa(build_mfa(patterns), patterns)
            assert result.equivalent and not result.bounded, (rules, result)
            assert result.states < 10_000

    def test_counted_gap_patterns_prove_equivalent(self):
        for source in (".*abc.{2,5}def", ".*foo.{3,}bar"):
            patterns = parse_many([source])
            mfa = build_mfa(patterns)
            assert mfa.program.n_registers >= 1
            result = prove_mfa(mfa, patterns)
            assert result.equivalent and not result.bounded, (source, result)


class TestCounterexamples:
    def test_divergence_yields_shortest_replay_confirmed_input(self):
        patterns = patterns_for("C8")
        bad = mutate_report(build_mfa(patterns))
        result = prove_mfa(bad, patterns)
        assert not result.equivalent and not result.bounded
        assert result.kind == "mid-stream"
        assert result.replay_confirmed is True
        data = result.counterexample
        assert data is not None and len(data) >= 1
        # Replay through the real engines: the streams must disagree.
        reference = build_nfa(patterns)
        got = {(e.pos, e.match_id) for e in bad.run(data)}
        want = {(e.pos, e.match_id) for e in reference.run(data)}
        assert got != want
        # Shortest: every proper prefix must still agree.
        for cut in range(len(data)):
            prefix = data[:cut]
            got_p = {(e.pos, e.match_id) for e in bad.run(prefix)}
            want_p = {(e.pos, e.match_id) for e in reference.run(prefix)}
            assert got_p == want_p, f"prefix {prefix!r} already diverges"

    def test_divergence_emits_eq101_with_input_and_id_sets(self):
        patterns = patterns_for("C8")
        report = analyze_equivalence(mutate_report(build_mfa(patterns)), patterns)
        assert report.has_errors
        (finding,) = report.errors
        assert finding.code == "EQ101"
        assert "shortest input" in finding.message
        assert "replay-confirmed" in finding.message

    def test_proved_set_emits_eq130_census(self):
        patterns = patterns_for("C8")
        report = analyze_equivalence(build_mfa(patterns), patterns)
        assert not report.has_errors
        (finding,) = report.findings
        assert finding.code == "EQ130"
        assert "proved equivalent" in finding.message


class TestBoundedMode:
    def test_budget_exhaustion_is_reported_never_silent(self):
        patterns = patterns_for("C8")
        result = prove_mfa(build_mfa(patterns), patterns, state_budget=50)
        assert result.bounded and not result.equivalent
        assert result.states == 50
        assert result.counterexample is None
        assert 0 < result.verified_depth

        report = AnalysisReport()
        analyze_equivalence(
            build_mfa(patterns), patterns, report, state_budget=50
        )
        assert not report.has_errors
        (finding,) = report.warnings
        assert finding.code == "EQ110"
        assert "EQ-BOUNDED" in finding.message

    def test_bounded_depth_is_honest(self):
        # Everything at or below the verified depth really was checked:
        # a mutant whose divergence needs a longer input than the
        # verified depth must NOT be reported equivalent, only bounded.
        patterns = patterns_for("C8")
        bad = mutate_report(build_mfa(patterns))
        full = prove_mfa(bad, patterns)
        assert full.counterexample is not None
        tiny = prove_mfa(bad, patterns, state_budget=10)
        if tiny.counterexample is None:
            assert tiny.bounded
            assert tiny.verified_depth < len(full.counterexample)


class TestDrivers:
    def test_parallel_proofs_match_serial(self):
        patterns = patterns_for("S24")
        serial = prove_patterns(patterns, jobs=1)
        parallel = prove_patterns(patterns, jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_sharded_engine_proves_per_shard(self):
        patterns = patterns_for("S24")
        engine = compile_mfa(patterns, shards=3, jobs=1)
        report = analyze_engine_equivalence(engine, patterns)
        assert not report.has_errors
        locations = {f.location for f in report}
        assert any(loc.startswith("shard ") for loc in locations)

    def test_shard_attribution_mismatch_is_an_error(self):
        patterns = patterns_for("S24")
        engine = compile_mfa(patterns, shards=2, jobs=1)
        # Hand the prover the wrong pattern list: ids cannot be matched
        # to the shard programs, which must surface, not pass silently.
        report = analyze_engine_equivalence(engine, patterns[:3])
        assert report.has_errors
        assert any(f.code == "EQ100" for f in report.errors)

    def test_non_mfa_engine_is_out_of_scope_info(self):
        patterns = parse_many(["abc"])
        reference = build_nfa(patterns)
        report = analyze_engine_equivalence(reference, patterns)
        assert not report.has_errors
        (finding,) = report.findings
        assert finding.code == "EQ120"


class TestCompileWiring:
    def test_compile_mfa_prove_true_passes_on_clean_set(self):
        engine = compile_mfa(patterns_for("C8"), prove=True)
        assert engine.run(b"MAIL FROM:RCPT TO:")

    def test_compile_mfa_prove_true_raises_on_divergence(self, monkeypatch):
        import repro.analyze as analyze_mod

        def fake_prove(engine, patterns, report=None, **kwargs):
            failing = AnalysisReport()
            failing.add("EQ101", "error", "equivalence", "seeded divergence")
            return failing

        monkeypatch.setattr(analyze_mod, "analyze_engine_equivalence", fake_prove)
        with pytest.raises(ProofError) as excinfo:
            compile_mfa(patterns_for("C8"), prove=True)
        assert "EQ101" in str(excinfo.value)
        assert excinfo.value.report.has_errors

    def test_resilient_compiler_records_proof(self):
        from repro.robust import ResilientCompiler
        from repro.robust.limits import CompileLimits

        result = ResilientCompiler(CompileLimits(prove=True)).compile(
            patterns_for("C8")
        )
        proof = result.report.proof
        assert proof is not None and not proof.has_errors
        assert {f.code for f in proof} == {"EQ130"}
        assert "prove" in result.report.phases
        assert result.report.to_dict()["proof"] is not None

    def test_resilient_compiler_skips_proof_by_default(self):
        from repro.robust import ResilientCompiler

        result = ResilientCompiler().compile(patterns_for("C8"))
        assert result.report.proof is None

    def test_prove_limit_from_env(self):
        from repro.robust.limits import compile_limits_from_env

        assert compile_limits_from_env({"REPRO_COMPILE_PROVE": "1"}).prove
        assert not compile_limits_from_env({}).prove
        assert not compile_limits_from_env({"REPRO_COMPILE_PROVE": "0"}).prove


class TestProveCli:
    def test_prove_set_exits_zero(self, capsys):
        from repro.bench.cli import main

        assert main(["prove", "C8"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out

    def test_prove_bundle_requires_patterns(self, tmp_path, capsys):
        from repro.bench.cli import main
        from repro.core import dumps_mfa

        bundle = tmp_path / "c8.mfab"
        bundle.write_bytes(dumps_mfa(compile_mfa(patterns_for("C8"))))
        assert main(["prove", str(bundle)]) == 1
        assert main(["prove", str(bundle), "--patterns", "C8"]) == 0
        out = capsys.readouterr().out
        assert "proved" in out

    def test_prove_json_is_machine_readable(self, capsys):
        import json

        from repro.bench.cli import main

        assert main(["prove", "C8", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["C8"]["counts"]["error"] == 0
