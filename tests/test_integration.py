"""End-to-end integration: rules -> pcap -> flows -> all engines agree."""

import pytest

from repro import (
    build_dfa,
    build_hfa,
    build_nfa,
    build_xfa,
    compile_mfa,
)
from repro.regex import parse_many
from repro.traffic import (
    FlowAssembler,
    TraceProfile,
    build_corpus,
    dispatch_flows,
    generate_payload,
    read_pcap,
)

RULES = [
    ".*malware00.*beacon11",
    ".*Cookie:[^\\n]*session=deadbeef",
    ".*jmp!.{2,8}nop!0",
    "^GET /evil",
    ".*droppr",
]

PROFILE = TraceProfile("it", 24_000, (0.5, 0.2, 0.15, 0.15), 0.4)


@pytest.fixture(scope="module")
def patterns():
    return parse_many(RULES)


@pytest.fixture(scope="module")
def flows(tmp_path_factory, patterns):
    directory = tmp_path_factory.mktemp("corpus")
    paths = build_corpus(directory, patterns, profiles=(PROFILE,), seed=99)
    with open(paths["it"], "rb") as stream:
        packets = list(read_pcap(stream))
    assembler = FlowAssembler()
    assembler.add_all(packets)
    return [flow for flow in assembler.flows() if flow.payload]


def test_full_pipeline_engines_agree(patterns, flows):
    """Every engine produces the identical alert stream over a pcap corpus
    that traversed synthesis, framing, file I/O and reassembly."""
    assert flows, "corpus produced no flows"
    mfa = compile_mfa(list(patterns))
    nfa = build_nfa(patterns)
    dfa = build_dfa(patterns)
    hfa = build_hfa(patterns)
    xfa = build_xfa(patterns)
    total_matches = 0
    for flow in flows:
        expected = sorted(dfa.run(flow.payload))
        total_matches += len(expected)
        assert sorted(mfa.run(flow.payload)) == expected
        assert sorted(nfa.run(flow.payload)) == expected
        assert sorted(hfa.run(flow.payload)) == expected
        assert sorted(xfa.run(flow.payload)) == expected
    assert total_matches > 0, "attack-dense corpus must trigger alerts"


def test_multiplexed_dispatch_matches_batch(patterns, flows):
    """Interleaving the flows' packets through per-flow contexts yields the
    same alerts as batch-matching each reassembled flow."""
    mfa = compile_mfa(list(patterns))
    from repro.traffic.flows import Packet

    packets = []
    offset = {}
    max_len = max(len(f.payload) for f in flows)
    for start in range(0, max_len, 700):
        for flow in flows:
            chunk = flow.payload[start : start + 700]
            if chunk:
                packets.append(Packet(key=flow.key, payload=chunk, seq=start))
    dispatched = sorted(
        ((m.key, m.event.pos, m.event.match_id) for m in dispatch_flows(mfa, packets)),
        key=repr,
    )
    expected = sorted(
        (
            (flow.key, event.pos, event.match_id)
            for flow in flows
            for event in mfa.run(flow.payload)
        ),
        key=repr,
    )
    assert dispatched == expected


def test_becchi_traffic_through_all_engines(patterns):
    """Adversarial synthetic traffic: unanimous verdicts at every difficulty."""
    nfa = build_nfa(patterns)
    dfa = build_dfa(patterns)
    mfa = compile_mfa(list(patterns))
    for p_match in (None, 0.55, 0.95):
        payload = generate_payload(nfa, 4000, p_match, seed=13)
        expected = sorted(dfa.run(payload))
        assert sorted(mfa.run(payload)) == expected
        assert sorted(nfa.run(payload)) == expected
