"""The artifact cache must be transparent: hit or miss, same engine.

Covers round-trip match equality through store/load, key sensitivity to
every compile input, corruption tolerance (a bad entry is a miss that is
also removed), atomicity of stores, and the global kill switch.
"""

import pytest

from repro.core import compile_mfa
from repro.core.splitter import SplitterOptions
from repro.fastpath import ArtifactCache, compile_mfa_cached
from repro.fastpath.cache import cache_enabled, cache_key, default_cache_dir
from repro.regex.parser import ParserOptions

RULES = [".*alpha.*omega", ".*abc[^\\n]*xyz", "^HELO "]
PAYLOAD = b"HELO alpha abc 12 xyz omega alpha\nomega"


@pytest.fixture
def cache(tmp_path):
    return ArtifactCache(tmp_path / "cache")


class TestRoundTrip:
    def test_miss_then_hit_same_matches(self, cache):
        built, hit = compile_mfa_cached(RULES, cache=cache)
        assert not hit
        loaded, hit = compile_mfa_cached(RULES, cache=cache)
        assert hit
        assert loaded.run(PAYLOAD) == built.run(PAYLOAD) == compile_mfa(RULES).run(PAYLOAD)
        assert (cache.hits, cache.misses) == (1, 1)

    def test_store_load_explicit(self, cache):
        mfa = compile_mfa(RULES)
        key = cache_key(RULES)
        path = cache.store(key, mfa)
        assert path is not None and path.exists() and path.suffix == ".mfab"
        assert cache.load(key).run(PAYLOAD) == mfa.run(PAYLOAD)
        # No stray tmp files left behind by the atomic write.
        assert list(path.parent.glob("*.tmp")) == []


class TestKey:
    def test_deterministic(self):
        assert cache_key(RULES) == cache_key(list(RULES))

    def test_sensitive_to_every_input(self):
        base = cache_key(RULES)
        assert cache_key(RULES[:-1]) != base
        assert cache_key(RULES, state_budget=7) != base
        assert cache_key(RULES, minimize=True) != base
        assert cache_key(RULES, splitter_options=SplitterOptions(max_class_size=64)) != base
        assert cache_key(RULES, parser_options=ParserOptions(dotall=False)) != base
        assert cache_key(RULES, extra={"v": 2}) != base

    def test_rule_order_matters(self):
        # match_id is positional, so reordering compiles a different engine.
        assert cache_key(RULES) != cache_key(list(reversed(RULES)))


class TestCorruption:
    def test_corrupt_entry_is_removed_miss(self, cache):
        compile_mfa_cached(RULES, cache=cache)
        key = cache_key(RULES)
        path = cache.path_for(key)
        path.write_bytes(b"not a bundle at all")
        assert cache.load(key) is None
        assert not path.exists()
        # The next cached compile rebuilds and re-stores cleanly.
        rebuilt, hit = compile_mfa_cached(RULES, cache=cache)
        assert not hit
        assert rebuilt.run(PAYLOAD) == compile_mfa(RULES).run(PAYLOAD)

    def test_truncated_entry_is_miss(self, cache):
        compile_mfa_cached(RULES, cache=cache)
        path = cache.path_for(cache_key(RULES))
        path.write_bytes(path.read_bytes()[:20])
        assert cache.load(cache_key(RULES)) is None


class TestKillSwitch:
    def test_disabled_never_touches_disk(self, cache, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "0")
        assert not cache_enabled()
        mfa, hit = compile_mfa_cached(RULES, cache=cache)
        assert not hit
        assert not cache.directory.exists()
        assert cache.store(cache_key(RULES), mfa) is None

    def test_enabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_COMPILE_CACHE", raising=False)
        assert cache_enabled()


class TestDirectoryResolution:
    def test_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"
        assert ArtifactCache().directory == tmp_path / "elsewhere"

    def test_xdg_fallback(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path))
        assert default_cache_dir() == tmp_path / "repro-mfa"
