"""Surfacing of the silent prefilter drop in chain-decode mode.

A compressed artifact loaded with ``decode="chain"`` keeps the D²FA
forest, which the lockstep prefilter kernel cannot drive — the engine
quietly ran without its prefilter stage even when the bundle carried a
compiled plan.  That disposition must now be observable end to end:
``FastPathMFA.prefilter_disabled`` names the reason, ``resilient_scan``
copies it onto the :class:`~repro.robust.report.ScanReport`, and the
adversarial auditor flags the configuration (``AV110``, covered in
``tests/analyze/test_adversary.py``).
"""

import pytest

from repro.core import compile_mfa
from repro.core.serialize import dumps_mfa, loads_mfa
from repro.fastpath import HAVE_NUMPY, build_fastpath

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="fastpath needs numpy")

RULES = [
    ".*alpha.*omega",
    ".*abc[^\\n]*xyz",
    "^HELO ",
]


@pytest.fixture(scope="module")
def chain_mfa():
    blob = dumps_mfa(compile_mfa(RULES, compress=4))
    return loads_mfa(blob, decode="chain")


class TestEngineAttribute:
    def test_chain_decode_names_the_reason(self, chain_mfa):
        assert chain_mfa.prefilter is not None  # the plan made the trip
        engine = build_fastpath(chain_mfa, prefilter="auto")
        assert not engine.prefilter_active
        assert engine.prefilter_disabled == "chain-decode"

    def test_requested_off_is_not_disabled(self, chain_mfa):
        # "off" is an operator decision, not a silent drop.
        engine = build_fastpath(chain_mfa, prefilter="off")
        assert engine.prefilter_disabled is None

    def test_dense_engine_is_not_disabled(self):
        engine = build_fastpath(compile_mfa(RULES), prefilter="auto")
        assert engine.prefilter_active
        assert engine.prefilter_disabled is None

    def test_flatten_decode_keeps_the_plan(self):
        blob = dumps_mfa(compile_mfa(RULES, compress=4))
        engine = build_fastpath(loads_mfa(blob, decode="flatten"), prefilter="auto")
        assert engine.prefilter_active
        assert engine.prefilter_disabled is None


class TestScanReportPlumbing:
    def test_resilient_scan_records_the_reason(self, chain_mfa):
        from repro.robust import resilient_scan
        from repro.traffic.flows import FiveTuple, Packet

        key = FiveTuple("10.0.0.1", 1234, "10.0.0.2", 80, 6)
        packets = [Packet(key=key, payload=b"HELO alpha omega", seq=0)]
        engine = build_fastpath(chain_mfa, prefilter="auto")
        alerts, report = resilient_scan(engine, packets, batch_size=4)
        assert alerts  # the scan still matches, just without the stage
        assert report.prefilter_disabled == "chain-decode"
        assert report.to_dict()["prefilter"]["disabled"] == "chain-decode"
        assert any(
            "auto-disabled: chain-decode" in line for line in report.describe()
        )

    def test_active_prefilter_reports_no_reason(self):
        from repro.robust import resilient_scan
        from repro.traffic.flows import FiveTuple, Packet

        key = FiveTuple("10.0.0.1", 1234, "10.0.0.2", 80, 6)
        packets = [Packet(key=key, payload=b"HELO alpha omega", seq=0)]
        engine = build_fastpath(compile_mfa(RULES), prefilter="auto")
        _alerts, report = resilient_scan(engine, packets, batch_size=4)
        assert report.prefilter_active
        assert report.prefilter_disabled is None
