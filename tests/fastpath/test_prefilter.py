"""Soundness and plumbing of the required-literal prefilter.

The contract is absolute: no window the scalar MFA would match may ever be
skipped by the prefiltered path — event streams *and* final per-flow
``(q, m)`` contexts must be byte-identical, plan or no plan.  The
properties here drive randomized payloads (with planted literals) and a
pinned adversarial corpus (literals at window/chunk boundaries,
overlapping anchors, 1-byte chains) through both paths, plus unit tests of
the plan builder and the version-2 bundle round-trip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_mfa
from repro.core.serialize import dumps_mfa, loads_mfa, split_bundle
from repro.fastpath import (
    HAVE_NUMPY,
    FastPathMFA,
    build_fastpath,
    build_prefilter,
    plan_summary,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="fastpath needs numpy")

RULES = [
    ".*alpha.*omega",
    ".*abc[^\\n]*xyz",
    ".*start.{1,4}end0",
    "^HELO ",
]

FRAGMENTS = [
    b"alpha", b"omega", b"abc", b"xyz", b"start", b"end0",
    b"HELO ", b"\n", b"alph", b"mega", b"\x00\xff", b" ",
]


@pytest.fixture(scope="module")
def mfa():
    return compile_mfa(RULES)


def final_state(context):
    memory = context.memory
    return (
        context.state,
        context.offset,
        memory.bits,
        dict(memory.registers),
        memory.sticky,
    )


def assert_identical(mfa, engine, payloads, chunk=None):
    """Batch (and optionally chunk-streamed) streams + contexts match scalar."""
    want = [mfa.run(p) for p in payloads]
    assert engine.run_batch(payloads) == want
    if chunk is None:
        return
    contexts = [engine.new_context() for _ in payloads]
    scalar = [mfa.new_context() for _ in payloads]
    got = [[] for _ in payloads]
    ref = [[] for _ in payloads]
    longest = max((len(p) for p in payloads), default=0)
    for offset in range(0, longest, chunk):
        pieces = [p[offset : offset + chunk] for p in payloads]
        for events, new in zip(got, engine.feed_batch(contexts, pieces)):
            events.extend(new)
        for events, context, piece in zip(ref, scalar, pieces):
            events.extend(mfa.feed(context, piece))
    for i in range(len(payloads)):
        got[i].extend(engine.finish(contexts[i]))
        ref[i].extend(mfa.finish(scalar[i]))
    assert got == ref
    for fast, slow in zip(contexts, scalar):
        assert final_state(fast) == final_state(slow)


class TestPlanBuilder:
    def test_literal_rules_get_a_plan(self, mfa):
        plan = mfa.prefilter
        assert plan is not None
        assert plan["chains"] and plan["w"] >= 2 and plan["horizon"] >= 1
        assert "chains" in plan_summary(plan)

    def test_case_insensitive_and_class_wrapped_literals(self):
        # Satellite shapes: [Aa][Ll]... and [h]ttp[:] must yield chains.
        for rule in (".*[Aa][Ll][Ee][Rr][Tt]", ".*[h]ttp[:]"):
            plan = compile_mfa([rule]).prefilter
            assert plan is not None, rule
            assert plan["chains"], rule

    def test_no_required_literal_means_no_plan(self):
        # Wide classes defeat every anchor; the builder must refuse rather
        # than emit a weak plan.
        mfa = compile_mfa([".*[^x][^y]"])
        assert mfa.prefilter is None
        engine = build_fastpath(mfa, prefilter="auto")
        assert not engine.prefilter_active  # classic path, still correct
        payload = b"ab" * 50
        assert engine.run_batch([payload]) == [mfa.run(payload)]

    def test_one_unfilterable_rule_disables_the_whole_plan(self):
        mixed = compile_mfa([".*alpha.*omega", ".*[^x][^y]"])
        assert mixed.prefilter is None

    def test_min_literal_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREFILTER_MIN_LITERAL", "4")
        short = compile_mfa([".*ab.*cd"])
        assert build_prefilter(short) is None
        long = compile_mfa([".*alpha.*omega"])
        assert build_prefilter(long) is not None

    def test_deserialized_mfa_without_plan_builds_none(self, mfa):
        # A bundle round-trip drops split provenance; the plan must ride the
        # bundle itself, not be rebuilt from nothing.
        bare = loads_mfa(dumps_mfa(mfa))
        bare.prefilter = None
        assert build_prefilter(bare) is None


class TestSerialization:
    def test_plan_rides_the_bundle(self, mfa):
        blob = dumps_mfa(mfa)
        assert blob.startswith(b"MFABDL2\n")
        loaded = loads_mfa(blob)
        assert loaded.prefilter == mfa.prefilter
        # Round-trip stability: re-dump is byte-identical.
        assert dumps_mfa(loaded) == blob

    def test_planless_bundle_stays_version_1(self):
        mfa = compile_mfa([".*[^x][^y]"])
        assert mfa.prefilter is None
        blob = dumps_mfa(mfa)
        assert blob.startswith(b"MFABDL1\n")
        assert loads_mfa(blob).prefilter is None

    def test_split_bundle_accepts_both_framings(self, mfa):
        v2 = dumps_mfa(mfa)
        program_bytes, dfa_bytes = split_bundle(v2)
        assert program_bytes and len(dfa_bytes)
        plain = compile_mfa([".*[^x][^y]"])
        split_bundle(dumps_mfa(plain))

    def test_loaded_plan_drives_the_engine(self, mfa):
        loaded = loads_mfa(dumps_mfa(mfa))
        engine = build_fastpath(loaded, prefilter="auto")
        assert engine.prefilter_active
        payload = b"HELO alpha abc 12 xyz omega start 12 end0"
        assert engine.run_batch([payload]) == [mfa.run(payload)]


class TestModes:
    def test_mode_validation(self, mfa):
        with pytest.raises(ValueError):
            build_fastpath(mfa, prefilter="sometimes")

    def test_env_default(self, mfa, monkeypatch):
        monkeypatch.setenv("REPRO_PREFILTER", "off")
        assert build_fastpath(mfa).prefilter_mode == "off"
        monkeypatch.delenv("REPRO_PREFILTER")
        assert build_fastpath(mfa).prefilter_mode == "auto"

    def test_off_never_builds_a_runtime(self, mfa):
        engine = build_fastpath(mfa, prefilter="off")
        assert engine.prefilter_mode == "off"
        assert not engine.prefilter_active


class TestAdversarialCorpus:
    """Pinned payloads aimed at the windowing machinery's seams."""

    CASES = [
        b"",
        b"a",
        b"alpha",  # literal fills the whole flow
        b"omega",  # second literal without the first
        b"alphaomega",  # back-to-back, no gap bytes
        b"alphalpha omegaomega",  # overlapping anchor candidates
        b"HELO alpha",  # anchored head + chain
        b"xxalpha" + b"z" * 200 + b"omegaxx",  # long gap between intervals
        b"z" * 4000 + b"alpha" + b"z" * 4000 + b"omega",  # windows far apart
        b"abc\nxyz",  # clear-spec fires between set and test
        b"abc" + b"q" * 300 + b"\n" + b"q" * 300 + b"abcxyz",
        b"startend0 start1234end0",  # counted gap at both extremes
        b"alph",  # prefix dies exactly at flow end
        b"aalpha omega" * 40,  # dense hits: density fallback territory
    ]

    @pytest.mark.parametrize("payload", CASES, ids=range(len(CASES)))
    def test_single_flow(self, mfa, payload):
        engine = build_fastpath(mfa, prefilter="on")
        assert engine.prefilter_active
        assert_identical(mfa, engine, [payload], chunk=7)

    def test_literal_split_across_every_chunk_boundary(self, mfa):
        # "alpha...omega" straddling a chunk boundary at every offset: the
        # horizon head-interval must catch occurrences the new chunk's own
        # scan cannot see.
        engine = build_fastpath(mfa, prefilter="on")
        body = b"12345alpha67890omega12345"
        for chunk in range(1, len(body) + 1):
            assert_identical(mfa, engine, [body], chunk=chunk)

    def test_one_byte_literals(self):
        mfa = compile_mfa([".*a.*b.*c"])
        assert mfa.prefilter is not None
        engine = build_fastpath(mfa, prefilter="on")
        assert engine.prefilter_active
        payloads = [b"abc", b"a" * 5 + b"b" * 5 + b"c", b"cba", b"ab", b"c" * 30]
        assert_identical(mfa, engine, payloads, chunk=2)

    def test_mixed_batch_with_empty_and_huge_lanes(self, mfa):
        engine = build_fastpath(mfa, prefilter="on")
        payloads = [
            b"",
            b"alpha omega",
            b"q" * 10_000,
            b"q" * 5_000 + b"abcxyz" + b"q" * 5_000,
        ]
        assert_identical(mfa, engine, payloads, chunk=1024)


class TestAnchorMachinery:
    """The gram-anchor seams: shared anchors and chains without a B pair."""

    def test_ambiguous_anchor_gram_falls_back_per_chain(self):
        # Both chains begin "qqx", and "qq" is the rarest bigram by the
        # commonness prior, so they collide on the same A-anchor gram and
        # the runtime must route that gram through the per-chain verify.
        mfa = compile_mfa([".*qqxaaaa", ".*qqxbbbb"])
        engine = build_fastpath(mfa, prefilter="on")
        assert engine.prefilter_active
        runtime = engine._prefilter_runtime
        assert runtime.ambig_a is not None or runtime.ambig_b is not None
        payloads = [
            b"qqxaaaa",
            b"zqqxbbbb",  # odd-offset occurrence
            b"qqxaaaa qqxbbbb qqxaaaa",
            b"qqx" + b"c" * 50 + b"qqxbbbb",  # dead anchor, then a live one
            b"qq" * 40,  # anchor floods with no chain completion
        ]
        assert_identical(mfa, engine, payloads, chunk=5)

    def test_two_byte_chain_uses_odd_machinery(self):
        # A length-2 chain has no odd-offset B pair, so occurrences at odd
        # positions must come from the ODD_HEAD/ODD_TAIL gram planes.
        mfa = compile_mfa([".*qz[^\\n]*jx"])
        engine = build_fastpath(mfa, prefilter="on")
        assert engine.prefilter_active
        runtime = engine._prefilter_runtime
        assert runtime.odd_chains
        payloads = [
            b"qzjx",
            b"-qz-jx",  # both pairs at odd positions
            b"-qz-jx-",
            b"--qz--jx",  # even positions
            b"-" * 101 + b"qz" + b"-" * 101 + b"jx",  # odd, far apart
            b"---qz",  # odd pair ends exactly at an odd-length buffer edge
            b"---qz\njx",  # clear between head and tail kills the match
        ]
        # chunk=1 forces the edge-pair case (pair split across chunks) to
        # ride on the horizon prefix of the following chunk.
        assert_identical(mfa, engine, payloads, chunk=1)
        assert_identical(mfa, engine, payloads, chunk=6)


payloads_strategy = st.lists(
    st.lists(st.sampled_from(FRAGMENTS), max_size=24).map(b"".join),
    max_size=8,
)


class TestSoundnessProperty:
    @given(payloads=payloads_strategy, chunk=st.sampled_from([None, 1, 5, 33]))
    @settings(max_examples=60, deadline=None)
    def test_never_skips_a_scalar_match(self, mfa, payloads, chunk):
        engine = FastPathMFA(mfa, prefilter="on")
        assert_identical(mfa, engine, payloads, chunk=chunk)

    @given(
        payloads=st.lists(st.binary(max_size=120), max_size=5),
        chunk=st.sampled_from([None, 3, 17]),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_bytes_with_no_literal_rule_in_set(self, payloads, chunk):
        # One rule with no extractable literal: plan is None, "on" degrades
        # to the classic path, streams still identical.
        mfa = compile_mfa([".*alpha.*omega", ".*[^x][^y]"])
        engine = FastPathMFA(mfa, prefilter="on")
        assert not engine.prefilter_active
        assert_identical(mfa, engine, payloads, chunk=chunk)

    @given(
        payloads=st.lists(
            st.lists(
                st.one_of(st.sampled_from(FRAGMENTS), st.binary(max_size=6)),
                max_size=20,
            ).map(b"".join),
            max_size=6,
        ),
        chunk=st.sampled_from([None, 2, 11]),
    )
    @settings(max_examples=60, deadline=None)
    def test_planted_literals_in_noise(self, mfa, payloads, chunk):
        engine = FastPathMFA(mfa, prefilter="on")
        assert_identical(mfa, engine, payloads, chunk=chunk)


class TestReportPlumbing:
    def test_resilient_scan_records_prefilter(self, mfa):
        from repro.robust import resilient_scan
        from repro.traffic.flows import FiveTuple, Packet

        key = FiveTuple("10.0.0.1", 1234, "10.0.0.2", 80, 6)
        packets = [Packet(key=key, payload=b"HELO alpha omega", seq=0)]
        engine = build_fastpath(mfa, prefilter="on")
        alerts, report = resilient_scan(engine, packets, batch_size=4)
        assert report.prefilter_mode == "on"
        assert report.prefilter_active is True
        assert report.to_dict()["prefilter"] == {
            "mode": "on", "active": True, "disabled": None,
        }
        assert any("prefilter: on (active)" in line for line in report.describe())
        assert alerts  # HELO matched

    def test_scalar_engine_reports_no_prefilter(self, mfa):
        from repro.robust import resilient_scan

        _alerts, report = resilient_scan(mfa, [])
        assert report.prefilter_mode is None
        assert report.to_dict()["prefilter"] == {
            "mode": None, "active": False, "disabled": None,
        }

    def test_serve_config_validates_prefilter(self):
        from repro.serve import ServeConfig

        assert ServeConfig(prefilter="off").prefilter == "off"
        with pytest.raises(ValueError):
            ServeConfig(prefilter="maybe")
