"""The lockstep batch engine must be observably identical to the scalar MFA.

Every property here compares full match-event streams (and, for the
streaming tests, the final per-flow ``(q, m)`` context) between
``FastPathMFA`` and the scalar engine over randomized payloads, batch
shapes, chunkings and segment lengths — including degenerate segments
(1 and 3 bytes) that force heavy speculation and stitching.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_mfa
from repro.fastpath import HAVE_NUMPY, FastPathMFA, build_fastpath

RULES = [
    ".*alpha.*omega",
    ".*abc[^\\n]*xyz",
    ".*start.{1,4}end0",
    "^HELO ",
]

# Fragments that exercise component hits, filter ops and near-misses.
FRAGMENTS = [
    b"alpha", b"omega", b"abc", b"xyz", b"start", b"end0",
    b"HELO ", b"\n", b"al", b"zz", b"\x00\xff", b" ",
]

payloads_strategy = st.lists(
    st.lists(st.sampled_from(FRAGMENTS), max_size=24).map(b"".join),
    max_size=8,
)

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="fastpath needs numpy")


@pytest.fixture(scope="module")
def mfa():
    return compile_mfa(RULES)


# Every batch/streaming property runs twice: once with the required-literal
# prefilter off (pinning coverage of the classic lane/stitch machinery) and
# once with it forced on (the candidate-window confirm kernel).
@pytest.fixture(scope="module", params=["off", "on"])
def prefilter(request):
    # Module-scoped: the mode is pure configuration (no per-test state), and
    # hypothesis forbids function-scoped fixtures inside @given.
    return request.param


def final_state(context):
    memory = context.memory
    return (
        context.state,
        context.offset,
        memory.bits,
        dict(memory.registers),
        memory.sticky,
    )


class TestRunBatch:
    @given(payloads=payloads_strategy, segment=st.sampled_from([None, 1, 3, 7, 64]))
    @settings(max_examples=60, deadline=None)
    def test_matches_scalar_run(self, mfa, prefilter, payloads, segment):
        engine = FastPathMFA(mfa, segment_bytes=segment, prefilter=prefilter)
        assert engine.run_batch(payloads) == [mfa.run(p) for p in payloads]

    def test_empty_batch_and_empty_payloads(self, mfa, prefilter):
        engine = build_fastpath(mfa, prefilter=prefilter)
        assert engine.run_batch([]) == []
        assert engine.run_batch([b"", b""]) == [[], []]
        assert engine.run_batch([b"", b"HELO alpha omega"]) == [
            [],
            mfa.run(b"HELO alpha omega"),
        ]

    def test_run_delegates_to_scalar(self, mfa, prefilter):
        engine = build_fastpath(mfa, prefilter=prefilter)
        payload = b"HELO alpha abc 12 xyz omega start 12 end0"
        assert engine.run(payload) == mfa.run(payload)

    def test_single_long_flow_multiple_lanes(self, mfa, prefilter):
        # One flow much longer than the segment splits into many lanes,
        # all but the first starting speculatively.
        engine = FastPathMFA(mfa, segment_bytes=16, prefilter=prefilter)
        payload = b"HELO " + b"alpha " * 40 + b"filler" * 30 + b"omega" + b"abcxyz" * 20
        assert engine.run_batch([payload]) == [mfa.run(payload)]


class TestStreaming:
    @given(
        payloads=st.lists(
            st.lists(st.sampled_from(FRAGMENTS), max_size=16).map(b"".join),
            min_size=1,
            max_size=5,
        ),
        chunk=st.sampled_from([1, 5, 9, 33]),
        segment=st.sampled_from([None, 3, 7]),
    )
    @settings(max_examples=40, deadline=None)
    def test_chunked_feed_batch_matches_scalar_feed(
        self, mfa, prefilter, payloads, chunk, segment
    ):
        engine = FastPathMFA(mfa, segment_bytes=segment, prefilter=prefilter)
        fast_contexts = [engine.new_context() for _ in payloads]
        slow_contexts = [mfa.new_context() for _ in payloads]
        fast_events = [[] for _ in payloads]
        slow_events = [[] for _ in payloads]
        longest = max(len(p) for p in payloads)
        for offset in range(0, longest, chunk):
            pieces = [p[offset : offset + chunk] for p in payloads]
            for flow_events, events in zip(
                fast_events, engine.feed_batch(fast_contexts, pieces)
            ):
                flow_events.extend(events)
            for flow_events, context, piece in zip(slow_events, slow_contexts, pieces):
                flow_events.extend(mfa.feed(context, piece))
        for i in range(len(payloads)):
            fast_events[i].extend(engine.finish(fast_contexts[i]))
            slow_events[i].extend(mfa.finish(slow_contexts[i]))
        assert fast_events == slow_events
        for fast, slow in zip(fast_contexts, slow_contexts):
            assert final_state(fast) == final_state(slow)

    def test_context_reusable_across_batches(self, mfa, prefilter):
        # The same contexts fed through two successive batch calls must
        # see offsets continue, exactly like two scalar feed() calls.
        engine = build_fastpath(mfa, prefilter=prefilter)
        first, second = b"HELO alpha abc ", b"xyz omega start 1 end0"
        context = engine.new_context()
        events = list(engine.feed_batch([context], [first])[0])
        events += list(engine.feed_batch([context], [second])[0])
        events += list(engine.finish(context))
        assert events == mfa.run(first + second)
        assert final_state(context) == final_state_of_scalar(mfa, first + second)


def final_state_of_scalar(mfa, payload):
    context = mfa.new_context()
    list(mfa.feed(context, payload))
    return final_state(context)


class TestScalarFallback:
    @given(payloads=payloads_strategy)
    @settings(max_examples=25, deadline=None)
    def test_fallback_path_matches_scalar(self, mfa, payloads):
        # The pure-Python path used when numpy is absent stays live even
        # on numpy machines: drive it directly.
        engine = build_fastpath(mfa)
        contexts = [engine.new_context() for _ in payloads]
        got = engine._feed_scalar(contexts, payloads)
        got = [list(events) + list(engine.finish(c)) for events, c in zip(got, contexts)]
        assert got == [mfa.run(p) for p in payloads]
