"""The chain-walk lane kernel: batch scanning straight off the D2FA forest.

A compressed bundle loaded with ``decode="chain"`` must batch-scan through
the fastpath engine with a confirmed-match stream byte-identical to the
dense engine's, through the hot-state dense overlay cache (the default) and
through the cold chain-walk path (forced with a tiny ``REPRO_CHAIN_HOT``).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.compress import ChainDFA
from repro.core import compile_mfa, dumps_mfa, loads_mfa
from repro.fastpath import HAVE_NUMPY, build_fastpath

RULES = [".*aa.*bb", ".*cc[^\\n]*dd", ".*ee.{1,4}ffq", "^GET /x", "plain"]

PAYLOADS = [
    b"aa.bb",
    b"cc x dd",
    b"ee12ffq",
    b"GET /x",
    b"plain",
    b"zzz" * 40,
    b"aa" + b"." * 100 + b"bb",
    b"",
]

pytestmark = pytest.mark.skipif(not HAVE_NUMPY, reason="lane kernel needs numpy")


@pytest.fixture(scope="module")
def dense_mfa():
    return compile_mfa(RULES)


@pytest.fixture(scope="module")
def chain_blob():
    return dumps_mfa(compile_mfa(RULES, compress=2))


def test_chain_engine_builds_on_forest(chain_blob):
    mfa = loads_mfa(chain_blob, decode="chain")
    assert isinstance(mfa.dfa, ChainDFA)
    engine = build_fastpath(mfa)
    assert engine._chain
    assert engine._vector_ready


def test_batch_stream_matches_dense(chain_blob, dense_mfa):
    engine = build_fastpath(loads_mfa(chain_blob, decode="chain"))
    want = [dense_mfa.run(p) for p in PAYLOADS]
    assert engine.run_batch(PAYLOADS) == want


def test_forced_cold_walk_matches_dense(chain_blob, dense_mfa, monkeypatch):
    # A 1-state hot cache forces nearly every lane through the searchsorted
    # overlay lookup + parent-hop loop; the stream must not change.
    monkeypatch.setenv("REPRO_CHAIN_HOT", "1")
    engine = build_fastpath(loads_mfa(chain_blob, decode="chain"))
    assert not engine._all_hot
    want = [dense_mfa.run(p) for p in PAYLOADS]
    assert engine.run_batch(PAYLOADS) == want


def test_prefilter_stays_off_in_chain_mode(chain_blob):
    engine = build_fastpath(loads_mfa(chain_blob, decode="chain"), prefilter="on")
    assert not engine.prefilter_active


def test_hot_cap_bounds_table_memory(chain_blob, monkeypatch):
    # The hot-state dense cache is the dominant chain-mode allocation; a
    # smaller REPRO_CHAIN_HOT cap must shrink the engine's working tables.
    # (On this tiny automaton the default cap covers every state — the
    # memory win over a flattened load only appears once n_states exceeds
    # the cap, which bench_compress measures on B217p.)
    full = build_fastpath(loads_mfa(chain_blob, decode="chain"))
    assert full._all_hot
    monkeypatch.setenv("REPRO_CHAIN_HOT", "2")
    capped = build_fastpath(loads_mfa(chain_blob, decode="chain"))
    assert not capped._all_hot
    assert 0 < capped.memory_bytes() < full.memory_bytes()


def test_streaming_contexts_cross_segments(chain_blob, dense_mfa):
    engine = build_fastpath(loads_mfa(chain_blob, decode="chain"))
    payload = b"aa" + b"x" * 300 + b"bb" + b"cc-dd"
    context = engine.new_context()
    events = []
    for start in range(0, len(payload), 64):
        events += list(engine.feed(context, payload[start : start + 64]))
    events += list(engine.finish(context))
    assert sorted(events) == sorted(dense_mfa.run(payload))


@given(st.lists(st.sampled_from(list(b"abcdef\n .GETxpl")), max_size=80).map(bytes))
@settings(max_examples=30, deadline=None)
def test_chain_lockstep_property(data):
    dense = compile_mfa(RULES)
    blob = dumps_mfa(compile_mfa(RULES, compress=2))
    engine = build_fastpath(loads_mfa(blob, decode="chain"))
    assert engine.run_batch([data]) == [dense.run(data)]
