"""The artifact cache under concurrent writers and hostile corruption.

The daemon's live reload recompiles shards through the cache while other
processes (a second daemon, a CLI run) may be writing the same keys.
The contract under races is *corruption-as-miss*: a reader gets either a
complete valid bundle or a miss — never a torn read, never an exception
— and a corrupt-entry cleanup may only remove the exact file it read,
not a fresh entry a racing writer just published.
"""

import multiprocessing
import os
import time

import pytest

from repro.core import compile_mfa
from repro.fastpath import ArtifactCache
from repro.fastpath.cache import cache_key

pytestmark = pytest.mark.faults

RULES = [".*alpha.*omega", "beta[0-9]+"]
PAYLOAD = b"alpha beta7 omega"


# Spawned subprocess targets must be module-level (picklable).


def _writer_proc(directory, key, rounds, barrier):
    cache = ArtifactCache(directory)
    mfa = compile_mfa(RULES)
    barrier.wait()
    for _ in range(rounds):
        cache.store(key, mfa)


def _corruptor_proc(directory, key, deadline, barrier):
    """Repeatedly truncate/scribble the entry while writers republish it."""
    cache = ArtifactCache(directory)
    path = cache.path_for(key)
    barrier.wait()
    garbage = [b"", b"MFABDL1\n", b"\xff" * 64, os.urandom(256)]
    i = 0
    while time.time() < deadline:
        try:
            path.write_bytes(garbage[i % len(garbage)])
        except OSError:
            pass
        i += 1


def _reader_proc(directory, key, deadline, barrier, failures):
    """Loads must be valid-or-miss for the whole stress window."""
    cache = ArtifactCache(directory)
    expected = compile_mfa(RULES).run(PAYLOAD)
    barrier.wait()
    while time.time() < deadline:
        try:
            mfa = cache.load(key)
        except Exception as exc:  # noqa: BLE001 - the assertion under test
            failures.put(f"load raised {type(exc).__name__}: {exc}")
            return
        if mfa is None:
            continue
        got = mfa.run(PAYLOAD)
        if got != expected:
            failures.put(f"torn read: {got!r} != {expected!r}")
            return


class TestConcurrentWriters:
    def test_two_process_store_race_ends_valid(self, tmp_path):
        """Racing writers of one key always leave one valid entry."""
        directory = tmp_path / "cache"
        key = cache_key(RULES)
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(2)
        writers = [
            ctx.Process(target=_writer_proc, args=(str(directory), key, 40, barrier))
            for _ in range(2)
        ]
        for p in writers:
            p.start()
        for p in writers:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = ArtifactCache(directory)
        mfa = cache.load(key)
        assert mfa is not None
        assert mfa.run(PAYLOAD) == compile_mfa(RULES).run(PAYLOAD)
        # The unique-temp-name discipline leaves no stray partials behind.
        assert list(directory.glob("*.tmp")) == []

    def test_stress_with_corruptor_is_always_valid_or_miss(self, tmp_path):
        """Writers + corruptor + reader racing: reader never sees garbage."""
        directory = tmp_path / "cache"
        key = cache_key(RULES)
        ctx = multiprocessing.get_context("spawn")
        barrier = ctx.Barrier(4)
        failures = ctx.Queue()
        deadline = time.time() + 3.0
        procs = [
            ctx.Process(target=_writer_proc, args=(str(directory), key, 200, barrier)),
            ctx.Process(
                target=_corruptor_proc, args=(str(directory), key, deadline, barrier)
            ),
            ctx.Process(
                target=_reader_proc,
                args=(str(directory), key, deadline, barrier, failures),
            ),
        ]
        for p in procs:
            p.start()
        barrier.wait()  # the 4th party: release everyone together
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        assert failures.empty(), failures.get()


class TestCorruptUnlinkRace:
    def test_cleanup_spares_a_concurrently_replaced_entry(self, tmp_path):
        """The corrupt-unlink must be inode-checked, not path-blind.

        Simulates the race directly: the stat captured from the *garbage*
        read must not license deleting the *fresh* entry that replaced it.
        """
        cache = ArtifactCache(tmp_path / "cache")
        key = cache_key(RULES)
        path = cache.path_for(key)
        cache.directory.mkdir(parents=True)
        path.write_bytes(b"garbage the reader saw")
        garbage_stat = path.stat()
        # A racing writer publishes a valid bundle over it (new inode).
        cache.store(key, compile_mfa(RULES))
        assert path.stat().st_ino != garbage_stat.st_ino
        ArtifactCache._unlink_if_same(path, garbage_stat)
        assert path.exists(), "cleanup deleted a fresh entry it never read"
        assert cache.load(key) is not None

    def test_cleanup_removes_the_exact_file_it_read(self, tmp_path):
        cache = ArtifactCache(tmp_path / "cache")
        key = cache_key(RULES)
        path = cache.path_for(key)
        cache.directory.mkdir(parents=True)
        path.write_bytes(b"still the same garbage")
        ArtifactCache._unlink_if_same(path, path.stat())
        assert not path.exists()

    def test_corrupt_load_still_misses_and_cleans(self, tmp_path):
        """End-to-end: corrupt entry -> miss, removed, rebuild succeeds."""
        cache = ArtifactCache(tmp_path / "cache")
        key = cache_key(RULES)
        cache.directory.mkdir(parents=True)
        cache.path_for(key).write_bytes(b"\x00" * 100)
        assert cache.load(key) is None
        assert not cache.path_for(key).exists()
        cache.store(key, compile_mfa(RULES))
        assert cache.load(key) is not None
