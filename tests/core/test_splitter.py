"""Regex splitter unit tests: every decomposition shape and every refusal."""

import pytest

from repro.core.filters import NONE
from repro.core.splitter import SplitterOptions, split_patterns
from repro.regex import parse, parse_many
from repro.regex.printer import pattern_to_text


def split(rules, **options):
    return split_patterns(parse_many(rules), SplitterOptions(**options) if options else None)


def component_texts(result):
    return sorted(pattern_to_text(c) for c in result.components)


class TestDotStar:
    def test_basic_split(self):
        result = split([".*alpha.*omega"])
        assert component_texts(result) == ["alpha", "omega"]
        assert result.width == 1
        assert result.stats.n_dot_star == 1
        # n': Set 0 ; n: Test 0 to Match
        actions = result.program.actions
        new_id = next(i for i in actions if i != 1)
        assert actions[new_id].set == 0 and actions[new_id].report == NONE
        assert actions[1].test == 0 and actions[1].report == 1

    def test_chained_three_segments(self):
        result = split([".*aa.*bb.*cc"])
        assert component_texts(result) == ["aa", "bb", "cc"]
        assert result.width == 2
        described = "\n".join(result.program.describe())
        assert "Test 0 to Set 1" in described or "Test 1 to Set 0" in described

    def test_overlap_refused(self):
        result = split([".*abc.*bcd"])
        assert len(result.components) == 1
        assert result.width == 0
        assert result.stats.n_refused_overlap == 1

    def test_partial_decomposition(self):
        # abc/bcd overlap but xyz splits off fine.
        result = split([".*abc.*bcd.*xyz"])
        texts = component_texts(result)
        assert "xyz" in texts
        assert any("abc" in t and "bcd" in t for t in texts)
        assert result.width == 1

    def test_nullable_side_refused(self):
        result = split([".*a?.*bcd"])
        assert result.stats.n_refused_nullable >= 1
        assert result.width == 0

    def test_leading_dotstar_stripped(self):
        result = split([".*.*abc.*xyz"])
        assert component_texts(result) == ["abc", "xyz"]

    def test_disabled(self):
        result = split([".*alpha.*omega"], enable_dot_star=False)
        assert len(result.components) == 1
        assert result.width == 0

    def test_dot_plus_becomes_open_counted_gap(self):
        # ".+" cannot fold into a neighbouring segment (a trailing "."
        # always overlaps); it splits as an open distance window instead.
        result = split([".*alpha.+omega"])
        assert result.stats.n_counted == 1
        assert result.program.actions[1].distance == (0, 6, None)
        assert component_texts(result) == ["alpha", "omega"]

    def test_anchored_head_kept(self):
        result = split(["^HEAD.*tail"])
        anchored = [c for c in result.components if c.anchored]
        unanchored = [c for c in result.components if not c.anchored]
        assert len(anchored) == 1 and pattern_to_text(anchored[0]) == "^HEAD"
        assert len(unanchored) == 1 and pattern_to_text(unanchored[0]) == "tail"


class TestAlmostDotStar:
    def test_basic_split(self):
        result = split([".*abc[^\\n]*xyz"])
        texts = component_texts(result)
        assert texts == ["\\n", "abc", "xyz"]
        assert result.width == 1
        described = result.program.describe()
        assert any("Clear 0" in line for line in described)

    def test_x_in_b_refused(self):
        # X = {n}; B contains a newline.
        result = split([".*abc[^\\n]*x\\nz"])
        assert result.stats.n_refused_class == 1
        assert result.width == 0

    def test_x_in_final_position_of_a_refused(self):
        # A ends with \n which is in X.
        result = split([".*abc\\n[^\\n]*xyz"])
        assert result.stats.n_refused_class == 1

    def test_x_in_middle_of_a_allowed(self):
        result = split([".*ab\\ncd[^\\n]*xyz"])
        assert result.stats.n_almost_dot_star == 1

    def test_wide_class_threshold(self):
        # [a-f]* has X = 250 bytes: past the 128 threshold, refuse.
        result = split([".*abc[a-f]*xyz"])
        assert result.width == 0
        assert len(result.components) == 1

    def test_threshold_configurable(self):
        # With the threshold lifted, [a-f]* decomposes when its conditions
        # hold: B within [a-f] (disjoint from X) and A's last byte too.
        result = split([".*zzf[a-f]*cab"], max_class_size=256)
        assert result.stats.n_almost_dot_star == 1

    def test_coalesced_clear_component(self):
        result = split([".*abc[^\\n]*xyz"], coalesce_clear_runs=True)
        texts = component_texts(result)
        assert any("\\n+" in t for t in texts)

    def test_overlap_refused(self):
        result = split([".*abc[^\\n]*bcd"])
        assert result.stats.n_refused_overlap == 1


class TestCountedGaps:
    def test_basic(self):
        result = split([".*start.{2,5}endx"])
        assert result.stats.n_counted == 1
        assert result.program.n_registers == 1
        action = result.program.actions[1]
        # |B| = 4, so the window is [4+2, 4+5].
        assert action.distance == (0, 6, 9)

    def test_exact_gap(self):
        result = split([".*ab.{3}cd"])
        assert result.program.actions[1].distance == (0, 5, 5)

    def test_variable_b_refused(self):
        result = split([".*start.{2,5}endx?"])
        assert result.stats.n_refused_counted >= 1
        assert result.stats.n_counted == 0

    def test_huge_window_refused(self):
        result = split([".*start.{2,500}endx"])
        assert result.stats.n_counted == 0

    def test_unbounded_min_gap_open_window(self):
        # .{2,} splits as an open window: distance >= |B| + 2.
        result = split([".*start.{2,}endx"])
        assert result.stats.n_counted == 1
        assert result.program.actions[1].distance == (0, 6, None)

    def test_disabled(self):
        result = split([".*start.{2,5}endx"], enable_counted_gaps=False)
        assert result.stats.n_counted == 0
        assert result.program.n_registers == 0

    def test_optional_gap(self):
        result = split([".*aa.?bbq"])
        assert result.stats.n_counted == 1
        assert result.program.actions[1].distance == (0, 3, 4)


class TestMultiPattern:
    def test_ids_unique_across_patterns(self):
        result = split([".*aa.*bb", ".*cc.*dd"])
        ids = [c.match_id for c in result.components]
        assert len(ids) == len(set(ids))
        assert result.width == 2

    def test_component_ids_mapping(self):
        result = split([".*aa.*bb", "plain"])
        assert set(result.component_ids) == {1, 2}
        assert len(result.component_ids[1]) == 2
        assert len(result.component_ids[2]) == 1

    def test_final_ids_preserved(self):
        result = split([".*aa.*bb", "plain"])
        assert result.program.final_ids == {1, 2}

    def test_mixed_intact_and_split(self):
        result = split(["plain1", ".*aa.*bb", "plain2"])
        assert result.stats.n_intact == 2

    def test_alternation_explosion(self):
        result = split(["(?:.*aa.*bb|cc)"])
        # Both alternatives become their own patterns reporting id 1.
        reports = {
            action.report
            for action in result.program.actions.values()
            if action.report != NONE
        }
        assert reports == {1}
        assert result.stats.n_dot_star == 1

    def test_alternation_not_exploded_when_plain(self):
        result = split(["aa|bb|cc"])
        assert len(result.components) == 1

    def test_alternation_explosion_disabled(self):
        result = split(["(?:.*aa.*bb|cc)"], explode_alternations=0)
        assert len(result.components) == 1


class TestEndAnchoring:
    def test_end_anchor_stays_on_tail(self):
        result = split([".*aa.*bb$"])
        tails = [c for c in result.components if c.end_anchored]
        assert len(tails) == 1
        assert pattern_to_text(tails[0]) == "bb$"
