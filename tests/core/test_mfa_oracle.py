"""THE correctness property: the MFA's filtered stream equals the plain
DFA of the original patterns, for randomly generated decomposable rules
over a deliberately tiny alphabet (so segments overlap often and every
safety condition gets exercised, including refusals)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SplitterOptions, build_mfa, verify_equivalence
from repro.regex import parse, parse_many
from repro.traffic import generate_trace

# Tiny alphabet: overlaps and accidental matches are common.
_words = st.text(alphabet="abc", min_size=1, max_size=4)
_separators = st.sampled_from(
    [".*", "[^x]*", "[^\\n]*", ".{1,4}", ".{0,2}", ".{3}", ".+", ".{2,}"]
)


@st.composite
def decomposable_rule(draw):
    n_segments = draw(st.integers(2, 4))
    parts = [draw(_words)]
    for _ in range(n_segments - 1):
        parts.append(draw(_separators))
        parts.append(draw(_words))
    prefix = draw(st.sampled_from(["", ".*", "^"]))
    return prefix + "".join(parts)


_inputs = st.text(alphabet="abcx\n", max_size=60).map(lambda s: s.encode())


@given(st.lists(decomposable_rule(), min_size=1, max_size=3), _inputs)
@settings(max_examples=200, deadline=None)
def test_mfa_equals_original_semantics(rules, data):
    patterns = parse_many(rules)
    report = verify_equivalence(patterns, data)
    report.raise_on_mismatch()


@given(st.lists(decomposable_rule(), min_size=1, max_size=3), _inputs)
@settings(max_examples=60, deadline=None)
def test_mfa_with_mitigation_equals_original(rules, data):
    patterns = parse_many(rules)
    mfa = build_mfa(patterns, SplitterOptions(coalesce_clear_runs=True))
    verify_equivalence(patterns, data, mfa=mfa).raise_on_mismatch()


@given(st.lists(decomposable_rule(), min_size=1, max_size=3), _inputs)
@settings(max_examples=60, deadline=None)
def test_hfa_and_xfa_equal_original_semantics(rules, data):
    """The baselines built on the same decomposition (conditional
    transitions for HFA, per-state programs for XFA) must also match the
    plain-DFA semantics — including states where several history bits are
    tested at once (HFA's condition-combination enumeration)."""
    from repro.automata import build_dfa, build_hfa, build_xfa

    patterns = parse_many(rules)
    expected = sorted(build_dfa(patterns, state_budget=50_000).run(data))
    assert sorted(build_hfa(patterns).run(data)) == expected
    assert sorted(build_xfa(patterns).run(data)) == expected


@given(decomposable_rule(), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_mfa_on_adversarial_traffic(rule, seed):
    """Becchi-style traffic drags the automaton through deep, match-adjacent
    states — the hardest inputs for filter correctness."""
    patterns = parse_many([rule])
    trace = generate_trace(patterns, 400, 0.85, seed=seed)
    verify_equivalence(patterns, trace.payload).raise_on_mismatch()


@pytest.mark.parametrize(
    "rule,payload",
    [
        # The paper's own abc/bcd hazard (must be refused and still correct).
        (".*abc.*bcd", b"abcd"),
        (".*abc.*bcd", b"abcbcd"),
        # Containment hazard the naive overlap test misses.
        (".*b.*abc", b"abc"),
        (".*b.*abc", b"b abc"),
        (".*bc.*abc", b"abc"),
        # Same-position completion hazard.
        (".*bc.*c", b"abcc"),
        # Clear fires inside what would be B's span if decomposed wrongly.
        (".*ab[^c]*cab", b"abzcab"),
        # X adjacent to A's final byte.
        (".*ab\\n[^\\n]*yz", b"ab\nyz"),
        # Counted gap at window edges.
        (".*ab.{2}cd", b"ab12cd"),
        (".*ab.{2}cd", b"ab1cd"),
        (".*ab.{2}cd", b"ab123cd"),
        (".*ab.{0,1}cd", b"abcd"),
        # Multiple A candidates for one B.
        (".*ab.{1,2}cd", b"abab1cd"),
        (".*ab.+cd", b"abcd"),
        (".*ab.+cd", b"abxcd"),
    ],
)
def test_known_hazards(rule, payload):
    patterns = parse_many([rule])
    verify_equivalence(patterns, payload).raise_on_mismatch()


def test_open_window_survives_long_gaps():
    """Open-window records saturate into the sticky bit instead of aging
    out: an A seen 1000 bytes ago still satisfies ``.+``."""
    patterns = parse_many([".*needle.+tail0"])
    payload = b"needle" + b"." * 1000 + b"tail0"
    verify_equivalence(patterns, payload).raise_on_mismatch()
    mfa = build_mfa(patterns)
    assert len(mfa.run(payload)) == 1


def test_flood_of_raw_events_filters_correctly():
    """Tens of thousands of raw set/clear events, few confirmed matches."""
    patterns = parse_many([".*ab[^z]*cd"])
    payload = (b"ab" + b"." * 50 + b"z") * 200 + b"ab..cd"
    verify_equivalence(patterns, payload).raise_on_mismatch()


@given(st.lists(decomposable_rule(), min_size=1, max_size=2), _inputs)
@settings(max_examples=40, deadline=None)
def test_hybrid_fa_equals_original_semantics(rules, data):
    """The hybrid-FA (head DFA + exact tail NFAs) needs no safety
    conditions at all; random decomposable rules must still match the
    plain-DFA stream, including the splitter-refused overlap shapes."""
    from repro.automata.hybridfa import build_hybrid_fa
    from repro.automata import build_dfa

    patterns = parse_many(rules)
    if any(p.end_anchored for p in patterns):
        return
    hybrid = build_hybrid_fa(patterns)
    expected = sorted(build_dfa(patterns, state_budget=50_000).run(data))
    assert sorted(hybrid.run(data)) == expected


@given(st.lists(decomposable_rule(), min_size=1, max_size=2), _inputs)
@settings(max_examples=30, deadline=None)
def test_mdfa_equals_original_semantics(rules, data):
    from repro.automata import build_dfa
    from repro.automata.mdfa import build_mdfa

    patterns = parse_many(rules)
    mdfa = build_mdfa(patterns, group_state_budget=2_000)
    expected = sorted(build_dfa(patterns, state_budget=50_000).run(data))
    assert mdfa.run(data) == expected
