"""Filter engine unit tests: bytecode semantics, merging, registers."""

import pytest

from repro.core.filters import (
    NONE,
    WINDOW_BITS,
    FilterAction,
    FilterEngine,
    FilterProgram,
    FilterState,
)


def program(actions, width=8, n_registers=0, final_ids=None):
    return FilterProgram(
        actions=actions,
        width=width,
        n_registers=n_registers,
        final_ids=frozenset(final_ids if final_ids is not None else [1]),
    )


class TestActionValidation:
    def test_set_and_clear_same_bit_rejected(self):
        with pytest.raises(ValueError):
            FilterAction(set=3, clear=3)

    def test_set_and_clear_different_bits_ok(self):
        FilterAction(set=3, clear=4)

    def test_distance_window_bounds(self):
        with pytest.raises(ValueError):
            FilterAction(distance=(0, 10, WINDOW_BITS))
        FilterAction(distance=(0, 10, WINDOW_BITS - 1))

    def test_program_rejects_out_of_width_bits(self):
        with pytest.raises(ValueError):
            program({2: FilterAction(set=9)}, width=8)

    def test_program_rejects_unknown_register(self):
        with pytest.raises(ValueError):
            program({2: FilterAction(record=0)}, n_registers=0)

    def test_program_rejects_report_outside_final(self):
        with pytest.raises(ValueError):
            program({2: FilterAction(report=99)}, final_ids=[1])


class TestBitSemantics:
    def test_set_then_test(self):
        engine = FilterEngine(
            program({2: FilterAction(set=0), 1: FilterAction(test=0, report=1)})
        )
        state = engine.new_state()
        assert engine.process(state, 0, 1) == NONE       # bit not yet set
        assert engine.process(state, 1, 2) == NONE       # set never reports
        assert engine.process(state, 2, 1) == 1          # now confirmed

    def test_clear(self):
        engine = FilterEngine(
            program(
                {
                    2: FilterAction(set=0),
                    3: FilterAction(clear=0),
                    1: FilterAction(test=0, report=1),
                }
            )
        )
        state = engine.new_state()
        engine.process(state, 0, 2)
        engine.process(state, 1, 3)
        assert engine.process(state, 2, 1) == NONE

    def test_failed_test_has_no_effects(self):
        engine = FilterEngine(
            program({2: FilterAction(test=1, set=0), 1: FilterAction(test=0, report=1)})
        )
        state = engine.new_state()
        engine.process(state, 0, 2)       # test bit 1 unset -> nothing happens
        assert state.bits == 0
        assert engine.process(state, 1, 1) == NONE

    def test_merged_test_to_set(self):
        # "Test bit 0 to set bit 1" — the chained dot-star bytecode.
        engine = FilterEngine(
            program(
                {
                    2: FilterAction(set=0),
                    3: FilterAction(test=0, set=1),
                    1: FilterAction(test=1, report=1),
                }
            )
        )
        state = engine.new_state()
        assert engine.process(state, 0, 3) == NONE
        assert state.bits == 0                      # guard failed: no set
        engine.process(state, 1, 2)
        engine.process(state, 2, 3)
        assert state.bits == 0b11
        assert engine.process(state, 3, 1) == 1

    def test_unknown_final_id_passes_through(self):
        engine = FilterEngine(program({}, final_ids=[7]))
        state = engine.new_state()
        assert engine.process(state, 0, 7) == 7

    def test_unknown_non_final_id_dropped(self):
        engine = FilterEngine(program({}, final_ids=[7]))
        state = engine.new_state()
        assert engine.process(state, 0, 8) == NONE


class TestRegisters:
    def make_engine(self, lo, hi):
        return FilterEngine(
            program(
                {
                    2: FilterAction(record=0),
                    1: FilterAction(distance=(0, lo, hi), report=1),
                },
                n_registers=1,
            )
        )

    def test_distance_in_window(self):
        engine = self.make_engine(3, 5)
        state = engine.new_state()
        engine.process(state, 10, 2)
        assert engine.process(state, 14, 1) == 1     # distance 4

    def test_distance_too_small(self):
        engine = self.make_engine(3, 5)
        state = engine.new_state()
        engine.process(state, 10, 2)
        assert engine.process(state, 12, 1) == NONE  # distance 2

    def test_distance_too_large(self):
        engine = self.make_engine(3, 5)
        state = engine.new_state()
        engine.process(state, 10, 2)
        assert engine.process(state, 16, 1) == NONE  # distance 6

    def test_multiple_records_any_fits(self):
        engine = self.make_engine(3, 3)
        state = engine.new_state()
        engine.process(state, 10, 2)
        engine.process(state, 11, 2)
        assert engine.process(state, 13, 1) == 1     # the pos-10 record fits

    def test_record_ages_out_of_window(self):
        engine = self.make_engine(1, WINDOW_BITS - 1)
        state = engine.new_state()
        engine.process(state, 0, 2)
        assert engine.process(state, WINDOW_BITS + 5, 1) == NONE

    def test_fresh_state_never_matches(self):
        engine = self.make_engine(0, 10)
        state = engine.new_state()
        assert engine.process(state, 5, 1) == NONE


class TestProgramOps:
    def test_merge_shifts_bits_and_registers(self):
        first = program({2: FilterAction(set=0)}, width=1, final_ids=[1])
        second = FilterProgram(
            actions={5: FilterAction(set=0, record=0)},
            width=1,
            n_registers=1,
            final_ids=frozenset([4]),
        )
        merged = first.merged_with(second)
        assert merged.width == 2
        assert merged.n_registers == 1
        assert merged.actions[5].set == 1          # shifted past first.width
        assert merged.final_ids == {1, 4}

    def test_merge_rejects_id_collision(self):
        first = program({2: FilterAction(set=0)}, width=1)
        with pytest.raises(ValueError):
            first.merged_with(program({2: FilterAction(set=0)}, width=1))

    def test_describe_matches_paper_style(self):
        text = program(
            {2: FilterAction(set=0), 1: FilterAction(test=0, report=1)}
        ).describe()
        assert text == ["1: Test 0 to Match", "2: Set 0"]

    def test_memory_bytes_counts_actions(self):
        small = program({2: FilterAction(set=0)})
        big = program({2: FilterAction(set=0), 3: FilterAction(clear=0)})
        assert 0 < small.memory_bytes() < big.memory_bytes()

    def test_priorities(self):
        prog = program(
            {
                2: FilterAction(set=0),
                3: FilterAction(clear=0),
                1: FilterAction(test=0, report=1),
            }
        )
        assert prog.action_priority(3) == 0   # clear first
        assert prog.action_priority(2) == 1   # then set
        assert prog.action_priority(1) == 2   # then test/report
        assert prog.action_priority(42) == 2  # unknown ids last

    def test_state_clone_is_independent(self):
        state = FilterState(1)
        state.bits = 0b10
        copy = state.clone()
        copy.bits = 0
        copy.registers[0] = (1, 5)
        assert state.bits == 0b10
        assert state.registers[0] == (0, -1)

    def test_passthrough_program(self):
        engine = FilterEngine(FilterProgram.passthrough([3, 4]))
        state = engine.new_state()
        assert engine.process(state, 0, 3) == 3
        assert engine.process(state, 0, 5) == NONE
