"""Overlap safety-test cases, including the paper's and the corner the
paper's literal wording misses."""

import pytest

from repro.core.overlap import segments_overlap, useful_states
from repro.automata.nfa import build_nfa
from repro.regex import parse


def overlap(a_text, b_text):
    return segments_overlap(parse(a_text).root, parse(b_text).root)


class TestPaperCases:
    def test_abc_bcd_overlaps(self):
        # §IV-A's counterexample: suffix "bc" of A is a prefix of B.
        assert overlap("abc", "bcd")

    def test_disjoint_literals_safe(self):
        assert not overlap("abc", "xyz")

    def test_paper_table1_segments_safe(self):
        assert not overlap("vi", "emacs")
        assert not overlap("bsd", "gnu")
        assert not overlap("abc", "mm?o")
        assert not overlap("mm?o", "xyz")


class TestContainmentCorner:
    def test_word_of_a_inside_b(self):
        # A = "b" fires inside B = "abc"; the naive suffix/prefix check
        # passes but the decomposition would be wrong (see module docs).
        assert overlap("b", "abc")

    def test_whole_a_word_suffix_of_b(self):
        assert overlap("bc", "abc")

    def test_equal_words(self):
        assert overlap("abc", "abc")


class TestRegexLevel:
    def test_class_overlap(self):
        # suffix [0-9] of A can be a prefix of B = [5-8]x.
        assert overlap("id[0-9]", "[5-8]x")

    def test_class_disjoint(self):
        assert not overlap("id[0-9]", "[a-f]x")

    def test_alternation_any_branch(self):
        assert overlap("foo|bar", "rfoo")   # "r" suffix of bar, prefix of rfoo
        assert not overlap("foo|bar", "qux")

    def test_star_tail(self):
        # A = ab* has suffixes "b", "bb", ...; B starts with b.
        assert overlap("ab*", "ba")

    def test_optional_suffix(self):
        assert overlap("ab?", "bz")     # choosing the b? suffix
        assert overlap("ab?", "az")     # dropping it leaves suffix "a"

    def test_empty_b_never_overlaps(self):
        # Only non-empty witnesses count (the split refuses nullable B
        # separately).
        assert not overlap("abc", "(?:)")


def test_useful_states_reaches_back():
    nfa = build_nfa([parse("^ab")])
    useful = useful_states(nfa)
    accepting = {q for q in range(nfa.n_states) if nfa.accepts[q]}
    assert accepting <= useful
    assert 0 in useful  # the start can reach acceptance
