"""Compilation-report tests."""

from repro.core import compile_mfa
from repro.core.explain import explain, explain_lines


def test_reports_cover_every_pattern():
    mfa = compile_mfa([".*aa.*bb", "plain", ".*cc[^\\n]*dd"])
    reports = {r.match_id: r for r in explain(mfa)}
    assert set(reports) == {1, 2, 3}
    assert reports[1].decomposed and reports[1].n_components == 2
    assert not reports[2].decomposed
    assert reports[3].n_components == 3  # set + clear + test components


def test_component_texts():
    mfa = compile_mfa([".*aa.*bb"])
    (report,) = explain(mfa)
    assert sorted(report.component_texts) == ["aa", "bb"]


def test_lines_include_key_facts():
    mfa = compile_mfa([".*aa.*bb", "plain"])
    text = "\n".join(explain_lines(mfa))
    assert "component DFA" in text
    assert "1 dot-star" in text
    assert "compiled intact" in text
    assert "Test 0 to Match" in text


def test_lines_for_undcomposable_set():
    mfa = compile_mfa(["onlystrings", "more"])
    text = "\n".join(explain_lines(mfa))
    assert "0 dot-star" in text
    assert "filter program" not in text
