"""Queue-decoupled matching (§III-B) equals lock-step matching."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_mfa

RULES = [".*aa.*bb", ".*cc[^\\n]*dd", ".*ee.{1,4}ffq", "plain", ".*tail$"]

_inputs = st.lists(st.sampled_from(list(b"abcdef\n platiq.")), max_size=80).map(bytes)


def test_paper_example_decoupled():
    mfa = compile_mfa([".*vi.*emacs", ".*bsd.*gnu", ".*abc.*mm?o.*xyz"])
    data = b"vi.emacs.gnu.bsd.gnu.abc.mo.xyz"
    assert sorted(mfa.run_decoupled(data)) == sorted(mfa.run(data))


def test_decoupled_state_is_fresh_per_call():
    mfa = compile_mfa([".*aa.*bb"])
    assert mfa.run_decoupled(b"aabb") == mfa.run_decoupled(b"aabb")
    # A call must not leak filter memory into the next.
    assert mfa.run_decoupled(b"aa") == []
    assert mfa.run_decoupled(b"bb") == []


def test_end_anchored_through_queue():
    mfa = compile_mfa([".*aa.*tail$"])
    assert sorted(mfa.run_decoupled(b"aa..tail")) == sorted(mfa.run(b"aa..tail"))
    assert mfa.run_decoupled(b"aa..tail.") == []


@given(_inputs)
@settings(max_examples=120, deadline=None)
def test_decoupled_equals_lockstep(data):
    mfa = compile_mfa(RULES)
    assert sorted(mfa.run_decoupled(data)) == sorted(mfa.run(data))
