"""Determinism guarantees: identical inputs produce identical artefacts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_mfa, dumps_mfa, loads_mfa
from repro.core.splitter import split_patterns
from repro.regex import parse_many
from repro.regex.printer import pattern_to_text

RULES = [".*aa.*bb", ".*cc[^\\n]*dd", ".*ee.{1,3}ffq", "^GET /x", "plain"]


class TestSplitterDeterminism:
    def test_components_stable(self):
        first = split_patterns(parse_many(RULES))
        second = split_patterns(parse_many(RULES))
        assert [pattern_to_text(c) for c in first.components] == [
            pattern_to_text(c) for c in second.components
        ]
        assert [c.match_id for c in first.components] == [
            c.match_id for c in second.components
        ]

    def test_program_stable(self):
        first = split_patterns(parse_many(RULES)).program
        second = split_patterns(parse_many(RULES)).program
        assert first.actions == second.actions
        assert first.width == second.width

    def test_split_output_has_no_remaining_separators(self):
        # Splitting is a fixpoint: re-splitting the components is a no-op.
        result = split_patterns(parse_many(RULES))
        resplit = split_patterns(result.components)
        assert resplit.stats.n_dot_star == 0
        assert resplit.stats.n_almost_dot_star == 0
        assert resplit.stats.n_counted == 0
        assert len(resplit.components) == len(result.components)


class TestBundleDeterminism:
    def test_bundle_bytes_stable(self):
        assert dumps_mfa(compile_mfa(RULES)) == dumps_mfa(compile_mfa(RULES))


@given(st.binary(max_size=60), st.integers(0, 200))
@settings(max_examples=100, deadline=None)
def test_corrupted_bundles_never_crash(noise, cut):
    """Corrupting a serialised bundle raises cleanly or yields a loadable
    (but possibly semantically different) machine — never a crash."""
    blob = bytearray(dumps_mfa(compile_mfa(["ab", ".*cd.*ef"])))
    position = cut % len(blob)
    mutated = bytes(blob[:position]) + noise + bytes(blob[position + len(noise) :])
    try:
        loads_mfa(mutated)
    except (ValueError, KeyError, TypeError):
        pass
