"""The compressed (``MFADFA2``) artifact tier and bundle version negotiation.

Three layers under test: the forest codec itself (byte-determinism and
section exactness), the bundle-level decode-mode negotiation
(``flatten``/``chain``/``auto`` + ``REPRO_DECODE``/``REPRO_DECODE_BUDGET``),
and backward compatibility — the committed old-format dense fixtures must
load unchanged and re-serialise byte-for-byte.
"""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.compress import ChainDFA, CompressedDFA
from repro.automata.dfa import DFA
from repro.automata.serialize import dumps_cdfa, dumps_dfa, loads_cdfa
from repro.core import compile_mfa
from repro.core.serialize import (
    DECODE_BUDGET_ENV,
    DECODE_ENV,
    dumps_mfa,
    loads_mfa,
    resolve_decode_mode,
)

RULES = [".*aa.*bb", ".*cc[^\\n]*dd", ".*ee.{1,4}ffq", "^GET /x", "plain"]
FIXTURES = Path(__file__).resolve().parent.parent / "fixtures" / "bundles"

PAYLOADS = (b"aa.bb", b"cc x dd", b"ee12ffq", b"GET /x", b"plain", b"zzz", b"")


@pytest.fixture(scope="module")
def cmfa():
    return compile_mfa(RULES, compress=2)


@pytest.fixture(scope="module")
def dense_mfa():
    return compile_mfa(RULES)


class TestForestCodec:
    def test_roundtrip_exact_bytes(self, cmfa):
        blob = dumps_cdfa(cmfa.compressed)
        assert dumps_cdfa(loads_cdfa(blob)) == blob

    def test_flatten_byte_identical_to_dense(self, cmfa, dense_mfa):
        flat = cmfa.compressed.flatten()
        assert dumps_dfa(flat) == dumps_dfa(dense_mfa.dfa)

    def test_truncated_sections_refused(self, cmfa):
        blob = dumps_cdfa(cmfa.compressed)
        with pytest.raises(ValueError):
            loads_cdfa(blob[:-3])

    def test_bad_magic_refused(self):
        with pytest.raises(ValueError, match="magic"):
            loads_cdfa(b"NOTDFA2\n" + b"\x00" * 64)


class TestDecodeModes:
    def test_flatten_gives_dense_dfa(self, cmfa):
        restored = loads_mfa(dumps_mfa(cmfa), decode="flatten")
        assert type(restored.dfa) is DFA
        assert restored.compressed is not None

    def test_chain_gives_chain_dfa(self, cmfa):
        restored = loads_mfa(dumps_mfa(cmfa), decode="chain")
        assert isinstance(restored.dfa, ChainDFA)
        assert isinstance(restored.compressed, CompressedDFA)

    def test_auto_honours_budget(self, cmfa, monkeypatch):
        blob = dumps_mfa(cmfa)
        monkeypatch.setenv(DECODE_BUDGET_ENV, "1")
        assert isinstance(loads_mfa(blob).dfa, ChainDFA)
        monkeypatch.setenv(DECODE_BUDGET_ENV, str(64 * 1024 * 1024))
        assert type(loads_mfa(blob).dfa) is DFA

    def test_env_selects_mode(self, cmfa, monkeypatch):
        blob = dumps_mfa(cmfa)
        monkeypatch.setenv(DECODE_ENV, "chain")
        assert isinstance(loads_mfa(blob).dfa, ChainDFA)
        monkeypatch.setenv(DECODE_ENV, "flatten")
        assert type(loads_mfa(blob).dfa) is DFA

    def test_bad_mode_refused(self):
        with pytest.raises(ValueError, match="auto/flatten/chain"):
            resolve_decode_mode("turbo")

    def test_bad_budget_refused(self, monkeypatch):
        monkeypatch.setenv(DECODE_BUDGET_ENV, "lots")
        with pytest.raises(ValueError, match=DECODE_BUDGET_ENV):
            resolve_decode_mode("auto")

    @pytest.mark.parametrize("mode", ["flatten", "chain"])
    def test_redump_reproduces_compressed_bundle(self, cmfa, mode):
        blob = dumps_mfa(cmfa)
        assert dumps_mfa(loads_mfa(blob, decode=mode)) == blob

    @pytest.mark.parametrize("mode", ["flatten", "chain"])
    def test_match_streams_identical(self, cmfa, dense_mfa, mode):
        restored = loads_mfa(dumps_mfa(cmfa), decode=mode)
        for payload in PAYLOADS:
            assert sorted(restored.run(payload)) == sorted(dense_mfa.run(payload))

    def test_chain_streaming_feed(self, cmfa, dense_mfa):
        restored = loads_mfa(dumps_mfa(cmfa), decode="chain")
        context = restored.new_context()
        events = list(restored.feed(context, b"aa."))
        events += list(restored.feed(context, b"bb"))
        events += list(restored.finish(context))
        assert sorted(events) == sorted(dense_mfa.run(b"aa.bb"))


class TestVersionNegotiation:
    """Committed old-format bundles keep loading, byte-for-byte."""

    @pytest.mark.parametrize("name", ["v1_dense.mfab", "v2_dense.mfab"])
    def test_fixture_roundtrips_byte_identically(self, name):
        blob = FIXTURES.joinpath(name).read_bytes()
        assert dumps_mfa(loads_mfa(blob)) == blob

    @pytest.mark.parametrize("name", ["v1_dense.mfab", "v2_dense.mfab"])
    def test_fixture_matches_fresh_compile(self, name, dense_mfa):
        restored = loads_mfa(FIXTURES.joinpath(name).read_bytes())
        for payload in PAYLOADS:
            assert sorted(restored.run(payload)) == sorted(dense_mfa.run(payload))

    def test_fixture_framing_versions(self):
        assert FIXTURES.joinpath("v1_dense.mfab").read_bytes()[:8] == b"MFABDL1\n"
        assert FIXTURES.joinpath("v2_dense.mfab").read_bytes()[:8] == b"MFABDL2\n"

    def test_dense_compile_still_writes_dense_sections(self, dense_mfa):
        # compress=None (the default) must not change the artifact bytes:
        # old readers keep working on freshly compiled dense bundles.
        blob = dumps_mfa(dense_mfa)
        assert b"MFADFA2\n" not in blob[:64]
        assert loads_mfa(blob).compressed is None


@given(st.lists(st.sampled_from(list(b"abcdef\n .GETxpl")), max_size=60).map(bytes))
@settings(max_examples=30, deadline=None)
def test_compressed_load_equivalent_property(data):
    dense = compile_mfa(RULES)
    blob = dumps_mfa(compile_mfa(RULES, compress=2))
    for mode in ("flatten", "chain"):
        restored = loads_mfa(blob, decode=mode)
        assert sorted(restored.run(data)) == sorted(dense.run(data)), (mode, data)


def test_decode_env_defaults_are_auto(monkeypatch):
    monkeypatch.delenv(DECODE_ENV, raising=False)
    monkeypatch.delenv(DECODE_BUDGET_ENV, raising=False)
    mode, budget = resolve_decode_mode(None)
    assert mode == "auto"
    assert budget == 64 * 1024 * 1024
