"""Bit-parallel MFA: equivalence with the DFA-backed MFA and the oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.shiftand import build_shift_and, linearize
from repro.core import compile_dfa, compile_mfa
from repro.core.bpmfa import build_bp_mfa
from repro.regex import parse, parse_many

LINEAR_RULES = [".*alpha.*omega", ".*abc[^\\n]*xyz", "^GET /index", "plain"]

_inputs = st.lists(st.sampled_from(list(b"alphomegbcxyzGET /indplain\n.")), max_size=70).map(
    bytes
)


class TestLinearize:
    def test_string(self):
        classes = linearize(parse("abc").root)
        assert [len(c) for c in classes] == [1, 1, 1]

    def test_classes_and_repeats(self):
        classes = linearize(parse("[ab]x{3}").root)
        assert len(classes) == 4

    def test_alternation_rejected(self):
        assert linearize(parse("ab|cd").root) is None

    def test_star_rejected(self):
        assert linearize(parse("ab*").root) is None

    def test_optional_rejected(self):
        assert linearize(parse("ab?").root) is None

    def test_empty(self):
        assert linearize(parse("").root) == []


class TestShiftAnd:
    def test_single_pattern(self):
        matcher = build_shift_and(parse_many(["abc"]))
        assert [(m.pos, m.match_id) for m in matcher.run(b"zabcabc")] == [(3, 1), (6, 1)]

    def test_overlapping_matches(self):
        matcher = build_shift_and(parse_many(["aa"]))
        assert [m.pos for m in matcher.run(b"aaaa")] == [1, 2, 3]

    def test_multi_pattern_no_bleed(self):
        # Without padding bits, "ab"'s final bit would bleed into "cd"'s
        # first position; with them the streams stay independent.
        matcher = build_shift_and(parse_many(["ab", "cd"]))
        assert [(m.pos, m.match_id) for m in matcher.run(b"abcd")] == [(1, 1), (3, 2)]
        assert [(m.pos, m.match_id) for m in matcher.run(b"abd")] == [(1, 1)]

    def test_anchored_only_at_start(self):
        matcher = build_shift_and([parse("^ab")])
        assert [m.pos for m in matcher.run(b"abab")] == [1]

    def test_classes(self):
        matcher = build_shift_and(parse_many(["[0-9]{3}x"]))
        assert [m.pos for m in matcher.run(b"123x12x")] == [3]

    def test_nonlinear_raises(self):
        with pytest.raises(ValueError, match="not linear"):
            build_shift_and(parse_many(["a|b"]))

    def test_end_anchor_raises(self):
        with pytest.raises(ValueError, match="end-anchored"):
            build_shift_and([parse("ab$")])

    def test_memory_tiny(self):
        matcher = build_shift_and(parse_many(["abcdef", "ghijkl", "m{4}"]))
        assert matcher.memory_bytes() < 2048

    @given(_inputs)
    @settings(max_examples=80, deadline=None)
    def test_equals_dfa(self, data):
        rules = ["alpha", "^GET ", "ab[cd]e"]
        matcher = build_shift_and(parse_many(rules))
        dfa = compile_dfa(rules)
        assert sorted(matcher.run(data)) == sorted(dfa.run(data))


class TestBitParallelMFA:
    def test_equals_dfa_mfa(self):
        bp = build_bp_mfa(parse_many(LINEAR_RULES))
        mfa = compile_mfa(LINEAR_RULES)
        data = b"GET /index alpha abc . xyz omega plain\nalpha"
        assert sorted(bp.run(data)) == sorted(mfa.run(data))

    def test_streaming(self):
        bp = build_bp_mfa(parse_many(LINEAR_RULES))
        data = b"alpha abc 1 xyz omega"
        context = bp.new_context()
        events = []
        for i in range(0, len(data), 5):
            events.extend(bp.feed(context, data[i : i + 5]))
        assert sorted(events) == sorted(bp.run(data))

    def test_memory_far_below_dfa_mfa(self):
        bp = build_bp_mfa(parse_many(LINEAR_RULES))
        mfa = compile_mfa(LINEAR_RULES)
        assert bp.memory_bytes() < mfa.memory_bytes() / 10

    def test_nonlinear_component_raises(self):
        with pytest.raises(ValueError, match="not linear"):
            build_bp_mfa(parse_many([".*a(?:bb|cc)d.*x"]))

    def test_b217p_compiles_bit_parallel(self):
        """The paper's hardest set is fully linear after decomposition
        (with the offset rescue splitting the one overlap-refused rule)."""
        from repro.bench.harness import patterns_for
        from repro.core import SplitterOptions, compile_nfa

        patterns = list(patterns_for("B217p"))
        bp = build_bp_mfa(patterns, SplitterOptions(offset_overlap_rescue=True))
        assert bp.memory_bytes() < 200_000
        data = b"wu-2.6.0 zz CWD ~root xterm -display"
        expected = sorted(compile_nfa(patterns).run(data))
        assert sorted(bp.run(data)) == expected

    @given(_inputs)
    @settings(max_examples=80, deadline=None)
    def test_equivalence_property(self, data):
        bp = build_bp_mfa(parse_many(LINEAR_RULES))
        reference = compile_dfa(LINEAR_RULES)
        assert sorted(bp.run(data)) == sorted(reference.run(data))
